"""In-band scheduling: live autotuning + CPU-GPU auto-balance.

`OnlineScheduler` runs the paper's Section 3.2.1 sampling-period
autotuner and Section 3.3 load balancer *during* `repro.api.run` steps
(backend="hybrid"), persisting winners through `repro.tuning.TuningCache`.
"""

from repro.sched.online import (
    Campaign,
    OnlineScheduler,
    SchedulerConfig,
    SchedulerReport,
    hybrid_param_space,
    kernel_campaigns,
)

__all__ = [
    "Campaign",
    "OnlineScheduler",
    "SchedulerConfig",
    "SchedulerReport",
    "hybrid_param_space",
    "kernel_campaigns",
]
