"""In-band scheduler: sampling-period autotuning during live steps.

The paper runs its machinery *inside* the simulation ("the setting of
the autotuner can be adjusted dynamically during the time-stepping
iterations", Section 3.2.1; the load balancer "will converge to an
optimal ratio" after a few sampling periods, Section 3.3). This module
is that in-band loop for the repro: `OnlineScheduler.on_step` is called
by the solver after every accepted step; every `steps_per_period` steps
it closes one `tuning_period` telemetry span and advances a state
machine

    warm-start? -> TUNE (one candidate per period, per kernel campaign)
                -> BALANCE (one damped ratio update per period)
                -> DONE

Candidate kernel versions are priced on the simulated device
(`execute_kernel`) with injected measurement noise whose magnitude
shrinks with the period length — averaging over a period of real steps
is exactly why the paper's tuner tolerates noisy timers. Winners and
the converged ratio persist through `TuningCache` keyed by (device
fingerprint, FE config, backend), so a second run on the same
architecture warm-starts and skips the campaign entirely; a port to a
different device misses the cache and re-tunes, the paper's "changes
will be detected and the load will be rebalanced automatically".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.kernels.registry import KernelSelection
from repro.tuning.balance import AutoBalancer
from repro.tuning.cache import TuningCache

__all__ = [
    "SchedulerConfig",
    "SchedulerReport",
    "Campaign",
    "kernel_campaigns",
    "OnlineScheduler",
]

#: Cache key for the converged zone-split ratio (stored alongside the
#: kernel winners under the same device/config/backend key space).
BALANCE_KEY = "balance"


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the in-band loop (defaults = the paper's setup)."""

    steps_per_period: int = 40
    noise_rel: float = 0.02
    damping: float = 0.35
    tol: float = 0.02
    max_balance_periods: int = 50
    initial_ratio: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.steps_per_period < 1:
            raise ValueError("steps_per_period must be >= 1")
        if not (0.0 < self.initial_ratio < 1.0):
            raise ValueError("initial_ratio must be in (0, 1)")


@dataclass
class SchedulerReport:
    """What one run's in-band scheduling did."""

    winners: dict = field(default_factory=dict)
    ratio: float = 0.5
    periods_tune: int = 0
    periods_balance: int = 0
    converged: bool = False
    warm_started: bool = False
    steps_observed: int = 0
    ratio_history: list[float] = field(default_factory=list)

    @property
    def periods(self) -> int:
        return self.periods_tune + self.periods_balance


@dataclass(frozen=True)
class Campaign:
    """One kernel's candidate sweep: name, tuned parameter, space."""

    kernel: str
    param: str
    candidates: tuple
    time_fn: object  # candidate value -> modelled seconds


def kernel_campaigns(fe_cfg, gpu_spec) -> list[Campaign]:
    """The three Section 3.2.1 campaigns, feasibility-filtered.

    Kernels 3 and 5 sweep matrices-per-block (the custom GEMM and the
    batched-dgemm tilings), kernel 7 sweeps the column tile width —
    the same spaces `repro tune kernel3|kernel5|kernel7` explores
    offline. Infeasible candidates (over shared memory / register
    budget on this device) are dropped up front.
    """
    from repro.gpu import execute_kernel
    from repro.kernels.k34_custom_gemm import kernel3_cost
    from repro.kernels.k56_dgemm_batched import kernel5_cost
    from repro.kernels.k7_force import kernel7_cost

    specs = [
        ("kernel3", "matrices_per_block", (1, 2, 4, 8, 16, 32, 64, 128),
         lambda v: kernel3_cost(fe_cfg, "v3", matrices_per_block=v)),
        ("kernel5", "matrices_per_block", (1, 2, 4, 8, 16, 32, 64),
         lambda v: kernel5_cost(fe_cfg, "tuned", v)),
        ("kernel7", "block_cols", (1, 2, 4, 8, 16, 32, 64),
         lambda v: kernel7_cost(fe_cfg, "v3", block_cols=v)),
    ]
    campaigns = []
    for kernel, param, candidates, build in specs:
        feasible = []
        times = {}
        for v in candidates:
            try:
                times[v] = execute_kernel(gpu_spec, build(v)).time_s
            except ValueError:
                continue
            feasible.append(v)
        if not feasible:
            raise ValueError(f"no feasible {kernel} candidates on {gpu_spec.name}")
        campaigns.append(
            Campaign(kernel, param, tuple(feasible), times.__getitem__)
        )
    return campaigns


class OnlineScheduler:
    """Drives tuning + balancing from the solver's step loop.

    Parameters
    ----------
    backend : an attached `repro.backends.HybridBackend` (supplies the
        device spec, FE config, pricing model and ratio/selection hooks).
    cache : optional `TuningCache` for persistence + warm start.
    config : `SchedulerConfig`; None = defaults.
    tracer : optional enabled `Tracer` — each sampling period becomes a
        "tuning_period" span (category "sched"), warm starts and ratio
        moves are instant events.
    """

    def __init__(self, backend, cache: TuningCache | None = None,
                 config: SchedulerConfig | None = None, tracer=None):
        if backend.fe_cfg is None:
            raise ValueError("backend must be attached before scheduling")
        self.backend = backend
        self.cache = cache
        self.cfg = config or SchedulerConfig()
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._rng = np.random.default_rng(self.cfg.seed)
        self.report = SchedulerReport(ratio=self.cfg.initial_ratio)
        self._steps_in_period = 0
        self._span = -1
        self._campaigns = None  # built lazily: warm starts never need them
        self._ci = 0
        self._cand_i = 0
        self._samples: list[tuple[object, float]] = []
        self._state = "tune"
        backend.set_ratio(self.cfg.initial_ratio)
        if not self._warm_start():
            self._campaigns = kernel_campaigns(backend.fe_cfg, backend.gpu)

    # -- Persistence --------------------------------------------------------

    def _warm_start(self) -> bool:
        """Adopt cached winners + ratio when every entry is present."""
        if self.cache is None:
            return False
        spec, cfg = self.backend.gpu, self.backend.fe_cfg
        winners = {}
        for kernel in ("kernel3", "kernel5", "kernel7"):
            hit = self.cache.lookup(spec, cfg, kernel, backend=self.backend.name)
            if hit is None:
                return False
            winners[kernel] = hit
        balance = self.cache.lookup(spec, cfg, BALANCE_KEY, backend=self.backend.name)
        if balance is None or "ratio" not in balance:
            return False
        self.report.winners = winners
        self.report.ratio = float(balance["ratio"])
        self.report.warm_started = True
        self.report.converged = True
        self.backend.apply_selection(KernelSelection.from_winners(winners))
        self.backend.set_ratio(self.report.ratio)
        self._state = "done"
        if self.tracer is not None:
            self.tracer.instant(
                "tuning_warm_start", category="sched",
                ratio=self.report.ratio,
                device=self.cache.device_fingerprint(spec),
            )
        return True

    def _store(self, kernel: str, params: dict) -> None:
        if self.cache is not None:
            self.cache.store(
                self.backend.gpu, self.backend.fe_cfg, kernel, params,
                backend=self.backend.name,
            )

    @property
    def done(self) -> bool:
        """True once tuning + balancing finished (or warm-started)."""
        return self._state == "done"

    # -- The per-step hook --------------------------------------------------

    def on_step(self, wall_s: float = 0.0) -> None:
        """Advance one step; runs the period machinery at boundaries."""
        if self._state == "done":
            return
        self.report.steps_observed += 1
        if self._steps_in_period == 0:
            self._begin_period()
        self._steps_in_period += 1
        if self._steps_in_period >= self.cfg.steps_per_period:
            self._steps_in_period = 0
            self._end_period()

    def finalize(self) -> None:
        """Close any open period span (end of run or scheduler teardown)."""
        if self._span >= 0 and self.tracer is not None:
            self.tracer.end(self._span)
        self._span = -1
        self._state = "done"

    def reset(self) -> None:
        """Abort scheduling (e.g. the hybrid backend was swapped away)."""
        self.finalize()

    # -- Period machinery ---------------------------------------------------

    def _begin_period(self) -> None:
        if self.tracer is None:
            return
        if self._state == "tune":
            camp = self._campaigns[self._ci]
            meta = {"phase": "tune", "kernel": camp.kernel,
                    camp.param: camp.candidates[self._cand_i]}
        else:
            meta = {"phase": "balance", "ratio": round(self.report.ratio, 4)}
        self._span = self.tracer.begin("tuning_period", category="sched", meta=meta)

    def _end_period(self) -> None:
        if self._span >= 0 and self.tracer is not None:
            self.tracer.end(self._span)
            self._span = -1
        if self._state == "tune":
            self._tune_period()
        elif self._state == "balance":
            self._balance_period()

    def _measure(self, seconds: float) -> float:
        """One period-averaged noisy measurement of a modelled time.

        Per-step timer noise averages down over the period —
        noise/sqrt(n) — which is the mechanism that lets the paper's
        tuner make reliable choices from jittery step timings.
        """
        sigma = self.cfg.noise_rel / math.sqrt(self.cfg.steps_per_period)
        return max(seconds * (1.0 + self._rng.normal(0.0, sigma)), 1e-12)

    def _tune_period(self) -> None:
        camp = self._campaigns[self._ci]
        value = camp.candidates[self._cand_i]
        self._samples.append((value, self._measure(camp.time_fn(value))))
        self.report.periods_tune += 1
        self._cand_i += 1
        if self._cand_i < len(camp.candidates):
            return
        best = min(self._samples, key=lambda s: s[1])[0]
        self.report.winners[camp.kernel] = {camp.param: best}
        self._store(camp.kernel, {camp.param: best})
        self._samples = []
        self._cand_i = 0
        self._ci += 1
        if self._ci < len(self._campaigns):
            return
        # All campaigns decided: adopt the winners (re-pricing the
        # split) and hand over to the balancer.
        self.backend.apply_selection(KernelSelection.from_winners(self.report.winners))
        self._state = "balance"

    def _balance_period(self) -> None:
        ratio = self.report.ratio
        t_gpu = self._measure(self.backend.gpu_time_s(ratio))
        t_cpu = self._measure(self.backend.cpu_time_s(1.0 - ratio))
        self.report.periods_balance += 1
        self.report.ratio_history.append(ratio)
        if AutoBalancer.is_balanced(t_gpu, t_cpu, self.cfg.tol):
            self.report.converged = True
            self._store(BALANCE_KEY, {"ratio": ratio})
            self._state = "done"
            return
        if self.report.periods_balance >= self.cfg.max_balance_periods:
            # Out of budget: keep the best ratio found, don't persist an
            # unconverged split.
            self._state = "done"
            return
        new = AutoBalancer.update_ratio(ratio, t_gpu, t_cpu, self.cfg.damping)
        self.report.ratio = new
        self.backend.set_ratio(new)
        if self.tracer is not None:
            self.tracer.instant(
                "ratio_change", category="sched",
                ratio=round(new, 4), t_gpu=t_gpu, t_cpu=t_cpu,
            )
