"""In-band scheduler: sampling-period autotuning during live steps.

The paper runs its machinery *inside* the simulation ("the setting of
the autotuner can be adjusted dynamically during the time-stepping
iterations", Section 3.2.1; the load balancer "will converge to an
optimal ratio" after a few sampling periods, Section 3.3). This module
is that in-band loop for the repro: `OnlineScheduler.on_step` is called
by the solver after every accepted step; every `steps_per_period` steps
it closes one `tuning_period` telemetry span and advances a state
machine

    warm-start? -> TUNE (one search-strategy candidate per period)
                -> BALANCE (one damped ratio update per period)
                -> DONE

The TUNE phase is driven by the `repro.tuning.search` engine: the
joint kernel/runtime configuration space (`hybrid_param_space` — the
kernel 3/5 matrices-per-block tilings x kernel 7 column tile x engine
fusion x worker chunking, declared once with restrictions) is walked by
a pluggable strategy (greedy `local` coordinate descent by default, so
a campaign prices roughly the sum of the axis lengths instead of their
product), and each period-averaged measurement is scored by a pluggable
objective — time, joules, or energy-delay product from the simulated
power models. The campaign terminates when the *strategy* converges,
not when a candidate list is exhausted.

Candidates are priced on the simulated device with injected measurement
noise whose magnitude shrinks with the period length — averaging over a
period of real steps is exactly why the paper's tuner tolerates noisy
timers. Winners and the converged ratio persist through `TuningCache`
keyed by (device fingerprint, FE config, backend, objective), so a
second run on the same architecture *for the same objective*
warm-starts and skips the campaign entirely; a port to a different
device — or a different objective — misses the cache and re-tunes, the
paper's "changes will be detected and the load will be rebalanced
automatically".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.kernels.registry import KernelSelection
from repro.tuning.balance import AutoBalancer
from repro.tuning.cache import TuningCache
from repro.tuning.parameters import ParamSpace
from repro.tuning.search import get_objective, make_strategy

__all__ = [
    "SchedulerConfig",
    "SchedulerReport",
    "Campaign",
    "kernel_campaigns",
    "hybrid_param_space",
    "OnlineScheduler",
]

#: Cache key for the converged zone-split ratio (stored alongside the
#: kernel winners under the same device/config/backend key space).
BALANCE_KEY = "balance"

#: Cache key for the tuned runtime pair (engine fusion, worker chunk).
RUNTIME_KEY = "runtime"


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the in-band loop (defaults = the paper's setup)."""

    steps_per_period: int = 40
    noise_rel: float = 0.02
    damping: float = 0.35
    tol: float = 0.02
    max_balance_periods: int = 50
    initial_ratio: float = 0.5
    seed: int = 0
    #: what the campaign minimizes ("time", "energy", "edp")
    objective: str = "time"
    #: how it walks the space ("exhaustive", "random", "local")
    strategy: str = "local"

    def __post_init__(self):
        if self.steps_per_period < 1:
            raise ConfigError("steps_per_period must be >= 1")
        if not (0.0 < self.initial_ratio < 1.0):
            raise ConfigError("initial_ratio must be in (0, 1)")
        # Resolve both names now so a typo fails at construction, not
        # mid-campaign (typed ConfigError out of the registries).
        get_objective(self.objective)
        make_strategy(self.strategy)


@dataclass
class SchedulerReport:
    """What one run's in-band scheduling did."""

    winners: dict = field(default_factory=dict)
    runtime: dict = field(default_factory=dict)
    ratio: float = 0.5
    periods_tune: int = 0
    periods_balance: int = 0
    converged: bool = False
    warm_started: bool = False
    steps_observed: int = 0
    ratio_history: list[float] = field(default_factory=list)
    objective: str = "time"
    strategy: str = "local"
    evaluations: int = 0
    feasible_points: int = 0

    @property
    def periods(self) -> int:
        return self.periods_tune + self.periods_balance


@dataclass(frozen=True)
class Campaign:
    """One kernel's candidate sweep: name, tuned parameter, space.

    Retained for the offline per-kernel CLI sweeps (`repro tune
    kernelN`) and as the reference axis definitions; the in-band
    scheduler now searches the joint `hybrid_param_space` instead.
    """

    kernel: str
    param: str
    candidates: tuple
    time_fn: object  # candidate value -> modelled seconds


def kernel_campaigns(fe_cfg, gpu_spec) -> list[Campaign]:
    """The three Section 3.2.1 campaigns, feasibility-filtered.

    Kernels 3 and 5 sweep matrices-per-block (the custom GEMM and the
    batched-dgemm tilings), kernel 7 sweeps the column tile width —
    the same spaces `repro tune kernel3|kernel5|kernel7` explores
    offline. Infeasible candidates (over shared memory / register
    budget on this device) are dropped up front.
    """
    from repro.gpu import execute_kernel
    from repro.kernels.k34_custom_gemm import kernel3_cost
    from repro.kernels.k56_dgemm_batched import kernel5_cost
    from repro.kernels.k7_force import kernel7_cost

    specs = [
        ("kernel3", "matrices_per_block", (1, 2, 4, 8, 16, 32, 64, 128),
         lambda v: kernel3_cost(fe_cfg, "v3", matrices_per_block=v)),
        ("kernel5", "matrices_per_block", (1, 2, 4, 8, 16, 32, 64),
         lambda v: kernel5_cost(fe_cfg, "tuned", v)),
        ("kernel7", "block_cols", (1, 2, 4, 8, 16, 32, 64),
         lambda v: kernel7_cost(fe_cfg, "v3", block_cols=v)),
    ]
    campaigns = []
    for kernel, param, candidates, build in specs:
        feasible = []
        times = {}
        for v in candidates:
            try:
                times[v] = execute_kernel(gpu_spec, build(v)).time_s
            except ValueError:
                continue
            feasible.append(v)
        if not feasible:
            raise ValueError(f"no feasible {kernel} candidates on {gpu_spec.name}")
        campaigns.append(
            Campaign(kernel, param, tuple(feasible), times.__getitem__)
        )
    return campaigns


#: Feasible-set memo for `hybrid_param_space`, keyed by (FE config,
#: device name). Feasibility is deterministic in that pair, and a cold
#: scheduler is built per run — without the memo every campaign would
#: re-price all 3k+ launch configurations it can never change.
_SPACE_MEMO: dict = {}


def hybrid_param_space(fe_cfg, gpu_spec) -> ParamSpace:
    """The joint kernel/runtime configuration space, declared once.

    Five axes in the kernel_tuner `tune_params` + `restrictions`
    idiom: the three Section 3.2.1 kernel tilings plus the two runtime
    knobs (host engine fusion, worker zone-chunking). The fusion axis
    spans the three host engines — "fused" (dense zero-allocation),
    "sumfact" (matrix-free sum-factorization; wins on modeled work past
    the per-order crossover, see `repro.fem.sumfact`) and "legacy" —
    so the multi-objective tuner picks the dense/sumfact crossover per
    order instead of hard-coding it. Restrictions eliminate launch
    configurations over the device's shared-memory / register budget
    (memoized — each axis value is priced once, not once per cartesian
    point) and the cross-parameter rule that only the batched hot paths
    (fused, sumfact) chunk zones.
    """
    from repro.gpu import execute_kernel
    from repro.kernels.k34_custom_gemm import kernel3_cost
    from repro.kernels.k56_dgemm_batched import kernel5_cost
    from repro.kernels.k7_force import kernel7_cost

    def axis_feasible(build):
        memo: dict = {}

        def ok(value) -> bool:
            if value not in memo:
                try:
                    execute_kernel(gpu_spec, build(value))
                    memo[value] = True
                except ValueError:
                    memo[value] = False
            return memo[value]

        return ok

    k3_ok = axis_feasible(lambda v: kernel3_cost(fe_cfg, "v3", matrices_per_block=v))
    k5_ok = axis_feasible(lambda v: kernel5_cost(fe_cfg, "tuned", v))
    k7_ok = axis_feasible(lambda v: kernel7_cost(fe_cfg, "v3", block_cols=v))
    space = ParamSpace(
        restrictions=(
            lambda c: k3_ok(c["kernel3_matrices_per_block"]),
            lambda c: k5_ok(c["kernel5_matrices_per_block"]),
            lambda c: k7_ok(c["kernel7_block_cols"]),
            # Zone chunking is a property of the batched hot paths'
            # worker loop (fused and sumfact share it); the legacy
            # engine always processes zone-by-zone.
            lambda c: c["fusion"] != "legacy" or c["chunk"] == 1,
        ),
        kernel3_matrices_per_block=(1, 2, 4, 8, 16, 32, 64, 128),
        kernel5_matrices_per_block=(1, 2, 4, 8, 16, 32, 64),
        kernel7_block_cols=(1, 2, 4, 8, 16, 32, 64),
        fusion=("fused", "sumfact", "legacy"),
        chunk=(1, 2, 4, 8),
    )
    memo_key = (fe_cfg, gpu_spec.name)
    cached = _SPACE_MEMO.get(memo_key)
    if cached is None:
        _SPACE_MEMO[memo_key] = cached = space.candidates()
    else:
        # Pre-seed the enumeration cache; each instance stays
        # independently constrainable (constrain() invalidates it).
        space._feasible = list(cached)
    return space


def winners_from_candidate(candidate: dict) -> tuple[dict, dict]:
    """Split a joint-space candidate into (kernel winners, runtime pair).

    The winner map keeps the historical per-kernel shape consumed by
    `KernelSelection.from_winners` and the `TuningCache`.
    """
    winners = {
        "kernel3": {"matrices_per_block": candidate["kernel3_matrices_per_block"]},
        "kernel5": {"matrices_per_block": candidate["kernel5_matrices_per_block"]},
        "kernel7": {"block_cols": candidate["kernel7_block_cols"]},
    }
    runtime = {"fusion": candidate["fusion"], "chunk": candidate["chunk"]}
    return winners, runtime


class OnlineScheduler:
    """Drives tuning + balancing from the solver's step loop.

    Parameters
    ----------
    backend : an attached `repro.backends.HybridBackend` (supplies the
        device spec, FE config, pricing model and ratio/selection hooks).
    cache : optional `TuningCache` for persistence + warm start.
    config : `SchedulerConfig`; None = defaults. `objective` /
        `strategy` select the search engine's scoring rule and walk.
    tracer : optional enabled `Tracer` — each sampling period becomes a
        "tuning_period" span (category "sched"), warm starts and ratio
        moves are instant events.
    """

    def __init__(self, backend, cache: TuningCache | None = None,
                 config: SchedulerConfig | None = None, tracer=None):
        if backend.fe_cfg is None:
            raise ValueError("backend must be attached before scheduling")
        self.backend = backend
        self.cache = cache
        self.cfg = config or SchedulerConfig()
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._rng = np.random.default_rng(self.cfg.seed)
        self.objective = get_objective(self.cfg.objective)
        self.report = SchedulerReport(
            ratio=self.cfg.initial_ratio,
            objective=self.objective.name,
            strategy=self.cfg.strategy,
        )
        self._steps_in_period = 0
        self._span = -1
        self._strategy = None  # built lazily: warm starts never need it
        self._pending: dict | None = None
        self._state = "tune"
        backend.set_ratio(self.cfg.initial_ratio)
        if not self._warm_start():
            self._strategy = make_strategy(self.cfg.strategy, seed=self.cfg.seed)
            self._strategy.reset(hybrid_param_space(backend.fe_cfg, backend.gpu))
            self.report.strategy = self._strategy.name
            self.report.feasible_points = self._strategy.feasible_points

    # -- Persistence --------------------------------------------------------

    def _warm_start(self) -> bool:
        """Adopt cached winners + ratio when every entry is present.

        Lookups carry the campaign objective: a cache populated by a
        time campaign never warm-starts an energy one — the whole point
        of per-objective winners is that they differ.
        """
        if self.cache is None:
            return False
        spec, cfg = self.backend.gpu, self.backend.fe_cfg
        obj = self.objective.name
        winners = {}
        for kernel in ("kernel3", "kernel5", "kernel7"):
            hit = self.cache.lookup(
                spec, cfg, kernel, backend=self.backend.name, objective=obj
            )
            if hit is None:
                return False
            winners[kernel] = hit
        balance = self.cache.lookup(
            spec, cfg, BALANCE_KEY, backend=self.backend.name, objective=obj
        )
        if balance is None or "ratio" not in balance:
            return False
        self.report.winners = winners
        self.report.ratio = float(balance["ratio"])
        self.report.warm_started = True
        self.report.converged = True
        self.backend.apply_selection(KernelSelection.from_winners(winners))
        # The runtime pair postdates the kernel winners in the cache
        # format; absent entries (old caches) keep the defaults.
        runtime = self.cache.lookup(
            spec, cfg, RUNTIME_KEY, backend=self.backend.name, objective=obj
        )
        if runtime is not None and {"fusion", "chunk"} <= set(runtime):
            self.report.runtime = dict(runtime)
            self.backend.apply_runtime(runtime["fusion"], int(runtime["chunk"]))
        self.backend.set_ratio(self.report.ratio)
        self._state = "done"
        if self.tracer is not None:
            self.tracer.instant(
                "tuning_warm_start", category="sched",
                ratio=self.report.ratio,
                objective=obj,
                device=self.cache.device_fingerprint(spec),
            )
        return True

    def _store(self, kernel: str, params: dict) -> None:
        if self.cache is not None:
            self.cache.store(
                self.backend.gpu, self.backend.fe_cfg, kernel, params,
                backend=self.backend.name, objective=self.objective.name,
            )

    @property
    def done(self) -> bool:
        """True once tuning + balancing finished (or warm-started)."""
        return self._state == "done"

    # -- The per-step hook --------------------------------------------------

    def on_step(self, wall_s: float = 0.0) -> None:
        """Advance one step; runs the period machinery at boundaries."""
        if self._state == "done":
            return
        self.report.steps_observed += 1
        if self._steps_in_period == 0:
            self._begin_period()
        self._steps_in_period += 1
        if self._steps_in_period >= self.cfg.steps_per_period:
            self._steps_in_period = 0
            self._end_period()

    def finalize(self) -> None:
        """Close any open period span (end of run or scheduler teardown)."""
        if self._span >= 0 and self.tracer is not None:
            self.tracer.end(self._span)
        self._span = -1
        self._state = "done"

    def reset(self) -> None:
        """Abort scheduling (e.g. the hybrid backend was swapped away)."""
        self.finalize()

    # -- Period machinery ---------------------------------------------------

    def _begin_period(self) -> None:
        if self._state == "tune":
            # The strategy picks this period's candidate up front so the
            # telemetry span can name it; None = strategy converged.
            self._pending = self._strategy.ask()
            if self._pending is None:
                self._adopt_best()
        if self.tracer is None:
            return
        if self._state == "tune":
            meta = {"phase": "tune", "objective": self.objective.name,
                    "evaluation": self._strategy.evaluations + 1,
                    **self._pending}
        else:
            meta = {"phase": "balance", "ratio": round(self.report.ratio, 4)}
        self._span = self.tracer.begin("tuning_period", category="sched", meta=meta)

    def _end_period(self) -> None:
        if self._span >= 0 and self.tracer is not None:
            self.tracer.end(self._span)
            self._span = -1
        if self._state == "tune":
            self._tune_period()
        elif self._state == "balance":
            self._balance_period()

    def _noisy(self, value: float) -> float:
        """One period-averaged noisy measurement of a modelled quantity.

        Per-step timer noise averages down over the period —
        noise/sqrt(n) — which is the mechanism that lets the paper's
        tuner make reliable choices from jittery step timings.
        """
        sigma = self.cfg.noise_rel / math.sqrt(self.cfg.steps_per_period)
        return max(value * (1.0 + self._rng.normal(0.0, sigma)), 1e-12)

    # Backwards-compatible alias (pre-search-engine name).
    _measure = _noisy

    def _tune_period(self) -> None:
        """Price this period's candidate and feed the strategy."""
        from repro.tuning.search import Measurement

        exact = self.backend.measure_candidate(self._pending)
        noisy = Measurement(
            time_s=self._noisy(exact.time_s),
            energy_j=self._noisy(exact.energy_j),
        )
        self._strategy.tell(self._pending, self.objective.score(noisy))
        self._pending = None
        self.report.periods_tune += 1
        self.report.evaluations = self._strategy.evaluations

    def _adopt_best(self) -> None:
        """Strategy converged: adopt + persist the winner, hand to balancer."""
        winners, runtime = winners_from_candidate(self._strategy.best)
        self.report.winners = winners
        self.report.runtime = runtime
        for kernel, params in winners.items():
            self._store(kernel, params)
        self._store(RUNTIME_KEY, runtime)
        self.backend.apply_selection(KernelSelection.from_winners(winners))
        self.backend.apply_runtime(runtime["fusion"], int(runtime["chunk"]))
        self._state = "balance"

    def _balance_period(self) -> None:
        ratio = self.report.ratio
        t_gpu = self._noisy(self.backend.gpu_time_s(ratio))
        t_cpu = self._noisy(self.backend.cpu_time_s(1.0 - ratio))
        self.report.periods_balance += 1
        self.report.ratio_history.append(ratio)
        if AutoBalancer.is_balanced(t_gpu, t_cpu, self.cfg.tol):
            self.report.converged = True
            self._store(BALANCE_KEY, {"ratio": ratio})
            self._state = "done"
            return
        if self.report.periods_balance >= self.cfg.max_balance_periods:
            # Out of budget: keep the best ratio found, don't persist an
            # unconverged split.
            self._state = "done"
            return
        new = AutoBalancer.update_ratio(ratio, t_gpu, t_cpu, self.cfg.damping)
        self.report.ratio = new
        self.backend.set_ratio(new)
        if self.tracer is not None:
            self.tracer.instant(
                "ratio_change", category="sched",
                ratio=round(new, 4), t_gpu=t_gpu, t_cpu=t_cpu,
            )
