"""Compressed sparse row matrix with vectorized SpMV.

The kinematic mass matrix M_V of eq. (1) is global, symmetric and sparse;
the paper applies it through CUSPARSE's CSR SpMV (kernel 11 and the inner
loop of the CUDA-PCG kernel 9). This module is our from-scratch CSR: COO
assembly with duplicate summation, O(nnz) vectorized matvec, and the
diagnostics (diagonal extraction, symmetry check) the PCG layer needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """Square or rectangular CSR matrix over float64.

    Parameters are the classic three arrays. Rows are `indptr.size - 1`;
    column indices within a row are kept sorted (canonical form) so that
    structural comparisons and transpose round-trips are deterministic.
    """

    def __init__(self, data: np.ndarray, indices: np.ndarray, indptr: np.ndarray, shape: tuple[int, int]):
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.size != self.shape[0] + 1:
            raise ValueError("indptr length must be nrows + 1")
        if self.data.shape != self.indices.shape:
            raise ValueError("data and indices must have equal length")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.data.size and (self.indices.min() < 0 or self.indices.max() >= self.shape[1]):
            raise ValueError("column index out of range")

    # -- Construction --------------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
        prune_tol: float = 0.0,
    ) -> "CSRMatrix":
        """Build from COO triplets, summing duplicate (row, col) entries.

        `prune_tol` drops entries with |value| <= tol after summation
        (useful to keep assembled mass matrices at their true stencil).
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        vals = np.asarray(vals, dtype=np.float64).ravel()
        if not (rows.size == cols.size == vals.size):
            raise ValueError("rows, cols, vals must have equal length")
        nrows, ncols = int(shape[0]), int(shape[1])
        if rows.size:
            if rows.min() < 0 or rows.max() >= nrows:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= ncols:
                raise ValueError("column index out of range")
        # Sort by (row, col) and sum runs of identical keys.
        key = rows * ncols + cols
        order = np.argsort(key, kind="stable")
        key = key[order]
        vals = vals[order]
        if key.size:
            first = np.empty(key.size, dtype=bool)
            first[0] = True
            np.not_equal(key[1:], key[:-1], out=first[1:])
            starts = np.flatnonzero(first)
            summed = np.add.reduceat(vals, starts)
            ukey = key[starts]
        else:
            summed = vals
            ukey = key
        if prune_tol > 0.0 and summed.size:
            keep = np.abs(summed) > prune_tol
            summed = summed[keep]
            ukey = ukey[keep]
        urows = ukey // ncols
        ucols = ukey % ncols
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.add.at(indptr, urows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(summed, ucols, indptr, (nrows, ncols))

    @classmethod
    def from_dense(cls, dense: np.ndarray, prune_tol: float = 0.0) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("dense must be 2D")
        mask = np.abs(dense) > prune_tol
        rows, cols = np.nonzero(mask)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        idx = np.arange(n, dtype=np.int64)
        return cls(np.ones(n), idx, np.arange(n + 1, dtype=np.int64), (n, n))

    # -- Properties -----------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    # -- Core kernels ----------------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """y = A @ x, vectorized over the nonzeros (the SpMV kernel)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise ValueError(f"x must have shape ({self.ncols},)")
        prod = self.data * x[self.indices]
        y = np.zeros(self.nrows)
        row_has = np.diff(self.indptr) > 0
        if prod.size:
            sums = np.add.reduceat(prod, self.indptr[:-1][row_has])
            y[row_has] = sums
        return y

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """x = A.T @ y without forming the transpose."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.nrows,):
            raise ValueError(f"y must have shape ({self.nrows},)")
        row_ids = np.repeat(np.arange(self.nrows), np.diff(self.indptr))
        out = np.zeros(self.ncols)
        np.add.at(out, self.indices, self.data * y[row_ids])
        return out

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal (zeros where structurally absent)."""
        n = min(self.shape)
        diag = np.zeros(n)
        row_ids = np.repeat(np.arange(self.nrows), np.diff(self.indptr))
        hit = (row_ids == self.indices) & (row_ids < n)
        diag[row_ids[hit]] = self.data[hit]
        return diag

    def transpose(self) -> "CSRMatrix":
        row_ids = np.repeat(np.arange(self.nrows), np.diff(self.indptr))
        return CSRMatrix.from_coo(self.indices, row_ids, self.data, (self.ncols, self.nrows))

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        row_ids = np.repeat(np.arange(self.nrows), np.diff(self.indptr))
        out[row_ids, self.indices] = self.data
        return out

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        if self.nrows != self.ncols:
            return False
        t = self.transpose()
        if t.nnz != self.nnz:
            return False
        return (
            np.array_equal(t.indptr, self.indptr)
            and np.array_equal(t.indices, self.indices)
            and bool(np.allclose(t.data, self.data, atol=tol, rtol=tol))
        )

    def scale_rows(self, s: np.ndarray) -> "CSRMatrix":
        """Return diag(s) @ A."""
        s = np.asarray(s, dtype=np.float64)
        if s.shape != (self.nrows,):
            raise ValueError("scale vector length mismatch")
        row_ids = np.repeat(np.arange(self.nrows), np.diff(self.indptr))
        return CSRMatrix(self.data * s[row_ids], self.indices.copy(), self.indptr.copy(), self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
