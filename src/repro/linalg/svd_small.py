"""Batched SVD of 2x2 and 3x3 matrices.

Kernel 1 of the paper computes per-thread SVDs of the DIM x DIM Jacobian
to extract directional length scales for the artificial viscosity. We
obtain singular values/vectors from the symmetric eigendecomposition of
J^T J (right vectors V, sigma^2) and recover U = J V / sigma, with a
column-completion fallback when singular values vanish.

Conventions match `numpy.linalg.svd(..., full_matrices=False)` up to the
usual sign ambiguity, except singular values are returned *ascending* to
match our eigensolvers; `batched_svd` exposes a `descending` flag for
LAPACK-style ordering.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.eig import sym_eig_2x2, sym_eig_3x3, sym_eigvals

__all__ = ["batched_singular_values", "batched_svd"]


def _check(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim < 2 or a.shape[-1] != a.shape[-2] or a.shape[-1] not in (2, 3):
        raise ValueError("expected batched 2x2 or 3x3 matrices")
    return a


def batched_singular_values(a: np.ndarray) -> np.ndarray:
    """Ascending singular values of (..., d, d) batches, d in {2, 3}."""
    a = _check(a)
    ata = np.swapaxes(a, -1, -2) @ a
    w = sym_eigvals(ata)
    return np.sqrt(np.maximum(w, 0.0))


def batched_svd(a: np.ndarray, descending: bool = False) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full SVD A = U diag(s) V^T of small square batches.

    Returns (U, s, V) — note V, not V^T. U and V are orthogonal with
    det-consistent completion when A is rank deficient.
    """
    a = _check(a)
    d = a.shape[-1]
    ata = np.swapaxes(a, -1, -2) @ a
    if d == 2:
        w, V = sym_eig_2x2(ata)
    else:
        w, V = sym_eig_3x3(ata)
    s = np.sqrt(np.maximum(w, 0.0))
    av = a @ V
    # U columns: normalize A v_i; when sigma_i ~ 0 the column is rebuilt
    # by orthogonal completion below.
    scale = np.maximum(s.max(axis=-1, keepdims=True), 1e-300)
    good = s > 1e-13 * scale
    with np.errstate(divide="ignore", invalid="ignore"):
        U = av / np.where(good[..., None, :], s[..., None, :], 1.0)
    if not good.all():
        flatU = U.reshape(-1, d, d)
        flatg = good.reshape(-1, d)
        for idx in np.flatnonzero(~flatg.all(axis=1)):
            g = flatg[idx]
            basis = [flatU[idx][:, j] for j in np.flatnonzero(g)]
            for j in np.flatnonzero(~g):
                # Gram-Schmidt a fresh column against what we have.
                for trial in np.eye(d):
                    v = trial.copy()
                    for b in basis:
                        v -= (v @ b) * b
                    nv = np.linalg.norm(v)
                    if nv > 1e-8:
                        v /= nv
                        break
                flatU[idx][:, j] = v
                basis.append(v)
        U = flatU.reshape(U.shape)
    if descending:
        U = U[..., ::-1]
        s = s[..., ::-1]
        V = V[..., ::-1]
    return U, s, V
