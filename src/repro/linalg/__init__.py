"""Dense/sparse linear algebra substrate.

This package provides, from scratch, every linear-algebra building block
the BLAST redesign is expressed in: a CSR sparse matrix with SpMV (the
paper's kernel 11 / the workhorse of the CUDA-PCG kernel 9), a diagonally
preconditioned conjugate-gradient solver, and the batched small-matrix
operations (GEMM, GEMV, determinant/adjugate/inverse, symmetric
eigendecomposition, SVD) that kernels 1-8 and 10 are made of.
"""

from repro.linalg.csr import CSRMatrix
from repro.linalg.pcg import PCGResult, pcg
from repro.linalg.batched import (
    batched_gemm,
    batched_gemm_nt,
    batched_gemm_tn,
    batched_gemv,
    batched_gemv_t,
    gemm_flops,
    gemv_flops,
)
from repro.linalg.smallmat import (
    batched_adjugate,
    batched_det,
    batched_inverse,
    batched_trace,
)
from repro.linalg.eig import sym_eig_2x2, sym_eig_3x3, sym_eigvals
from repro.linalg.svd_small import batched_singular_values, batched_svd
from repro.linalg.blockdiag import BlockDiagonalMatrix
from repro.linalg.cholesky import (
    batched_cholesky,
    batched_cholesky_solve,
    batched_triangular_solve,
)

__all__ = [
    "CSRMatrix",
    "PCGResult",
    "pcg",
    "batched_gemm",
    "batched_gemm_nt",
    "batched_gemm_tn",
    "batched_gemv",
    "batched_gemv_t",
    "gemm_flops",
    "gemv_flops",
    "batched_adjugate",
    "batched_det",
    "batched_inverse",
    "batched_trace",
    "sym_eig_2x2",
    "sym_eig_3x3",
    "sym_eigvals",
    "batched_singular_values",
    "batched_svd",
    "BlockDiagonalMatrix",
    "batched_cholesky",
    "batched_cholesky_solve",
    "batched_triangular_solve",
]
