"""Diagonally preconditioned conjugate gradients.

The paper solves the momentum system M_V dv/dt = -F.1 with a PCG solver
using a diagonal (Jacobi) preconditioner at every time step (kernel 9 on
the GPU, MFEM's PCG on the CPU). This is that solver; it also reports the
operation counts the hardware cost models consume (one SpMV plus a
handful of BLAS-1 operations per iteration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from repro.linalg.csr import CSRMatrix

__all__ = ["PCGResult", "pcg"]

Operator = Union[CSRMatrix, Callable[[np.ndarray], np.ndarray]]


@dataclass
class PCGResult:
    """Outcome of a PCG solve.

    Attributes
    ----------
    x : solution vector.
    iterations : number of iterations performed.
    converged : whether the relative residual dropped below `tol`.
    residual_norms : per-iteration preconditioned residual norms
        (length iterations + 1, starting with the initial residual).
    spmv_count : number of operator applications (for cost models).
    flops : total floating point operations, counting the SpMV as
        2*nnz and each BLAS-1 op as its exact count.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: np.ndarray
    spmv_count: int
    flops: int


def pcg(
    A: Operator,
    b: np.ndarray,
    diag: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    maxiter: int | None = None,
) -> PCGResult:
    """Solve A x = b with Jacobi-preconditioned CG.

    Parameters
    ----------
    A : a CSRMatrix or a callable computing A @ x. Must be symmetric
        positive definite.
    b : right-hand side.
    diag : diagonal of A for the Jacobi preconditioner. Extracted
        automatically when A is a CSRMatrix; identity preconditioning is
        used when unavailable.
    tol : relative tolerance on sqrt(r.M^{-1}r) against its initial value.
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    if isinstance(A, CSRMatrix):
        if A.shape != (n, n):
            raise ValueError("operator/vector size mismatch")
        matvec = A.matvec
        nnz = A.nnz
        if diag is None:
            diag = A.diagonal()
    else:
        matvec = A
        nnz = None
    if diag is not None:
        diag = np.asarray(diag, dtype=np.float64)
        if diag.shape != (n,):
            raise ValueError("preconditioner diagonal has wrong length")
        if np.any(diag <= 0):
            raise ValueError("Jacobi preconditioner requires positive diagonal")
        inv_diag = 1.0 / diag
    else:
        inv_diag = np.ones(n)
    if maxiter is None:
        maxiter = max(10 * n, 100)

    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    spmv_count = 0
    flops = 0

    r = b - matvec(x) if x.any() else b.copy()
    if x.any():
        spmv_count += 1
        if nnz is not None:
            flops += 2 * nnz + n
    z = inv_diag * r
    p = z.copy()
    rz = float(r @ z)
    flops += 3 * n
    norms = [np.sqrt(abs(rz))]
    if norms[0] == 0.0:
        return PCGResult(x, 0, True, np.asarray(norms), spmv_count, flops)
    stop = tol * norms[0]

    converged = False
    it = 0
    for it in range(1, maxiter + 1):
        Ap = matvec(p)
        spmv_count += 1
        pAp = float(p @ Ap)
        if nnz is not None:
            flops += 2 * nnz
        flops += 2 * n
        if pAp <= 0.0:
            # Not SPD (or roundoff breakdown); stop with what we have.
            it -= 1
            break
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        z = inv_diag * r
        rz_new = float(r @ z)
        flops += 7 * n
        norms.append(np.sqrt(abs(rz_new)))
        if norms[-1] <= stop:
            converged = True
            rz = rz_new
            break
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
        flops += 2 * n
    return PCGResult(x, it, converged, np.asarray(norms), spmv_count, flops)
