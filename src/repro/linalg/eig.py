"""Batched symmetric eigendecomposition of 2x2 and 3x3 matrices.

The tensor artificial viscosity evaluates, at every quadrature point, the
eigenvalues and eigenvectors of the symmetrized velocity gradient — the
per-thread workload of the paper's kernel 2. We use closed forms: the
quadratic formula in 2D and the trigonometric (Smith) method in 3D, with
a LAPACK fallback on the (measure-zero) batches where the analytic
eigenvector construction degenerates.

Eigenvalues are returned in ascending order; eigenvectors are the columns
of the returned matrix, matching `numpy.linalg.eigh` conventions so the
two paths are drop-in interchangeable in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sym_eig_2x2", "sym_eig_3x3", "sym_eigvals"]


def _check_sym(a: np.ndarray, d: int) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim < 2 or a.shape[-2:] != (d, d):
        raise ValueError(f"expected (..., {d}, {d}) matrices")
    return a


def sym_eig_2x2(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of symmetric 2x2 batches.

    Returns (w, V) with w ascending (..., 2) and V (..., 2, 2) whose
    columns are unit eigenvectors.
    """
    a = _check_sym(a, 2)
    a00 = a[..., 0, 0]
    a01 = 0.5 * (a[..., 0, 1] + a[..., 1, 0])
    a11 = a[..., 1, 1]
    mean = 0.5 * (a00 + a11)
    half_diff = 0.5 * (a00 - a11)
    radius = np.sqrt(half_diff * half_diff + a01 * a01)
    w = np.stack([mean - radius, mean + radius], axis=-1)
    # Eigenvector for the larger eigenvalue: (a01, w_max - a00) or
    # (w_max - a11, a01); pick the better-conditioned of the two.
    wmax = w[..., 1]
    v1 = np.stack([a01, wmax - a00], axis=-1)
    v2 = np.stack([wmax - a11, a01], axis=-1)
    n1 = np.linalg.norm(v1, axis=-1)
    n2 = np.linalg.norm(v2, axis=-1)
    use2 = n2 > n1
    v = np.where(use2[..., None], v2, v1)
    n = np.where(use2, n2, n1)
    # Degenerate (a already diagonal with equal entries): any basis works.
    tiny = n < 1e-300
    v = np.where(tiny[..., None], np.broadcast_to([1.0, 0.0], v.shape), v)
    n = np.where(tiny, 1.0, n)
    v = v / n[..., None]
    V = np.empty(a.shape)
    # Column 1 = eigenvector of w_max; column 0 orthogonal to it.
    V[..., 0, 1] = v[..., 0]
    V[..., 1, 1] = v[..., 1]
    V[..., 0, 0] = -v[..., 1]
    V[..., 1, 0] = v[..., 0]
    return w, V


def _eigvals_3x3(a: np.ndarray) -> np.ndarray:
    """Ascending eigenvalues of symmetric 3x3 batches (Smith's method)."""
    a00 = a[..., 0, 0]
    a11 = a[..., 1, 1]
    a22 = a[..., 2, 2]
    a01 = 0.5 * (a[..., 0, 1] + a[..., 1, 0])
    a02 = 0.5 * (a[..., 0, 2] + a[..., 2, 0])
    a12 = 0.5 * (a[..., 1, 2] + a[..., 2, 1])
    q = (a00 + a11 + a22) / 3.0
    b00, b11, b22 = a00 - q, a11 - q, a22 - q
    p2 = (b00 * b00 + b11 * b11 + b22 * b22 + 2.0 * (a01 * a01 + a02 * a02 + a12 * a12)) / 6.0
    p = np.sqrt(np.maximum(p2, 0.0))
    # det(B)/2 with B = A - q I
    detB = (
        b00 * (b11 * b22 - a12 * a12)
        - a01 * (a01 * b22 - a12 * a02)
        + a02 * (a01 * a12 - b11 * a02)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.where(p > 0.0, detB / (2.0 * p**3), 0.0)
    r = np.clip(r, -1.0, 1.0)
    phi = np.arccos(r) / 3.0
    w2 = q + 2.0 * p * np.cos(phi)
    w0 = q + 2.0 * p * np.cos(phi + 2.0 * np.pi / 3.0)
    w1 = 3.0 * q - w0 - w2
    return np.stack([w0, w1, w2], axis=-1)


def sym_eig_3x3(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of symmetric 3x3 batches.

    Analytic eigenvalues everywhere; eigenvectors from cross products of
    the rows of (A - w I), falling back to numpy.linalg.eigh on batches
    where eigenvalues cluster (relative gap < 1e-6) or the cross products
    collapse.
    """
    a = _check_sym(a, 3)
    sym = 0.5 * (a + np.swapaxes(a, -1, -2))
    w = _eigvals_3x3(sym)
    flat = sym.reshape(-1, 3, 3)
    wf = w.reshape(-1, 3)
    n = flat.shape[0]
    V = np.empty((n, 3, 3))
    scale = np.maximum(np.abs(wf).max(axis=-1), 1e-300)
    gap01 = (wf[:, 1] - wf[:, 0]) / scale
    gap12 = (wf[:, 2] - wf[:, 1]) / scale
    degenerate = (gap01 < 1e-6) | (gap12 < 1e-6)
    ok = ~degenerate
    if ok.any():
        m = flat[ok]
        for col, which in ((0, 0), (2, 2)):
            b = m - wf[ok, which, None, None] * np.eye(3)
            # Cross products of row pairs all lie along the eigenvector.
            c0 = np.cross(b[:, 0], b[:, 1])
            c1 = np.cross(b[:, 0], b[:, 2])
            c2 = np.cross(b[:, 1], b[:, 2])
            cs = np.stack([c0, c1, c2], axis=1)
            norms = np.linalg.norm(cs, axis=-1)
            best = norms.argmax(axis=1)
            vec = cs[np.arange(cs.shape[0]), best]
            nv = norms[np.arange(cs.shape[0]), best]
            bad = nv < 1e-300
            if bad.any():
                degenerate_idx = np.flatnonzero(ok)[bad]
                degenerate[degenerate_idx] = True
            nv = np.where(bad, 1.0, nv)
            V[ok, :, col] = vec / nv[:, None]
        # Middle eigenvector: orthogonal completion keeps V orthonormal.
        V[ok, :, 1] = np.cross(V[ok, :, 2], V[ok, :, 0])
    still_ok = ~degenerate
    if degenerate.any():
        wd, Vd = np.linalg.eigh(flat[degenerate])
        wf[degenerate] = wd
        V[degenerate] = Vd
    # Re-orthonormalize the analytic columns (guards roundoff drift).
    if still_ok.any():
        v0 = V[still_ok, :, 0]
        v2 = V[still_ok, :, 2]
        v2 = v2 - (np.sum(v2 * v0, axis=-1, keepdims=True)) * v0
        v2 /= np.linalg.norm(v2, axis=-1, keepdims=True)
        V[still_ok, :, 2] = v2
        V[still_ok, :, 1] = np.cross(v2, v0)
    return wf.reshape(w.shape), V.reshape(a.shape)


def sym_eigvals(a: np.ndarray) -> np.ndarray:
    """Ascending eigenvalues of symmetric 2x2 or 3x3 batches."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim < 2 or a.shape[-1] != a.shape[-2]:
        raise ValueError("expected batched square matrices")
    d = a.shape[-1]
    if d == 2:
        return sym_eig_2x2(a)[0]
    if d == 3:
        sym = 0.5 * (a + np.swapaxes(a, -1, -2))
        return _eigvals_3x3(sym)
    raise ValueError("only 2x2 and 3x3 supported")
