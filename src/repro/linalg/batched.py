"""Batched dense BLAS-like operations.

The heart of the paper's redesign is turning per-zone / per-quadrature-
point loops into *batched* matrix operations (kernels 3-8, 10). These
helpers are the functional counterparts: strict-shape batched GEMM/GEMV
variants over leading batch axes, plus the exact flop counters the
hardware cost models use (a batched GEMM performs 2*m*n*k flops per
batch entry; the paper's "flop per element = 2*DIM/3" analysis for
DIM x DIM batches falls out of these counts).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "batched_gemm",
    "batched_gemm_nt",
    "batched_gemm_tn",
    "batched_gemv",
    "batched_gemv_t",
    "gemm_flops",
    "gemv_flops",
]


def _check_batched(a: np.ndarray, ndim_min: int, name: str) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim < ndim_min:
        raise ValueError(f"{name} must have at least {ndim_min} dimensions, got {a.ndim}")
    return a


def batched_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C[batch] = A[batch] @ B[batch] for (..., m, k) x (..., k, n).

    Broadcasting over batch axes is allowed (kernel 3 multiplies many A
    against few B by exactly this pattern).
    """
    a = _check_batched(a, 2, "a")
    b = _check_batched(b, 2, "b")
    if a.shape[-1] != b.shape[-2]:
        raise ValueError(f"inner dimensions differ: {a.shape[-1]} vs {b.shape[-2]}")
    return a @ b


def batched_gemm_nt(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C[batch] = A[batch] @ B[batch]^T (the paper's kernel 7: Fz = Az B^T)."""
    a = _check_batched(a, 2, "a")
    b = _check_batched(b, 2, "b")
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(f"inner dimensions differ: {a.shape[-1]} vs {b.shape[-1]}")
    return a @ np.swapaxes(b, -1, -2)


def batched_gemm_tn(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C[batch] = A[batch]^T @ B[batch]."""
    a = _check_batched(a, 2, "a")
    b = _check_batched(b, 2, "b")
    if a.shape[-2] != b.shape[-2]:
        raise ValueError(f"inner dimensions differ: {a.shape[-2]} vs {b.shape[-2]}")
    return np.swapaxes(a, -1, -2) @ b


def batched_gemv(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """y[batch] = A[batch] @ x[batch] for (..., m, n) x (..., n).

    Kernel 8 (-F.1) is this operation with one thread block per zone.
    """
    a = _check_batched(a, 2, "a")
    x = _check_batched(x, 1, "x")
    if a.shape[-1] != x.shape[-1]:
        raise ValueError(f"dimension mismatch: {a.shape[-1]} vs {x.shape[-1]}")
    return np.einsum("...mn,...n->...m", a, x)


def batched_gemv_t(a: np.ndarray, y: np.ndarray) -> np.ndarray:
    """x[batch] = A[batch]^T @ y[batch] (kernel 10: F^T . v)."""
    a = _check_batched(a, 2, "a")
    y = _check_batched(y, 1, "y")
    if a.shape[-2] != y.shape[-1]:
        raise ValueError(f"dimension mismatch: {a.shape[-2]} vs {y.shape[-1]}")
    return np.einsum("...mn,...m->...n", a, y)


def gemm_flops(batches: int, m: int, n: int, k: int) -> int:
    """Flop count of a batched GEMM (multiply-add counted as 2 flops)."""
    return 2 * batches * m * n * k


def gemv_flops(batches: int, m: int, n: int) -> int:
    """Flop count of a batched GEMV."""
    return 2 * batches * m * n
