"""Batched determinant / adjugate / inverse of DIM x DIM matrices.

Kernel 1 of the paper (kernel_CalcAjugate_det) computes, per quadrature
point and per thread, the adjugate and determinant of the 2x2 or 3x3
Jacobian. These are the closed-form batched equivalents; the adjugate is
preferred over the inverse inside the corner-force contraction because
adj(J) = det(J) * J^{-1} keeps the |J| factor explicit (eq. (5) uses
J^{-1} ... |J| = adj(J)^T ... applied appropriately) and never divides.
"""

from __future__ import annotations

import numpy as np

__all__ = ["batched_det", "batched_adjugate", "batched_inverse", "batched_trace"]


def _as_square_batch(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim < 2 or a.shape[-1] != a.shape[-2]:
        raise ValueError("expected batched square matrices (..., d, d)")
    if a.shape[-1] not in (1, 2, 3):
        raise ValueError("only 1x1, 2x2 and 3x3 matrices are supported")
    return a


def batched_det(a: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Determinants of (..., d, d) matrices, closed form for d <= 3.

    `out` (shape (...,)) lets the hot path reuse a workspace buffer; the
    expression order is identical either way, so results are bitwise
    equal with and without it.
    """
    a = _as_square_batch(a)
    d = a.shape[-1]
    if d == 1:
        if out is None:
            return a[..., 0, 0].copy()
        out[...] = a[..., 0, 0]
        return out
    if d == 2:
        det = a[..., 0, 0] * a[..., 1, 1] - a[..., 0, 1] * a[..., 1, 0]
    else:
        det = (
            a[..., 0, 0] * (a[..., 1, 1] * a[..., 2, 2] - a[..., 1, 2] * a[..., 2, 1])
            - a[..., 0, 1] * (a[..., 1, 0] * a[..., 2, 2] - a[..., 1, 2] * a[..., 2, 0])
            + a[..., 0, 2] * (a[..., 1, 0] * a[..., 2, 1] - a[..., 1, 1] * a[..., 2, 0])
        )
    if out is None:
        return det
    out[...] = det
    return out


def batched_adjugate(a: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Adjugates (transposed cofactor matrices): adj(A) @ A = det(A) I."""
    a = _as_square_batch(a)
    d = a.shape[-1]
    if out is None:
        out = np.empty_like(a)
    elif out.shape != a.shape:
        raise ValueError("out must match the input batch shape")
    if d == 1:
        out[..., 0, 0] = 1.0
        return out
    if d == 2:
        out[..., 0, 0] = a[..., 1, 1]
        out[..., 0, 1] = -a[..., 0, 1]
        out[..., 1, 0] = -a[..., 1, 0]
        out[..., 1, 1] = a[..., 0, 0]
        return out
    # 3x3: adj(A)[i, j] = cofactor(A)[j, i]
    out[..., 0, 0] = a[..., 1, 1] * a[..., 2, 2] - a[..., 1, 2] * a[..., 2, 1]
    out[..., 0, 1] = a[..., 0, 2] * a[..., 2, 1] - a[..., 0, 1] * a[..., 2, 2]
    out[..., 0, 2] = a[..., 0, 1] * a[..., 1, 2] - a[..., 0, 2] * a[..., 1, 1]
    out[..., 1, 0] = a[..., 1, 2] * a[..., 2, 0] - a[..., 1, 0] * a[..., 2, 2]
    out[..., 1, 1] = a[..., 0, 0] * a[..., 2, 2] - a[..., 0, 2] * a[..., 2, 0]
    out[..., 1, 2] = a[..., 0, 2] * a[..., 1, 0] - a[..., 0, 0] * a[..., 1, 2]
    out[..., 2, 0] = a[..., 1, 0] * a[..., 2, 1] - a[..., 1, 1] * a[..., 2, 0]
    out[..., 2, 1] = a[..., 0, 1] * a[..., 2, 0] - a[..., 0, 0] * a[..., 2, 1]
    out[..., 2, 2] = a[..., 0, 0] * a[..., 1, 1] - a[..., 0, 1] * a[..., 1, 0]
    return out


def batched_inverse(a: np.ndarray) -> np.ndarray:
    """Inverses via adjugate/determinant; raises on singular batches."""
    a = _as_square_batch(a)
    det = batched_det(a)
    if np.any(np.abs(det) < 1e-300):
        raise np.linalg.LinAlgError("singular matrix in batch")
    return batched_adjugate(a) / det[..., None, None]


def batched_trace(a: np.ndarray) -> np.ndarray:
    """Traces of (..., d, d) matrices."""
    a = _as_square_batch(a)
    return np.einsum("...ii->...", a)
