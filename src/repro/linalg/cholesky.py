"""Batched Cholesky factorization and solves.

The thermodynamic mass blocks are SPD, so the once-at-initialization
inversion the paper performs (Section 2) is best done by Cholesky:
factor every block simultaneously (vectorized over the batch axis,
looping only over the small block dimension) and apply triangular
solves each step. Provided as the numerically-preferred alternative to
the explicit inverses, and cross-validated against them in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["batched_cholesky", "batched_cholesky_solve", "batched_triangular_solve"]


def batched_cholesky(a: np.ndarray) -> np.ndarray:
    """Lower-triangular L with L L^T = A for a batch of SPD matrices.

    a : (..., n, n). Vectorized over the batch: the loops run over the
    n(n+1)/2 block entries, not the batch, so thousands of small blocks
    factor in O(n^2) NumPy calls.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim < 2 or a.shape[-1] != a.shape[-2]:
        raise ValueError("expected batched square matrices")
    n = a.shape[-1]
    L = np.zeros_like(a)
    for j in range(n):
        # Diagonal: d = a_jj - sum_k L_jk^2
        d = a[..., j, j] - np.sum(L[..., j, :j] ** 2, axis=-1)
        if np.any(d <= 0):
            raise np.linalg.LinAlgError("matrix batch is not positive definite")
        L[..., j, j] = np.sqrt(d)
        if j + 1 < n:
            below = (
                a[..., j + 1:, j]
                - np.einsum("...ik,...k->...i", L[..., j + 1:, :j], L[..., j, :j])
            )
            L[..., j + 1:, j] = below / L[..., j, j][..., None]
    return L


def batched_triangular_solve(L: np.ndarray, b: np.ndarray, lower: bool = True) -> np.ndarray:
    """Solve L x = b (or L^T x = b with lower=False) per batch entry.

    L : (..., n, n) triangular; b : (..., n).
    """
    L = np.asarray(L, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = L.shape[-1]
    if b.shape[-1] != n:
        raise ValueError("right-hand side length mismatch")
    x = np.zeros_like(b)
    order = range(n) if lower else range(n - 1, -1, -1)
    for i in order:
        if lower:
            acc = np.einsum("...k,...k->...", L[..., i, :i], x[..., :i])
        else:
            acc = np.einsum("...k,...k->...", L[..., i + 1:, i], x[..., i + 1:])
        x[..., i] = (b[..., i] - acc) / L[..., i, i]
    return x


def batched_cholesky_solve(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve A x = b given A = L L^T (two triangular sweeps)."""
    y = batched_triangular_solve(L, b, lower=True)
    return batched_triangular_solve(L, y, lower=False)
