"""Block-diagonal operator with precomputed inverse blocks.

The thermodynamic mass matrix M_E is symmetric block diagonal, one dense
block per zone (the thermodynamic basis is discontinuous). Following the
paper, the inverse of each local block is computed once at initialization
and applied every time step — the energy equation (2) is then a batched
dense solve that the GPU expresses as SpMV on the inverse (kernel 11).
"""

from __future__ import annotations

import numpy as np

from repro.linalg.csr import CSRMatrix

__all__ = ["BlockDiagonalMatrix"]


class BlockDiagonalMatrix:
    """Square block-diagonal matrix stored as (nblocks, bs, bs)."""

    def __init__(self, blocks: np.ndarray):
        blocks = np.asarray(blocks, dtype=np.float64)
        if blocks.ndim != 3 or blocks.shape[1] != blocks.shape[2]:
            raise ValueError("blocks must be (nblocks, bs, bs)")
        self.blocks = blocks
        self.nblocks = blocks.shape[0]
        self.block_size = blocks.shape[1]
        self.n = self.nblocks * self.block_size
        self._inv: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    def precompute_inverse(self) -> np.ndarray:
        """Factor every block once (the paper's initialization step)."""
        if self._inv is None:
            self._inv = np.linalg.inv(self.blocks)
        return self._inv

    @property
    def inverse_blocks(self) -> np.ndarray:
        return self.precompute_inverse()

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise ValueError(f"x must have shape ({self.n},)")
        xb = x.reshape(self.nblocks, self.block_size)
        return np.einsum("bij,bj->bi", self.blocks, xb).ravel()

    def solve(self, b: np.ndarray) -> np.ndarray:
        """x = M^{-1} b using the precomputed block inverses."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.n,):
            raise ValueError(f"b must have shape ({self.n},)")
        inv = self.precompute_inverse()
        bb = b.reshape(self.nblocks, self.block_size)
        return np.einsum("bij,bj->bi", inv, bb).ravel()

    def diagonal(self) -> np.ndarray:
        return np.einsum("bii->bi", self.blocks).ravel()

    def inverse_as_csr(self) -> CSRMatrix:
        """The inverse laid out as a CSR matrix (what kernel 11 applies)."""
        inv = self.precompute_inverse()
        bs, nb = self.block_size, self.nblocks
        rows = (np.arange(nb)[:, None, None] * bs + np.arange(bs)[None, :, None] + np.zeros((1, 1, bs), dtype=int)).ravel()
        cols = (np.arange(nb)[:, None, None] * bs + np.zeros((1, bs, 1), dtype=int) + np.arange(bs)[None, None, :]).ravel()
        return CSRMatrix.from_coo(rows, cols, inv.ravel(), (self.n, self.n))

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        return bool(np.allclose(self.blocks, np.swapaxes(self.blocks, 1, 2), atol=tol, rtol=tol))
