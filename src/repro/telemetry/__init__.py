"""Unified telemetry: tracing, simulated RAPL/NVML sampling, exporters.

The paper's core evaluation instrument is time-synchronized power and
energy sampling (RAPL on the CPU, NVML on the GPU) correlated against
kernel phases (Section 5, Figures 14-16). This package is that
instrument for the repro: a `Tracer` records nested spans
(run → step → RK stage → phase → kernel) on a monotonic clock, a
`CounterSampler` polls the simulated power models and attributes joules
to whichever span is open, and exporters render a run as a JSONL event
stream, a Chrome trace, or a `RunManifest` summary.

Every entry point (`repro.api.run`, the CLI, `ResilientDriver`) emits
into this one subsystem; with telemetry disabled the tracer is a strict
no-op so the hot path stays unperturbed.
"""

from repro.telemetry.tracer import Span, Tracer, NULL_SPAN
from repro.telemetry.sampler import CounterSample, CounterSampler, DEFAULT_PHASE_UTILIZATION
from repro.telemetry.export import (
    chrome_trace,
    jsonl_records,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.manifest import FleetManifest, RunManifest

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "CounterSample",
    "CounterSampler",
    "DEFAULT_PHASE_UTILIZATION",
    "chrome_trace",
    "jsonl_records",
    "write_chrome_trace",
    "write_jsonl",
    "RunManifest",
    "FleetManifest",
]
