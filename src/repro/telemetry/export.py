"""Trace exporters: JSONL event stream and Chrome `chrome://tracing`.

Two renderings of one `Tracer` + `CounterSampler` pair:

* `write_jsonl` — a line-per-record stream (meta, spans, instant
  events, counter samples) for downstream analysis; this is the
  `repro run --metrics out.jsonl` format.
* `write_chrome_trace` — the Chrome Trace Event Format (load in
  `chrome://tracing` or https://ui.perfetto.dev): complete ("X") events
  for spans, instant ("i") events for faults/checkpoints, counter ("C")
  tracks for the sampled CPU/GPU power — the interactive version of the
  paper's Figures 14-16.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["chrome_trace", "write_chrome_trace", "jsonl_records", "write_jsonl"]


def chrome_trace(tracer, sampler=None) -> dict:
    """Render the tracer (and optional sampler) as a Chrome trace dict."""
    events: list[dict] = []
    incl = tracer.inclusive_energy()
    for s in tracer.spans:
        args = dict(s.meta or {})
        if incl[s.index][0] or incl[s.index][1]:
            args["cpu_j"] = round(incl[s.index][0], 6)
            args["gpu_j"] = round(incl[s.index][1], 6)
        events.append(
            {
                "name": s.name,
                "cat": s.category or "span",
                "ph": "X",
                "ts": s.t0_s * 1e6,
                "dur": s.duration_s * 1e6,
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )
    for ev in tracer.events:
        meta = {k: v for k, v in ev.items() if k not in ("name", "category", "t_s")}
        events.append(
            {
                "name": ev["name"],
                "cat": ev.get("category") or "event",
                "ph": "i",
                "ts": ev["t_s"] * 1e6,
                "s": "t",
                "pid": 0,
                "tid": 0,
                "args": meta,
            }
        )
    if sampler is not None:
        for sample in sampler.samples:
            events.append(
                {
                    "name": "power",
                    "ph": "C",
                    "ts": sample.t_s * 1e6,
                    "pid": 0,
                    "args": {"cpu_w": sample.cpu_w, "gpu_w": sample.gpu_w},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, tracer, sampler=None) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, sampler)) + "\n")
    return path


def jsonl_records(tracer, sampler=None):
    """Yield the JSONL records (dicts) for a run, meta line first."""
    meta = {"type": "meta", "clock": "perf_counter", "spans": len(tracer.spans)}
    if sampler is not None:
        meta["counters"] = sampler.describe()
    yield meta
    for s in tracer.spans:
        rec = {
            "type": "span",
            "index": s.index,
            "parent": s.parent,
            "depth": s.depth,
            "name": s.name,
            "category": s.category,
            "t0_s": s.t0_s,
            "t1_s": s.t1_s,
            "cpu_j": s.cpu_j,
            "gpu_j": s.gpu_j,
        }
        if s.meta:
            rec["meta"] = s.meta
        yield rec
    for ev in tracer.events:
        yield {"type": "event", **ev}
    if sampler is not None:
        for sample in sampler.samples:
            yield {
                "type": "sample",
                "t_s": sample.t_s,
                "cpu_w": sample.cpu_w,
                "gpu_w": sample.gpu_w,
            }


def write_jsonl(path, tracer, sampler=None) -> Path:
    """Write the JSONL metrics stream; returns the path written."""
    path = Path(path)
    with path.open("w") as fh:
        for rec in jsonl_records(tracer, sampler):
            fh.write(json.dumps(rec) + "\n")
    return path
