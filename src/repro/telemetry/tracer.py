"""Structured tracing: nested spans over a monotonic clock.

A `Tracer` records the run as a tree of spans — run → step → RK stage →
phase (force / cg) → kernel — the same hierarchy the paper's
time-synchronized RAPL/NVML measurement needs in order to say *which*
kernel burned the joules (Section 5, Figures 14-16). Every layer of the
solver emits into one tracer; listeners (`repro.telemetry.sampler`)
observe span transitions and attribute energy to whichever span is open.

Disabled tracing is a strict no-op: `Tracer(enabled=False).span(...)`
returns one shared null context manager and allocates nothing, so the
hot path with telemetry off stays within noise of the untraced build
(gated by `benchmarks/bench_hotpath.py`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NULL_SPAN"]


@dataclass
class Span:
    """One closed-or-open interval in the trace tree.

    Times are seconds since the tracer's epoch on the monotonic clock
    (`time.perf_counter`). `cpu_j` / `gpu_j` hold *leaf-attributed*
    energy: a `CounterSampler` credits each elapsed interval to the
    innermost span open at the time, never to its ancestors (use
    `Tracer.inclusive_energy` for subtree rollups).
    """

    name: str
    category: str
    t0_s: float
    index: int
    parent: int = -1
    depth: int = 0
    t1_s: float = -1.0
    cpu_j: float = 0.0
    gpu_j: float = 0.0
    meta: dict | None = None

    @property
    def duration_s(self) -> float:
        """Span length (0.0 while still open)."""
        return max(self.t1_s - self.t0_s, 0.0)

    @property
    def energy_j(self) -> float:
        """Leaf-attributed CPU + GPU joules."""
        return self.cpu_j + self.gpu_j


class _NullSpanContext:
    """Shared do-nothing context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager that opens/closes one span on the tracer."""

    __slots__ = ("_tracer", "_name", "_category", "_meta", "index")

    def __init__(self, tracer: "Tracer", name: str, category: str, meta: dict | None):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._meta = meta

    def __enter__(self) -> Span:
        self.index = self._tracer._open(self._name, self._category, self._meta)
        return self._tracer.spans[self.index]

    def __exit__(self, *exc):
        self._tracer._close(self.index)
        return False


class Tracer:
    """Collects nested spans and instant events on a monotonic clock.

    Parameters
    ----------
    enabled : when False every `span()` call returns the shared
        `NULL_SPAN` and the tracer never allocates (telemetry-off mode).
    clock : injectable monotonic clock (tests use a fake); defaults to
        `time.perf_counter`. The first reading becomes the epoch, so all
        span times are relative seconds.
    """

    def __init__(self, enabled: bool = True, clock=time.perf_counter):
        self.enabled = enabled
        self._clock = clock
        self.epoch = clock() if enabled else 0.0
        self.spans: list[Span] = []
        self.events: list[dict] = []
        self._stack: list[int] = []
        self._listeners: list = []
        self._finished = False

    # -- clock / structure -------------------------------------------------------

    def now(self) -> float:
        """Seconds since the epoch on the tracer's clock."""
        return self._clock() - self.epoch

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None at top level."""
        return self.spans[self._stack[-1]] if self._stack else None

    def add_listener(self, listener) -> None:
        """Attach a transition listener (e.g. a `CounterSampler`).

        Listeners receive `on_interval(t0, t1, span_or_none)` for every
        maximal interval during which the open-leaf span is constant,
        and `on_finish(t)` when the trace ends.
        """
        self._listeners.append(listener)
        notify_from = getattr(listener, "attach_at", None)
        if notify_from is not None:
            listener.attach_at(self.now())

    def span(self, name: str, category: str = "", meta: dict | None = None):
        """Open a nested span as a context manager.

        Returns `NULL_SPAN` (shared, allocation-free) when disabled.
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, name, category, meta)

    def begin(self, name: str, category: str = "", meta: dict | None = None) -> int:
        """Open a span without a `with` block; pair with `end(index)`.

        For spans whose lifetime cannot nest lexically — e.g. a
        scheduler's `tuning_period` span opened in one solver step and
        closed forty steps later. The LIFO discipline still holds:
        `end` must see this span as the innermost open one. Returns -1
        when disabled (safe to pass straight back to `end`).
        """
        if not self.enabled:
            return -1
        return self._open(name, category, meta)

    def end(self, index: int) -> None:
        """Close a span opened with `begin` (no-op for index -1)."""
        if not self.enabled or index < 0:
            return
        self._close(index)

    def instant(self, name: str, category: str = "", **meta) -> None:
        """Record a point event (fault, checkpoint, rollback...)."""
        if not self.enabled:
            return
        self.events.append(
            {"name": name, "category": category, "t_s": self.now(), **meta}
        )

    def _notify(self, t: float) -> None:
        if not self._listeners:
            return
        leaf = self.spans[self._stack[-1]] if self._stack else None
        for listener in self._listeners:
            listener.on_interval(t, leaf)

    def _open(self, name: str, category: str, meta: dict | None) -> int:
        t = self.now()
        self._notify(t)
        index = len(self.spans)
        parent = self._stack[-1] if self._stack else -1
        self.spans.append(
            Span(
                name=name,
                category=category,
                t0_s=t,
                index=index,
                parent=parent,
                depth=len(self._stack),
                meta=meta,
            )
        )
        self._stack.append(index)
        return index

    def _close(self, index: int) -> None:
        t = self.now()
        self._notify(t)
        if not self._stack or self._stack[-1] != index:
            raise RuntimeError(
                f"span close out of order: closing #{index}, open stack {self._stack}"
            )
        self._stack.pop()
        self.spans[index].t1_s = t

    def finish(self) -> None:
        """Close the trace: flush listeners up to `now()` (idempotent)."""
        if not self.enabled or self._finished:
            return
        t = self.now()
        self._notify(t)
        for listener in self._listeners:
            on_finish = getattr(listener, "on_finish", None)
            if on_finish is not None:
                on_finish(t)
        self._finished = True

    # -- aggregation -------------------------------------------------------------

    def inclusive_energy(self) -> list[tuple[float, float]]:
        """(cpu_j, gpu_j) per span including all descendants.

        Children always carry a larger index than their parent (spans
        are appended at open time), so one reverse pass rolls leaves up.
        """
        incl = [[s.cpu_j, s.gpu_j] for s in self.spans]
        for i in range(len(self.spans) - 1, -1, -1):
            p = self.spans[i].parent
            if p >= 0:
                incl[p][0] += incl[i][0]
                incl[p][1] += incl[i][1]
        return [(c, g) for c, g in incl]

    def phase_table(self, category: str | None = None) -> dict[str, dict[str, float]]:
        """Aggregate spans by name: seconds, calls, inclusive joules.

        Restricted to `category` when given (e.g. "phase" for the
        force/cg breakdown). Nested same-name spans are counted once at
        their outermost occurrence to keep seconds additive.
        """
        incl = self.inclusive_energy()
        out: dict[str, dict[str, float]] = {}
        for s in self.spans:
            if category is not None and s.category != category:
                continue
            # Skip if an ancestor carries the same name (avoid double count).
            p = s.parent
            shadowed = False
            while p >= 0:
                if self.spans[p].name == s.name:
                    shadowed = True
                    break
                p = self.spans[p].parent
            if shadowed:
                continue
            row = out.setdefault(
                s.name, {"seconds": 0.0, "calls": 0, "cpu_j": 0.0, "gpu_j": 0.0}
            )
            row["seconds"] += s.duration_s
            row["calls"] += 1
            row["cpu_j"] += incl[s.index][0]
            row["gpu_j"] += incl[s.index][1]
        return out

    def leaf_energy_table(self) -> dict[str, dict[str, float]]:
        """Leaf-attributed joules aggregated by span name.

        Because the sampler credits every elapsed interval to exactly
        one leaf, the rows of this table sum to the sampler's total
        integrated energy up to the idle time metered outside any span —
        the per-phase accounting the paper's Figures 14-16 are built
        from. Time a `step` span spends outside its force/cg children is
        the solver's "other" phase.

        Each row also carries `seconds` of *self* time (span duration
        minus its children's) — the wall time the leaf attribution
        corresponds to, so joules / seconds is the phase's average power.
        """
        child_s = [0.0] * len(self.spans)
        for s in self.spans:
            if s.parent >= 0:
                child_s[s.parent] += s.duration_s
        out: dict[str, dict[str, float]] = {}
        for s in self.spans:
            self_s = max(s.duration_s - child_s[s.index], 0.0)
            if s.cpu_j == 0.0 and s.gpu_j == 0.0 and self_s == 0.0:
                continue
            row = out.setdefault(
                s.name, {"seconds": 0.0, "cpu_j": 0.0, "gpu_j": 0.0}
            )
            row["seconds"] += self_s
            row["cpu_j"] += s.cpu_j
            row["gpu_j"] += s.gpu_j
        return out
