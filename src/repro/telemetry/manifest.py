"""`RunManifest`: the machine-readable summary of one solver run.

One JSON-serializable record tying together what the run was (problem +
`RunConfig`), what it did (steps, energy conservation, workload
counters), where the wall time went (phase table), where the joules
went (per-phase energy from the `CounterSampler`), and what resilience
machinery fired (the `RecoveryReport`). `repro run --json` prints it,
`repro.api.run` returns it on every `RunReport`, and benchmark /
EXPERIMENTS.md generation consumes it instead of re-deriving ad-hoc
summaries per script.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field

__all__ = ["RunManifest", "FleetManifest"]


@dataclass
class RunManifest:
    """Structured summary of a run (see module docstring)."""

    problem: str
    config: dict
    steps: int
    t_final: float
    reached_t_final: bool
    energy_initial: float
    energy_final: float
    energy_drift: float
    workload: dict = field(default_factory=dict)
    phases: dict = field(default_factory=dict)
    energy: dict | None = None
    recovery: dict | None = None
    telemetry: dict | None = None
    solver: dict = field(default_factory=dict)
    version: str = ""
    timestamp: str = ""

    @classmethod
    def from_run(
        cls,
        problem,
        config,
        result,
        recovery=None,
        tracer=None,
        sampler=None,
        solver_info: dict | None = None,
    ) -> "RunManifest":
        """Assemble the manifest from run artifacts.

        `config` is a `RunConfig` (or dict), `result` a `RunResult`,
        `recovery` an optional `RecoveryReport`, `tracer`/`sampler` the
        optional telemetry pair.
        """
        from repro.version import __version__

        e0 = result.energy_history[0]
        e1 = result.energy_history[-1]
        cfg_dict = (
            dataclasses.asdict(config)
            if dataclasses.is_dataclass(config)
            else dict(config or {})
        )
        workload = dataclasses.asdict(result.workload)
        phases = {}
        timers = getattr(result, "timers", None)
        if solver_info and "phase_timings" in solver_info:
            phases = solver_info.pop("phase_timings")
        elif timers is not None:
            phases = timers.to_dict()
        energy = None
        telemetry = None
        if tracer is not None and tracer.enabled:
            by_span = tracer.leaf_energy_table()
            attributed = sum(r["cpu_j"] + r["gpu_j"] for r in by_span.values())
            phase_energy = {}
            for name, row in tracer.phase_table(category="phase").items():
                if name in ("force", "cg"):
                    phase_energy[name] = row["cpu_j"] + row["gpu_j"]
            phase_energy["other"] = attributed - sum(phase_energy.values())
            energy = {
                "by_span_j": by_span,
                "phases_j": phase_energy,
                "attributed_j": attributed,
            }
            if sampler is not None:
                energy["cpu_j"] = sampler.cpu_energy_j
                energy["gpu_j"] = sampler.gpu_energy_j
                energy["total_j"] = sampler.total_energy_j
                # Idle joules metered while no span was open (setup,
                # teardown) — total_j == attributed_j + unattributed_j.
                energy["unattributed_j"] = sampler.total_energy_j - attributed
                telemetry = sampler.describe()
                telemetry["events"] = len(tracer.events)
        recovery_dict = None
        if recovery is not None:
            recovery_dict = dataclasses.asdict(recovery)
        return cls(
            problem=getattr(problem, "name", str(problem)),
            config=cfg_dict,
            steps=result.steps,
            t_final=float(result.state.t),
            reached_t_final=bool(result.reached_t_final),
            energy_initial=float(e0.total),
            energy_final=float(e1.total),
            energy_drift=float(e1.total - e0.total),
            workload=workload,
            phases=phases,
            energy=energy,
            recovery=recovery_dict,
            telemetry=telemetry,
            solver=solver_info or {},
            version=__version__,
            timestamp=time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        )

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-serializable)."""
        return dataclasses.asdict(self)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON rendering — what `repro run --json` prints."""
        return json.dumps(self.to_dict(), indent=indent, default=float)

    def summary(self) -> str:
        """Short human-readable digest."""
        lines = [
            f"{self.problem}: {self.steps} steps to t={self.t_final:g} "
            f"({'complete' if self.reached_t_final else 'stopped early'})",
            f"energy drift {self.energy_drift:+.3e}",
        ]
        if self.phases:
            top = sorted(
                self.phases.items(), key=lambda kv: -kv[1].get("seconds", 0.0)
            )[:4]
            lines.append(
                "phases: "
                + "  ".join(f"{k} {v['seconds']:.3f}s" for k, v in top)
            )
        if self.energy is not None:
            ph = self.energy.get("phases_j", {})
            lines.append(
                "energy: "
                + "  ".join(f"{k} {v:.1f}J" for k, v in ph.items())
                + f"  (total {self.energy.get('total_j', self.energy['attributed_j']):.1f}J)"
            )
        if self.recovery:
            lines.append(
                f"recovery: {len(self.recovery.get('faults', []))} faults, "
                f"{self.recovery.get('rollbacks', 0)} rollbacks"
            )
        return "\n".join(lines)


@dataclass
class FleetManifest:
    """Fleet-wide telemetry rollup from `repro.service`.

    The service-level counterpart of `RunManifest`: where a run
    manifest describes one solve, the fleet manifest aggregates a whole
    job population — throughput (jobs/s), latency percentiles, joules
    per metered job, and the robustness counters (shed / retried /
    degraded / cached / recovered) plus per-backend breaker histories.
    Built from `SimulationFleet.rollup()` and exported on the same
    JSON manifest path telemetry uses for runs.
    """

    jobs: dict = field(default_factory=dict)
    throughput_jobs_per_s: float = 0.0
    latency_s: dict = field(default_factory=dict)
    energy: dict = field(default_factory=dict)
    tuning: dict = field(default_factory=dict)
    breakers: dict = field(default_factory=dict)
    queue: dict = field(default_factory=dict)
    arena: dict = field(default_factory=dict)
    results_cached: int = 0
    version: str = ""
    timestamp: str = ""

    @classmethod
    def from_rollup(cls, rollup: dict) -> "FleetManifest":
        from repro.version import __version__

        known = {f.name for f in dataclasses.fields(cls)}
        return cls(
            **{k: v for k, v in rollup.items() if k in known},
            version=__version__,
            timestamp=time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=float)

    def write(self, path) -> None:
        """Atomically write the manifest JSON (temp + `os.replace`)."""
        import os
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp")
        try:
            tmp.write_text(self.to_json() + "\n", encoding="utf-8")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def summary(self) -> str:
        """Short human-readable digest (what `repro serve` prints)."""
        j = self.jobs
        lat = self.latency_s
        lines = [
            f"fleet: {j.get('completed', 0)}/{j.get('submitted', 0)} jobs "
            f"completed at {self.throughput_jobs_per_s:.2f} jobs/s "
            f"(p50 {lat.get('p50', 0.0):.3f}s, p99 {lat.get('p99', 0.0):.3f}s)",
            f"robustness: {j.get('shed', 0)} shed, {j.get('retries', 0)} "
            f"retries, {j.get('timeouts', 0)} timeouts, "
            f"{j.get('degraded', 0)} degraded, {j.get('cached', 0)} cached, "
            f"{j.get('recovered', 0)} recovered",
        ]
        if self.energy.get("metered_jobs"):
            lines.append(
                f"energy: {self.energy['joules_per_job']:.1f} J/job over "
                f"{self.energy['metered_jobs']} metered jobs"
            )
        if self.tuning.get("campaigns") or self.tuning.get("warm_starts"):
            last = self.tuning.get("last") or {}
            lines.append(
                f"tuning: {self.tuning.get('campaigns', 0)} campaigns, "
                f"{self.tuning.get('warm_starts', 0)} warm starts"
                + (
                    f" (last: {last.get('objective')}/{last.get('strategy')}, "
                    f"{last.get('evaluations')} evaluations)"
                    if last else ""
                )
            )
        for name, br in self.breakers.items():
            lines.append(
                f"breaker[{name}]: {br['state']} "
                f"({len(br.get('transitions', []))} transitions)"
            )
        return "\n".join(lines)
