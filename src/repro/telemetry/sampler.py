"""Simulated RAPL/NVML counter sampling, attributed to open spans.

The paper instruments real runs by polling RAPL (CPU package + DRAM)
and NVML (GPU board) counters at a fixed cadence while kernels execute,
then correlating the power timeline with kernel phases (Section 5.1-5.2,
Figures 14-16). `CounterSampler` is this repo's analogue: attached to a
`Tracer`, it observes every span transition, integrates the simulated
power models (`repro.cpu.core_model`, `repro.gpu.specs` idle levels)
over each interval, and attributes the joules to whichever span was
open — so per-kernel / per-phase energy breakdowns come out of *real*
solver runs instead of standalone modelled benchmarks.

Attribution is exact piecewise-constant integration at span boundaries
(per-phase totals sum to the power-model integral identically); the
configured cadence only controls the granularity of the emitted counter
*samples* (the JSONL / Chrome-trace power curves), mirroring how the
real MSRs update at ~1 ms regardless of when phases begin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core_model import CPUExecutionModel
from repro.cpu.specs import CPUSpec
from repro.gpu.specs import GPUSpec

__all__ = ["CounterSample", "CounterSampler", "DEFAULT_PHASE_UTILIZATION"]

# Busy-core fraction of the CPU package while a span of the given name
# (or, as a fallback, category) is the innermost open span. The solver's
# numeric phases saturate the core; the "other" remainder (a `step` or
# `stage` span with no phase child open: assembly, state updates, energy
# RHS) keeps the core busy but at lower intensity; bookkeeping spans and
# idle time sit at the idle level — exactly the attribution question
# "Racing to Idle" shows can flip energy conclusions.
DEFAULT_PHASE_UTILIZATION = {
    "force": 1.0,
    "cg": 1.0,
    "step": 0.6,
    "stage": 0.6,
    "initialize": 0.6,
    "run": 0.15,
    "category:kernel": 1.0,
    "category:phase": 1.0,
    "category:executor": 1.0,
    None: 0.0,  # no span open: process idle
}


@dataclass(frozen=True)
class CounterSample:
    """One cadence reading of the simulated counters (watts)."""

    t_s: float
    cpu_w: float
    gpu_w: float


class CounterSampler:
    """Plays the RAPL/NVML poller role over a live tracer.

    Parameters
    ----------
    cpu : `CPUSpec` or catalog name; powers the package + DRAM model.
    gpu : optional `GPUSpec` or catalog name. A CPU-hosted NumPy run
        never busies the GPU, so the board contributes its *idle* power
        — include it to account a hybrid node honestly, omit it (None)
        to meter the CPU alone like the paper's Figure 14.
    period_s : counter sample cadence (RAPL/NVML update ~1 ms).
    packages : CPU packages on the metered node.
    utilization : overrides for `DEFAULT_PHASE_UTILIZATION`.
    max_samples : hard cap on stored cadence samples (long runs degrade
        to span-boundary samples instead of growing without bound).
    """

    def __init__(
        self,
        cpu: CPUSpec | str = "E5-2670",
        gpu: GPUSpec | str | None = None,
        period_s: float = 1e-3,
        packages: int = 1,
        utilization: dict | None = None,
        max_samples: int = 200_000,
    ):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if packages < 1:
            raise ValueError("packages must be >= 1")
        if isinstance(cpu, str):
            from repro.cpu import get_cpu

            cpu = get_cpu(cpu)
        if isinstance(gpu, str):
            from repro.gpu import get_gpu

            gpu = get_gpu(gpu)
        self.cpu = cpu
        self.gpu = gpu
        self.period_s = period_s
        self.packages = packages
        self.utilization = dict(DEFAULT_PHASE_UTILIZATION)
        if utilization:
            self.utilization.update(utilization)
        self.max_samples = max_samples
        self._model = CPUExecutionModel(cpu)
        self.samples: list[CounterSample] = []
        self.cpu_energy_j = 0.0
        self.gpu_energy_j = 0.0
        self._last_t: float | None = None
        self._next_sample_t = 0.0

    # -- power mapping -----------------------------------------------------------

    def utilization_for(self, span) -> float:
        """Busy fraction for the innermost open span (None = idle)."""
        if span is None:
            return self.utilization[None]
        if span.name in self.utilization:
            return self.utilization[span.name]
        return self.utilization.get(f"category:{span.category}", 0.5)

    def power_for(self, span) -> tuple[float, float]:
        """(cpu_w, gpu_w) drawn while `span` is the open leaf."""
        u = self.utilization_for(span)
        cpu_w = self.packages * (
            self._model.package_power(u) + self._model.dram_power(u)
        )
        gpu_w = self.gpu.idle_w if self.gpu is not None else 0.0
        return cpu_w, gpu_w

    # -- tracer listener protocol ------------------------------------------------

    def attach_at(self, t: float) -> None:
        """Called by `Tracer.add_listener`: start metering at time t."""
        self._last_t = t
        self._next_sample_t = t

    def on_interval(self, t: float, leaf) -> None:
        """Integrate power over [last transition, t) under `leaf`."""
        if self._last_t is None:
            self._last_t = t
            self._next_sample_t = t
            return
        dt = t - self._last_t
        if dt <= 0:
            return
        cpu_w, gpu_w = self.power_for(leaf)
        self.cpu_energy_j += cpu_w * dt
        self.gpu_energy_j += gpu_w * dt
        if leaf is not None:
            leaf.cpu_j += cpu_w * dt
            leaf.gpu_j += gpu_w * dt
        # Cadence samples inside the interval (the Figure 14/16 curves).
        while (
            self._next_sample_t < t and len(self.samples) < self.max_samples
        ):
            self.samples.append(CounterSample(self._next_sample_t, cpu_w, gpu_w))
            self._next_sample_t += self.period_s
        if self._next_sample_t < t:  # cap hit: stay aligned, stop storing
            import math

            self._next_sample_t = (
                math.ceil(t / self.period_s) * self.period_s
            )
        self._last_t = t

    def on_finish(self, t: float) -> None:
        """Final catch-up at trace end (idle since the last span)."""
        self.on_interval(t, None)

    # -- queries -------------------------------------------------------------------

    @property
    def total_energy_j(self) -> float:
        """Integrated node energy — the reference every per-span
        attribution must sum back to."""
        return self.cpu_energy_j + self.gpu_energy_j

    def describe(self) -> dict:
        """Manifest-ready summary of the metering configuration."""
        return {
            "cpu": self.cpu.name,
            "gpu": self.gpu.name if self.gpu is not None else None,
            "packages": self.packages,
            "period_s": self.period_s,
            "samples": len(self.samples),
            "cpu_energy_j": self.cpu_energy_j,
            "gpu_energy_j": self.gpu_energy_j,
        }
