"""`DistributedBackend`: the simulated-MPI layer as an execution backend.

The paper's Section 3.4 claim is that the MPI level and the CPU/GPU
corner-force level are independent, composable layers. This module is
that composition for the repro: `RunConfig(ranks=N, backend=<any>)`
builds one ordinary `LagrangianHydroSolver` whose backend is a
`DistributedBackend` wrapping N per-rank *node* backends (cpu-serial /
cpu-fused / cpu-parallel / hybrid). The solver's time loop, integrator,
telemetry and resilience hooks are all the standard ones — the
distributed layer only changes how the corner force is evaluated and
how the mass operator is applied:

- corner forces: each rank's node backend evaluates its own zones
  (`compute_local`), split into *interface* zones (touching shared
  dofs) and *interior* zones. The interface-dof momentum-RHS exchange
  is posted as a nonblocking `iallreduce_sum` between the two phases,
  so interior-zone evaluation hides the (modeled) transfer when
  `overlap` is on. Physics is bitwise identical either way — only the
  `CommLedger` exposed/hidden split moves.
- time step: rank-local minima combined through `iallreduce_min`.
- momentum PCG: the mass matrix applies as the group-sum of rank-local
  operators (`DistributedMomentumSolver`).

Resilience routes through the same object (`exclude_rank` rebuilds the
partition; `swap_node` replaces one rank's node backend after a sticky
device fault), and the in-band scheduler drives all hybrid nodes at
once through the `_HybridFleet` tuning target.

Two rank-stepping modes share this contract (`rank_step`):

- **loop** — the reference: one `compute_local` per rank per phase, one
  Python-level partial per rank. Exact but O(P) Python work per force
  evaluation; the mode hybrid nodes use (their pricing is per-call).
- **vectorized** — all ranks' interface zones evaluated in one
  rank-major `compute_local` call (ditto interior), per-rank interface
  partials accumulated by `np.bincount` into a (nranks, n_iface, dim)
  stack and exchanged through one `iallreduce_sum_stacked`, per-rank dt
  minima by `np.minimum.at` + `iallreduce_min_batch`, and the momentum
  matvec as one global CSR apply with per-rank interface partials from
  the interface-zone mass blocks. Collective count, payload sizes and
  therefore the priced `CommLedger` are identical to loop mode, and the
  accumulation orders are arranged to match loop mode's — the force
  phase is bit-compatible, the momentum operator agrees to FP
  reordering. This is what lets the functional layer step O(100-1000)
  simulated ranks in seconds and reproduce the paper's Figs 12-13
  weak/strong curves measured, not just modeled.

Elasticity: `resize_ranks` repartitions to a new rank count mid-run
(deterministic RCB on the initial zone centroids, traffic/ledger carried
over, a `rank_resize` trace instant emitted), and a `rank_schedule`
("step:ranks,step:ranks,...") drives resizes from the solver's step
hook — grow 4->8 or shrink 8->3 under a running job, building on the
same rebuild path `exclude_rank` uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hydro.corner_force import ForceResult
from repro.hydro.momentum import MomentumSolver
from repro.linalg.csr import CSRMatrix
from repro.runtime.groups import (
    DofGroups,
    build_dof_groups,
    interface_dofs,
    split_interface_zones,
)
from repro.runtime.mpi_sim import SimulatedComm

__all__ = [
    "DistributedBackend",
    "DistributedMomentumSolver",
    "VectorizedDistributedMomentumSolver",
]


def _parse_rank_schedule(schedule: "str | None") -> dict[int, int]:
    """Parse "step:ranks,step:ranks,..." into {step: nranks}."""
    if not schedule:
        return {}
    out: dict[int, int] = {}
    for item in str(schedule).split(","):
        item = item.strip()
        if not item:
            continue
        try:
            step_s, ranks_s = item.split(":")
            step, ranks = int(step_s), int(ranks_s)
        except ValueError:
            raise ValueError(
                f"bad rank_schedule entry '{item}' (want 'step:ranks', e.g. '10:8')"
            ) from None
        if step < 1 or ranks < 1:
            raise ValueError(f"rank_schedule entry '{item}': step and ranks must be >= 1")
        if step in out:
            raise ValueError(f"rank_schedule repeats step {step}")
        out[step] = ranks
    return out


@dataclass
class _RankData:
    """One simulated rank: its zones, mass share and node backend.

    In vectorized mode `mass_local` is None (the momentum operator works
    from the global matrix plus the interface-zone blocks in `_VecPlan`)
    and every rank shares the primary node backend.
    """

    zones: np.ndarray
    interface_zones: np.ndarray
    interior_zones: np.ndarray
    mass_local: "CSRMatrix | None"
    node: object


@dataclass
class _VecPlan:
    """Precomputed index machinery for the vectorized rank step.

    Built once per partition. `ifz`/`inz` are the interface/interior
    zones of *all* ranks concatenated rank-major (so one `compute_local`
    per phase covers every rank, and per-dof accumulation order matches
    the per-rank loop). `scat_idx` maps each (zone-dof) entry that lands
    on an interface dof to its flat (rank, iface-position) slot;
    `scat_src` selects the matching rows of the zone-local RHS. The
    interface-zone mass blocks power the momentum matvec's per-rank
    interface partials without per-rank CSR matrices.
    """

    ifz: np.ndarray        # interface zones, rank-major concat
    inz: np.ndarray        # interior zones, rank-major concat
    ifz_rank: np.ndarray   # rank of each interface zone
    inz_rank: np.ndarray   # rank of each interior zone
    iface_dofs: np.ndarray  # the shared (interface) dof ids
    n_iface: int
    scat_idx: np.ndarray   # flat rank * n_iface + iface_pos, masked entries
    scat_src: np.ndarray   # rows into (n_ifz * ndof_per_zone) flattened arrays
    ldof_ifz: np.ndarray   # (n_ifz, ndof_per_zone) dof map of interface zones
    mass_blocks: np.ndarray  # (n_ifz, ndz, ndz) interface-zone mass blocks


class VectorizedDistributedMomentumSolver(MomentumSolver):
    """Momentum PCG for the vectorized rank-stepping mode.

    The operator applies the *global* mass matrix once (exact at private
    dofs, where a single rank owns every contribution), then replaces
    the interface-dof rows with a genuine sum of per-rank partials —
    each rank's contribution contracted from its interface-zone mass
    blocks and exchanged through one stacked collective priced at the
    loop mode's payload (a full (ndof,) vector per rank), so the
    `CommLedger` agrees between modes.
    """

    def __init__(self, mass, bc, plan, nranks, comm, tol=1e-14, maxiter=None):
        super().__init__(mass, bc, tol=tol, maxiter=maxiter)
        self.plan = plan
        self.nranks = nranks
        self.comm = comm

    def matvec(self, x: np.ndarray) -> np.ndarray:
        y = self.mass.matvec(x)
        p = self.plan
        contrib = np.einsum(
            "zij,zj->zi", p.mass_blocks, x[p.ldof_ifz], optimize=True
        ).ravel()
        stacked = np.bincount(
            p.scat_idx, weights=contrib[p.scat_src],
            minlength=self.nranks * p.n_iface,
        ).reshape(self.nranks, p.n_iface)
        iface_sum = self.comm.wait(
            self.comm.iallreduce_sum_stacked(stacked, nbytes_each=x.nbytes)
        )
        y[p.iface_dofs] = iface_sum
        return y


class DistributedMomentumSolver(MomentumSolver):
    """Momentum PCG whose operator is the sum of rank-local matrices.

    Same preconditioner, tolerances and eliminated-BC handling as the
    serial `MomentumSolver`; only `matvec` changes — every application
    is a group sum over the ranks' local mass shares, priced and
    accounted by the communicator.
    """

    def __init__(self, mass, bc, rank_masses, comm, tol=1e-14, maxiter=None):
        super().__init__(mass, bc, tol=tol, maxiter=maxiter)
        self.rank_masses = list(rank_masses)
        self.comm = comm

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.comm.allreduce_sum([m.matvec(x) for m in self.rank_masses])


class _HybridFleet:
    """Scheduler view of N hybrid node backends as one tuning target.

    The in-band scheduler tunes kernels and balances the CPU/GPU split
    against rank 0's device model (all ranks simulate the same
    hardware) and broadcasts every decision to the whole fleet — the
    paper's per-task autotuner converging once per architecture, not
    once per rank. `name` stays "hybrid" so `TuningCache` keys are
    shared with single-task hybrid runs.
    """

    name = "hybrid"

    def __init__(self, nodes):
        self.nodes = list(nodes)

    @property
    def fe_cfg(self):
        return self.nodes[0].fe_cfg

    @property
    def gpu(self):
        return self.nodes[0].gpu

    def gpu_time_s(self, ratio: float) -> float:
        return self.nodes[0].gpu_time_s(ratio)

    def cpu_time_s(self, share: float) -> float:
        return self.nodes[0].cpu_time_s(share)

    def set_ratio(self, ratio: float) -> None:
        for node in self.nodes:
            node.set_ratio(ratio)

    def apply_selection(self, selection) -> None:
        for node in self.nodes:
            node.apply_selection(selection)

    def apply_runtime(self, fusion: str, chunk: int) -> None:
        for node in self.nodes:
            node.apply_runtime(fusion, chunk)

    def measure_candidate(self, params: dict):
        # All ranks model identical hardware, so rank 0 prices for the fleet.
        return self.nodes[0].measure_candidate(params)


class DistributedBackend:
    """Simulated-MPI execution over per-rank node backends.

    Parameters
    ----------
    nranks : simulated ranks (>= 1).
    node : registry name of the per-rank node backend
        ("cpu-serial" / "cpu-fused" / "cpu-parallel" / "hybrid").
    node_kwargs : forwarded to each node backend's constructor.
    zone_rank : optional explicit zone -> rank map (default: RCB).
    overlap : overlap the interface-dof exchange with interior-zone
        evaluation (pricing only; physics is bitwise identical).
    rank_step : "loop", "vectorized", or "auto" (default). Auto picks
        vectorized for cpu-* node backends and loop for hybrid nodes
        (the hybrid pricing meters individual `compute_local` calls).
        See the module docstring for the contract between the modes.
    rank_schedule : optional "step:ranks,step:ranks,..." elastic-rank
        schedule, e.g. "10:8,20:3" grows to 8 ranks after step 10 and
        shrinks to 3 after step 20 (driven by the solver's step hook).
    fault_injector : optional injector wired into the communicator.
    cost_model : optional `CommCostModel` pricing the communicator.
    """

    name = "distributed"

    def __init__(
        self,
        nranks: int,
        node: str = "cpu-fused",
        node_kwargs: dict | None = None,
        zone_rank: np.ndarray | None = None,
        overlap: bool = True,
        rank_step: str = "auto",
        rank_schedule: str | None = None,
        fault_injector=None,
        cost_model=None,
    ):
        if nranks < 1:
            raise ValueError("need at least one rank")
        if rank_step not in ("auto", "loop", "vectorized"):
            raise ValueError(
                f"unknown rank_step '{rank_step}' (choose 'auto', 'loop' or 'vectorized')"
            )
        self.nranks = nranks
        self.node_name = node
        self.node_kwargs = dict(node_kwargs or {})
        self.overlap = bool(overlap)
        self.rank_step = rank_step
        self.rank_schedule = _parse_rank_schedule(rank_schedule)
        self._zone_rank_init = zone_rank
        self._initial_nranks = nranks
        self.fault_injector = fault_injector
        self.cost_model = cost_model
        self.solver = None
        self.engine = None
        self.node0 = None
        self.comm: SimulatedComm | None = None
        self.groups: DofGroups | None = None
        self.zone_rank: np.ndarray | None = None
        self.ranks: list[_RankData] = []
        self.momentum: "MomentumSolver | None" = None
        self._iface_dofs: np.ndarray | None = None
        self._vectorized = False
        self._vec_plan: _VecPlan | None = None
        self._schedule_fired: set[int] = set()
        #: (step, nranks, reason) transitions, surfaced in the manifest.
        self.rank_history: list[dict] = []

    # -- Lifecycle -----------------------------------------------------------

    def attach(self, solver) -> None:
        """Attach the primary node backend (engine construction)."""
        if self.node0 is not None:
            raise RuntimeError("backend 'distributed' is already attached")
        from repro.backends.base import make_backend

        self.solver = solver
        self.node0 = make_backend(self.node_name, **self.node_kwargs)
        self.node0.attach(solver)
        self.engine = self.node0.engine

    def finalize(self, solver) -> None:
        """Build the partition-derived machinery (post-construction).

        Needs the solver's mass matrices, boundary conditions and
        integrator, so it runs as the solver's last construction step:
        partition, communicator, dof groups, rank-local mass shares,
        per-rank node backends, and the distributed momentum solver
        (installed on the solver *and* its integrator).
        """
        mesh = solver.problem.mesh
        zone_rank = self._zone_rank_init
        if zone_rank is None:
            from repro.fem.partition import partition_rcb

            centroids = mesh.zone_vertex_coords().mean(axis=1)
            zone_rank = partition_rcb(centroids, self.nranks)
        self.zone_rank = np.asarray(zone_rank, dtype=np.int64)
        if self.zone_rank.shape != (mesh.nzones,):
            raise ValueError("zone_rank must assign every zone")
        self.comm = SimulatedComm(
            self.nranks,
            fault_injector=self.fault_injector,
            cost_model=self.cost_model,
            tracer=solver.tracer,
        )
        self._vectorized = self._resolve_vectorized()
        self._build_partition(solver)
        self._install_momentum(solver)
        solver.integrator.assemble_fn = self._assemble_rhs

    def _resolve_vectorized(self) -> bool:
        if self.rank_step == "vectorized":
            return True
        if self.rank_step == "loop":
            return False
        # auto: hybrid nodes price per compute_local call, so they keep
        # the per-rank loop; pure-CPU nodes take the vectorized step.
        return self.node_name != "hybrid"

    def _install_momentum(self, solver) -> None:
        """(Re)build the distributed momentum operator for the mode."""
        if self._vectorized:
            self.momentum = VectorizedDistributedMomentumSolver(
                solver.mass_v,
                solver.bc,
                self._vec_plan,
                self.nranks,
                self.comm,
                tol=solver.options.pcg_tol,
                maxiter=solver.options.pcg_maxiter,
            )
        else:
            self.momentum = DistributedMomentumSolver(
                solver.mass_v,
                solver.bc,
                [r.mass_local for r in self.ranks],
                self.comm,
                tol=solver.options.pcg_tol,
                maxiter=solver.options.pcg_maxiter,
            )
        solver.momentum = self.momentum
        solver.integrator.momentum = self.momentum

    def _build_partition(self, solver) -> None:
        """(Re)build everything derived from the zone -> rank map."""
        self.groups = build_dof_groups(solver.kinematic, self.zone_rank)
        self._iface_dofs = interface_dofs(self.groups)
        splits = split_interface_zones(solver.kinematic, self.zone_rank, self.groups)
        if self._vectorized:
            # One shared node evaluates every rank's zones in two
            # rank-major batches; per-rank CSR shares are not built (the
            # momentum operator works from the global matrix + the
            # interface-zone blocks in the plan).
            nodes = [self.node0] * self.nranks
            masses = [None] * self.nranks
        else:
            nodes = self._make_nodes(solver)
            masses = [self._rank_mass(solver, r) for r in range(self.nranks)]
        self.ranks = [
            _RankData(
                zones=np.flatnonzero(self.zone_rank == r),
                interface_zones=splits[r][0],
                interior_zones=splits[r][1],
                mass_local=masses[r],
                node=nodes[r],
            )
            for r in range(self.nranks)
        ]
        self._vec_plan = self._build_vec_plan(solver) if self._vectorized else None

    def _build_vec_plan(self, solver) -> _VecPlan:
        """Precompute the rank-major index machinery (see `_VecPlan`)."""
        kin = solver.kinematic
        iface = self._iface_dofs
        n_iface = int(iface.size)
        ifz = np.concatenate(
            [r.interface_zones for r in self.ranks]
            or [np.empty(0, dtype=np.int64)]
        ).astype(np.int64, copy=False)
        inz = np.concatenate(
            [r.interior_zones for r in self.ranks]
            or [np.empty(0, dtype=np.int64)]
        ).astype(np.int64, copy=False)
        ifz_rank = np.repeat(
            np.arange(self.nranks, dtype=np.int64),
            [r.interface_zones.size for r in self.ranks],
        )
        inz_rank = np.repeat(
            np.arange(self.nranks, dtype=np.int64),
            [r.interior_zones.size for r in self.ranks],
        )
        # dof -> interface position (or -1 for private dofs).
        pos = np.full(kin.ndof, -1, dtype=np.int64)
        pos[iface] = np.arange(n_iface, dtype=np.int64)
        ldof_ifz = kin.ldof[ifz]
        posz = pos[ldof_ifz]  # (n_ifz, ndz)
        mask = (posz >= 0).ravel()
        scat_src = np.flatnonzero(mask)
        scat_idx = (ifz_rank[:, None] * n_iface + posz).ravel()[scat_src]
        # Interface-zone mass blocks (same assembly as `_rank_mass`,
        # restricted to the zones whose contributions cross ranks).
        basis = kin.element.tabulate(solver.quad.points)
        if ifz.size:
            geo = self.engine.geom_eval.evaluate_local(
                kin.gather(kin.node_coords)[ifz]
            )
            rho = self.engine.mass_qp[ifz] / geo.det
            w = solver.quad.weights[None, :] * rho * geo.det
            blocks = np.einsum("zk,ki,kj->zij", w, basis, basis, optimize=True)
        else:
            ndz = kin.ndof_per_zone
            blocks = np.zeros((0, ndz, ndz))
        return _VecPlan(
            ifz=ifz,
            inz=inz,
            ifz_rank=ifz_rank,
            inz_rank=inz_rank,
            iface_dofs=iface,
            n_iface=n_iface,
            scat_idx=scat_idx,
            scat_src=scat_src,
            ldof_ifz=ldof_ifz,
            mass_blocks=blocks,
        )

    def _make_nodes(self, solver) -> list:
        """One node backend per rank; rank 0 reuses the primary."""
        from repro.backends.base import make_backend

        nodes = [self.node0]
        for _ in range(1, self.nranks):
            nb = make_backend(self.node_name, **self.node_kwargs)
            nb.attach_node(solver, self.engine)
            nodes.append(nb)
        return nodes

    def _rank_mass(self, solver, rank: int) -> CSRMatrix:
        """Assemble the rank-local share of the kinematic mass matrix."""
        zones = np.flatnonzero(self.zone_rank == rank)
        basis = solver.kinematic.element.tabulate(solver.quad.points)
        geo = self.engine.geom_eval.evaluate_local(
            solver.kinematic.gather(solver.kinematic.node_coords)[zones]
        )
        rho = self.engine.mass_qp[zones] / geo.det  # = rho0 on the initial mesh
        w = solver.quad.weights[None, :] * rho * geo.det
        blocks = np.einsum("zk,ki,kj->zij", w, basis, basis, optimize=True)
        ldof = solver.kinematic.ldof[zones]
        ndz = solver.kinematic.ndof_per_zone
        rows = np.repeat(ldof, ndz, axis=1).ravel()
        cols = np.tile(ldof, (1, ndz)).ravel()
        return CSRMatrix.from_coo(
            rows, cols, blocks.ravel(), (solver.kinematic.ndof, solver.kinematic.ndof)
        )

    # -- The distributed corner force ----------------------------------------

    @property
    def force_fn(self):
        if self.node0 is None:
            raise RuntimeError("backend 'distributed' is not attached")
        return self._compute

    def compute_local(self, state, zone_ids):
        """Delegate a zone subset to the primary node backend."""
        return self.node0.compute_local(state, zone_ids)

    @staticmethod
    def _local_dt(result) -> float:
        return result.dt_est if result.points is not None else np.inf

    def _compute(self, state) -> ForceResult:
        """Two-phase distributed corner-force evaluation.

        Phase 1 evaluates every rank's *interface* zones and posts the
        shared-dof momentum-RHS exchange; phase 2 evaluates *interior*
        zones — with `overlap` on, while the exchange is (modeled as)
        in flight. The arithmetic is identical in both modes and in
        both phases; only where the `wait` lands differs, which is
        exactly the exposed-vs-hidden pricing split.
        """
        if self._vectorized:
            return self._compute_vectorized(state)
        return self._compute_loop(state)

    def _compute_vectorized(self, state) -> ForceResult:
        """The same two-phase evaluation, batched over the rank axis.

        One `compute_local` call per phase covers every rank's zones
        (rank-major order), per-rank interface partials land in a
        (nranks, n_iface, dim) stack via `np.bincount` — accumulation
        order per slot matches the loop mode's per-rank `np.add.at`, so
        the stacked rows are bit-equal — and the exchange is one
        `iallreduce_sum_stacked` priced exactly like loop mode's
        `iallreduce_sum`. Interior zones touch no interface dofs, so
        the global RHS scatter-add and the overwrite of the interface
        rows with the collective's sum reproduce the loop-mode RHS bit
        for bit (up to the node engine's batch-size sensitivity).
        """
        sol = self.solver
        kin = sol.kinematic
        ndof, dim = kin.ndof, kin.dim
        plan = self._vec_plan
        comm = self.comm

        # Phase 1: all interface zones, one batched evaluation.
        res_if = self.node0.compute_local(state, plan.ifz)
        if not res_if.valid:
            return ForceResult(None, None, None, 0.0, valid=False)
        stacked = np.zeros((self.nranks, plan.n_iface, dim))
        if plan.ifz.size:
            rhs_if = self.engine.force_times_one(res_if.Fz).reshape(-1, dim)
            for d in range(dim):
                stacked[..., d] = np.bincount(
                    plan.scat_idx,
                    weights=rhs_if[plan.scat_src, d],
                    minlength=self.nranks * plan.n_iface,
                ).reshape(self.nranks, plan.n_iface)
        req = comm.iallreduce_sum_stacked(stacked)
        if not self.overlap:
            iface_sum = comm.wait(req)

        # Phase 2: all interior zones — the hiding window when overlapping.
        res_in = self.node0.compute_local(state, plan.inz)
        if not res_in.valid:
            if self.overlap:
                comm.wait(req)
            return ForceResult(None, None, None, 0.0, valid=False)
        if self.overlap:
            iface_sum = comm.wait(req)

        # Momentum RHS: interface-zone then interior-zone scatter-adds
        # (rank-major, the loop mode's per-dof accumulation order), with
        # the interface rows taken from the collective.
        rhs = np.zeros((ndof, dim))
        if plan.ifz.size:
            np.add.at(rhs, plan.ldof_ifz.reshape(-1), rhs_if)
        if plan.inz.size:
            rhs_in = self.engine.force_times_one(res_in.Fz).reshape(-1, dim)
            np.add.at(rhs, kin.ldof[plan.inz].reshape(-1), rhs_in)
        rhs[plan.iface_dofs] = iface_sum

        # Per-rank dt minima over the rank axis, reduced as one batch of
        # scalar min-allreduces (pricing: one reduction, as in loop mode).
        per_rank_dt = np.full(self.nranks, np.inf)
        if plan.ifz.size:
            np.minimum.at(
                per_rank_dt, plan.ifz_rank,
                self.engine.estimate_dt_zones(res_if.points, res_if.geometry),
            )
        if plan.inz.size:
            np.minimum.at(
                per_rank_dt, plan.inz_rank,
                self.engine.estimate_dt_zones(res_in.points, res_in.geometry),
            )
        dt_req = comm.iallreduce_min_batch(per_rank_dt)

        Fz = np.empty(
            (kin.mesh.nzones, kin.ndof_per_zone, dim, sol.thermodynamic.ndof_per_zone)
        )
        if plan.ifz.size:
            Fz[plan.ifz] = res_if.Fz
        if plan.inz.size:
            Fz[plan.inz] = res_in.Fz
        dt = comm.wait(dt_req)

        result = ForceResult(Fz, None, None, float(dt), valid=True)
        result.rhs_mom = rhs
        return result

    def _compute_loop(self, state) -> ForceResult:
        """Reference per-rank loop (see `_compute`)."""
        sol = self.solver
        kin = sol.kinematic
        ndof, dim = kin.ndof, kin.dim
        iface = self._iface_dofs

        # Phase 1: interface zones, per rank.
        res_if = [r.node.compute_local(state, r.interface_zones) for r in self.ranks]
        if any(not res.valid for res in res_if):
            return ForceResult(None, None, None, 0.0, valid=False)
        partials = []
        for rank, res in zip(self.ranks, res_if):
            part = np.zeros((ndof, dim))
            if rank.interface_zones.size:
                rhs_z = self.engine.force_times_one(res.Fz)
                np.add.at(
                    part,
                    kin.ldof[rank.interface_zones].reshape(-1),
                    rhs_z.reshape(-1, dim),
                )
            partials.append(part)
        req = self.comm.iallreduce_sum([p[iface] for p in partials])
        if not self.overlap:
            iface_sum = self.comm.wait(req)

        # Phase 2: interior zones — the hiding window when overlapping.
        res_in = [r.node.compute_local(state, r.interior_zones) for r in self.ranks]
        if any(not res.valid for res in res_in):
            if self.overlap:
                self.comm.wait(req)
            return ForceResult(None, None, None, 0.0, valid=False)
        for rank, part, res in zip(self.ranks, partials, res_in):
            if rank.interior_zones.size:
                rhs_z = self.engine.force_times_one(res.Fz)
                np.add.at(
                    part,
                    kin.ldof[rank.interior_zones].reshape(-1),
                    rhs_z.reshape(-1, dim),
                )
        if self.overlap:
            iface_sum = self.comm.wait(req)

        # Momentum RHS: rank partials in rank order, interface dofs from
        # the collective (bitwise equal to the sequential sum).
        rhs = np.zeros((ndof, dim))
        for part in partials:
            rhs += part
        rhs[iface] = iface_sum

        # Global Fz (for the zone-local energy RHS) assembled from the
        # rank blocks while the min-dt reduction is in flight.
        dt_req = self.comm.iallreduce_min(
            [
                min(self._local_dt(a), self._local_dt(b))
                for a, b in zip(res_if, res_in)
            ]
        )
        Fz = np.empty(
            (kin.mesh.nzones, kin.ndof_per_zone, dim, sol.thermodynamic.ndof_per_zone)
        )
        for rank, a, b in zip(self.ranks, res_if, res_in):
            Fz[rank.interface_zones] = a.Fz
            Fz[rank.interior_zones] = b.Fz
        dt = self.comm.wait(dt_req)

        result = ForceResult(Fz, None, None, float(dt), valid=True)
        result.rhs_mom = rhs
        return result

    def _assemble_rhs(self, force) -> np.ndarray:
        """Integrator hook: the RHS was assembled during the force eval."""
        return force.rhs_mom

    # -- Scheduler / resilience hooks ----------------------------------------

    def tuning_target(self):
        """All-hybrid fleets tune as one; anything else has no target."""
        if self.ranks and all(r.node.name == "hybrid" for r in self.ranks):
            return _HybridFleet([r.node for r in self.ranks])
        return None

    def swap_node(self, name: str, rank: int) -> None:
        """Replace one rank's node backend (sticky device fault path).

        The other ranks keep their backends — the paper's failure model
        is per-task — and any in-band scheduler stops: its fleet no
        longer describes the hardware carrying the run.
        """
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range (nranks={self.nranks})")
        from repro.backends.base import make_backend

        if self._vectorized:
            # A per-rank node swap needs per-rank nodes: drop to the
            # loop mode (same physics, per-rank pricing) and rebuild.
            self._vectorized = False
            self._build_partition(self.solver)
            self._install_momentum(self.solver)
        nb = make_backend(name)
        old = self.ranks[rank].node
        same_flavour = getattr(nb, "fused", True) == getattr(old, "fused", True) and getattr(
            nb, "sumfact", False
        ) == getattr(old, "sumfact", False)
        if same_flavour:
            nb.attach_node(self.solver, self.engine)
        else:
            nb.attach_node(
                self.solver,
                self.solver._make_engine(
                    fused=nb.fused, sumfact=getattr(nb, "sumfact", False)
                ),
            )
        self.ranks[rank].node = nb
        old.close()
        sched = getattr(self.solver, "scheduler", None)
        if sched is not None:
            sched.reset()

    def exclude_rank(self, rank: int) -> None:
        """Degrade to `nranks - 1` ranks after a simulated rank failure.

        The dead rank's zones are dealt round-robin to the survivors
        and every partition-derived structure (communicator, dof
        groups, rank-local mass operators, node fleet) is rebuilt. The
        functional layer is partition-independent, so the physics
        continues unchanged up to floating-point reordering of the
        reductions. Traffic and ledger accounting carry over so a run's
        totals stay cumulative.
        """
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range (nranks={self.nranks})")
        if self.nranks == 1:
            raise ValueError("cannot exclude the last remaining rank")
        survivors = [r for r in range(self.nranks) if r != rank]
        zr = self.zone_rank.copy()
        failed_zones = np.flatnonzero(zr == rank)
        for i, z in enumerate(failed_zones):
            zr[z] = survivors[i % len(survivors)]
        remap = {old: new for new, old in enumerate(survivors)}
        self.zone_rank = np.asarray([remap[r] for r in zr], dtype=np.int64)
        self.nranks -= 1
        old_comm = self.comm
        self.comm = SimulatedComm(
            self.nranks,
            fault_injector=old_comm.fault_injector,
            cost_model=old_comm.cost_model,
            tracer=old_comm.tracer,
        )
        self.comm.traffic = old_comm.traffic
        self.comm.ledger = old_comm.ledger
        for r in self.ranks:
            if r.node is not self.node0:
                r.node.close()
        self._build_partition(self.solver)
        if self.momentum is not None:
            self._install_momentum(self.solver)
        self._record_transition("exclude")

    # -- Elasticity -----------------------------------------------------------

    def resize_ranks(self, new_nranks: int) -> None:
        """Repartition to `new_nranks` simulated ranks mid-run.

        Deterministic: the new partition is RCB over the *initial* zone
        centroids (the same rule the constructor uses), so a resize at a
        given step is a pure function of (mesh, new_nranks) and a resized
        run is bit-reproducible. Traffic and ledger accounting carry
        over, every partition-derived structure is rebuilt through the
        same path `exclude_rank` uses, and a `rank_resize` trace instant
        marks the transition in the Chrome trace.
        """
        if new_nranks < 1:
            raise ValueError("need at least one rank")
        if new_nranks == self.nranks:
            return
        mesh = self.solver.problem.mesh
        from repro.fem.partition import partition_rcb

        centroids = mesh.zone_vertex_coords().mean(axis=1)
        self.zone_rank = np.asarray(
            partition_rcb(centroids, new_nranks), dtype=np.int64
        )
        old_nranks = self.nranks
        self.nranks = new_nranks
        old_comm = self.comm
        self.comm = SimulatedComm(
            new_nranks,
            fault_injector=old_comm.fault_injector,
            cost_model=old_comm.cost_model,
            tracer=old_comm.tracer,
        )
        self.comm.traffic = old_comm.traffic
        self.comm.ledger = old_comm.ledger
        for r in self.ranks:
            if r.node is not self.node0:
                r.node.close()
        self._build_partition(self.solver)
        if self.momentum is not None:
            self._install_momentum(self.solver)
        self._record_transition("resize", old_nranks=old_nranks)

    def on_step(self, steps_done: int) -> None:
        """Solver per-step hook: fire any scheduled elastic resizes."""
        if not self.rank_schedule:
            return
        target = self.rank_schedule.get(int(steps_done))
        if target is not None and steps_done not in self._schedule_fired:
            self._schedule_fired.add(int(steps_done))
            self.resize_ranks(target)

    def _record_transition(self, reason: str, old_nranks: "int | None" = None) -> None:
        steps = getattr(getattr(self.solver, "workload", None), "steps", 0)
        self.rank_history.append(
            {"step": int(steps), "nranks": int(self.nranks), "reason": reason}
        )
        tracer = self.solver.tracer if self.solver is not None else None
        if tracer is not None:
            tracer.instant(
                "rank_resize" if reason != "exclude" else "rank_exclude",
                category="comm",
                step=int(steps),
                nranks=int(self.nranks),
                **({"from": int(old_nranks)} if old_nranks is not None else {}),
            )

    def reset(self) -> None:
        """Rewind to the constructed configuration (warm solver reuse).

        Restores the initial rank count/partition if a resize or
        exclusion moved it, and starts fresh traffic/ledger accounting
        so a pooled distributed solver re-runs bit-identically with
        per-job communication totals.
        """
        if self.comm is None:
            return  # not finalized yet (solver.__init__ calls reset first)
        if self.nranks != self._initial_nranks or self.rank_history:
            mesh = self.solver.problem.mesh
            zone_rank = self._zone_rank_init
            if zone_rank is None:
                from repro.fem.partition import partition_rcb

                centroids = mesh.zone_vertex_coords().mean(axis=1)
                zone_rank = partition_rcb(centroids, self._initial_nranks)
            self.zone_rank = np.asarray(zone_rank, dtype=np.int64)
            self.nranks = self._initial_nranks
            old_comm = self.comm
            self.comm = SimulatedComm(
                self.nranks,
                fault_injector=old_comm.fault_injector,
                cost_model=old_comm.cost_model,
                tracer=old_comm.tracer,
            )
            self._vectorized = self._resolve_vectorized()
            for r in self.ranks:
                if r.node is not self.node0:
                    r.node.close()
            self._build_partition(self.solver)
            if self.momentum is not None:
                self._install_momentum(self.solver)
        else:
            from repro.runtime.mpi_sim import CommLedger, _Traffic

            self.comm.traffic = _Traffic()
            self.comm.ledger = CommLedger()
            if self.momentum is not None:
                self.momentum.comm = self.comm
        self.rank_history = []
        self._schedule_fired = set()

    # -- Housekeeping --------------------------------------------------------

    def close(self) -> None:
        for r in self.ranks:
            if r.node is not self.node0:
                r.node.close()
        if self.node0 is not None:
            self.node0.close()

    def describe(self) -> dict:
        out = {
            "backend": self.name,
            "ranks": self.nranks,
            "node": self.node_name,
            "overlap": self.overlap,
            "rank_step": (
                ("vectorized" if self._vectorized else "loop")
                if self.comm is not None
                else self.rank_step
            ),
        }
        if self.rank_schedule:
            out["rank_schedule"] = dict(self.rank_schedule)
        if self.rank_history:
            out["rank_history"] = list(self.rank_history)
        if self.node0 is not None:
            out["node_detail"] = self.node0.describe()
        return out
