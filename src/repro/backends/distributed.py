"""`DistributedBackend`: the simulated-MPI layer as an execution backend.

The paper's Section 3.4 claim is that the MPI level and the CPU/GPU
corner-force level are independent, composable layers. This module is
that composition for the repro: `RunConfig(ranks=N, backend=<any>)`
builds one ordinary `LagrangianHydroSolver` whose backend is a
`DistributedBackend` wrapping N per-rank *node* backends (cpu-serial /
cpu-fused / cpu-parallel / hybrid). The solver's time loop, integrator,
telemetry and resilience hooks are all the standard ones — the
distributed layer only changes how the corner force is evaluated and
how the mass operator is applied:

- corner forces: each rank's node backend evaluates its own zones
  (`compute_local`), split into *interface* zones (touching shared
  dofs) and *interior* zones. The interface-dof momentum-RHS exchange
  is posted as a nonblocking `iallreduce_sum` between the two phases,
  so interior-zone evaluation hides the (modeled) transfer when
  `overlap` is on. Physics is bitwise identical either way — only the
  `CommLedger` exposed/hidden split moves.
- time step: rank-local minima combined through `iallreduce_min`.
- momentum PCG: the mass matrix applies as the group-sum of rank-local
  operators (`DistributedMomentumSolver`).

Resilience routes through the same object (`exclude_rank` rebuilds the
partition; `swap_node` replaces one rank's node backend after a sticky
device fault), and the in-band scheduler drives all hybrid nodes at
once through the `_HybridFleet` tuning target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hydro.corner_force import ForceResult
from repro.hydro.momentum import MomentumSolver
from repro.linalg.csr import CSRMatrix
from repro.runtime.groups import (
    DofGroups,
    build_dof_groups,
    interface_dofs,
    split_interface_zones,
)
from repro.runtime.mpi_sim import SimulatedComm

__all__ = ["DistributedBackend", "DistributedMomentumSolver"]


@dataclass
class _RankData:
    """One simulated rank: its zones, mass share and node backend."""

    zones: np.ndarray
    interface_zones: np.ndarray
    interior_zones: np.ndarray
    mass_local: CSRMatrix
    node: object


class DistributedMomentumSolver(MomentumSolver):
    """Momentum PCG whose operator is the sum of rank-local matrices.

    Same preconditioner, tolerances and eliminated-BC handling as the
    serial `MomentumSolver`; only `matvec` changes — every application
    is a group sum over the ranks' local mass shares, priced and
    accounted by the communicator.
    """

    def __init__(self, mass, bc, rank_masses, comm, tol=1e-14, maxiter=None):
        super().__init__(mass, bc, tol=tol, maxiter=maxiter)
        self.rank_masses = list(rank_masses)
        self.comm = comm

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.comm.allreduce_sum([m.matvec(x) for m in self.rank_masses])


class _HybridFleet:
    """Scheduler view of N hybrid node backends as one tuning target.

    The in-band scheduler tunes kernels and balances the CPU/GPU split
    against rank 0's device model (all ranks simulate the same
    hardware) and broadcasts every decision to the whole fleet — the
    paper's per-task autotuner converging once per architecture, not
    once per rank. `name` stays "hybrid" so `TuningCache` keys are
    shared with single-task hybrid runs.
    """

    name = "hybrid"

    def __init__(self, nodes):
        self.nodes = list(nodes)

    @property
    def fe_cfg(self):
        return self.nodes[0].fe_cfg

    @property
    def gpu(self):
        return self.nodes[0].gpu

    def gpu_time_s(self, ratio: float) -> float:
        return self.nodes[0].gpu_time_s(ratio)

    def cpu_time_s(self, share: float) -> float:
        return self.nodes[0].cpu_time_s(share)

    def set_ratio(self, ratio: float) -> None:
        for node in self.nodes:
            node.set_ratio(ratio)

    def apply_selection(self, selection) -> None:
        for node in self.nodes:
            node.apply_selection(selection)

    def apply_runtime(self, fusion: str, chunk: int) -> None:
        for node in self.nodes:
            node.apply_runtime(fusion, chunk)

    def measure_candidate(self, params: dict):
        # All ranks model identical hardware, so rank 0 prices for the fleet.
        return self.nodes[0].measure_candidate(params)


class DistributedBackend:
    """Simulated-MPI execution over per-rank node backends.

    Parameters
    ----------
    nranks : simulated ranks (>= 1).
    node : registry name of the per-rank node backend
        ("cpu-serial" / "cpu-fused" / "cpu-parallel" / "hybrid").
    node_kwargs : forwarded to each node backend's constructor.
    zone_rank : optional explicit zone -> rank map (default: RCB).
    overlap : overlap the interface-dof exchange with interior-zone
        evaluation (pricing only; physics is bitwise identical).
    fault_injector : optional injector wired into the communicator.
    cost_model : optional `CommCostModel` pricing the communicator.
    """

    name = "distributed"

    def __init__(
        self,
        nranks: int,
        node: str = "cpu-fused",
        node_kwargs: dict | None = None,
        zone_rank: np.ndarray | None = None,
        overlap: bool = True,
        fault_injector=None,
        cost_model=None,
    ):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = nranks
        self.node_name = node
        self.node_kwargs = dict(node_kwargs or {})
        self.overlap = bool(overlap)
        self._zone_rank_init = zone_rank
        self.fault_injector = fault_injector
        self.cost_model = cost_model
        self.solver = None
        self.engine = None
        self.node0 = None
        self.comm: SimulatedComm | None = None
        self.groups: DofGroups | None = None
        self.zone_rank: np.ndarray | None = None
        self.ranks: list[_RankData] = []
        self.momentum: DistributedMomentumSolver | None = None
        self._iface_dofs: np.ndarray | None = None

    # -- Lifecycle -----------------------------------------------------------

    def attach(self, solver) -> None:
        """Attach the primary node backend (engine construction)."""
        if self.node0 is not None:
            raise RuntimeError("backend 'distributed' is already attached")
        from repro.backends.base import make_backend

        self.solver = solver
        self.node0 = make_backend(self.node_name, **self.node_kwargs)
        self.node0.attach(solver)
        self.engine = self.node0.engine

    def finalize(self, solver) -> None:
        """Build the partition-derived machinery (post-construction).

        Needs the solver's mass matrices, boundary conditions and
        integrator, so it runs as the solver's last construction step:
        partition, communicator, dof groups, rank-local mass shares,
        per-rank node backends, and the distributed momentum solver
        (installed on the solver *and* its integrator).
        """
        mesh = solver.problem.mesh
        zone_rank = self._zone_rank_init
        if zone_rank is None:
            from repro.fem.partition import partition_rcb

            centroids = mesh.zone_vertex_coords().mean(axis=1)
            zone_rank = partition_rcb(centroids, self.nranks)
        self.zone_rank = np.asarray(zone_rank, dtype=np.int64)
        if self.zone_rank.shape != (mesh.nzones,):
            raise ValueError("zone_rank must assign every zone")
        self.comm = SimulatedComm(
            self.nranks,
            fault_injector=self.fault_injector,
            cost_model=self.cost_model,
            tracer=solver.tracer,
        )
        self._build_partition(solver)
        self.momentum = DistributedMomentumSolver(
            solver.mass_v,
            solver.bc,
            [r.mass_local for r in self.ranks],
            self.comm,
            tol=solver.options.pcg_tol,
            maxiter=solver.options.pcg_maxiter,
        )
        solver.momentum = self.momentum
        solver.integrator.momentum = self.momentum
        solver.integrator.assemble_fn = self._assemble_rhs

    def _build_partition(self, solver) -> None:
        """(Re)build everything derived from the zone -> rank map."""
        self.groups = build_dof_groups(solver.kinematic, self.zone_rank)
        self._iface_dofs = interface_dofs(self.groups)
        splits = split_interface_zones(solver.kinematic, self.zone_rank, self.groups)
        nodes = self._make_nodes(solver)
        self.ranks = [
            _RankData(
                zones=np.flatnonzero(self.zone_rank == r),
                interface_zones=splits[r][0],
                interior_zones=splits[r][1],
                mass_local=self._rank_mass(solver, r),
                node=nodes[r],
            )
            for r in range(self.nranks)
        ]

    def _make_nodes(self, solver) -> list:
        """One node backend per rank; rank 0 reuses the primary."""
        from repro.backends.base import make_backend

        nodes = [self.node0]
        for _ in range(1, self.nranks):
            nb = make_backend(self.node_name, **self.node_kwargs)
            nb.attach_node(solver, self.engine)
            nodes.append(nb)
        return nodes

    def _rank_mass(self, solver, rank: int) -> CSRMatrix:
        """Assemble the rank-local share of the kinematic mass matrix."""
        zones = np.flatnonzero(self.zone_rank == rank)
        basis = solver.kinematic.element.tabulate(solver.quad.points)
        geo = self.engine.geom_eval.evaluate_local(
            solver.kinematic.gather(solver.kinematic.node_coords)[zones]
        )
        rho = self.engine.mass_qp[zones] / geo.det  # = rho0 on the initial mesh
        w = solver.quad.weights[None, :] * rho * geo.det
        blocks = np.einsum("zk,ki,kj->zij", w, basis, basis, optimize=True)
        ldof = solver.kinematic.ldof[zones]
        ndz = solver.kinematic.ndof_per_zone
        rows = np.repeat(ldof, ndz, axis=1).ravel()
        cols = np.tile(ldof, (1, ndz)).ravel()
        return CSRMatrix.from_coo(
            rows, cols, blocks.ravel(), (solver.kinematic.ndof, solver.kinematic.ndof)
        )

    # -- The distributed corner force ----------------------------------------

    @property
    def force_fn(self):
        if self.node0 is None:
            raise RuntimeError("backend 'distributed' is not attached")
        return self._compute

    def compute_local(self, state, zone_ids):
        """Delegate a zone subset to the primary node backend."""
        return self.node0.compute_local(state, zone_ids)

    @staticmethod
    def _local_dt(result) -> float:
        return result.dt_est if result.points is not None else np.inf

    def _compute(self, state) -> ForceResult:
        """Two-phase distributed corner-force evaluation.

        Phase 1 evaluates every rank's *interface* zones and posts the
        shared-dof momentum-RHS exchange; phase 2 evaluates *interior*
        zones — with `overlap` on, while the exchange is (modeled as)
        in flight. The arithmetic is identical in both modes and in
        both phases; only where the `wait` lands differs, which is
        exactly the exposed-vs-hidden pricing split.
        """
        sol = self.solver
        kin = sol.kinematic
        ndof, dim = kin.ndof, kin.dim
        iface = self._iface_dofs

        # Phase 1: interface zones, per rank.
        res_if = [r.node.compute_local(state, r.interface_zones) for r in self.ranks]
        if any(not res.valid for res in res_if):
            return ForceResult(None, None, None, 0.0, valid=False)
        partials = []
        for rank, res in zip(self.ranks, res_if):
            part = np.zeros((ndof, dim))
            if rank.interface_zones.size:
                rhs_z = self.engine.force_times_one(res.Fz)
                np.add.at(
                    part,
                    kin.ldof[rank.interface_zones].reshape(-1),
                    rhs_z.reshape(-1, dim),
                )
            partials.append(part)
        req = self.comm.iallreduce_sum([p[iface] for p in partials])
        if not self.overlap:
            iface_sum = self.comm.wait(req)

        # Phase 2: interior zones — the hiding window when overlapping.
        res_in = [r.node.compute_local(state, r.interior_zones) for r in self.ranks]
        if any(not res.valid for res in res_in):
            if self.overlap:
                self.comm.wait(req)
            return ForceResult(None, None, None, 0.0, valid=False)
        for rank, part, res in zip(self.ranks, partials, res_in):
            if rank.interior_zones.size:
                rhs_z = self.engine.force_times_one(res.Fz)
                np.add.at(
                    part,
                    kin.ldof[rank.interior_zones].reshape(-1),
                    rhs_z.reshape(-1, dim),
                )
        if self.overlap:
            iface_sum = self.comm.wait(req)

        # Momentum RHS: rank partials in rank order, interface dofs from
        # the collective (bitwise equal to the sequential sum).
        rhs = np.zeros((ndof, dim))
        for part in partials:
            rhs += part
        rhs[iface] = iface_sum

        # Global Fz (for the zone-local energy RHS) assembled from the
        # rank blocks while the min-dt reduction is in flight.
        dt_req = self.comm.iallreduce_min(
            [
                min(self._local_dt(a), self._local_dt(b))
                for a, b in zip(res_if, res_in)
            ]
        )
        Fz = np.empty(
            (kin.mesh.nzones, kin.ndof_per_zone, dim, sol.thermodynamic.ndof_per_zone)
        )
        for rank, a, b in zip(self.ranks, res_if, res_in):
            Fz[rank.interface_zones] = a.Fz
            Fz[rank.interior_zones] = b.Fz
        dt = self.comm.wait(dt_req)

        result = ForceResult(Fz, None, None, float(dt), valid=True)
        result.rhs_mom = rhs
        return result

    def _assemble_rhs(self, force) -> np.ndarray:
        """Integrator hook: the RHS was assembled during the force eval."""
        return force.rhs_mom

    # -- Scheduler / resilience hooks ----------------------------------------

    def tuning_target(self):
        """All-hybrid fleets tune as one; anything else has no target."""
        if self.ranks and all(r.node.name == "hybrid" for r in self.ranks):
            return _HybridFleet([r.node for r in self.ranks])
        return None

    def swap_node(self, name: str, rank: int) -> None:
        """Replace one rank's node backend (sticky device fault path).

        The other ranks keep their backends — the paper's failure model
        is per-task — and any in-band scheduler stops: its fleet no
        longer describes the hardware carrying the run.
        """
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range (nranks={self.nranks})")
        from repro.backends.base import make_backend

        nb = make_backend(name)
        old = self.ranks[rank].node
        same_flavour = getattr(nb, "fused", True) == getattr(old, "fused", True) and getattr(
            nb, "sumfact", False
        ) == getattr(old, "sumfact", False)
        if same_flavour:
            nb.attach_node(self.solver, self.engine)
        else:
            nb.attach_node(
                self.solver,
                self.solver._make_engine(
                    fused=nb.fused, sumfact=getattr(nb, "sumfact", False)
                ),
            )
        self.ranks[rank].node = nb
        old.close()
        sched = getattr(self.solver, "scheduler", None)
        if sched is not None:
            sched.reset()

    def exclude_rank(self, rank: int) -> None:
        """Degrade to `nranks - 1` ranks after a simulated rank failure.

        The dead rank's zones are dealt round-robin to the survivors
        and every partition-derived structure (communicator, dof
        groups, rank-local mass operators, node fleet) is rebuilt. The
        functional layer is partition-independent, so the physics
        continues unchanged up to floating-point reordering of the
        reductions. Traffic and ledger accounting carry over so a run's
        totals stay cumulative.
        """
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range (nranks={self.nranks})")
        if self.nranks == 1:
            raise ValueError("cannot exclude the last remaining rank")
        survivors = [r for r in range(self.nranks) if r != rank]
        zr = self.zone_rank.copy()
        failed_zones = np.flatnonzero(zr == rank)
        for i, z in enumerate(failed_zones):
            zr[z] = survivors[i % len(survivors)]
        remap = {old: new for new, old in enumerate(survivors)}
        self.zone_rank = np.asarray([remap[r] for r in zr], dtype=np.int64)
        self.nranks -= 1
        old_comm = self.comm
        self.comm = SimulatedComm(
            self.nranks,
            fault_injector=old_comm.fault_injector,
            cost_model=old_comm.cost_model,
            tracer=old_comm.tracer,
        )
        self.comm.traffic = old_comm.traffic
        self.comm.ledger = old_comm.ledger
        for r in self.ranks:
            if r.node is not self.node0:
                r.node.close()
        self._build_partition(self.solver)
        if self.momentum is not None:
            self.momentum.rank_masses = [r.mass_local for r in self.ranks]
            self.momentum.comm = self.comm

    # -- Housekeeping --------------------------------------------------------

    def close(self) -> None:
        for r in self.ranks:
            if r.node is not self.node0:
                r.node.close()
        if self.node0 is not None:
            self.node0.close()

    def describe(self) -> dict:
        out = {
            "backend": self.name,
            "ranks": self.nranks,
            "node": self.node_name,
            "overlap": self.overlap,
        }
        if self.node0 is not None:
            out["node_detail"] = self.node0.describe()
        return out
