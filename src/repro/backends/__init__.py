"""Execution backends: one workload, four interchangeable policies.

See `repro.backends.base` for the protocol and the physics contract;
select a policy with `RunConfig(backend="cpu-serial" | "cpu-fused" |
"cpu-parallel" | "hybrid")` or build one directly via `make_backend`.
`DistributedBackend` is the composition layer: `RunConfig(ranks=N)`
wraps the selected node backend in it, running the same physics with
rank-partitioned evaluation and simulated-MPI collectives.
"""

from repro.backends.base import BACKEND_NAMES, ExecutionBackend, make_backend
from repro.backends.cpu import CpuFusedBackend, CpuParallelBackend, CpuSerialBackend
from repro.backends.distributed import DistributedBackend
from repro.backends.hybrid import HybridBackend

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "make_backend",
    "CpuSerialBackend",
    "CpuFusedBackend",
    "CpuParallelBackend",
    "HybridBackend",
    "DistributedBackend",
]
