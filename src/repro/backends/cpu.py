"""The three CPU execution backends.

`CpuSerialBackend` and `CpuFusedBackend` differ only in which
`ForceEngine` flavour they build (the staged reference arithmetic vs.
the zero-allocation fused pipeline); `CpuParallelBackend` puts the
fused engine behind the shared-memory `ZoneParallelExecutor` — the
repro's stand-in for the paper's OpenMP zone loop.

Every CPU backend can also serve as a *node* backend under
`repro.backends.distributed.DistributedBackend`: `attach_node` binds it
to a (shared) engine without building node-level executors, and
`compute_local` is the rank-local corner-force evaluation the
distributed layer delegates to.
"""

from __future__ import annotations

__all__ = [
    "CpuSerialBackend",
    "CpuFusedBackend",
    "CpuSumfactBackend",
    "CpuParallelBackend",
]


class _EngineBackend:
    """Shared attach/close plumbing for the in-process engines."""

    name = "?"
    fused = True
    sumfact = False

    def __init__(self):
        self.engine = None
        self.solver = None

    def attach(self, solver) -> None:
        """Bind to a solver as its primary backend (builds the engine)."""
        if self.engine is not None:
            raise RuntimeError(f"backend '{self.name}' is already attached")
        self.solver = solver
        self.engine = solver._make_engine(fused=self.fused, sumfact=self.sumfact)
        self._post_attach()

    def attach_node(self, solver, engine) -> None:
        """Bind as one rank's node backend under the distributed layer.

        The engine is shared with the other ranks (per-zone-subset
        evaluation never touches the fused workspace, so sharing is
        safe) and node-level executors are skipped: under `ranks`, the
        rank itself is the parallel unit.
        """
        if self.engine is not None:
            raise RuntimeError(f"backend '{self.name}' is already attached")
        self.solver = solver
        self.engine = engine
        self._post_attach_node()

    def _post_attach(self) -> None:
        """Primary-attachment hook (executors, device pricing)."""

    def _post_attach_node(self) -> None:
        """Node-attachment hook (pricing only; no executors)."""

    def finalize(self, solver) -> None:
        """Late hook, called once the solver is fully constructed.

        The in-process backends need nothing here; the distributed
        backend uses it to build everything that requires the mass
        matrices / momentum solver / integrator to exist.
        """

    @property
    def force_fn(self):
        if self.engine is None:
            raise RuntimeError(f"backend '{self.name}' is not attached")
        return self.engine.compute

    def compute_local(self, state, zone_ids):
        """Rank-local corner forces (the distributed delegation point)."""
        if self.engine is None:
            raise RuntimeError(f"backend '{self.name}' is not attached")
        return self.engine.compute_local(state, zone_ids)

    def tuning_target(self):
        """The object the in-band scheduler drives, or None.

        Only hybrid execution has a device split to tune; the CPU
        backends return None and the solver skips the scheduler.
        """
        return None

    def close(self) -> None:
        pass

    def describe(self) -> dict:
        return {"backend": self.name}


class CpuSerialBackend(_EngineBackend):
    """The legacy allocate-per-call engine: the correctness reference.

    Its staged arithmetic is written independently of the fused
    pipeline, so agreement between this backend and the others (a few
    ULP on tier-1 problems) is evidence, not tautology.
    """

    name = "cpu-serial"
    fused = False


class CpuFusedBackend(_EngineBackend):
    """The fused zero-allocation hot path, single process (the default)."""

    name = "cpu-fused"
    fused = True


class CpuSumfactBackend(_EngineBackend):
    """Matrix-free sum-factorization engine, single process.

    Builds `SumfactForceEngine`: every basis contraction runs through
    the 1D tensor-product chains (O(order^{d+1}) per zone) and the dense
    corner-force matrix is never materialized — `compute` hands the
    integrator a `SumfactStress`. Mass assembly goes through the
    factorized block route as well. Parity with `cpu-fused` is a
    contraction-reordering roundoff (documented budget 1e-10 relative
    per evaluation); the crossover where this wins on modeled work is
    Q3+ in 2D (see DESIGN.md section 16).
    """

    name = "cpu-sumfact"
    fused = True
    sumfact = True

    def describe(self) -> dict:
        return {"backend": self.name, "sumfact": True}


class CpuParallelBackend(_EngineBackend):
    """Fused engine behind the persistent-pool zone-parallel executor.

    Workers are forked once (`repro.runtime.workers`) and woken by
    fixed-size command packets; the default partition is one contiguous
    span per worker, so `workers=1` is bitwise identical to serial at
    pure dispatch cost. Pin `chunks=K` for a partition — and result
    bits — invariant under the worker count.
    """

    name = "cpu-parallel"
    fused = True

    def __init__(self, workers: int | None = None, chunks: int | None = None):
        super().__init__()
        self.workers = workers
        self.chunks = chunks
        self.executor = None

    def _post_attach(self) -> None:
        from repro.runtime.parallel import ZoneParallelExecutor

        self.executor = ZoneParallelExecutor(
            self.engine,
            workers=self.workers,
            chunks=self.chunks,
            tracer=self.solver.tracer,
        )

    @property
    def force_fn(self):
        if self.executor is None:
            raise RuntimeError("backend 'cpu-parallel' is not attached")
        return self.executor.compute

    def close(self) -> None:
        if self.executor is not None:
            self.executor.close()
            self.executor = None

    def describe(self) -> dict:
        out = {"backend": self.name}
        if self.executor is not None:
            out["workers"] = self.executor.workers
            out["chunks"] = len(self.executor.chunk_ids)
        return out
