"""The three CPU execution backends.

`CpuSerialBackend` and `CpuFusedBackend` differ only in which
`ForceEngine` flavour they build (the staged reference arithmetic vs.
the zero-allocation fused pipeline); `CpuParallelBackend` puts the
fused engine behind the shared-memory `ZoneParallelExecutor` — the
repro's stand-in for the paper's OpenMP zone loop.
"""

from __future__ import annotations

__all__ = ["CpuSerialBackend", "CpuFusedBackend", "CpuParallelBackend"]


class _EngineBackend:
    """Shared attach/close plumbing for the in-process engines."""

    name = "?"
    fused = True

    def __init__(self):
        self.engine = None
        self.solver = None

    def attach(self, solver) -> None:
        if self.engine is not None:
            raise RuntimeError(f"backend '{self.name}' is already attached")
        self.solver = solver
        self.engine = solver._make_engine(fused=self.fused)

    @property
    def force_fn(self):
        if self.engine is None:
            raise RuntimeError(f"backend '{self.name}' is not attached")
        return self.engine.compute

    def close(self) -> None:
        pass

    def describe(self) -> dict:
        return {"backend": self.name}


class CpuSerialBackend(_EngineBackend):
    """The legacy allocate-per-call engine: the correctness reference.

    Its staged arithmetic is written independently of the fused
    pipeline, so agreement between this backend and the others (a few
    ULP on tier-1 problems) is evidence, not tautology.
    """

    name = "cpu-serial"
    fused = False


class CpuFusedBackend(_EngineBackend):
    """The fused zero-allocation hot path, single process (the default)."""

    name = "cpu-fused"
    fused = True


class CpuParallelBackend(_EngineBackend):
    """Fused engine behind the shared-memory zone-parallel executor.

    The executor's default partition is worker-independent
    (`repro.runtime.parallel.SPAN_GRANULE`), so results are bitwise
    identical whatever `workers` is — scheduling never changes bits.
    """

    name = "cpu-parallel"
    fused = True

    def __init__(self, workers: int | None = None, chunks: int | None = None):
        super().__init__()
        self.workers = workers
        self.chunks = chunks
        self.executor = None

    def attach(self, solver) -> None:
        super().attach(solver)
        from repro.runtime.parallel import ZoneParallelExecutor

        self.executor = ZoneParallelExecutor(
            self.engine,
            workers=self.workers,
            chunks=self.chunks,
            tracer=solver.tracer,
        )

    @property
    def force_fn(self):
        if self.executor is None:
            raise RuntimeError("backend 'cpu-parallel' is not attached")
        return self.executor.compute

    def close(self) -> None:
        if self.executor is not None:
            self.executor.close()
            self.executor = None

    def describe(self) -> dict:
        out = {"backend": self.name}
        if self.executor is not None:
            out["workers"] = self.executor.workers
            out["chunks"] = len(self.executor.chunk_ids)
        return out
