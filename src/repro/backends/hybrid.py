"""`HybridBackend`: functional zone split priced by the simulated GPU.

Per the repro substitution rule, the "GPU side" of the paper's
CUDA+OpenMP split *executes* as the fused NumPy path (the same
full-batch evaluation as `cpu-fused`, hence bitwise-identical physics)
while a simulated device prices what the split *would* cost: the
fraction `ratio` of zones on the modelled GPU (roofline kernel times +
PCIe state traffic), the remainder on the modelled host cores. These
model times are what the in-band scheduler (`repro.sched`) feeds to the
Section 3.3 `AutoBalancer` — the convergence dynamics are the paper's,
the arithmetic is NumPy's.
"""

from __future__ import annotations

from repro.backends.cpu import _EngineBackend
from repro.kernels.registry import KernelSelection, corner_force_costs

__all__ = ["HybridBackend"]


class HybridBackend(_EngineBackend):
    """Fused execution + simulated-device pricing of a CPU/GPU zone split.

    Parameters
    ----------
    device : simulated GPU catalog name carrying the split's GPU side.
    cpu : simulated CPU catalog name for the host side.
    ratio : initial fraction of zones priced on the GPU (the scheduler
        moves this; 0.5 is the paper's cold start).
    selection : tuned kernel parameters; None = feasibility defaults
        until a campaign (offline or in-band) supplies winners.
    """

    name = "hybrid"
    fused = True

    def __init__(
        self,
        device: str = "K20",
        cpu: str = "E5-2670",
        ratio: float = 0.5,
        selection: KernelSelection | None = None,
    ):
        super().__init__()
        if not (0.0 < ratio < 1.0):
            raise ValueError("ratio must be in (0, 1)")
        self.device = device
        self.cpu_name = cpu
        self.ratio = float(ratio)
        self.selection = selection or KernelSelection()
        self.gpu = None
        self.fe_cfg = None
        self._pricer = None
        self._gpu_stage_s = None  # cached full-batch GPU stage seconds

    def _post_attach(self) -> None:
        from repro.cpu import get_cpu
        from repro.gpu import get_gpu
        from repro.kernels.config import FEConfig
        from repro.runtime.hybrid import HybridExecutor

        self.gpu = get_gpu(self.device)
        self.fe_cfg = FEConfig.from_solver(self.solver)
        self._pricer = HybridExecutor(
            self.fe_cfg, get_cpu(self.cpu_name), self.gpu, nmpi=1
        )
        self._reprice()

    # A per-rank hybrid node prices its split exactly like a primary
    # one — the distributed layer only redirects the *functional* work.
    _post_attach_node = _post_attach

    def tuning_target(self):
        """A hybrid backend is its own scheduler target."""
        return self

    # -- Pricing model (what the scheduler measures) ------------------------

    def _reprice(self) -> None:
        """Recompute the full-batch model times for the current selection."""
        from repro.gpu.device import SimulatedGPU
        from repro.gpu.pcie import PCIeModel

        costs = corner_force_costs(self.fe_cfg, "optimized", selection=self.selection)
        device = SimulatedGPU(self.gpu)
        phase = device.run_phase(costs)
        pcie = PCIeModel(self.gpu)
        plan = pcie.state_vectors_plan(
            self.fe_cfg.kinematic_ndof_estimate,
            self.fe_cfg.nzones * self.fe_cfg.ndof_thermo_zone,
            self.fe_cfg.dim,
        )
        self._gpu_stage_s = phase.time_s + pcie.transfer_time_s(plan.total, ncalls=5)
        self._cpu_stage_s = self._pricer._cpu_corner_force_s()

    def gpu_time_s(self, ratio: float) -> float:
        """Modelled seconds for the GPU side carrying `ratio` of zones.

        Zone work and state traffic both scale linearly in the zone
        share, so the full-batch stage time is computed once per
        selection and scaled here — the balancer samples this hundreds
        of times per run.
        """
        return self._gpu_stage_s * ratio

    def cpu_time_s(self, share: float) -> float:
        """Modelled seconds for the host cores carrying `share` of zones."""
        return self._cpu_stage_s * share

    # -- Scheduler hooks ----------------------------------------------------

    def set_ratio(self, ratio: float) -> None:
        if not (0.0 < ratio < 1.0):
            raise ValueError("ratio must be in (0, 1)")
        self.ratio = float(ratio)

    def apply_selection(self, selection: KernelSelection) -> None:
        """Adopt tuned kernel parameters and re-price the split."""
        self.selection = selection
        if self.fe_cfg is not None:
            self._reprice()

    def describe(self) -> dict:
        out = {"backend": self.name, "device": self.device, "ratio": self.ratio}
        sel = self.selection
        if sel.gemm_matrices_per_block or sel.batched_matrices_per_block or sel.block_cols:
            out["selection"] = {
                "gemm_matrices_per_block": sel.gemm_matrices_per_block,
                "batched_matrices_per_block": sel.batched_matrices_per_block,
                "block_cols": sel.block_cols,
            }
        return out
