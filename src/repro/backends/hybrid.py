"""`HybridBackend`: functional zone split priced by the simulated GPU.

Per the repro substitution rule, the "GPU side" of the paper's
CUDA+OpenMP split *executes* as the fused NumPy path (the same
full-batch evaluation as `cpu-fused`, hence bitwise-identical physics)
while a simulated device prices what the split *would* cost: the
fraction `ratio` of zones on the modelled GPU (roofline kernel times +
PCIe state traffic), the remainder on the modelled host cores. These
model times are what the in-band scheduler (`repro.sched`) feeds to the
Section 3.3 `AutoBalancer` — the convergence dynamics are the paper's,
the arithmetic is NumPy's.
"""

from __future__ import annotations

from repro.backends.cpu import _EngineBackend
from repro.kernels.registry import KernelSelection, corner_force_costs

__all__ = ["HybridBackend"]

#: Host-side corner-force slowdown of the legacy (unfused) engine
#: relative to the fused hot path — the ratio the PR-2 benchmarks
#: measured between `cpu-serial` and `cpu-fused` assembly.
LEGACY_FUSION_FACTOR = 1.75

#: Zone-chunking U-curve for the host workers: tiny chunks pay
#: per-chunk dispatch overhead, huge chunks lose cache locality. The
#: coefficients put the optimum at a moderate chunk (4 zones).
def _chunk_factor(chunk: int) -> float:
    return 1.0 + 0.06 / chunk + 0.04 * (chunk - 1) / 8.0


class HybridBackend(_EngineBackend):
    """Fused execution + simulated-device pricing of a CPU/GPU zone split.

    Parameters
    ----------
    device : simulated GPU catalog name carrying the split's GPU side.
    cpu : simulated CPU catalog name for the host side.
    ratio : initial fraction of zones priced on the GPU (the scheduler
        moves this; 0.5 is the paper's cold start).
    selection : tuned kernel parameters; None = feasibility defaults
        until a campaign (offline or in-band) supplies winners.
    """

    name = "hybrid"
    fused = True

    def __init__(
        self,
        device: str = "K20",
        cpu: str = "E5-2670",
        ratio: float = 0.5,
        selection: KernelSelection | None = None,
    ):
        super().__init__()
        if not (0.0 < ratio < 1.0):
            raise ValueError("ratio must be in (0, 1)")
        self.device = device
        self.cpu_name = cpu
        self.ratio = float(ratio)
        self.selection = selection or KernelSelection()
        # Runtime knobs the joint tuning space also searches: which
        # corner-force engine the host side runs and how many zones one
        # worker chunk carries. Defaults = the untuned cold start.
        self.fusion = "fused"
        self.chunk = 1
        self.gpu = None
        self.fe_cfg = None
        self._pricer = None
        self._gpu_stage_s = None  # cached full-batch GPU stage seconds
        self._pcie_s = None  # cached state-traffic seconds (selection-free)
        self._cpu_base_s = None  # cached fused single-chunk host seconds
        self._sumfact_factor = None  # cached sumfact/dense modeled-work ratio
        self._phase_memo: dict = {}  # (k3, k5, k7) -> GPU phase (time, energy)

    @classmethod
    def for_pricing(
        cls, fe_cfg, device: str = "K20", cpu: str = "E5-2670"
    ) -> "HybridBackend":
        """A detached pricing harness over an explicit `FEConfig`.

        Offline campaigns (`repro tune campaign`, tests) need
        `measure_candidate` without marching a solver; this wires the
        device models directly instead of `_post_attach`.
        """
        from repro.cpu import get_cpu
        from repro.gpu import get_gpu
        from repro.runtime.hybrid import HybridExecutor

        self = cls(device=device, cpu=cpu)
        self.gpu = get_gpu(device)
        self.fe_cfg = fe_cfg
        self._pricer = HybridExecutor(fe_cfg, get_cpu(cpu), self.gpu, nmpi=1)
        self._reprice()
        return self

    def _post_attach(self) -> None:
        from repro.cpu import get_cpu
        from repro.gpu import get_gpu
        from repro.kernels.config import FEConfig
        from repro.runtime.hybrid import HybridExecutor

        self.gpu = get_gpu(self.device)
        self.fe_cfg = FEConfig.from_solver(self.solver)
        self._pricer = HybridExecutor(
            self.fe_cfg, get_cpu(self.cpu_name), self.gpu, nmpi=1
        )
        self._reprice()

    # A per-rank hybrid node prices its split exactly like a primary
    # one — the distributed layer only redirects the *functional* work.
    _post_attach_node = _post_attach

    def tuning_target(self):
        """A hybrid backend is its own scheduler target."""
        return self

    # -- Pricing model (what the scheduler measures) ------------------------

    def _reprice(self) -> None:
        """Recompute the full-batch model times for the current selection."""
        from repro.gpu.pcie import PCIeModel

        if self._pcie_s is None:
            # State traffic and the fused host baseline depend only on
            # the FE config — price them once, not per candidate.
            pcie = PCIeModel(self.gpu)
            plan = pcie.state_vectors_plan(
                self.fe_cfg.kinematic_ndof_estimate,
                self.fe_cfg.nzones * self.fe_cfg.ndof_thermo_zone,
                self.fe_cfg.dim,
            )
            self._pcie_s = pcie.transfer_time_s(plan.total, ncalls=5)
            self._cpu_base_s = self._pricer._cpu_corner_force_s()
        sel = self.selection
        time_s, _ = self._gpu_phase(
            sel.gemm_matrices_per_block, sel.batched_matrices_per_block,
            sel.block_cols,
        )
        self._gpu_stage_s = time_s + self._pcie_s
        self._cpu_stage_s = self._cpu_base_s * self._runtime_factor()

    def _gpu_phase(self, k3, k5, k7) -> tuple[float, float]:
        """Memoized GPU corner-force phase (seconds, joules) for a tiling."""
        from repro.gpu.device import SimulatedGPU

        key = (k3, k5, k7)
        if key not in self._phase_memo:
            costs = corner_force_costs(
                self.fe_cfg, "optimized",
                selection=KernelSelection(
                    gemm_matrices_per_block=k3,
                    batched_matrices_per_block=k5,
                    block_cols=k7,
                ),
            )
            phase = SimulatedGPU(self.gpu).run_phase(costs)
            self._phase_memo[key] = (phase.time_s, phase.energy_j)
        return self._phase_memo[key]

    def _runtime_factor(self, fusion: str | None = None, chunk: int | None = None):
        """Host-side cost multiplier of the (fusion, chunk) runtime pair."""
        fusion = self.fusion if fusion is None else fusion
        chunk = self.chunk if chunk is None else chunk
        if fusion == "fused":
            factor = 1.0
        elif fusion == "sumfact":
            if self._sumfact_factor is None:
                from repro.fem.sumfact import sumfact_host_factor

                self._sumfact_factor = sumfact_host_factor(self.fe_cfg)
            factor = self._sumfact_factor
        else:
            factor = LEGACY_FUSION_FACTOR
        return factor * _chunk_factor(chunk)

    def gpu_time_s(self, ratio: float) -> float:
        """Modelled seconds for the GPU side carrying `ratio` of zones.

        Zone work and state traffic both scale linearly in the zone
        share, so the full-batch stage time is computed once per
        selection and scaled here — the balancer samples this hundreds
        of times per run.
        """
        return self._gpu_stage_s * ratio

    def cpu_time_s(self, share: float) -> float:
        """Modelled seconds for the host cores carrying `share` of zones."""
        return self._cpu_stage_s * share

    # -- Scheduler hooks ----------------------------------------------------

    def set_ratio(self, ratio: float) -> None:
        if not (0.0 < ratio < 1.0):
            raise ValueError("ratio must be in (0, 1)")
        self.ratio = float(ratio)

    def apply_selection(self, selection: KernelSelection) -> None:
        """Adopt tuned kernel parameters and re-price the split."""
        self.selection = selection
        if self.fe_cfg is not None:
            self._reprice()

    def apply_runtime(self, fusion: str, chunk: int) -> None:
        """Adopt tuned runtime knobs (engine fusion, worker chunking)."""
        if fusion not in ("fused", "sumfact", "legacy"):
            raise ValueError("fusion must be 'fused', 'sumfact' or 'legacy'")
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.fusion = fusion
        self.chunk = int(chunk)
        if self.fe_cfg is not None:
            self._reprice()

    # -- Candidate pricing (what the search engine measures) ----------------

    def measure_candidate(self, params: dict):
        """Price one joint-space candidate as a `Measurement`.

        The candidate fixes the kernel tilings *and* the runtime pair;
        the split ratio is taken at its balanced optimum for those
        choices (the Section 3.3 fixed point), so candidates are
        compared at their own best load balance — time is the balanced
        stage seconds, energy the GPU phase joules for its zone share
        plus the host package+DRAM draw over the stage.
        """
        from repro.runtime.hybrid import HYBRID_CPU_UTILIZATION
        from repro.tuning.search import Measurement

        if self._pcie_s is None:
            self._reprice()  # populate the selection-free cached terms
        phase_s, phase_j = self._gpu_phase(
            params.get("kernel3_matrices_per_block"),
            params.get("kernel5_matrices_per_block"),
            params.get("kernel7_block_cols"),
        )
        gpu_s = phase_s + self._pcie_s
        cpu_s = self._cpu_base_s * self._runtime_factor(
            params.get("fusion"), params.get("chunk")
        )
        # Balanced split: r*gpu_s == (1-r)*cpu_s -> stage time T.
        stage_s = gpu_s * cpu_s / (gpu_s + cpu_s)
        gpu_share = stage_s / gpu_s
        cpu_model = self._pricer._cpu_model
        cpu_w = cpu_model.package_power(HYBRID_CPU_UTILIZATION) + cpu_model.dram_power(
            HYBRID_CPU_UTILIZATION
        )
        energy_j = phase_j * gpu_share + cpu_w * stage_s
        return Measurement(time_s=stage_s, energy_j=energy_j)

    def describe(self) -> dict:
        out = {"backend": self.name, "device": self.device, "ratio": self.ratio}
        if self.fusion != "fused" or self.chunk != 1:
            out["runtime"] = {"fusion": self.fusion, "chunk": self.chunk}
        sel = self.selection
        if sel.gemm_matrices_per_block or sel.batched_matrices_per_block or sel.block_cols:
            out["selection"] = {
                "gemm_matrices_per_block": sel.gemm_matrices_per_block,
                "batched_matrices_per_block": sel.batched_matrices_per_block,
                "block_cols": sel.block_cols,
            }
        return out
