"""`ExecutionBackend`: one workload description, many execution policies.

The paper's systems contribution is that a single BLAST workload runs
under interchangeable execution policies — serial CPU, OpenMP CPU, and
the CUDA+OpenMP hybrid — with the scheduler free to move between them
(Sections 3.2-3.3). This module is that seam for the repro: a backend
owns the corner-force evaluation strategy of one solver (which engine
flavour, whether a worker pool runs it, whether a simulated device
prices it) behind a uniform four-method surface, selected by one
`RunConfig.backend` string.

Physics contract: every backend computes the corner force with the same
NumPy arithmetic. `cpu-fused` and `hybrid` share the identical
full-batch fused evaluation and are *bitwise* equal; `cpu-parallel`
uses the worker-independent span partition and is bitwise invariant
under the worker count (and within a few ULP of the fused batch — the
final contraction's BLAS accumulation order depends on the batch
extent); `cpu-serial` is the independently-written staged reference
(~1e-15 relative). Tests pin all of this down with state hashes.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["ExecutionBackend", "BACKEND_NAMES", "make_backend"]

#: The five execution policies, in the order the README matrix lists them.
BACKEND_NAMES = ("cpu-serial", "cpu-fused", "cpu-sumfact", "cpu-parallel", "hybrid")


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the solver needs from an execution policy.

    Lifecycle: the solver constructs its FEM spaces and fields, then
    calls `attach(solver)` exactly once — the backend builds its
    `ForceEngine` (via `solver._make_engine`) plus any executor, and
    from then on `force_fn` is the solver's corner-force evaluator
    (installed as `integrator.force_fn`). `close()` releases worker
    pools / shared memory and must be idempotent.
    """

    #: Registry name, one of `BACKEND_NAMES`.
    name: str

    def attach(self, solver) -> None:
        """Bind to a constructed solver; build engine and executors."""
        ...

    @property
    def force_fn(self):
        """The corner-force evaluator: `HydroState -> ForceResult`."""
        ...

    def close(self) -> None:
        """Release resources (idempotent)."""
        ...

    def describe(self) -> dict:
        """Manifest-friendly summary of the policy."""
        ...


def make_backend(name: str, **kwargs) -> "ExecutionBackend":
    """Build a backend by registry name.

    kwargs are forwarded to the concrete constructor (`workers=` for
    cpu-parallel; `device=` / `cpu=` / `ratio=` for hybrid) — unknown
    names raise with the valid list, mirroring `RunConfig` validation.
    """
    from repro.backends.cpu import (
        CpuFusedBackend,
        CpuParallelBackend,
        CpuSerialBackend,
        CpuSumfactBackend,
    )
    from repro.backends.hybrid import HybridBackend

    registry = {
        "cpu-serial": CpuSerialBackend,
        "cpu-fused": CpuFusedBackend,
        "cpu-sumfact": CpuSumfactBackend,
        "cpu-parallel": CpuParallelBackend,
        "hybrid": HybridBackend,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown backend '{name}' (choose from {BACKEND_NAMES})"
        ) from None
    return cls(**kwargs)
