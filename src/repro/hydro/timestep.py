"""Adaptive time-step control.

BLAST estimates a stable dt inside the corner-force loop (step 4.2),
takes the global minimum (an MPI reduction, step 5), and applies CFL
safety plus gentle growth. A step that tangles the mesh or produces an
invalid state is rejected and retried with a halved dt.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TimestepController"]


@dataclass
class TimestepController:
    """CFL-scaled adaptive dt with growth limiting and rejection.

    Attributes
    ----------
    cfl : CFL safety factor applied to the corner-force estimate.
    growth : max ratio dt_{n+1}/dt_n (BLAST-style gentle ramp).
    shrink : rejection factor when a step fails.
    dt_min : hard lower bound — below this the run aborts (the mesh is
        irrecoverably tangled).
    """

    cfl: float = 0.5
    growth: float = 1.02
    shrink: float = 0.5
    dt_min: float = 1e-14
    dt_max: float = float("inf")
    dt: float = field(default=0.0, init=False)
    n_rejected: int = field(default=0, init=False)

    def __post_init__(self):
        if not (0 < self.cfl <= 1.0):
            raise ValueError("cfl must be in (0, 1]")
        if self.growth < 1.0:
            raise ValueError("growth must be >= 1")
        if not (0 < self.shrink < 1):
            raise ValueError("shrink must be in (0, 1)")

    def initialize(self, dt_est: float) -> float:
        """Set the initial dt from the first corner-force estimate."""
        if dt_est <= 0:
            raise ValueError("initial dt estimate must be positive")
        self.dt = self.cfl * dt_est
        return self.dt

    def propose(self, dt_est: float, t: float, t_final: float) -> float:
        """Next dt: CFL-limited, growth-limited, clipped to the horizon."""
        if self.dt <= 0:
            raise RuntimeError("controller not initialized")
        dt = min(self.cfl * dt_est, self.growth * self.dt, self.dt_max)
        remaining = t_final - t
        if remaining <= 0:
            return 0.0
        # Land exactly on t_final without a sliver step at the end.
        if dt >= remaining:
            dt = remaining
        elif dt > 0.5 * remaining:
            dt = 0.5 * remaining
        self.dt = dt
        return dt

    def reject(self) -> float:
        """Halve dt after a failed step; raises once below dt_min."""
        self.n_rejected += 1
        self.dt *= self.shrink
        if self.dt < self.dt_min:
            raise RuntimeError(
                f"time step collapsed below dt_min={self.dt_min:g} after "
                f"{self.n_rejected} rejections — mesh is likely tangled"
            )
        return self.dt
