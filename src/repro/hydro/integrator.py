"""Energy-conserving two-stage Runge-Kutta ("RK2Avg") time integrator.

The reference scheme advances (v, e, x) with a midpoint method whose
energy update uses the *stage-averaged* velocity against the *same*
force matrix as the momentum update. Because the semi-discrete system
satisfies d/dt(KE + IE) = -v.(F.1) + v.(F.1) = 0 identically, pairing
the updates this way makes the fully discrete step conserve
KE + IE to roundoff (plus PCG tolerance) — the mechanism behind the
paper's Table 6 machine-precision check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hydro.corner_force import ForceEngine, ForceResult
from repro.hydro.momentum import MomentumSolver
from repro.hydro.state import HydroState
from repro.linalg.blockdiag import BlockDiagonalMatrix
from repro.telemetry.tracer import NULL_SPAN

__all__ = [
    "RK2AvgIntegrator",
    "ForwardEulerIntegrator",
    "RK4ClassicIntegrator",
    "StepResult",
    "make_integrator",
]


@dataclass
class StepResult:
    """One attempted step: the new state (or None on rejection) plus
    the corner-force dt estimate measured at the step's final stage."""

    state: HydroState | None
    dt_est: float
    accepted: bool
    force_evals: int
    pcg_iterations: int


class RK2AvgIntegrator:
    """Midpoint RK2 with conservative velocity averaging."""

    def __init__(
        self,
        engine: ForceEngine,
        momentum: MomentumSolver,
        mass_e: BlockDiagonalMatrix,
        timers=None,
    ):
        self.engine = engine
        self.momentum = momentum
        self.mass_e = mass_e
        # Hooks the hybrid runtime uses to meter each phase; they default
        # to the plain engine methods.
        self.force_fn = engine.compute
        # Momentum-RHS assembly override: the distributed backend
        # pre-assembles -F.1 (with the interface exchange) during the
        # force evaluation and installs a hook that just hands it over.
        self.assemble_fn = None
        if timers is None:
            # Local import: repro.runtime pulls in the distributed solver,
            # which imports this module — resolve the cycle at call time.
            from repro.runtime.instrumentation import PhaseTimers

            timers = PhaseTimers()
        self.timers = timers
        # The shared tracer (if any) rides on the timers; RK stages are
        # emitted as "stage"-category spans between step and phase level.
        self.tracer = getattr(timers, "tracer", None)

    def _force(self, state: HydroState) -> ForceResult:
        """Corner-force evaluation, metered under the "force" phase."""
        with self.timers.measure("force"):
            return self.force_fn(state)

    def _solve_momentum(self, rhs: np.ndarray) -> np.ndarray:
        """Momentum PCG solve, metered under the "cg" phase."""
        with self.timers.measure("cg"):
            return self.momentum.solve(rhs)

    def _momentum_rhs(self, force: ForceResult) -> np.ndarray:
        """Assemble -F.1 into the global kinematic space."""
        if self.assemble_fn is not None:
            return self.assemble_fn(force)
        rhs_z = self.engine.force_times_one(force.Fz)  # (nz, ndz, dim)
        out = None
        if getattr(self.engine, "fused", False):
            out = self.engine.workspace.get(
                "rhs_mom", (self.engine.kinematic.ndof, self.engine.kinematic.dim)
            )
        return self.engine.kinematic.scatter_add(rhs_z, out=out)

    def _stage(
        self, base: HydroState, force: ForceResult, dt: float
    ) -> tuple[HydroState, int]:
        """Advance `base` by dt using forces evaluated at another state."""
        rhs = self._momentum_rhs(force)
        accel = self._solve_momentum(rhs)
        iters = self.momentum.last_info.iterations
        v_new = base.v + dt * accel
        v_avg = 0.5 * (base.v + v_new)
        dedt_rhs = self.engine.force_transpose_times_v(force.Fz, v_avg)
        e_new = base.e + dt * self.mass_e.solve(dedt_rhs)
        x_new = base.x + dt * v_avg
        return HydroState(v_new, e_new, x_new, base.t + dt), iters

    def step(self, state: HydroState, dt: float, force0: ForceResult | None = None) -> StepResult:
        """One RK2Avg step; force0 may reuse the estimate-producing eval."""
        evals = 0
        iters = 0
        tr = self.tracer
        # Stage 1: half step to the midpoint state.
        with tr.span("stage", category="stage", meta={"n": 1}) if tr else NULL_SPAN:
            if force0 is None:
                force0 = self._force(state)
                evals += 1
            if not force0.valid:
                return StepResult(None, 0.0, False, evals, iters)
            half, it1 = self._stage(state, force0, 0.5 * dt)
            iters += it1
        # Stage 2: full step with midpoint forces.
        with tr.span("stage", category="stage", meta={"n": 2}) if tr else NULL_SPAN:
            force_half = self._force(half)
            evals += 1
            if not force_half.valid:
                return StepResult(None, 0.0, False, evals, iters)
            new_state, it2 = self._stage(state, force_half, dt)
            iters += it2
        if not np.isfinite(new_state.v).all() or not np.isfinite(new_state.e).all():
            return StepResult(None, 0.0, False, evals, iters)
        # Reject any step that tangles the mesh at its *final* state —
        # accepting it would poison every subsequent step.
        with self.timers.measure("force"):
            end_geo = self.engine.point_geometry(new_state.x)
        if not end_geo.check_valid():
            return StepResult(None, 0.0, False, evals, iters)
        # The dt estimate for the *next* step comes from the midpoint
        # evaluation (freshest geometry we have without an extra eval).
        return StepResult(new_state, force_half.dt_est, True, evals, iters)


class ForwardEulerIntegrator(RK2AvgIntegrator):
    """First-order explicit Euler — the conservation *counter-example*.

    Updates e with the beginning-of-step velocity instead of the stage
    average: the discrete work identity no longer telescopes, so total
    energy drifts at O(dt) per step. Included to demonstrate (in tests
    and ablations) that Table 6's machine-precision conservation is a
    property of the RK2Avg pairing, not of the spatial discretization.
    """

    def step(self, state: HydroState, dt: float, force0: ForceResult | None = None) -> StepResult:
        evals = 0
        if force0 is None:
            force0 = self._force(state)
            evals += 1
        if not force0.valid:
            return StepResult(None, 0.0, False, evals, 0)
        rhs = self._momentum_rhs(force0)
        accel = self._solve_momentum(rhs)
        iters = self.momentum.last_info.iterations
        v_new = state.v + dt * accel
        dedt_rhs = self.engine.force_transpose_times_v(force0.Fz, state.v)
        e_new = state.e + dt * self.mass_e.solve(dedt_rhs)
        x_new = state.x + dt * state.v
        new_state = HydroState(v_new, e_new, x_new, state.t + dt)
        if not np.isfinite(new_state.v).all() or not np.isfinite(new_state.e).all():
            return StepResult(None, 0.0, False, evals, iters)
        with self.timers.measure("force"):
            end_geo = self.engine.point_geometry(new_state.x)
        if not end_geo.check_valid():
            return StepResult(None, 0.0, False, evals, iters)
        return StepResult(new_state, force0.dt_est, True, evals, iters)


class RK4ClassicIntegrator(RK2AvgIntegrator):
    """Classic four-stage Runge-Kutta.

    Higher temporal order than RK2Avg but *not* exactly conservative:
    energy drifts at O(dt^4) — tiny, yet visibly nonzero next to
    RK2Avg's roundoff-level record. Twice the corner-force evaluations
    per step.
    """

    def _rates(self, base: HydroState, at: HydroState):
        """d(v,e,x)/dt evaluated at state `at` (conservative pairing is
        deliberately not used here)."""
        force = self._force(at)
        if not force.valid:
            return None, 0, 0.0
        rhs = self._momentum_rhs(force)
        accel = self._solve_momentum(rhs)
        iters = self.momentum.last_info.iterations
        dedt = self.mass_e.solve(self.engine.force_transpose_times_v(force.Fz, at.v))
        return (accel, dedt, at.v, iters), force.dt_est, iters

    def step(self, state: HydroState, dt: float, force0: ForceResult | None = None) -> StepResult:
        evals = 0
        iters_total = 0
        ks = []
        dt_est = 0.0
        stage_state = state
        coeffs = (0.0, 0.5, 0.5, 1.0)
        for c in coeffs:
            probe = (
                state
                if c == 0.0
                else HydroState(
                    state.v + c * dt * ks[-1][0],
                    state.e + c * dt * ks[-1][1],
                    state.x + c * dt * ks[-1][2],
                    state.t + c * dt,
                )
            )
            rates, est, iters = self._rates(state, probe)
            evals += 1
            iters_total += iters
            if rates is None:
                return StepResult(None, 0.0, False, evals, iters_total)
            ks.append(rates)
            dt_est = est or dt_est
        accel = (ks[0][0] + 2 * ks[1][0] + 2 * ks[2][0] + ks[3][0]) / 6.0
        dedt = (ks[0][1] + 2 * ks[1][1] + 2 * ks[2][1] + ks[3][1]) / 6.0
        dxdt = (ks[0][2] + 2 * ks[1][2] + 2 * ks[2][2] + ks[3][2]) / 6.0
        new_state = HydroState(
            state.v + dt * accel, state.e + dt * dedt, state.x + dt * dxdt, state.t + dt
        )
        if not np.isfinite(new_state.v).all() or not np.isfinite(new_state.e).all():
            return StepResult(None, 0.0, False, evals, iters_total)
        with self.timers.measure("force"):
            end_geo = self.engine.point_geometry(new_state.x)
        if not end_geo.check_valid():
            return StepResult(None, 0.0, False, evals, iters_total)
        return StepResult(new_state, dt_est, True, evals, iters_total)


_INTEGRATORS = {
    "rk2avg": RK2AvgIntegrator,
    "euler": ForwardEulerIntegrator,
    "rk4": RK4ClassicIntegrator,
}


def make_integrator(name: str, engine, momentum, mass_e, timers=None) -> RK2AvgIntegrator:
    """Integrator factory for the solver's `integrator` option."""
    try:
        cls = _INTEGRATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown integrator '{name}' (choose from {sorted(_INTEGRATORS)})"
        ) from None
    return cls(engine, momentum, mass_e, timers=timers)
