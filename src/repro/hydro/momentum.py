"""Momentum solve: M_V dv/dt = -F . 1 with PCG per velocity component.

The kinematic mass matrix is scalar (each velocity component sees the
same matrix), so the momentum update is `dim` independent PCG solves
with a shared Jacobi preconditioner — exactly the CPU (MFEM PCG) and
GPU (kernel 9, CUDA-PCG) structure of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hydro.boundary import BoundaryConditions
from repro.linalg.csr import CSRMatrix
from repro.linalg.pcg import pcg

__all__ = ["MomentumSolver", "MomentumSolveInfo"]


@dataclass
class MomentumSolveInfo:
    """Aggregate PCG statistics for one momentum solve (all components)."""

    iterations: int
    spmv_count: int
    flops: int
    converged: bool


class MomentumSolver:
    """PCG-based solver for the (constant) kinematic mass matrix."""

    def __init__(
        self,
        mass: CSRMatrix,
        bc: BoundaryConditions,
        tol: float = 1e-14,
        maxiter: int | None = None,
    ):
        if mass.nrows != mass.ncols:
            raise ValueError("mass matrix must be square")
        if bc.ndof != mass.nrows:
            raise ValueError("boundary conditions sized for a different space")
        self.mass = mass
        self.bc = bc
        self.tol = tol
        self.maxiter = maxiter if maxiter is not None else max(200, 10 * mass.nrows)
        self._diag = mass.diagonal()
        if np.any(self._diag <= 0):
            raise ValueError("kinematic mass matrix has non-positive diagonal")
        self.last_info: MomentumSolveInfo | None = None

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """One mass-matrix application — the distributed override point.

        `DistributedMomentumSolver` replaces this with the group-sum of
        rank-local operators; everything else (preconditioning, BC
        elimination, convergence accounting) is shared.
        """
        return self.mass.matvec(x)

    def solve(self, rhs: np.ndarray, x0: np.ndarray | None = None) -> np.ndarray:
        """Accelerations a with M a = rhs, constrained components zeroed.

        rhs : (ndof, dim). Returns (ndof, dim).
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim != 2 or rhs.shape[0] != self.mass.nrows:
            raise ValueError("rhs must be (ndof, dim)")
        dim = rhs.shape[1]
        accel = np.zeros_like(rhs)
        iters = spmvs = flops = 0
        all_conv = True
        for d in range(dim):
            op = self.bc.eliminated_operator(self.matvec, d)
            diag = self.bc.eliminated_diagonal(self._diag, d)
            b = np.where(self.bc.component_mask(d), 0.0, rhs[:, d])
            guess = None if x0 is None else x0[:, d]
            res = pcg(op, b, diag=diag, x0=guess, tol=self.tol, maxiter=self.maxiter)
            accel[:, d] = res.x
            iters += res.iterations
            spmvs += res.spmv_count
            # callable operator: count SpMV flops explicitly
            flops += res.flops + res.spmv_count * 2 * self.mass.nnz
            all_conv &= res.converged
        accel[self.bc.mask] = 0.0
        self.last_info = MomentumSolveInfo(iters, spmvs, flops, all_conv)
        return accel
