"""The Lagrangian hydro solver driver (the BLAST main loop).

Implements the paper's Section 2 algorithm:

1) build the mesh/problem;           2) (optionally) partition it;
3) compute the initial time step;    4) corner forces over zones/points;
5) min-dt reduction and assembly;    6) global momentum solve (PCG);
7) update (v, e, x);                 8) loop until the final time.

The solver carries a `WorkloadRecorder` describing exactly what was
computed (zones, points, force evaluations, PCG iterations) so that the
simulated CPU/GPU hardware models can meter time/power for the same run
without re-running physics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro._compat import warn_deprecated
from repro.config import RunConfig, _internal_construction
from repro.fem.geometry import GeometryEvaluator
from repro.fem.quadrature import tensor_quadrature
from repro.fem.spaces import H1Space, L2Space
from repro.fem.assembly import assemble_kinematic_mass, assemble_thermodynamic_mass
from repro.hydro.corner_force import ForceEngine, SumfactForceEngine
from repro.hydro.workspace import Workspace
from repro.runtime.arena import Arena
from repro.hydro.diagnostics import EnergyBreakdown, compute_energies
from repro.hydro.integrator import RK2AvgIntegrator, make_integrator
from repro.hydro.momentum import MomentumSolver
from repro.hydro.state import HydroState
from repro.hydro.timestep import TimestepController

__all__ = ["SolverOptions", "RunResult", "WorkloadRecorder", "LagrangianHydroSolver"]


def resolve_backend_name(options) -> str:
    """Map (possibly legacy-spelled) options to a node-backend name.

    With `ranks` > 0 this names the per-rank *node* backend the
    distributed layer wraps; otherwise the whole execution policy.
    """
    if options.executor not in ("serial", "parallel"):
        raise ValueError(
            f"unknown executor '{options.executor}' "
            "(choose 'serial' or 'parallel')"
        )
    if options.backend is not None:
        return options.backend
    if options.workers > 0 or options.executor == "parallel":
        return "cpu-parallel"
    if not options.fused:
        return "cpu-serial"
    return "cpu-fused"


def backend_kwargs(options) -> dict:
    """Constructor kwargs for the resolved node backend."""
    name = resolve_backend_name(options)
    if name == "cpu-parallel":
        return {"workers": options.workers or None}
    if name == "hybrid":
        return {"device": options.hybrid_device}
    return {}


@dataclass
class SolverOptions:
    """Tunable solver knobs (deprecated shim — use `repro.api.RunConfig`).

    Direct construction keeps working but routes through the unified
    `RunConfig` (stored as `self.config`) and emits a
    `DeprecationWarning`: new code should call
    `repro.api.run(problem, RunConfig(engine=..., workers=...))`, or
    pass a `RunConfig` straight to `LagrangianHydroSolver`. The full
    field mapping is documented in README.md ("Migrating to repro.api").

    quad_points_1d : quadrature points per dimension (None = the
        problem's default, 2k, which reproduces the paper's shapes).
    pcg_tol : momentum PCG relative tolerance. The tight default is what
        lets total energy conservation reach machine precision.
    """

    quad_points_1d: int | None = None
    cfl: float | None = None
    integrator: str = "rk2avg"
    pcg_tol: float = 1e-14
    pcg_maxiter: int | None = None
    max_steps: int = 100_000
    energy_every: int = 1
    record_dt_history: bool = True
    # Hot-path controls (deprecated spellings): `fused` selects the
    # zero-allocation workspace engine; `executor`/`workers` enable the
    # shared-memory zone-parallel corner-force executor. All three now
    # route into the unified `backend` selection below.
    fused: bool = True
    executor: str = "serial"
    workers: int = 0
    # Unified execution policy: one of repro.backends.BACKEND_NAMES, or
    # None to resolve from the legacy knobs (workers>0 -> cpu-parallel,
    # fused=False -> cpu-serial, else cpu-fused).
    backend: str | None = None
    # Simulated-MPI layer: ranks > 0 wraps the resolved backend in the
    # distributed backend (one node backend per rank); `overlap`
    # controls whether the interface-dof exchange hides under
    # interior-zone evaluation (pricing only, physics identical).
    ranks: int = 0
    overlap: bool = True
    # Rank-stepping mode ("auto"/"loop"/"vectorized") and the optional
    # elastic-rank schedule "step:ranks,..." (see RunConfig).
    rank_step: str = "auto"
    rank_schedule: str | None = None
    # Hybrid-backend knobs: the simulated device pricing the GPU side,
    # the tuning-cache path for warm starts, and the sampling-period
    # length of the in-band scheduler.
    hybrid_device: str = "K20"
    tuning_cache: str | None = None
    tune_period_steps: int = 40
    # Strict tuning-cache mode: corrupt cache files raise the typed
    # TuningCacheCorruptionError instead of warning + starting fresh.
    tuning_strict: bool = False
    # In-band tuning engine: the objective the campaign minimizes and
    # the search strategy that walks the joint configuration space.
    tuning_objective: str = "time"
    tuning_strategy: str = "local"

    def __post_init__(self):
        warn_deprecated("SolverOptions")
        # Route through the consolidated config: this is the canonical
        # form the facade and the RunManifest see.
        self.config = RunConfig.from_solver_options(self)

    @classmethod
    def from_config(cls, config: RunConfig) -> "SolverOptions":
        """Internal lowering of a `RunConfig` (no deprecation warning)."""
        return config.to_solver_options()


@dataclass
class WorkloadRecorder:
    """What one run actually computed, for the hardware cost models."""

    nzones: int = 0
    nqp: int = 0
    ndof_kinematic_zone: int = 0
    ndof_thermo_zone: int = 0
    dim: int = 0
    steps: int = 0
    force_evals: int = 0
    pcg_iterations: int = 0
    pcg_solves: int = 0
    mass_nnz: int = 0
    rejected_steps: int = 0
    wall_force_s: float = 0.0
    wall_cg_s: float = 0.0
    wall_other_s: float = 0.0

    @property
    def pcg_iters_per_solve(self) -> float:
        return self.pcg_iterations / max(self.pcg_solves, 1)


@dataclass
class RunResult:
    """Outcome of `LagrangianHydroSolver.run`."""

    state: HydroState
    steps: int
    energy_history: list[EnergyBreakdown]
    dt_history: list[float]
    workload: WorkloadRecorder
    reached_t_final: bool

    @property
    def energy_change(self) -> float:
        """Total-energy drift over the run (the paper's Table 6 column)."""
        return self.energy_history[-1].total - self.energy_history[0].total


class LagrangianHydroSolver:
    """High-order FEM Lagrangian hydrodynamics on a fixed topology mesh.

    `options` accepts the unified `RunConfig` (preferred), the legacy
    `SolverOptions`, or None for defaults. An optional
    `repro.telemetry.Tracer` makes the solver emit step/phase/kernel
    spans; without one (the default), tracing code never runs.
    """

    def __init__(self, problem, options: SolverOptions | RunConfig | None = None,
                 tracer=None, backend=None, arena: Arena | None = None):
        self.problem = problem
        # The pool allocator behind every workspace this solver creates
        # (engine, span workspaces). A shared arena — e.g. the service
        # warm pool's — lets a retired solver's blocks satisfy the next
        # solver's leases even across mesh-size changes.
        self.arena = arena if arena is not None else Arena(name="solver")
        if isinstance(options, RunConfig):
            options = options.to_solver_options()
        elif options is None:
            with _internal_construction():
                options = SolverOptions()
        self.options = options
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        mesh = problem.mesh
        k = problem.kinematic_order
        self.kinematic = H1Space(mesh, k)
        self.thermodynamic = L2Space(mesh, problem.thermodynamic_order)
        npts = self.options.quad_points_1d or problem.quad_points_1d
        self.quad = tensor_quadrature(mesh.dim, npts)

        # Initial geometry and fields.
        geom_eval = GeometryEvaluator(self.kinematic, self.quad)
        x0 = self.kinematic.node_coords.copy()
        geometry0 = geom_eval.evaluate(x0)
        qp_phys = geom_eval.physical_points(x0).reshape(-1, mesh.dim)
        rho0_qp = np.asarray(problem.rho0(qp_phys), dtype=np.float64).reshape(
            mesh.nzones, self.quad.nqp
        )
        self.eos = problem.make_eos()
        self._rho0_qp = rho0_qp
        self._geometry0 = geometry0
        # The execution backend owns engine construction: it calls back
        # into `_make_engine` for the flavour it needs and supplies the
        # force evaluator the integrator will run. `ranks` > 0 wraps the
        # resolved node backend in the simulated-MPI distributed layer;
        # a pre-built backend instance wins over both.
        from repro.backends import make_backend

        if backend is not None:
            self.backend = backend
        elif self.options.ranks > 0:
            from repro.backends.distributed import DistributedBackend

            self.backend = DistributedBackend(
                self.options.ranks,
                node=self._resolve_backend_name(),
                node_kwargs=self._backend_kwargs(),
                overlap=self.options.overlap,
                rank_step=getattr(self.options, "rank_step", "auto"),
                rank_schedule=getattr(self.options, "rank_schedule", None),
            )
        else:
            self.backend = make_backend(
                self._resolve_backend_name(),
                **self._backend_kwargs(),
            )
        self.backend.attach(self)
        self.engine = self.backend.engine

        # Mass matrices (constant in time, assembled once). The sumfact
        # backend assembles its blocks through the factorized chain.
        use_sumfact = bool(getattr(self.backend, "sumfact", False))
        self.mass_v = assemble_kinematic_mass(
            self.kinematic, self.quad, rho0_qp, geometry0, sumfact=use_sumfact
        )
        self.mass_e = assemble_thermodynamic_mass(
            self.thermodynamic, self.quad, rho0_qp, geometry0, sumfact=use_sumfact
        )

        self.bc = problem.boundary_conditions(self.kinematic)
        self.momentum = MomentumSolver(
            self.mass_v, self.bc, tol=self.options.pcg_tol, maxiter=self.options.pcg_maxiter
        )
        from repro.runtime.instrumentation import PhaseTimers

        self.integrator = make_integrator(
            self.options.integrator, self.engine, self.momentum, self.mass_e,
            timers=PhaseTimers(tracer=self.tracer),
        )
        # Phase timers shared with the integrator: "force" and "cg" are
        # metered inside it, the solver adds the derived "other" phase so
        # the breakdown (PhaseTimers.to_dict()) sums to total wall time.
        # With a tracer attached, each metered phase is also a span.
        self.timers = self.integrator.timers

        self.executor = getattr(self.backend, "executor", None)
        if self.executor is None:
            node0 = getattr(self.backend, "node0", None)
            self.executor = getattr(node0, "executor", None)
        self.integrator.force_fn = self.backend.force_fn

        # Late backend hook: the distributed backend builds everything
        # that needs the mass matrices / momentum solver / integrator
        # (partition, communicator, rank-local operators) here.
        finalize = getattr(self.backend, "finalize", None)
        if finalize is not None:
            finalize(self)

        self.scheduler = None
        # Everything time-dependent (state, dt controller, workload
        # accounting, scheduler) lives behind `reset()` so a pooled
        # solver can be rewound to its just-constructed configuration
        # and re-run bit-identically without repaying spaces, mass
        # assembly, or backend construction.
        self.reset()

    def reset(self) -> None:
        """Rewind to the just-constructed state (warm solver reuse).

        Rebuilds the initial fields from the problem definition, a fresh
        dt controller and workload recorder, zeroed phase timers, and a
        fresh in-band scheduler (which re-reads the tuning cache, so a
        pooled hybrid solver warm-starts from the previous job's
        winners). Everything expensive — spaces, quadrature, mass
        matrices, backend/executor, momentum solver — is untouched: a
        reset + `run` reproduces a cold solver's trajectory bit-for-bit
        at a fraction of the setup cost.
        """
        problem = self.problem
        mesh = problem.mesh

        # Backend rewind first: a distributed backend restores its
        # initial rank count/partition (undoing elastic resizes or rank
        # exclusions from the previous job) and starts fresh
        # communication accounting.
        backend_reset = getattr(self.backend, "reset", None)
        if backend_reset is not None:
            backend_reset()

        # Hybrid execution runs under the in-band scheduler: per-step
        # hook in `_run_impl`, winners persisted through the tuning
        # cache (warm-starting identical later runs). The backend
        # nominates its own tuning target — a single hybrid backend is
        # its own; a distributed all-hybrid fleet tunes as one.
        if self.scheduler is not None:
            self.scheduler.finalize()
        self.scheduler = None
        tuning = getattr(self.backend, "tuning_target", None)
        target = tuning() if tuning is not None else None
        if target is not None:
            from repro.sched import OnlineScheduler, SchedulerConfig
            from repro.tuning.cache import TuningCache

            cache = (
                TuningCache(
                    self.options.tuning_cache,
                    strict=getattr(self.options, "tuning_strict", False),
                )
                if self.options.tuning_cache
                else None
            )
            self.scheduler = OnlineScheduler(
                target,
                cache=cache,
                config=SchedulerConfig(
                    steps_per_period=self.options.tune_period_steps,
                    objective=getattr(self.options, "tuning_objective", "time"),
                    strategy=getattr(self.options, "tuning_strategy", "local"),
                ),
                tracer=self.tracer,
            )

        # Initial state.
        x0 = self.kinematic.node_coords.copy()
        v0 = np.asarray(problem.v0(x0), dtype=np.float64)
        self.bc.apply_to_field(v0)
        l2_nodes = self._thermo_node_coords(x0)
        e0 = np.asarray(problem.initial_energy(self.thermodynamic, l2_nodes), dtype=np.float64)
        self.state = HydroState(v0, e0, x0, 0.0)
        self._last_dt_est = 0.0

        self.controller = TimestepController(
            cfl=self.options.cfl if self.options.cfl is not None else problem.default_cfl
        )
        self.workload = WorkloadRecorder(
            nzones=mesh.nzones,
            nqp=self.quad.nqp,
            ndof_kinematic_zone=self.kinematic.ndof_per_zone,
            ndof_thermo_zone=self.thermodynamic.ndof_per_zone,
            dim=mesh.dim,
            mass_nnz=self.mass_v.nnz,
        )
        self.timers.reset()

    # -- Execution backend -------------------------------------------------------

    def _resolve_backend_name(self) -> str:
        """Map the (possibly legacy-spelled) options to a backend name."""
        return resolve_backend_name(self.options)

    def _backend_kwargs(self) -> dict:
        return backend_kwargs(self.options)

    def _make_engine(self, fused: bool, sumfact: bool = False) -> ForceEngine:
        """Build one `ForceEngine` flavour (backend construction hook)."""
        cls = SumfactForceEngine if sumfact else ForceEngine
        kwargs = {} if sumfact else {"fused": fused}
        return cls(
            self.kinematic,
            self.thermodynamic,
            self.quad,
            self.eos,
            self._rho0_qp,
            self._geometry0,
            viscosity=self.problem.viscosity(),
            workspace=Workspace(arena=self.arena),
            tracer=self.tracer,
            **kwargs,
        )

    def release_workspaces(self) -> None:
        """Return every engine workspace lease to the arena.

        Only for solver retirement (service warm-pool eviction): the
        engine's buffers become invalid, but a shared arena can hand the
        blocks to the next pooled solver. A closed-but-live solver (see
        `close`) must NOT release — `close` keeps the engine usable.
        """
        engine = getattr(self, "engine", None)
        if engine is None:
            return
        engine.workspace.close()
        for ws in getattr(engine, "_span_ws", {}).values():
            ws.close()

    def swap_backend(self, name: str) -> None:
        """Replace the execution backend mid-run (resilience fallback).

        Builds and attaches the new backend, repoints the integrator's
        force evaluator, closes the old backend's resources, and stops
        any in-band scheduler (its pricing model described hardware that
        is no longer carrying the run). Physics is unaffected: every
        backend evaluates the same arithmetic.
        """
        old = self.backend
        from repro.backends import make_backend

        new = make_backend(name)
        new.attach(self)
        self.backend = new
        self.engine = new.engine
        self.executor = getattr(new, "executor", None)
        self.integrator.force_fn = new.force_fn
        if old.name == "distributed":
            # Leaving the simulated-MPI layer: restore the serial
            # momentum operator and the default RHS assembly.
            self.momentum = MomentumSolver(
                self.mass_v, self.bc,
                tol=self.options.pcg_tol, maxiter=self.options.pcg_maxiter,
            )
            self.integrator.momentum = self.momentum
            self.integrator.assemble_fn = None
        old.close()
        if self.scheduler is not None:
            self.scheduler.reset()

    def close(self) -> None:
        """Shut down the backend (worker pools + shared memory)."""
        if self.scheduler is not None:
            self.scheduler.finalize()
        if self.backend is not None:
            self.backend.close()
        if self.executor is not None:
            self.executor = None
            self.integrator.force_fn = self.engine.compute

    def __enter__(self) -> "LagrangianHydroSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _thermo_node_coords(self, x: np.ndarray) -> np.ndarray:
        """Physical positions of thermodynamic dofs: (nz, ndz_l2, dim)."""
        ref = self.thermodynamic.element.dof_coords
        vals = self.kinematic.element.tabulate(ref)  # (ndz_l2, ndz_h1)
        xz = self.kinematic.gather(x)
        return np.einsum("ni,zid->znd", vals, xz)

    # -- Diagnostics ------------------------------------------------------------

    def energies(self, state: HydroState | None = None) -> EnergyBreakdown:
        return compute_energies(state or self.state, self.mass_v, self.mass_e)

    def density_at_points(self, state: HydroState | None = None) -> np.ndarray:
        """(nzones, nqp) density from strong mass conservation."""
        s = state or self.state
        geo = self.engine.point_geometry(s.x)
        return self.engine.mass_qp / geo.det

    # -- Time stepping ------------------------------------------------------------

    def initialize_dt(self) -> float:
        """Step 3: initial dt from a corner-force estimate at t=0."""
        before = self.timers.total("force")
        with self.timers.measure("force"):
            force = self.integrator.force_fn(self.state)
        elapsed = self.timers.total("force") - before
        self.workload.force_evals += 1
        self.workload.wall_force_s += elapsed
        if not force.valid or force.dt_est <= 0:
            raise RuntimeError("initial configuration is invalid")
        return self.controller.initialize(force.dt_est)

    def step(self, dt: float) -> bool:
        """Attempt one step of size dt; returns acceptance.

        With a tracer attached the whole attempt is one "step" span;
        the integrator's force/cg phases nest inside it.
        """
        if self.tracer is None:
            return self._step_impl(dt)
        with self.tracer.span("step", category="step"):
            return self._step_impl(dt)

    def _step_impl(self, dt: float) -> bool:
        force_before = self.timers.total("force")
        cg_before = self.timers.total("cg")
        t0 = time.perf_counter()
        result = self.integrator.step(self.state, dt)
        elapsed = time.perf_counter() - t0
        self.workload.force_evals += result.force_evals
        self.workload.pcg_iterations += result.pcg_iterations
        self.workload.pcg_solves += 2 * self.state.dim  # two stages x dim
        # Phase split: the integrator meters its force and CG phases;
        # everything else in the step (assembly, state updates, energy
        # RHS, validity checks) is the "other" remainder, so the three
        # buckets sum to the measured step wall time.
        force_s = self.timers.total("force") - force_before
        cg_s = self.timers.total("cg") - cg_before
        other_s = max(elapsed - force_s - cg_s, 0.0)
        self.workload.wall_force_s += force_s
        self.workload.wall_cg_s += cg_s
        self.workload.wall_other_s += other_s
        self.timers.add("other", other_s)
        if not result.accepted:
            self.workload.rejected_steps += 1
            return False
        self.state = result.state
        self._last_dt_est = result.dt_est
        self.workload.steps += 1
        return True

    def run(self, t_final: float | None = None, max_steps: int | None = None) -> RunResult:
        """March to t_final with adaptive dt, recording diagnostics.

        With a tracer attached and no span already open, the whole march
        becomes the root "run" span; when a driver (`ResilientDriver`,
        `repro.api.run`) already opened one, the solver nests under it.
        """
        if self.tracer is not None and self.tracer.current is None:
            with self.tracer.span(
                "run", category="run",
                meta={"problem": getattr(self.problem, "name", "")},
            ):
                return self._run_impl(t_final, max_steps)
        return self._run_impl(t_final, max_steps)

    def _run_impl(self, t_final: float | None, max_steps: int | None) -> RunResult:
        t_final = t_final if t_final is not None else self.problem.default_t_final
        max_steps = max_steps if max_steps is not None else self.options.max_steps
        energy_history = [self.energies()]
        dt_history: list[float] = []
        # A solver carrying controller state (restored from a checkpoint,
        # or continuing a previous run) keeps its dt ramp — this is what
        # makes a restart reproduce the uninterrupted run bit-for-bit.
        if self.controller.dt > 0 and getattr(self, "_last_dt_est", 0.0) > 0:
            dt = self.controller.dt
        else:
            dt = self.initialize_dt()
            self._last_dt_est = dt / self.controller.cfl
        steps = 0
        while self.state.t < t_final - 1e-15 and steps < max_steps:
            dt = self.controller.propose(self._last_dt_est, self.state.t, t_final)
            if dt <= 0:
                break
            t0 = time.perf_counter()
            while not self.step(dt):
                dt = self.controller.reject()
            steps += 1
            # In-band scheduling runs between steps (outside the step
            # span): period boundaries, campaign advances, ratio moves.
            if self.scheduler is not None:
                self.scheduler.on_step(time.perf_counter() - t0)
            # Backend per-step hook: the distributed backend fires
            # scheduled elastic-rank resizes here, between steps.
            backend_on_step = getattr(self.backend, "on_step", None)
            if backend_on_step is not None:
                backend_on_step(self.workload.steps)
            if self.options.record_dt_history:
                dt_history.append(dt)
            if steps % self.options.energy_every == 0:
                energy_history.append(self.energies())
        if self.scheduler is not None:
            self.scheduler.finalize()
        if energy_history[-1].t != self.state.t:
            energy_history.append(self.energies())
        return RunResult(
            state=self.state,
            steps=steps,
            energy_history=energy_history,
            dt_history=dt_history,
            workload=self.workload,
            reached_t_final=self.state.t >= t_final - 1e-12,
        )
