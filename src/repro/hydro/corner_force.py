"""Corner force assembly — the computational hot spot of BLAST.

Implements equation (4)/(5)/(6): per zone z, the corner force matrix

    F_z = A_z B^T,
    (A_z)_{(i,d),k} = alpha_k [ sigma_hat(q_k) : J_z^{-1}(q_k)
                                 grad_hat w_i(q_k) e_d ] |J_z(q_k)|,
    (B)_{j,k} = phi_hat_j(q_k),

followed by the two contractions the time integrator needs: -F.1
(momentum right-hand side, kernel 8) and F^T v (energy right-hand side,
kernel 10).

Two interchangeable engines are provided:

* `ForceEngine` — the *batched* formulation of the paper's GPU redesign:
  every stage is a vectorized contraction over all zones and quadrature
  points at once, phase-split exactly along the kernel boundaries of the
  paper's Table 2 so the hardware cost models can meter each kernel.
* `corner_force_loops` — the original CPU structure (outer loop over
  zones, inner loop over quadrature points, scalar math per point),
  kept as the independently-written reference that the batched path is
  validated against.

`ForceEngine` itself has two modes. `fused=False` is the historical
allocate-per-call formulation. `fused=True` (the default) is the
zero-allocation hot path mirroring the paper's register-blocked GPU
kernels: all einsum contraction paths are planned once at construction,
every intermediate writes into a `Workspace` buffer, geometry is
evaluated once per RK2 stage into a read-only per-`x` cache, and the
corner-force matrix is produced by a single fused five-operand
contraction. The two modes agree to a few ULPs (~1e-15 relative; the
fused contractions reorder mathematically-identical floating point).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fem.geometry import GeometryAtPoints, GeometryEvaluator
from repro.fem.quadrature import QuadratureRule
from repro.fem.spaces import H1Space, L2Space
from repro.hydro.state import HydroState
from repro.hydro.viscosity import ViscosityCoefficients, ViscosityKernel, tensor_viscosity
from repro.hydro.workspace import Workspace
from repro.kernels.base import span_label
from repro.linalg.smallmat import batched_adjugate, batched_det
from repro.linalg.svd_small import batched_singular_values
from repro.telemetry.tracer import NULL_SPAN

__all__ = [
    "ForceEngine",
    "ForceResult",
    "PointData",
    "SumfactForceEngine",
    "SumfactStress",
    "corner_force_loops",
]

# Table 2 span names for the kernel-aligned stages of the fused path:
# geometry (adjugate/det/SVD), pointwise stress (EoS + grad v + viscosity),
# and the fused A_z B^T contraction (kernels 5/6/7 in one einsum).
_K_GEOMETRY = span_label(1)
_K_STRESS = span_label(2)
_K_FORCE = span_label(7)


@dataclass
class PointData:
    """Per-(zone, quadrature point) thermodynamic fields."""

    rho: np.ndarray
    e: np.ndarray
    pressure: np.ndarray
    sound_speed: np.ndarray
    grad_v: np.ndarray
    sigma: np.ndarray
    mu_max: np.ndarray


@dataclass
class ForceResult:
    """Output of one corner-force evaluation.

    Fz has layout (nzones, ndof_h1_zone, dim, ndof_l2_zone); the paper's
    2D matrix view flattens (i, d) into the row index (e.g. 81 x 8 for
    3D Q2-Q1 zones).
    """

    Fz: np.ndarray
    geometry: GeometryAtPoints
    points: PointData
    dt_est: float
    valid: bool = True
    Az: np.ndarray | None = field(default=None, repr=False)


class ForceEngine:
    """Batched corner-force evaluator (the redesigned formulation).

    Parameters
    ----------
    kinematic, thermodynamic : the Qk / Qk-1 spaces.
    quad : shared quadrature rule (2k points per dimension reproduces
        the paper's operator shapes).
    eos : object with pressure(rho, e) and sound_speed(rho, e).
    rho0_qp : (nzones, nqp) initial density at quadrature points.
    geometry0 : initial-configuration geometry (sets the conserved
        pointwise mass rho0 |J0|).
    viscosity : tensor artificial viscosity coefficients.
    fused : select the zero-allocation workspace path (default) or the
        historical allocate-per-call path.
    workspace : buffer pool to use for the fused path (a private one is
        created when omitted).
    tracer : optional enabled `repro.telemetry.Tracer`; when given, the
        fused path emits one "kernel"-category span per Table 2 stage
        (geometry / pointwise stress / fused contraction).
    """

    def __init__(
        self,
        kinematic: H1Space,
        thermodynamic: L2Space,
        quad: QuadratureRule,
        eos,
        rho0_qp: np.ndarray,
        geometry0: GeometryAtPoints,
        viscosity: ViscosityCoefficients | None = None,
        fused: bool = True,
        workspace: Workspace | None = None,
        tracer=None,
    ):
        if kinematic.mesh is not thermodynamic.mesh:
            raise ValueError("spaces must share a mesh")
        self.kinematic = kinematic
        self.thermodynamic = thermodynamic
        self.quad = quad
        self.eos = eos
        self.viscosity = viscosity or ViscosityCoefficients()
        self.geom_eval = GeometryEvaluator(kinematic, quad)
        self.grad_table = self.geom_eval.grad_table  # (nqp, ndzH1, dim)
        self.B = thermodynamic.element.tabulate_B(quad)  # (ndzL2, nqp)
        self.basis_l2 = thermodynamic.element.tabulate(quad.points)  # (nqp, ndzL2)
        rho0_qp = np.asarray(rho0_qp, dtype=np.float64)
        if rho0_qp.shape != (kinematic.mesh.nzones, quad.nqp):
            raise ValueError("rho0_qp must be (nzones, nqp)")
        if not geometry0.check_valid():
            raise ValueError("initial geometry is tangled (det J0 <= 0)")
        # Strong mass conservation: rho(q,t) |J(q,t)| = rho0 |J0| forever.
        self.mass_qp = rho0_qp * geometry0.det
        self.order = kinematic.order
        self.fused = bool(fused)
        self.workspace = workspace if workspace is not None else Workspace()
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._ldof = kinematic.ldof
        nz = kinematic.mesh.nzones
        nqp = quad.nqp
        ndz = kinematic.ndof_per_zone
        ndl2 = thermodynamic.ndof_per_zone
        dim = kinematic.dim
        self._fz_shape = (nz, ndz, dim, ndl2)
        # (ndl2, nqp) contiguous for the e interpolation matmul.
        self.basis_l2_T = np.ascontiguousarray(self.basis_l2.T)
        # Per-x geometry cache: two rotating slots keyed on array identity,
        # so the two most recent stage geometries stay live (RK2Avg needs
        # exactly that: the mid-step eval plus the end-of-step check, the
        # latter re-used as the next step's begin-of-step geometry).
        self._geo_cache: list[tuple[object, GeometryAtPoints] | None] = [None, None]
        self._geo_mru = 0
        self._fz_slot = 0
        # Per-span workspaces / sliced EOS for `compute_fused_span`,
        # keyed by (lo, hi) so repeated evaluations of the same zone
        # span are allocation-free after the first call.
        self._span_ws: dict[tuple[int, int], Workspace] = {}
        self._span_eos: dict[tuple[int, int], object] = {}
        # Contraction paths planned once for the fixed batch shapes
        # (np.broadcast_to gives shape-only stand-ins, no memory).

        def shaped(*shape):
            return np.broadcast_to(np.float64(0.0), shape)

        self._path_jac = np.einsum_path(
            "zid,kie->zkde", shaped(nz, ndz, dim), self.grad_table, optimize="optimal"
        )[0]
        self._path_gv = np.einsum_path(
            "zid,kir,zkre->zkde",
            shaped(nz, ndz, dim), self.grad_table, shaped(nz, nqp, dim, dim),
            optimize="optimal",
        )[0]
        self._path_fz = np.einsum_path(
            "zkde,zkre,kir,k,jk->zidj",
            shaped(nz, nqp, dim, dim), shaped(nz, nqp, dim, dim),
            self.grad_table, quad.weights, self.B,
            optimize="optimal",
        )[0]
        self._path_ftv = np.einsum_path(
            "zidj,zid->zj", shaped(*self._fz_shape), shaped(nz, ndz, dim),
            optimize="optimal",
        )[0]
        self._visc_kernel = ViscosityKernel(self.viscosity, self.order)
        self._visc_kernel.plan(nz, nqp, dim)

    # -- Kernel-aligned stages ---------------------------------------------

    def point_geometry(self, x: np.ndarray) -> GeometryAtPoints:
        """Kernels 1/3: Jacobians, determinants, adjugates at all points.

        On the fused path this is cached per `x` array (identity-keyed):
        each RK2 stage evaluates geometry exactly once and every consumer
        — corner force, viscosity length scales, dt control, validity
        checks — reads the same frozen `GeometryAtPoints`. The returned
        arrays are read-only; callers must treat `x` as immutable once
        passed in (all integrators allocate fresh position arrays).
        """
        if not self.fused:
            return self.geom_eval.evaluate(x)
        for slot in (0, 1):
            entry = self._geo_cache[slot]
            if entry is not None and entry[0] is x:
                self._geo_mru = slot
                return entry[1]
        slot = 1 - self._geo_mru
        ws = self.workspace
        nz, ndz, dim, _ = self._fz_shape
        nqp = self.quad.nqp
        xz = ws.get("xz", (nz, ndz, dim))
        np.take(x, self._ldof, axis=0, out=xz)
        jac = ws.get(f"geo{slot}.jac", (nz, nqp, dim, dim))
        np.einsum("zid,kie->zkde", xz, self.grad_table, out=jac, optimize=self._path_jac)
        det = ws.get(f"geo{slot}.det", (nz, nqp))
        batched_det(jac, out=det)
        adj = ws.get(f"geo{slot}.adj", (nz, nqp, dim, dim))
        batched_adjugate(jac, out=adj)
        geo = GeometryAtPoints(jac, det=det, adj=adj)
        if geo.check_valid():
            inv = ws.get(f"geo{slot}.inv", (nz, nqp, dim, dim))
            np.divide(adj, det[..., None, None], out=inv)
            geo.set_inv(inv)
        geo.freeze()
        self._geo_cache[slot] = (x, geo)
        self._geo_mru = slot
        return geo

    def velocity_gradient(self, v: np.ndarray, geo: GeometryAtPoints) -> np.ndarray:
        """Kernel 3: physical velocity gradient at all points.

        grad_v[z,k,d,e] = sum_i v_z[i,d] (J^{-T} grad_hat w_i)_e.
        Uses adj(J)/det to avoid forming explicit inverses.
        """
        vz = self.kinematic.gather(v)  # (nz, ndz, dim)
        ref_grad = np.einsum("zid,kir->zkdr", vz, self.grad_table, optimize=True)
        return np.einsum("zkdr,zkre->zkde", ref_grad, geo.adj, optimize=True) / geo.det[..., None, None]

    def point_thermo(self, e: np.ndarray, geo: GeometryAtPoints) -> tuple[np.ndarray, np.ndarray]:
        """Density (mass conservation) and energy interpolated at points."""
        rho = self.mass_qp / geo.det
        ez = self.thermodynamic.gather(e)  # (nz, ndzL2)
        e_qp = np.einsum("kj,zj->zk", self.basis_l2, ez, optimize=True)
        return rho, e_qp

    def point_stress(self, state: HydroState, geo: GeometryAtPoints) -> PointData:
        """Kernels 2/4: EOS, artificial viscosity, total stress sigma_hat."""
        rho, e_qp = self.point_thermo(state.e, geo)
        p = self.eos.pressure(rho, e_qp)
        cs = self.eos.sound_speed(rho, e_qp)
        grad_v = self.velocity_gradient(state.v, geo)
        sigma_visc, mu_max = tensor_viscosity(
            grad_v, geo.jac, rho, cs, self.order, self.viscosity
        )
        dim = geo.jac.shape[-1]
        sigma = sigma_visc - p[..., None, None] * np.eye(dim)
        return PointData(rho, e_qp, p, cs, grad_v, sigma, mu_max)

    def assemble_Az(self, points: PointData, geo: GeometryAtPoints) -> np.ndarray:
        """Kernels 5/6: A_z via batched DIM x DIM products.

        Az[z,k,i,d] = alpha_k sum_e sigma[z,k,d,e]
                       sum_r gradW[k,i,r] adj(J)[z,k,r,e]
        (|J| J^{-1} = adj(J) keeps the volume factor of eq. (5) implicit).
        """
        sig_adj = np.einsum("zkde,zkre->zkdr", points.sigma, geo.adj, optimize=True)
        az = np.einsum("kir,zkdr->zkid", self.grad_table, sig_adj, optimize=True)
        return az * self.quad.weights[None, :, None, None]

    def assemble_Fz(self, Az: np.ndarray) -> np.ndarray:
        """Kernel 7: F_z = A_z B^T, batched over zones."""
        return np.einsum("zkid,jk->zidj", Az, self.B, optimize=True)

    def force_times_one(self, Fz: np.ndarray) -> np.ndarray:
        """Kernel 8: per-zone -F.1 contribution (before global scatter)."""
        if self.fused and Fz.shape == self._fz_shape:
            out = self.workspace.get("rhs_mom_z", Fz.shape[:-1])
            np.sum(Fz, axis=-1, out=out)
            np.negative(out, out=out)
            return out
        return -Fz.sum(axis=-1)

    def force_transpose_times_v(self, Fz: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Kernel 10: per-zone F^T v (flat L2 layout)."""
        if self.fused and Fz.shape == self._fz_shape:
            ws = self.workspace
            vz = ws.get("vz_energy", Fz.shape[:3])
            np.take(v, self._ldof, axis=0, out=vz)
            out = ws.get("rhs_energy_z", (Fz.shape[0], Fz.shape[-1]))
            np.einsum("zidj,zid->zj", Fz, vz, out=out, optimize=self._path_ftv)
            return self.thermodynamic.scatter(out)
        vz = self.kinematic.gather(v)
        out = np.einsum("zidj,zid->zj", Fz, vz, optimize=True)
        return self.thermodynamic.scatter(out)

    def _dt_points(self, points: PointData, geo: GeometryAtPoints) -> np.ndarray:
        """Per-point CFL limits, (nzones, nqp).

        h = sigma_min(J) / order is the minimal directional zone length
        (the SVD of kernel 1); the viscous term adds mu / (rho h) to the
        acoustic speed, following the reference scheme.
        """
        smin = batched_singular_values(geo.jac)[..., 0]
        h = np.maximum(smin / max(self.order, 1), 1e-300)
        speed = points.sound_speed + 2.0 * points.mu_max / (points.rho * h)
        return h / np.maximum(speed, 1e-300)

    def estimate_dt(self, points: PointData, geo: GeometryAtPoints) -> float:
        """CFL-limited time step from per-point wave speeds."""
        return float(self._dt_points(points, geo).min())

    def estimate_dt_zones(self, points: PointData, geo: GeometryAtPoints) -> np.ndarray:
        """Per-zone CFL minima, (nzones,).

        The vectorized rank layer reduces these over a rank axis to get
        every simulated rank's local dt in one pass; min is exactly
        associative, so the global min over rank minima is bitwise the
        same float `estimate_dt` returns.
        """
        return self._dt_points(points, geo).min(axis=1)

    def compute_local(self, state: HydroState, zone_ids: np.ndarray) -> ForceResult:
        """Corner-force evaluation restricted to a zone subset.

        The rank-local computation of the paper's MPI layer: every
        quantity is per-zone independent, so a rank evaluates exactly
        its own zones' F_z (returned with leading dimension
        len(zone_ids)) plus the *local* dt estimate that feeds the
        global min reduction.
        """
        zone_ids = np.asarray(zone_ids, dtype=np.int64)
        xz = self.kinematic.gather(state.x)[zone_ids]
        geo = self.geom_eval.evaluate_local(xz)
        nloc = zone_ids.size
        if nloc == 0 or not geo.check_valid():
            empty = np.zeros(
                (nloc, self.kinematic.ndof_per_zone, self.kinematic.dim,
                 self.thermodynamic.ndof_per_zone)
            )
            return ForceResult(empty, geo, None, 0.0, valid=nloc == 0)
        vz = self.kinematic.gather(state.v)[zone_ids]
        ez = self.thermodynamic.gather(state.e)[zone_ids]
        rho = self.mass_qp[zone_ids] / geo.det
        e_qp = np.einsum("kj,zj->zk", self.basis_l2, ez, optimize=True)
        eos = self._eos_for_zones(zone_ids)
        p = eos.pressure(rho, e_qp)
        cs = eos.sound_speed(rho, e_qp)
        ref_grad = np.einsum("zid,kir->zkdr", vz, self.grad_table, optimize=True)
        grad_v = (
            np.einsum("zkdr,zkre->zkde", ref_grad, geo.adj, optimize=True)
            / geo.det[..., None, None]
        )
        sigma_visc, mu_max = tensor_viscosity(
            grad_v, geo.jac, rho, cs, self.order, self.viscosity
        )
        dim = geo.jac.shape[-1]
        sigma = sigma_visc - p[..., None, None] * np.eye(dim)
        points = PointData(rho, e_qp, p, cs, grad_v, sigma, mu_max)
        Az = self.assemble_Az(points, geo)
        Fz = self.assemble_Fz(Az)
        dt_est = self.estimate_dt(points, geo)
        return ForceResult(Fz, geo, points, dt_est, valid=True)

    def _eos_for_zones(self, zone_ids: np.ndarray):
        """Slice a per-zone-gamma EOS down to a zone subset."""
        gamma = getattr(self.eos, "gamma", None)
        if gamma is None or np.ndim(gamma) == 0:
            return self.eos
        g = np.asarray(gamma).reshape(self.kinematic.mesh.nzones, -1)
        return type(self.eos)(g[zone_ids])

    def _eos_for_span(self, lo: int, hi: int):
        """Span-sliced view of a per-zone-gamma EOS, cached per span."""
        gamma = getattr(self.eos, "gamma", None)
        if gamma is None or np.ndim(gamma) == 0:
            return self.eos
        eos = self._span_eos.get((lo, hi))
        if eos is None:
            g = np.asarray(gamma).reshape(self.kinematic.mesh.nzones, -1)
            eos = self._span_eos[(lo, hi)] = type(self.eos)(g[lo:hi])
        return eos

    def prepare_spans(self, spans) -> None:
        """Pre-create span workspaces on the shared arena.

        Called by the zone-parallel executor *before* forking workers, so
        every span's buffers are leased (and cache-warmed) in the parent
        and the children inherit them copy-on-write instead of each
        paying first-call allocation.
        """
        for lo, hi in spans:
            if (lo, hi) not in self._span_ws:
                self._span_ws[(lo, hi)] = Workspace(arena=self.workspace.arena)

    def compute_fused_span(self, state: HydroState, lo: int, hi: int) -> ForceResult:
        """Fused evaluation restricted to the contiguous zone span [lo, hi).

        The per-zone arithmetic is exactly `_compute_fused`'s: the same
        contractions over the same construction-time `einsum_path`s,
        applied to a row slice of each batched operand. Every contraction
        reduces within a zone (never across zones), so the result is
        *schedule-deterministic*: a fixed partition of the mesh into
        spans always produces the same bits, no matter how the spans are
        distributed over workers — the invariant the zone-parallel
        executor's bitwise tests rest on. The trivial span (0, nzones)
        is bitwise identical to `compute`. Sub-spans agree with the
        full-batch rows to the final contraction's BLAS blocking (the
        batch extent steers dgemm's accumulation order), in practice a
        ~1e-18 absolute reordering — far inside the engine's 1e-13
        parity budget.

        Each distinct span keeps a private `Workspace`, so steady-state
        evaluations allocate nothing and never thrash the full-batch
        buffers.
        """
        nz, ndz, dim, ndl2 = self._fz_shape
        if not (0 <= lo <= hi <= nz):
            raise ValueError(f"span [{lo}, {hi}) out of range for {nz} zones")
        nspan = hi - lo
        if nspan == 0:
            geo = GeometryAtPoints(np.zeros((0, self.quad.nqp, dim, dim)))
            return ForceResult(np.zeros((0, ndz, dim, ndl2)), geo, None, 0.0, valid=True)
        ws = self._span_ws.get((lo, hi))
        if ws is None:
            ws = self._span_ws[(lo, hi)] = Workspace(arena=self.workspace.arena)
        nqp = self.quad.nqp
        xz = ws.get("xz", (nspan, ndz, dim))
        np.take(state.x, self._ldof[lo:hi], axis=0, out=xz)
        jac = ws.get("jac", (nspan, nqp, dim, dim))
        np.einsum("zid,kie->zkde", xz, self.grad_table, out=jac, optimize=self._path_jac)
        det = ws.get("det", (nspan, nqp))
        batched_det(jac, out=det)
        adj = ws.get("adj", (nspan, nqp, dim, dim))
        batched_adjugate(jac, out=adj)
        geo = GeometryAtPoints(jac, det=det, adj=adj)
        if not geo.check_valid():
            return ForceResult(
                np.zeros((nspan, ndz, dim, ndl2)), geo, None, 0.0, valid=False
            )
        inv = ws.get("inv", (nspan, nqp, dim, dim))
        np.divide(adj, det[..., None, None], out=inv)
        geo.set_inv(inv)
        rho = ws.get("rho", (nspan, nqp))
        np.divide(self.mass_qp[lo:hi], det, out=rho)
        ez = self.thermodynamic.gather(state.e)[lo:hi]
        e_qp = ws.get("e_qp", (nspan, nqp))
        np.matmul(ez, self.basis_l2_T, out=e_qp)
        eos = self._eos_for_span(lo, hi)
        p = eos.pressure(rho, e_qp)
        cs = eos.sound_speed(rho, e_qp)
        vz = ws.get("vz", (nspan, ndz, dim))
        np.take(state.v, self._ldof[lo:hi], axis=0, out=vz)
        grad_v = ws.get("grad_v", (nspan, nqp, dim, dim))
        np.einsum(
            "zid,kir,zkre->zkde", vz, self.grad_table, inv,
            out=grad_v, optimize=self._path_gv,
        )
        sigma, mu_max = self._visc_kernel.compute(grad_v, geo, rho, cs, ws)
        for d in range(dim):
            sigma[..., d, d] -= p
        Fz = ws.get("Fz", (nspan, ndz, dim, ndl2))
        np.einsum(
            "zkde,zkre,kir,k,jk->zidj",
            sigma, geo.adj, self.grad_table, self.quad.weights, self.B,
            out=Fz, optimize=self._path_fz,
        )
        points = PointData(rho, e_qp, p, cs, grad_v, sigma, mu_max)
        dt_est = self.estimate_dt(points, geo)
        return ForceResult(Fz, geo, points, dt_est, valid=True)

    def compute(self, state: HydroState, keep_az: bool = False) -> ForceResult:
        """Full corner-force evaluation at the given state.

        Dispatches to the fused zero-allocation path unless the engine
        was built with fused=False or the caller wants the intermediate
        A_z (a debugging/analysis flag the fused contraction never
        materializes).
        """
        if self.fused and not keep_az:
            return self._compute_fused(state)
        return self._compute_legacy(state, keep_az)

    def _compute_fused(self, state: HydroState) -> ForceResult:
        """Workspace-backed evaluation: planned contractions, no
        steady-state allocations, single fused F_z einsum.

        F_z[z,i,d,j] = sum_k alpha_k B[j,k] sum_e sigma[z,k,d,e]
                        sum_r gradW[k,i,r] adj(J)[z,k,r,e]
        fuses kernels 5/6/7 into one five-operand contraction over the
        path planned at construction — the analogue of the paper's
        register-blocked kernel fusion (intermediates never touch
        "off-chip" memory, i.e. fresh heap arrays).
        """
        ws = self.workspace
        nz, ndz, dim, ndl2 = self._fz_shape
        tr = self.tracer
        with tr.span(_K_GEOMETRY, category="kernel") if tr else NULL_SPAN:
            geo = self.point_geometry(state.x)
        if not geo.check_valid():
            return ForceResult(
                Fz=np.zeros(self._fz_shape),
                geometry=geo,
                points=None,
                dt_est=0.0,
                valid=False,
            )
        with tr.span(_K_STRESS, category="kernel") if tr else NULL_SPAN:
            rho = ws.get("rho", (nz, self.quad.nqp))
            np.divide(self.mass_qp, geo.det, out=rho)
            ez = self.thermodynamic.gather(state.e)  # reshape view, no copy
            e_qp = ws.get("e_qp", (nz, self.quad.nqp))
            np.matmul(ez, self.basis_l2_T, out=e_qp)
            p = self.eos.pressure(rho, e_qp)
            cs = self.eos.sound_speed(rho, e_qp)
            vz = ws.get("vz", (nz, ndz, dim))
            np.take(state.v, self._ldof, axis=0, out=vz)
            grad_v = ws.get("grad_v", (nz, self.quad.nqp, dim, dim))
            np.einsum(
                "zid,kir,zkre->zkde", vz, self.grad_table, geo.inv,
                out=grad_v, optimize=self._path_gv,
            )
            sigma, mu_max = self._visc_kernel.compute(grad_v, geo, rho, cs, ws)
            for d in range(dim):
                sigma[..., d, d] -= p
        slot = self._fz_slot
        self._fz_slot = 1 - slot
        Fz = ws.get(f"Fz{slot}", self._fz_shape)
        with tr.span(_K_FORCE, category="kernel") if tr else NULL_SPAN:
            np.einsum(
                "zkde,zkre,kir,k,jk->zidj",
                sigma, geo.adj, self.grad_table, self.quad.weights, self.B,
                out=Fz, optimize=self._path_fz,
            )
        points = PointData(rho, e_qp, p, cs, grad_v, sigma, mu_max)
        dt_est = self.estimate_dt(points, geo)
        return ForceResult(Fz, geo, points, dt_est, valid=True)

    def _compute_legacy(self, state: HydroState, keep_az: bool = False) -> ForceResult:
        """Historical allocate-per-call evaluation (also serves keep_az)."""
        geo = self.point_geometry(state.x)
        if not geo.check_valid():
            return ForceResult(
                Fz=np.zeros(
                    (
                        self.kinematic.mesh.nzones,
                        self.kinematic.ndof_per_zone,
                        self.kinematic.dim,
                        self.thermodynamic.ndof_per_zone,
                    )
                ),
                geometry=geo,
                points=None,
                dt_est=0.0,
                valid=False,
            )
        points = self.point_stress(state, geo)
        Az = self.assemble_Az(points, geo)
        Fz = self.assemble_Fz(Az)
        dt_est = self.estimate_dt(points, geo)
        return ForceResult(
            Fz=Fz,
            geometry=geo,
            points=points,
            dt_est=dt_est,
            valid=True,
            Az=Az if keep_az else None,
        )


class SumfactStress:
    """Matrix-free stand-in for the dense corner-force matrix F_z.

    Carries the weighted quadrature-point stress

        T[z,k,d,r] = alpha_k sum_e sigma[z,k,d,e] adj(J)[z,k,r,e],

    which determines F_z exactly (F_z[z,i,d,j] = sum_{k,r} B[j,k]
    gradW[k,i,r] T[z,k,d,r]) but is O(nqp dim^2) per zone instead of
    O(ndz dim ndl2). The integrator only ever consumes F_z through
    `force_times_one` and `force_transpose_times_v`, and the sumfact
    engine applies both directly from T through the 1D contraction
    chains — the dense matrix is never materialized on this path.

    `shape` mirrors the dense layout so shape-keyed consumers can still
    identify the full-batch result.
    """

    __slots__ = ("T", "shape")

    def __init__(self, T: np.ndarray, fz_shape: tuple[int, int, int, int]):
        self.T = T
        self.shape = fz_shape


class SumfactForceEngine(ForceEngine):
    """Sum-factorized corner-force evaluator (matrix-free formulation).

    Same physics and kernel staging as the fused `ForceEngine`, but every
    basis contraction — geometry Jacobians, reference velocity gradients,
    L2 energy interpolation, and both force applications — runs through
    the 1D tensor-product chains of `fem.sumfact`: O(order^{d+1}) work
    per zone instead of the dense tables' O(order^{2d}). The dense F_z is
    never formed; `compute` returns a `SumfactStress` and the two
    integrator-facing applications are overridden to consume it.

    Agrees with the fused engine to contraction-reordering roundoff (the
    documented parity budget is 1e-10 relative per evaluation); the
    dense `compute_local` is inherited unchanged, so rank decomposition
    and the resilience layer compose exactly as with the other engines.
    """

    sumfact = True

    def __init__(self, *args, **kwargs):
        kwargs["fused"] = True
        super().__init__(*args, **kwargs)
        from repro.fem.sumfact import SumFactorizedOperators

        self._ops_h1 = SumFactorizedOperators(self.kinematic.element, self.quad)
        self._ops_l2 = SumFactorizedOperators(self.thermodynamic.element, self.quad)
        # Column sums of B (== 1 by partition of unity, kept exact): the
        # F.1 contraction reduces the L2 index analytically.
        self._b_colsum = np.ascontiguousarray(self.B.sum(axis=0))
        self._t_slot = 0
        nz, ndz, dim, ndl2 = self._fz_shape
        nqp = self.quad.nqp

        def shaped(*shape):
            return np.broadcast_to(np.float64(0.0), shape)

        self._path_gv_point = np.einsum_path(
            "zkdr,zkre->zkde",
            shaped(nz, nqp, dim, dim), shaped(nz, nqp, dim, dim),
            optimize="optimal",
        )[0]
        self._path_t = np.einsum_path(
            "k,zkde,zkre->zkdr",
            self.quad.weights, shaped(nz, nqp, dim, dim), shaped(nz, nqp, dim, dim),
            optimize="optimal",
        )[0]

    # -- kernel-aligned stages, factorized ----------------------------------

    def point_geometry(self, x: np.ndarray) -> GeometryAtPoints:
        """Kernels 1/3 with factorized Jacobians.

        jac[z,k,d,:] is the reference gradient of coordinate component d,
        contracted one 1D axis at a time; caching/freezing semantics are
        identical to the fused engine's.
        """
        for slot in (0, 1):
            entry = self._geo_cache[slot]
            if entry is not None and entry[0] is x:
                self._geo_mru = slot
                return entry[1]
        slot = 1 - self._geo_mru
        ws = self.workspace
        nz, ndz, dim, _ = self._fz_shape
        nqp = self.quad.nqp
        xz = ws.get("xz", (nz, ndz, dim))
        np.take(x, self._ldof, axis=0, out=xz)
        jac = ws.get(f"geo{slot}.jac", (nz, nqp, dim, dim))
        for d in range(dim):
            self._ops_h1.apply_G(xz[:, :, d], out=jac[:, :, d, :])
        det = ws.get(f"geo{slot}.det", (nz, nqp))
        batched_det(jac, out=det)
        adj = ws.get(f"geo{slot}.adj", (nz, nqp, dim, dim))
        batched_adjugate(jac, out=adj)
        geo = GeometryAtPoints(jac, det=det, adj=adj)
        if geo.check_valid():
            inv = ws.get(f"geo{slot}.inv", (nz, nqp, dim, dim))
            np.divide(adj, det[..., None, None], out=inv)
            geo.set_inv(inv)
        geo.freeze()
        self._geo_cache[slot] = (x, geo)
        self._geo_mru = slot
        return geo

    def compute(self, state: HydroState, keep_az: bool = False) -> ForceResult:
        if keep_az:
            return self._compute_legacy(state, keep_az)
        return self._compute_sumfact(state)

    def _compute_sumfact(self, state: HydroState) -> ForceResult:
        """Workspace-backed factorized evaluation ending in T, not F_z."""
        ws = self.workspace
        nz, ndz, dim, ndl2 = self._fz_shape
        nqp = self.quad.nqp
        tr = self.tracer
        with tr.span(_K_GEOMETRY, category="kernel") if tr else NULL_SPAN:
            geo = self.point_geometry(state.x)
        if not geo.check_valid():
            return ForceResult(
                Fz=np.zeros(self._fz_shape),
                geometry=geo,
                points=None,
                dt_est=0.0,
                valid=False,
            )
        with tr.span(_K_STRESS, category="kernel") if tr else NULL_SPAN:
            rho = ws.get("rho", (nz, nqp))
            np.divide(self.mass_qp, geo.det, out=rho)
            ez = self.thermodynamic.gather(state.e)  # reshape view, no copy
            e_qp = ws.get("e_qp", (nz, nqp))
            self._ops_l2.apply_B(ez, out=e_qp)
            p = self.eos.pressure(rho, e_qp)
            cs = self.eos.sound_speed(rho, e_qp)
            vz = ws.get("vz", (nz, ndz, dim))
            np.take(state.v, self._ldof, axis=0, out=vz)
            ref_grad = ws.get("sf.refgrad_v", (nz, nqp, dim, dim))
            for d in range(dim):
                self._ops_h1.apply_G(vz[:, :, d], out=ref_grad[:, :, d, :])
            grad_v = ws.get("grad_v", (nz, nqp, dim, dim))
            np.einsum(
                "zkdr,zkre->zkde", ref_grad, geo.inv,
                out=grad_v, optimize=self._path_gv_point,
            )
            sigma, mu_max = self._visc_kernel.compute(grad_v, geo, rho, cs, ws)
            for d in range(dim):
                sigma[..., d, d] -= p
        slot = self._t_slot
        self._t_slot = 1 - slot
        T = ws.get(f"sf.T{slot}", (nz, nqp, dim, dim))
        with tr.span(_K_FORCE, category="kernel") if tr else NULL_SPAN:
            np.einsum(
                "k,zkde,zkre->zkdr",
                self.quad.weights, sigma, geo.adj,
                out=T, optimize=self._path_t,
            )
        points = PointData(rho, e_qp, p, cs, grad_v, sigma, mu_max)
        dt_est = self.estimate_dt(points, geo)
        return ForceResult(SumfactStress(T, self._fz_shape), geo, points, dt_est, valid=True)

    # -- matrix-free force applications --------------------------------------

    def force_times_one(self, Fz) -> np.ndarray:
        """Kernel 8 from T: -F.1 = -G^T (colsum(B) * T) per component."""
        if not isinstance(Fz, SumfactStress):
            return super().force_times_one(Fz)
        ws = self.workspace
        nz, ndz, dim, _ = self._fz_shape
        nqp = self.quad.nqp
        out = ws.get("rhs_mom_z", (nz, ndz, dim))
        weighted = ws.get("sf.f1_weighted", (nz, nqp, dim))
        for d in range(dim):
            np.multiply(Fz.T[:, :, d, :], self._b_colsum[None, :, None], out=weighted)
            self._ops_h1.apply_G_T(weighted, out=out[:, :, d])
        np.negative(out, out=out)
        return out

    def force_transpose_times_v(self, Fz, v: np.ndarray) -> np.ndarray:
        """Kernel 10 from T: F^T v = B_l2^T (T : grad_ref v)."""
        if not isinstance(Fz, SumfactStress):
            return super().force_transpose_times_v(Fz, v)
        ws = self.workspace
        nz, ndz, dim, ndl2 = self._fz_shape
        nqp = self.quad.nqp
        vz = ws.get("vz_energy", (nz, ndz, dim))
        np.take(v, self._ldof, axis=0, out=vz)
        ref_grad = ws.get("sf.refgrad_e", (nz, nqp, dim, dim))
        for d in range(dim):
            self._ops_h1.apply_G(vz[:, :, d], out=ref_grad[:, :, d, :])
        contracted = ws.get("sf.contract_e", (nz, nqp))
        np.einsum("zkdr,zkdr->zk", Fz.T, ref_grad, out=contracted)
        out = ws.get("rhs_energy_z", (nz, ndl2))
        self._ops_l2.apply_B_T(contracted, out=out)
        return self.thermodynamic.scatter(out)

    def dense_force(self, Fz) -> np.ndarray:
        """Materialize the dense F_z from a `SumfactStress` (tests/benches).

        Not part of the hot path — parity checks against the fused
        engine need the full matrix.
        """
        if not isinstance(Fz, SumfactStress):
            return np.asarray(Fz)
        return np.einsum("zkdr,kir,jk->zidj", Fz.T, self.grad_table, self.B, optimize=True)


def corner_force_loops(engine: ForceEngine, state: HydroState) -> np.ndarray:
    """Reference CPU formulation: explicit zone / quadrature-point loops.

    Mirrors the paper's step 4/4.1/4.2 structure with scalar math at each
    point. O(nzones * nqp) Python-level iterations — use on small meshes
    to validate the batched engine.
    """
    mesh = engine.kinematic.mesh
    dim = mesh.dim
    nqp = engine.quad.nqp
    ndz = engine.kinematic.ndof_per_zone
    ndl2 = engine.thermodynamic.ndof_per_zone
    xz = engine.kinematic.gather(state.x)
    vz = engine.kinematic.gather(state.v)
    ez = engine.thermodynamic.gather(state.e)
    Fz = np.zeros((mesh.nzones, ndz, dim, ndl2))
    eye = np.eye(dim)

    def zone_eos(z: int):
        """Per-zone scalar-gamma view of a (possibly per-zone) EOS."""
        gamma = getattr(engine.eos, "gamma", None)
        if gamma is None or np.ndim(gamma) == 0:
            return engine.eos
        g = float(np.asarray(gamma).reshape(mesh.nzones, -1)[z, 0])
        return type(engine.eos)(g)

    for z in range(mesh.nzones):
        eos_z = zone_eos(z)
        for k in range(nqp):
            gw = engine.grad_table[k]  # (ndz, dim)
            jac = xz[z].T @ gw  # (dim, dim)
            det = np.linalg.det(jac)
            if det <= 0:
                raise RuntimeError(f"tangled zone {z} at point {k}")
            jinv = np.linalg.inv(jac)
            rho = engine.mass_qp[z, k] / det
            e_pt = float(engine.basis_l2[k] @ ez[z])
            p = float(np.asarray(eos_z.pressure(rho, e_pt)))
            cs = float(np.asarray(eos_z.sound_speed(rho, e_pt)))
            grad_v = vz[z].T @ gw @ jinv
            sigma_visc, _ = tensor_viscosity(
                grad_v[None], jac[None], np.array([rho]), np.array([cs]), engine.order, engine.viscosity
            )
            sigma = sigma_visc[0] - p * eye
            alpha = engine.quad.weights[k]
            contraction = gw @ (det * jinv) @ sigma.T  # (ndz, dim)
            for j in range(ndl2):
                Fz[z, :, :, j] += alpha * contraction * engine.B[j, k]
    return Fz
