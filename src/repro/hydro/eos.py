"""Equations of state.

The paper's test problems (Sedov, triple-point) use ideal-gas gamma-law
materials, with per-material gamma in the multi-material triple-point
setup. The EOS is evaluated at every quadrature point every time step —
part of the per-thread workload of kernel 2. A stiffened-gas EOS is
included as the standard extension for near-incompressible materials.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GammaLawEOS", "StiffenedGasEOS"]


@dataclass(frozen=True)
class GammaLawEOS:
    """Ideal-gas gamma-law: p = (gamma - 1) rho e.

    `gamma` may be a scalar or an array broadcastable against the
    (nzones, nqp) point arrays (per-zone materials broadcast as a
    (nzones, 1) column).
    """

    gamma: float | np.ndarray = 1.4

    def __post_init__(self):
        g = np.asarray(self.gamma, dtype=np.float64)
        if np.any(g <= 1.0):
            raise ValueError("gamma-law EOS requires gamma > 1")

    def pressure(self, rho: np.ndarray, e: np.ndarray) -> np.ndarray:
        """p(rho, e); internal energy is floored at zero for robustness."""
        e_pos = np.maximum(np.asarray(e, dtype=np.float64), 0.0)
        return (np.asarray(self.gamma) - 1.0) * np.asarray(rho) * e_pos

    def sound_speed(self, rho: np.ndarray, e: np.ndarray) -> np.ndarray:
        """c_s = sqrt(gamma (gamma-1) e) for the gamma-law gas."""
        g = np.asarray(self.gamma, dtype=np.float64)
        e_pos = np.maximum(np.asarray(e, dtype=np.float64), 0.0)
        return np.sqrt(g * (g - 1.0) * e_pos)

    def energy_from_pressure(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        """Invert the EOS: e(rho, p) — used by problem initializers."""
        rho = np.asarray(rho, dtype=np.float64)
        return np.asarray(p, dtype=np.float64) / ((np.asarray(self.gamma) - 1.0) * rho)


@dataclass(frozen=True)
class StiffenedGasEOS:
    """Stiffened gas: p = (gamma - 1) rho e - gamma p_inf.

    With p_inf = 0 this degenerates to the gamma law; p_inf > 0 models
    liquids/solids under shock loading (future-work material support).
    """

    gamma: float = 4.4
    p_inf: float = 0.0

    def __post_init__(self):
        if self.gamma <= 1.0:
            raise ValueError("stiffened gas requires gamma > 1")
        if self.p_inf < 0.0:
            raise ValueError("p_inf must be non-negative")

    def pressure(self, rho: np.ndarray, e: np.ndarray) -> np.ndarray:
        e_pos = np.maximum(np.asarray(e, dtype=np.float64), 0.0)
        return (self.gamma - 1.0) * np.asarray(rho) * e_pos - self.gamma * self.p_inf

    def sound_speed(self, rho: np.ndarray, e: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        p = self.pressure(rho, e)
        c2 = self.gamma * (p + self.p_inf) / np.maximum(rho, 1e-300)
        return np.sqrt(np.maximum(c2, 0.0))

    def energy_from_pressure(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        return (np.asarray(p) + self.gamma * self.p_inf) / ((self.gamma - 1.0) * rho)
