"""Velocity boundary conditions.

The paper's benchmarks run in a box with symmetry walls: the normal
velocity component vanishes on every boundary face (one octant/quadrant
of the blast is simulated). For axis-aligned generator meshes this is a
per-component dof constraint, which the momentum solve enforces by
eliminating constrained rows/columns — the standard MFEM treatment, and
the one that keeps the discrete total-energy identity exact.
"""

from __future__ import annotations

import numpy as np

from repro.fem.spaces import H1Space

__all__ = ["BoundaryConditions"]


class BoundaryConditions:
    """A set of (dof, component) velocity constraints.

    Constraints are *prescribed constant values* (zero for symmetry
    walls, non-zero for moving pistons a la Saltzman): the momentum
    solve pins the acceleration of a constrained component to zero, so
    the velocity stays at whatever `apply_to_field` installed.
    """

    def __init__(self, ndof: int, dim: int):
        self.ndof = ndof
        self.dim = dim
        self.mask = np.zeros((ndof, dim), dtype=bool)
        self.values = np.zeros((ndof, dim))

    @classmethod
    def box_symmetry(cls, space: H1Space, tol: float = 1e-9) -> "BoundaryConditions":
        """Zero normal velocity on all faces of the initial bounding box."""
        return cls.box_faces(space, faces=None, tol=tol)

    @classmethod
    def box_faces(
        cls,
        space: H1Space,
        faces: list[tuple[int, str]] | None = None,
        tol: float = 1e-9,
    ) -> "BoundaryConditions":
        """Symmetry walls on selected box faces.

        `faces` lists (axis, side) pairs with side in {"lo", "hi"};
        None means every face (the full-box symmetry of the Sedov and
        triple-point setups). Problems with free outer boundaries (Noh)
        constrain only the origin planes.
        """
        bc = cls(space.ndof, space.dim)
        lo = space.node_coords.min(axis=0)
        hi = space.node_coords.max(axis=0)
        scale = max(float(np.max(hi - lo)), 1.0)
        if faces is None:
            faces = [(d, side) for d in range(space.dim) for side in ("lo", "hi")]
        for axis, side in faces:
            if not 0 <= axis < space.dim or side not in ("lo", "hi"):
                raise ValueError(f"bad face spec ({axis}, {side})")
            value = lo[axis] if side == "lo" else hi[axis]
            dofs = np.flatnonzero(np.abs(space.node_coords[:, axis] - value) < tol * scale)
            bc.mask[dofs, axis] = True
        return bc

    @classmethod
    def none(cls, space: H1Space) -> "BoundaryConditions":
        return cls(space.ndof, space.dim)

    def constrain(self, dofs: np.ndarray, component: int, value: float = 0.0) -> None:
        """Prescribe one velocity component at given dofs."""
        if not 0 <= component < self.dim:
            raise ValueError("component out of range")
        dofs = np.asarray(dofs, dtype=np.int64)
        self.mask[dofs, component] = True
        self.values[dofs, component] = value

    @property
    def n_constrained(self) -> int:
        return int(self.mask.sum())

    def apply_to_field(self, field: np.ndarray) -> np.ndarray:
        """Install prescribed values in-place; returns the field."""
        field[self.mask] = self.values[self.mask]
        return field

    def component_mask(self, d: int) -> np.ndarray:
        return self.mask[:, d]

    def eliminated_operator(self, matvec, d: int):
        """SPD operator with constrained dofs of component d eliminated.

        y = A x on free dofs, y = x on constrained dofs — the classic
        identity-row elimination that preserves symmetry and
        definiteness for CG.
        """
        c = self.mask[:, d]

        def op(x: np.ndarray) -> np.ndarray:
            xf = np.where(c, 0.0, x)
            y = matvec(xf)
            y[c] = x[c]
            return y

        return op

    def eliminated_diagonal(self, diag: np.ndarray, d: int) -> np.ndarray:
        """Matching Jacobi diagonal (1 on constrained dofs)."""
        out = diag.copy()
        out[self.mask[:, d]] = 1.0
        return out
