"""Lagrangian hydrodynamics core (the BLAST algorithm).

Implements the semi-discrete conservation laws of the paper's Section 2:

* momentum:  M_V dv/dt = -F . 1      (global sparse PCG solve)
* energy:    de/dt = M_E^{-1} F^T v  (precomputed block inverses)
* motion:    dx/dt = v

with the generalized corner-force matrix F assembled zone-by-zone from a
quadrature-point contraction of the total stress (pressure + tensor
artificial viscosity) against the kinematic basis gradients, eq. (4)-(6).
"""

from repro.hydro.state import HydroState
from repro.hydro.eos import GammaLawEOS, StiffenedGasEOS
from repro.hydro.viscosity import ViscosityCoefficients, tensor_viscosity
from repro.hydro.corner_force import ForceEngine, ForceResult
from repro.hydro.timestep import TimestepController
from repro.hydro.integrator import RK2AvgIntegrator
from repro.hydro.solver import LagrangianHydroSolver, SolverOptions, RunResult
from repro.hydro.diagnostics import EnergyBreakdown

__all__ = [
    "HydroState",
    "GammaLawEOS",
    "StiffenedGasEOS",
    "ViscosityCoefficients",
    "tensor_viscosity",
    "ForceEngine",
    "ForceResult",
    "TimestepController",
    "RK2AvgIntegrator",
    "LagrangianHydroSolver",
    "SolverOptions",
    "RunResult",
    "EnergyBreakdown",
]
