"""Tensor artificial viscosity.

Following the paper's reference scheme (Dobrev, Kolev & Rieben, SIAM
J. Sci. Comp. 2012), shocks are captured by adding a tensor viscous
stress built, at every quadrature point, from the eigendecomposition of
the symmetrized velocity gradient:

    eps(v) = sum_k  lambda_k  s_k s_k^T           (eigenpairs)
    sigma_visc = sum_k  mu_k  lambda_k  s_k s_k^T

with a directional coefficient active only in compressing directions
(lambda_k < 0):

    mu_k = rho ( q2 * l_k^2 * |lambda_k| + q1 * psi_k * l_k * c_s )

l_k is the zone length scale *in the direction s_k*, measured through
the Jacobian: l_k = |J s_hat_k| / order with s_hat_k the unit reference
direction mapping to s_k. This per-point eigen/length-scale evaluation
is the SVD-and-eigenvalue workload the paper assigns to kernels 1-2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.eig import sym_eig_2x2, sym_eig_3x3
from repro.linalg.smallmat import batched_inverse

__all__ = ["ViscosityCoefficients", "tensor_viscosity", "directional_length"]


@dataclass(frozen=True)
class ViscosityCoefficients:
    """Tunable q1 (linear) and q2 (quadratic) coefficients.

    Defaults follow the reference scheme: q1 = 0.5, q2 = 2.0. `use_cs`
    toggles the linear (sound-speed) term; disabling both terms turns
    the viscosity off entirely (useful for smooth-flow convergence
    tests).
    """

    q1: float = 0.5
    q2: float = 2.0
    enabled: bool = True

    def __post_init__(self):
        if self.q1 < 0 or self.q2 < 0:
            raise ValueError("viscosity coefficients must be non-negative")


def directional_length(jac: np.ndarray, directions: np.ndarray, order: int) -> np.ndarray:
    """Zone length scale along physical unit directions.

    jac : (..., dim, dim) Jacobians; directions : (..., dim, dim) whose
    *columns* are physical unit directions. Returns (..., dim) lengths:
    l_k = |J s_hat_k| / order, where s_hat_k = J^{-1} s_k normalized.
    """
    jinv = batched_inverse(jac)
    ref = np.einsum("...re,...ek->...rk", jinv, directions)
    norms = np.linalg.norm(ref, axis=-2)
    norms = np.maximum(norms, 1e-300)
    s_hat = ref / norms[..., None, :]
    phys = np.einsum("...dr,...rk->...dk", jac, s_hat)
    return np.linalg.norm(phys, axis=-2) / max(order, 1)


def tensor_viscosity(
    grad_v: np.ndarray,
    jac: np.ndarray,
    rho: np.ndarray,
    sound_speed: np.ndarray,
    order: int,
    coeffs: ViscosityCoefficients,
) -> tuple[np.ndarray, np.ndarray]:
    """Viscous stress and effective viscosity coefficient per point.

    Parameters are batched over (..., ) points: grad_v and jac are
    (..., dim, dim); rho and sound_speed are (...,).

    Returns
    -------
    sigma_visc : (..., dim, dim) symmetric viscous stress (zero where
        no direction is compressing).
    mu_max : (...,) largest directional coefficient, which the CFL
        time-step estimate consumes as the viscous wave-speed term.
    """
    grad_v = np.asarray(grad_v, dtype=np.float64)
    dim = grad_v.shape[-1]
    if not coeffs.enabled:
        return np.zeros_like(grad_v), np.zeros(grad_v.shape[:-2])
    eps = 0.5 * (grad_v + np.swapaxes(grad_v, -1, -2))
    if dim == 2:
        lam, vecs = sym_eig_2x2(eps)
    elif dim == 3:
        lam, vecs = sym_eig_3x3(eps)
    else:
        raise ValueError("tensor viscosity supports dim 2 and 3")
    lengths = directional_length(jac, vecs, order)  # (..., dim)
    compress = lam < 0.0
    mu = np.where(
        compress,
        rho[..., None]
        * (
            coeffs.q2 * lengths**2 * np.abs(lam)
            + coeffs.q1 * lengths * sound_speed[..., None]
        ),
        0.0,
    )
    # sigma_visc = sum_k mu_k lambda_k s_k s_k^T
    sigma = np.einsum("...k,...k,...ik,...jk->...ij", mu, lam, vecs, vecs, optimize=True)
    return sigma, mu.max(axis=-1)
