"""Tensor artificial viscosity.

Following the paper's reference scheme (Dobrev, Kolev & Rieben, SIAM
J. Sci. Comp. 2012), shocks are captured by adding a tensor viscous
stress built, at every quadrature point, from the eigendecomposition of
the symmetrized velocity gradient:

    eps(v) = sum_k  lambda_k  s_k s_k^T           (eigenpairs)
    sigma_visc = sum_k  mu_k  lambda_k  s_k s_k^T

with a directional coefficient active only in compressing directions
(lambda_k < 0):

    mu_k = rho ( q2 * l_k^2 * |lambda_k| + q1 * psi_k * l_k * c_s )

l_k is the zone length scale *in the direction s_k*, measured through
the Jacobian: l_k = |J s_hat_k| / order with s_hat_k the unit reference
direction mapping to s_k. This per-point eigen/length-scale evaluation
is the SVD-and-eigenvalue workload the paper assigns to kernels 1-2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.eig import sym_eig_2x2, sym_eig_3x3
from repro.linalg.smallmat import batched_inverse

__all__ = [
    "ViscosityCoefficients",
    "ViscosityKernel",
    "tensor_viscosity",
    "directional_length",
]


@dataclass(frozen=True)
class ViscosityCoefficients:
    """Tunable q1 (linear) and q2 (quadratic) coefficients.

    Defaults follow the reference scheme: q1 = 0.5, q2 = 2.0. `use_cs`
    toggles the linear (sound-speed) term; disabling both terms turns
    the viscosity off entirely (useful for smooth-flow convergence
    tests).
    """

    q1: float = 0.5
    q2: float = 2.0
    enabled: bool = True

    def __post_init__(self):
        if self.q1 < 0 or self.q2 < 0:
            raise ValueError("viscosity coefficients must be non-negative")


def directional_length(jac: np.ndarray, directions: np.ndarray, order: int) -> np.ndarray:
    """Zone length scale along physical unit directions.

    jac : (..., dim, dim) Jacobians; directions : (..., dim, dim) whose
    *columns* are physical unit directions. Returns (..., dim) lengths:
    l_k = |J s_hat_k| / order, where s_hat_k = J^{-1} s_k normalized.
    """
    jinv = batched_inverse(jac)
    ref = np.einsum("...re,...ek->...rk", jinv, directions)
    norms = np.linalg.norm(ref, axis=-2)
    norms = np.maximum(norms, 1e-300)
    s_hat = ref / norms[..., None, :]
    phys = np.einsum("...dr,...rk->...dk", jac, s_hat)
    return np.linalg.norm(phys, axis=-2) / max(order, 1)


def tensor_viscosity(
    grad_v: np.ndarray,
    jac: np.ndarray,
    rho: np.ndarray,
    sound_speed: np.ndarray,
    order: int,
    coeffs: ViscosityCoefficients,
) -> tuple[np.ndarray, np.ndarray]:
    """Viscous stress and effective viscosity coefficient per point.

    Parameters are batched over (..., ) points: grad_v and jac are
    (..., dim, dim); rho and sound_speed are (...,).

    Returns
    -------
    sigma_visc : (..., dim, dim) symmetric viscous stress (zero where
        no direction is compressing).
    mu_max : (...,) largest directional coefficient, which the CFL
        time-step estimate consumes as the viscous wave-speed term.
    """
    grad_v = np.asarray(grad_v, dtype=np.float64)
    dim = grad_v.shape[-1]
    if not coeffs.enabled:
        return np.zeros_like(grad_v), np.zeros(grad_v.shape[:-2])
    eps = 0.5 * (grad_v + np.swapaxes(grad_v, -1, -2))
    if dim == 2:
        lam, vecs = sym_eig_2x2(eps)
    elif dim == 3:
        lam, vecs = sym_eig_3x3(eps)
    else:
        raise ValueError("tensor viscosity supports dim 2 and 3")
    lengths = directional_length(jac, vecs, order)  # (..., dim)
    compress = lam < 0.0
    mu = np.where(
        compress,
        rho[..., None]
        * (
            coeffs.q2 * lengths**2 * np.abs(lam)
            + coeffs.q1 * lengths * sound_speed[..., None]
        ),
        0.0,
    )
    # sigma_visc = sum_k mu_k lambda_k s_k s_k^T
    sigma = np.einsum("...k,...k,...ik,...jk->...ij", mu, lam, vecs, vecs, optimize=True)
    return sigma, mu.max(axis=-1)


class ViscosityKernel:
    """Fused, workspace-backed twin of `tensor_viscosity` for the hot path.

    Mathematically identical to the reference function (same eigenpairs,
    same mu_k formula) but restructured for zero steady-state
    allocations:

    * length scales use the identity J (J^{-1} s_k) = s_k: since s_k is
      a *unit* physical direction, |J s_hat_k| = 1 / |J^{-1} s_k|, so
      l_k = 1 / (|J^{-1} s_k| * order) — one small contraction instead
      of inverse + normalize + forward map + second norm;
    * the Jacobian inverse is read from the cached `GeometryAtPoints`
      (computed once per stage) instead of re-derived here;
    * every intermediate lives in a `Workspace` buffer and the two
      einsum contraction paths are planned once via `np.einsum_path`.

    Results agree with the reference to a few ULPs (different but
    equivalent floating-point orderings), well inside the 1e-13 parity
    budget of the engine tests.
    """

    def __init__(self, coeffs: ViscosityCoefficients, order: int):
        self.coeffs = coeffs
        self.order = max(int(order), 1)
        self._path_ref = "optimal"
        self._path_sigma = "optimal"

    def plan(self, nzones: int, nqp: int, dim: int) -> None:
        """Precompute einsum contraction paths for fixed batch shapes."""

        def shaped(*shape):
            return np.broadcast_to(np.float64(0.0), shape)

        mat = shaped(nzones, nqp, dim, dim)
        vec = shaped(nzones, nqp, dim)
        self._path_ref = np.einsum_path(
            "zkre,zkec->zkrc", mat, mat, optimize="optimal"
        )[0]
        self._path_sigma = np.einsum_path(
            "zkc,zkc,zkic,zkjc->zkij", vec, vec, mat, mat, optimize="optimal"
        )[0]

    def compute(
        self,
        grad_v: np.ndarray,
        geo,
        rho: np.ndarray,
        sound_speed: np.ndarray,
        ws,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Viscous stress + mu_max into workspace buffers.

        grad_v : (nz, nqp, dim, dim); geo supplies the cached inverse
        Jacobians; rho / sound_speed : (nz, nqp). The returned arrays
        are owned by `ws` and recycled on the next call.
        """
        dim = grad_v.shape[-1]
        sigma = ws.get("visc.sigma", grad_v.shape)
        mu_max = ws.get("visc.mu_max", grad_v.shape[:-2])
        if not self.coeffs.enabled:
            sigma[...] = 0.0
            mu_max[...] = 0.0
            return sigma, mu_max
        eps = ws.get("visc.eps", grad_v.shape)
        np.add(grad_v, np.swapaxes(grad_v, -1, -2), out=eps)
        eps *= 0.5
        if dim == 2:
            lam, vecs = sym_eig_2x2(eps)
        elif dim == 3:
            lam, vecs = sym_eig_3x3(eps)
        else:
            raise ValueError("tensor viscosity supports dim 2 and 3")
        # l_c = |J s_hat_c| / order with s_hat_c = J^{-1} s_c normalized;
        # J (J^{-1} s_c) = s_c and |s_c| = 1 give l_c = 1/(|J^{-1}s_c| order).
        ref = ws.get("visc.ref", grad_v.shape)
        np.einsum("zkre,zkec->zkrc", geo.inv, vecs, out=ref, optimize=self._path_ref)
        lengths = ws.get("visc.len", lam.shape)
        np.einsum("zkrc,zkrc->zkc", ref, ref, out=lengths, optimize=True)
        np.sqrt(lengths, out=lengths)
        np.maximum(lengths, 1e-300, out=lengths)
        np.reciprocal(lengths, out=lengths)
        lengths /= self.order
        mu = ws.get("visc.mu", lam.shape)
        np.abs(lam, out=mu)
        mu *= self.coeffs.q2
        mu *= lengths
        mu *= lengths
        tmp = ws.get("visc.tmp", lam.shape)
        np.multiply(lengths, sound_speed[..., None], out=tmp)
        tmp *= self.coeffs.q1
        mu += tmp
        mu *= rho[..., None]
        mu[lam >= 0.0] = 0.0
        np.einsum(
            "zkc,zkc,zkic,zkjc->zkij", mu, lam, vecs, vecs,
            out=sigma, optimize=self._path_sigma,
        )
        np.max(mu, axis=-1, out=mu_max)
        return sigma, mu_max
