"""Conserved-quantity diagnostics.

The paper's Table 6 validates CPU and GPU paths by checking that
KE + IE is preserved to machine precision. These helpers compute the
discrete energies through the mass matrices (the quantities the scheme
actually conserves) plus momentum and volume book-keeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hydro.state import HydroState
from repro.linalg.blockdiag import BlockDiagonalMatrix
from repro.linalg.csr import CSRMatrix

__all__ = ["EnergyBreakdown", "compute_energies", "total_momentum"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Kinetic / internal / total energy at one time."""

    t: float
    kinetic: float
    internal: float

    @property
    def total(self) -> float:
        return self.kinetic + self.internal

    def row(self) -> str:
        """Format as a Table-6-style row."""
        return (
            f"t={self.t:.6g}  KE={self.kinetic:.13e}  "
            f"IE={self.internal:.13e}  total={self.total:.13e}"
        )


def compute_energies(
    state: HydroState,
    mass_v: CSRMatrix,
    mass_e: BlockDiagonalMatrix,
) -> EnergyBreakdown:
    """KE = 1/2 v^T M_V v (per component), IE = 1^T M_E e."""
    ke = 0.0
    for d in range(state.dim):
        ke += 0.5 * float(state.v[:, d] @ mass_v.matvec(state.v[:, d]))
    ie = float(np.sum(mass_e.matvec(state.e)))
    return EnergyBreakdown(state.t, ke, ie)


def total_momentum(state: HydroState, mass_v: CSRMatrix) -> np.ndarray:
    """Discrete momentum M_V v summed per component."""
    return np.array([float(np.sum(mass_v.matvec(state.v[:, d]))) for d in range(state.dim)])
