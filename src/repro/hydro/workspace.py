"""Preallocated, shape-keyed buffer pool for the corner-force hot path.

The paper's GPU redesign (Section 4.2) lives or dies on where per-point
intermediates are kept: the register-based kernels beat the local-memory
versions precisely because they never round-trip scratch data through
off-chip memory. The NumPy analogue of that discipline is to never ask
the allocator for a fresh array inside the timestep loop: every einsum
gets an ``out=`` target owned by a `Workspace`, so steady-state steps
touch only memory that was mapped (and cache-warmed) at engine
construction.

Buffers are keyed by *name*; the (shape, dtype) of a name is fixed after
first use in steady state, and the pool records hits/misses so tests can
assert allocation discipline (`misses` must stop growing after warmup).

Since the sum-factorization refactor the backing store is a
`repro.runtime.arena.Arena`: a miss leases an aligned block from the
arena's size-bucketed free lists (returning the displaced block when a
name changes shape), so allocation discipline survives mesh-size changes
and solver reuse — several workspaces, e.g. all span workspaces of one
engine or all solvers in a service warm pool, can share one arena.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.arena import Arena, Lease

__all__ = ["Workspace"]


class Workspace:
    """Named pool of reusable ndarray buffers over an `Arena`.

    `get` returns the existing buffer when name, shape and dtype match,
    else leases a fresh block (a *miss*). Frozen buffers (read-only views
    handed to consumers, see `GeometryAtPoints.freeze`) are transparently
    thawed on reuse — the workspace owns its arrays, so only the engine
    that holds the pool can recycle them.
    """

    def __init__(self, arena: Arena | None = None):
        self.arena = arena if arena is not None else Arena(name="workspace")
        self._buffers: dict[str, np.ndarray] = {}
        self._leases: dict[str, Lease] = {}
        self.hits = 0
        self.misses = 0

    def get(self, name: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is not None and buf.shape == shape and buf.dtype == dtype:
            self.hits += 1
            if not buf.flags.writeable:
                buf.setflags(write=True)
            return buf
        self.misses += 1
        old = self._leases.pop(name, None)
        if old is not None:
            # Shape/dtype changed: recycle the displaced block through the
            # arena so a resized mesh reuses memory instead of growing it.
            self.arena.release(old)
        buf, lease = self.arena.alloc(name, shape, dtype)
        self._buffers[name] = buf
        self._leases[name] = lease
        return buf

    def close(self) -> None:
        """Release every lease back to the arena (solver retirement)."""
        for lease in self._leases.values():
            self.arena.release(lease)
        self._leases.clear()
        self._buffers.clear()

    def buffer_ids(self) -> dict[str, int]:
        """Identity map of the pooled arrays (for allocation-discipline tests)."""
        return {name: id(buf) for name, buf in self._buffers.items()}

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Workspace({len(self._buffers)} buffers, {self.nbytes / 1e6:.2f} MB, "
            f"{self.hits} hits / {self.misses} misses)"
        )
