"""The Lagrangian hydrodynamic state (v, e, x)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HydroState"]


@dataclass
class HydroState:
    """Unknowns of the semi-discrete system.

    Attributes
    ----------
    v : (ndof_h1, dim) velocity, continuous kinematic space.
    e : (ndof_l2,) specific internal energy, discontinuous space.
    x : (ndof_h1, dim) grid positions, same space as v.
    t : simulation time.
    """

    v: np.ndarray
    e: np.ndarray
    x: np.ndarray
    t: float = 0.0

    def __post_init__(self):
        self.v = np.asarray(self.v, dtype=np.float64)
        self.e = np.asarray(self.e, dtype=np.float64)
        self.x = np.asarray(self.x, dtype=np.float64)
        if self.v.ndim != 2 or self.x.shape != self.v.shape:
            raise ValueError("v and x must both be (ndof_h1, dim)")
        if self.e.ndim != 1:
            raise ValueError("e must be a flat (ndof_l2,) vector")

    @property
    def dim(self) -> int:
        return self.v.shape[1]

    def copy(self) -> "HydroState":
        return HydroState(self.v.copy(), self.e.copy(), self.x.copy(), self.t)

    def axpy(self, alpha: float, dv: np.ndarray, de: np.ndarray, dx: np.ndarray) -> "HydroState":
        """Return self + alpha * (dv, de, dx) at the same time stamp."""
        return HydroState(self.v + alpha * dv, self.e + alpha * de, self.x + alpha * dx, self.t)

    def norm(self) -> float:
        """Max-norm over all unknowns (used in stagnation checks)."""
        return max(
            float(np.abs(self.v).max(initial=0.0)),
            float(np.abs(self.e).max(initial=0.0)),
            float(np.abs(self.x).max(initial=0.0)),
        )
