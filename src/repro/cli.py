"""Command-line interface.

    python -m repro run sedov --dim 2 --order 2 --zones 8 --t-final 0.2
    python -m repro run sod --backend cpu-parallel --workers 4
    python -m repro run sedov --backend hybrid --tuning-cache tune.json
    python -m repro run sedov --ranks 4 --backend cpu-fused --overlap on
    python -m repro bench hotpath --quick
    python -m repro info devices
    python -m repro model greenup --order 2
    python -m repro tune kernel3 --device K20 --order 2
    python -m repro tune campaign --device K20 --cache tune.json
    python -m repro submit sedov --journal fleet.jsonl --priority 2
    python -m repro serve --journal fleet.jsonl --workers 2

`run` drives the real solver under one of five execution backends
(--backend cpu-serial|cpu-fused|cpu-sumfact|cpu-parallel|hybrid, with
optional VTK/checkpoint output); `bench` runs the perf-regression harness;
`model` prices workloads on the simulated hardware; `tune` runs the
autotuner (single kernel, or a whole campaign with `tune campaign`);
`info` dumps the device catalogs; `submit`/`serve` journal jobs and
drain them through the fault-tolerant `repro.service` fleet.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]

_PROBLEMS = ("sedov", "triple-pt", "taylor-green", "noh", "saltzman", "sod")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for shell completion)."""
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a hydro problem")
    run.add_argument("problem", choices=_PROBLEMS)
    run.add_argument("--dim", type=int, default=2, choices=(2, 3))
    run.add_argument("--order", type=int, default=2)
    run.add_argument("--zones", type=int, default=8, help="zones per dimension")
    run.add_argument("--t-final", type=float, default=None)
    run.add_argument("--cfl", type=float, default=None)
    run.add_argument("--max-steps", type=int, default=100_000)
    run.add_argument("--integrator", default="rk2avg", choices=("rk2avg", "euler", "rk4"))
    run.add_argument("--vtk", default=None, help="write a VTK snapshot here")
    run.add_argument("--checkpoint", default=None, help="write a checkpoint here")
    run.add_argument("--restore", default=None, help="restore a checkpoint first")
    run.add_argument("--backend", default=None,
                     choices=("cpu-serial", "cpu-fused", "cpu-sumfact",
                              "cpu-parallel", "hybrid"),
                     help="execution backend: the legacy reference engine, the "
                          "fused zero-allocation path (default), the "
                          "matrix-free sum-factorization engine, the "
                          "shared-memory zone-parallel executor, or the "
                          "priced CPU-GPU split with in-band tuning")
    run.add_argument("--hybrid-device", default="K20", metavar="GPU",
                     help="simulated GPU pricing the hybrid backend's split")
    run.add_argument("--tuning-cache", default=None, metavar="PATH",
                     help="tuning-cache JSON for the hybrid scheduler "
                          "(persists winners; warm-starts later runs)")
    run.add_argument("--tune-period-steps", type=int, default=40, metavar="N",
                     help="steps per in-band sampling period (hybrid "
                          "scheduler; default 40)")
    run.add_argument("--strict-tuning-cache", action="store_true",
                     help="treat a corrupt --tuning-cache file as an error "
                          "instead of warning and starting fresh")
    run.add_argument("--tuning-objective", default="time",
                     choices=("time", "energy", "edp"),
                     help="what the in-band tuning campaign minimizes "
                          "(winners persist per objective; default time)")
    run.add_argument("--tuning-strategy", default="local",
                     choices=("exhaustive", "random", "local"),
                     help="how the campaign walks the joint configuration "
                          "space (default: greedy local coordinate descent)")
    run.add_argument("--workers", type=int, default=0, metavar="N",
                     help="evaluate corner forces over N shared-memory worker "
                          "processes (deprecated spelling of "
                          "--backend cpu-parallel)")
    run.add_argument("--engine", default=None, choices=("fused", "legacy"),
                     help="deprecated: use --backend cpu-fused / cpu-serial")
    # Hidden alias for the pre-RunConfig spelling of --engine legacy.
    run.add_argument("--legacy-engine", action="store_true",
                     help=argparse.SUPPRESS)
    run.add_argument("--ranks", type=int, default=0, metavar="N",
                     help="partition the mesh over N simulated-MPI ranks; "
                          "composes with --backend (each rank runs the "
                          "selected node backend)")
    run.add_argument("--overlap", default="on", choices=("on", "off"),
                     help="overlap the distributed interface-dof exchange "
                          "with interior-zone computation (pricing only; "
                          "physics is identical; default on)")
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="fault-injection schedule, e.g. 'gpu:3,state:12:blowup,"
                          "rank:2:1' (kind:occurrence[:extra], '!' suffix = sticky)")
    run.add_argument("--fault-seed", type=int, default=0,
                     help="seed for the fault injector's random rates")
    run.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                     help="run under the ResilientDriver, snapshotting every N steps")
    run.add_argument("--checkpoint-dir", default=None,
                     help="also write verified disk checkpoints at the cadence")
    run.add_argument("--checkpoint-keep", type=int, default=0, metavar="N",
                     help="retain at most N disk checkpoints (0 = all); the "
                          "most recent verified checkpoint is never pruned")
    run.add_argument("--offload-device", default=None, metavar="GPU",
                     help="price a GPU corner-force offload (with fault recovery) "
                          "on this device, e.g. K20")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write a chrome://tracing trace of the run here")
    run.add_argument("--metrics", default=None, metavar="PATH",
                     help="write the JSONL telemetry event stream here")
    run.add_argument("--json", action="store_true",
                     help="print the RunManifest as JSON instead of the "
                          "human-readable report")

    bench = sub.add_parser("bench", help="performance-regression benchmarks")
    bench.add_argument("target", choices=("hotpath", "scaling"))
    bench.add_argument("--quick", action="store_true",
                       help="small perf-smoke configuration (< 60 s)")
    bench.add_argument("--workers", type=int, default=None,
                       help="parallel-executor workers (hotpath only; "
                            "default: all cores)")
    bench.add_argument("--json", default=None,
                       help="override the BENCH_<target>.json location")

    info = sub.add_parser("info", help="inventory dumps")
    info.add_argument("topic", choices=("devices", "kernels"))

    model = sub.add_parser("model", help="simulated-hardware models")
    model.add_argument("what", choices=("greenup", "profile", "scaling"))
    model.add_argument("--dim", type=int, default=3, choices=(2, 3))
    model.add_argument("--order", type=int, default=2)
    model.add_argument("--zones", type=int, default=16)
    model.add_argument("--nmpi", type=int, default=8)
    model.add_argument("--cpu", default="E5-2670")
    model.add_argument("--device", default="K20")

    tune = sub.add_parser("tune", help="autotune kernels (one, or a campaign)")
    tune.add_argument("kernel",
                      choices=("kernel3", "kernel5", "kernel7", "campaign"))
    tune.add_argument("--device", default="K20")
    tune.add_argument("--dim", type=int, default=3, choices=(2, 3))
    tune.add_argument("--order", type=int, default=2)
    tune.add_argument("--orders", default="2,3,4", metavar="LIST",
                      help="comma-separated FE orders for 'campaign'")
    tune.add_argument("--zones", type=int, default=16)
    tune.add_argument("--cache", default=None, help="tuning-cache JSON path")
    tune.add_argument("--objective", action="append", dest="objectives",
                      choices=("time", "energy", "edp"),
                      help="objective(s) for 'campaign' (repeatable; default "
                           "time; each objective's winner is cached under "
                           "its own key)")
    tune.add_argument("--strategy", default="local",
                      choices=("exhaustive", "random", "local"),
                      help="search strategy for 'campaign' (default local)")
    tune.add_argument("--seed", type=int, default=0,
                      help="strategy seed (random start / subsample)")
    tune.add_argument("--trace", default=None, metavar="PATH",
                      help="write a chrome://tracing trace of the campaign")

    serve = sub.add_parser(
        "serve",
        help="drain a job journal through the simulation fleet",
        description="Run every pending job in a write-ahead journal "
                    "(crash-safe: interrupted jobs are re-run, completed "
                    "ones served from the result store bit-identically) "
                    "and print the fleet telemetry rollup.",
    )
    serve.add_argument("--journal", required=True, metavar="PATH",
                       help="job journal (JSONL); created if missing")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker threads (0 = deterministic inline "
                            "draining on the calling thread; default 2)")
    serve.add_argument("--results-dir", default=None, metavar="DIR",
                       help="result store directory (default: <journal "
                            "dir>/results)")
    serve.add_argument("--tuning-cache", default=None, metavar="PATH",
                       help="shared tuning cache injected into hybrid jobs")
    serve.add_argument("--manifest", default=None, metavar="PATH",
                       help="write the FleetManifest JSON here")
    serve.add_argument("--strict-journal", action="store_true",
                       help="treat corrupt journal lines as an error "
                            "instead of warning and skipping them")

    submit = sub.add_parser(
        "submit",
        help="append a job to a journal for a later `repro serve`",
        description="Write-ahead submission: records the job in the "
                    "journal without running it. The next `repro serve "
                    "--journal PATH` picks it up as pending work.",
    )
    submit.add_argument("problem", choices=_PROBLEMS)
    submit.add_argument("--journal", required=True, metavar="PATH")
    submit.add_argument("--dim", type=int, default=2, choices=(2, 3))
    submit.add_argument("--order", type=int, default=2)
    submit.add_argument("--zones", type=int, default=8)
    submit.add_argument("--t-final", type=float, default=None)
    submit.add_argument("--max-steps", type=int, default=100_000)
    submit.add_argument("--backend", default=None,
                        choices=("cpu-serial", "cpu-fused", "cpu-sumfact",
                                 "cpu-parallel", "hybrid"))
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first (default 0)")
    submit.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="per-attempt wall-clock budget in seconds")
    submit.add_argument("--max-attempts", type=int, default=3, metavar="N")
    submit.add_argument("--job-id", default=None,
                        help="explicit job id (default: derived)")
    return p


def _cmd_run(args) -> int:
    from repro._compat import warn_deprecated
    from repro.api import RunConfig, run

    engine = "legacy" if args.legacy_engine else args.engine
    if engine is not None:
        warn_deprecated("--engine/--legacy-engine", stacklevel=2)
    cfg = RunConfig(
        dim=args.dim,
        order=args.order,
        zones=args.zones,
        t_final=args.t_final,
        max_steps=args.max_steps,
        cfl=args.cfl,
        integrator=args.integrator,
        engine=engine or "fused",
        workers=args.workers,
        backend=args.backend,
        hybrid_device=args.hybrid_device,
        tuning_cache=args.tuning_cache,
        tune_period_steps=args.tune_period_steps,
        tuning_strict=args.strict_tuning_cache,
        tuning_objective=args.tuning_objective,
        tuning_strategy=args.tuning_strategy,
        ranks=args.ranks,
        overlap=args.overlap == "on",
        faults=args.faults,
        fault_seed=args.fault_seed,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_keep=args.checkpoint_keep,
        offload_device=args.offload_device,
        restore=args.restore,
        vtk=args.vtk,
        checkpoint=args.checkpoint,
        trace_path=args.trace,
        metrics_path=args.metrics,
    )
    report = run(args.problem, cfg)
    if args.json:
        print(report.manifest.to_json())
        return 0
    result = report.result
    if report.recovery is not None:
        print("resilience report:")
        print(report.recovery.summary())
    e0, e1 = result.energy_history[0], result.energy_history[-1]
    print(f"{report.problem.name}: {result.steps} steps to t={result.state.t:g} "
          f"({'complete' if result.reached_t_final else 'stopped early'})")
    print(f"energy: initial {e0.total:.13e}  final {e1.total:.13e}  "
          f"change {result.energy_change:+.3e}")
    if report.mpi_traffic is not None:
        tr = report.mpi_traffic
        print(f"simulated MPI traffic: {tr.messages} messages, "
              f"{tr.bytes} bytes, {tr.reductions} reductions")
    if report.scheduler is not None:
        s = report.scheduler
        origin = ("warm-started from cache" if s.warm_started else
                  f"tuned in {s.periods_tune}+{s.periods_balance} periods, "
                  f"{s.evaluations}/{s.feasible_points} candidates priced")
        print(f"in-band scheduler: GPU share {s.ratio:.2f} "
              f"(objective {s.objective}, strategy {s.strategy}; {origin}, "
              f"{'converged' if s.converged else 'not converged'})")
    if report.vtk_path is not None:
        print(f"wrote {report.vtk_path}")
    if report.checkpoint_path is not None:
        print(f"wrote {report.checkpoint_path}")
    if args.workers > 0:
        w = result.workload
        print(f"phase wall time: force {w.wall_force_s:.3f}s  cg {w.wall_cg_s:.3f}s  "
              f"other {w.wall_other_s:.3f}s  ({report.executor_workers} workers)")
    if args.trace:
        print(f"wrote {args.trace}")
    if args.metrics:
        print(f"wrote {args.metrics}")
    return 0


def _cmd_bench(args) -> int:
    if args.target == "scaling":
        from repro.analysis.scaling_bench import run_scaling_bench

        run_scaling_bench(quick=args.quick, json_path=args.json)
        return 0
    from repro.analysis.hotpath import run_hotpath_bench

    run_hotpath_bench(quick=args.quick, workers=args.workers, json_path=args.json)
    return 0


def _cmd_info(args) -> int:
    if args.topic == "devices":
        from repro.cpu.specs import CPU_CATALOG
        from repro.gpu.specs import GPU_CATALOG

        print(f"{'device':14s} {'year':>4} {'peak DP GF':>10} {'BW GB/s':>8} "
              f"{'TDP W':>6} {'GF/W':>6}")
        for spec in sorted(GPU_CATALOG.values(), key=lambda s: s.year):
            print(f"GPU {spec.name:10s} {spec.year:4d} {spec.peak_dp_gflops:10.0f} "
                  f"{spec.mem_bandwidth_gbs:8.0f} {spec.tdp_w:6.0f} "
                  f"{spec.peak_dp_per_watt:6.2f}")
        for spec in sorted(CPU_CATALOG.values(), key=lambda s: s.year):
            print(f"CPU {spec.name:10s} {spec.year:4d} {spec.peak_dp_gflops:10.0f} "
                  f"{spec.mem_bandwidth_gbs:8.0f} {spec.tdp_w:6.0f} "
                  f"{spec.peak_dp_per_watt:6.2f}")
        return 0
    from repro.kernels.registry import all_kernels

    for k in all_kernels():
        print(f"{k.number:3d}  {k.name:28s} {k.purpose}")
    return 0


def _cmd_model(args) -> int:
    from repro.config import validate_order
    from repro.cpu import get_cpu
    from repro.gpu import get_gpu
    from repro.kernels import FEConfig

    cfg = FEConfig(dim=args.dim, order=validate_order(args.order),
                   nzones=args.zones**args.dim)
    if args.what == "greenup":
        from repro.runtime.hybrid import HybridExecutor

        ex = HybridExecutor(cfg, get_cpu(args.cpu), get_gpu(args.device), nmpi=args.nmpi)
        rep = ex.greenup_report()
        print(rep.row())
        return 0
    if args.what == "profile":
        from repro.analysis.profiles import cpu_profile

        prof = cpu_profile(cfg, get_cpu(args.cpu), steps=100, nmpi=args.nmpi)
        print("method        corner force   CG solver     total")
        print(prof.row())
        return 0
    from repro.cluster import TITAN, weak_scaling

    for pt in weak_scaling(TITAN, [8, 64, 512, 4096]):
        print(f"{pt.nodes:5d} nodes  {pt.time_s:7.3f} s  efficiency {pt.efficiency:5.1%}")
    return 0


def _cmd_tune_campaign(args) -> int:
    """Offline tuning campaign through the unified search engine.

    Searches the joint kernel/runtime configuration space once per FE
    order and per objective, producing the same per-objective cache
    entries the in-band scheduler writes (keyed backend="hybrid"), so
    `repro run --backend hybrid --tuning-cache PATH` warm-starts from a
    campaign run here — for the matching objective only.
    """
    from repro.backends.hybrid import HybridBackend
    from repro.gpu import get_gpu
    from repro.kernels import FEConfig
    from repro.kernels.registry import KernelSelection
    from repro.sched import hybrid_param_space
    from repro.sched.online import BALANCE_KEY, RUNTIME_KEY, winners_from_candidate
    from repro.tuning import AutoBalancer, TuningCache, run_search

    spec = get_gpu(args.device)
    cache = TuningCache(args.cache)
    objectives = args.objectives or ["time"]
    strategy = args.strategy
    tracer = None
    if args.trace:
        from repro.telemetry import Tracer

        tracer = Tracer()
    from repro.config import validate_order

    orders = [validate_order(int(o)) for o in args.orders.split(",") if o.strip()]
    rows = []
    root = tracer.begin("tune_campaign", category="sched") if tracer else -1
    for order in orders:
        cfg = FEConfig(dim=args.dim, order=order, nzones=args.zones**args.dim)
        harness = HybridBackend.for_pricing(cfg, device=args.device)
        space = hybrid_param_space(cfg, spec)
        for objective in objectives:
            span = (tracer.begin("tuning_campaign", category="sched",
                                 meta={"order": order, "objective": objective,
                                       "strategy": strategy})
                    if tracer else -1)
            result = run_search(space, harness.measure_candidate,
                                objective=objective, strategy=strategy,
                                seed=args.seed)
            winners, runtime = winners_from_candidate(result.best)
            for kernel, params in winners.items():
                cache.store(spec, cfg, kernel, params, backend="hybrid",
                            objective=objective)
            cache.store(spec, cfg, RUNTIME_KEY, runtime, backend="hybrid",
                        objective=objective)
            if tracer:
                tracer.end(span)
            # Price the tuned split and balance it (Section 3.3).
            harness.apply_selection(KernelSelection.from_winners(winners))
            harness.apply_runtime(runtime["fusion"], int(runtime["chunk"]))
            res = AutoBalancer(harness.gpu_time_s, harness.cpu_time_s).balance()
            if res.converged:
                cache.store(spec, cfg, BALANCE_KEY, {"ratio": res.ratio},
                            backend="hybrid", objective=objective)
            rows.append((order, objective, result, winners, runtime, res))
    if tracer:
        tracer.end(root)
        tracer.finish()
        from repro.telemetry import write_chrome_trace

        write_chrome_trace(args.trace, tracer)

    print(f"tuning campaign on {spec.name} "
          f"({args.dim}D, {args.zones}^{args.dim} zones, "
          f"strategy {strategy})")
    print(f"{'method':8s} {'objective':>9} {'k3 mats/blk':>11} "
          f"{'k5 mats/blk':>11} {'k7 cols':>8} {'runtime':>12} "
          f"{'GPU share':>10} {'evaluated':>12} {'converged':>10}")
    for order, objective, result, winners, runtime, res in rows:
        evaluated = (f"{result.evaluations}/{result.feasible_points}")
        print(f"Q{order}-Q{order - 1:<4d} {objective:>9} "
              f"{winners['kernel3']['matrices_per_block']:11d} "
              f"{winners['kernel5']['matrices_per_block']:11d} "
              f"{winners['kernel7']['block_cols']:8d} "
              f"{runtime['fusion'] + '/' + str(runtime['chunk']):>12} "
              f"{res.ratio:10.2%} {evaluated:>12} "
              f"{'yes' if res.converged else 'no':>10}")
    for order, objective, result, *_ in rows:
        print(f"  Q{order} {objective} winner scored under objective "
              f"'{objective}' ({result.score:.4g} {_objective_unit(objective)}); "
              f"priced {result.evaluations} of {result.feasible_points} "
              f"feasible points ({result.evaluated_fraction:.1%})")
    if args.cache:
        print(f"wrote {len(cache)} entries to {args.cache}")
    if args.trace:
        print(f"wrote {args.trace}")
    return 0


def _objective_unit(objective: str) -> str:
    from repro.tuning import OBJECTIVES

    return OBJECTIVES[objective].unit


def _cmd_tune(args) -> int:
    if args.kernel == "campaign":
        return _cmd_tune_campaign(args)
    from repro.gpu import execute_kernel, get_gpu
    from repro.kernels import FEConfig
    from repro.kernels.k34_custom_gemm import kernel3_cost
    from repro.kernels.k56_dgemm_batched import kernel5_cost
    from repro.kernels.k7_force import kernel7_cost
    from repro.tuning import Autotuner, ParamSpace
    from repro.tuning.cache import TuningCache

    from repro.config import validate_order

    spec = get_gpu(args.device)
    cfg = FEConfig(dim=args.dim, order=validate_order(args.order),
                   nzones=args.zones**args.dim)
    builders = {
        "kernel3": (kernel3_cost, "matrices_per_block", [1, 2, 4, 8, 16, 32, 64, 128]),
        "kernel5": (kernel5_cost, "matrices_per_block", [1, 2, 4, 8, 16, 32, 64]),
        "kernel7": (kernel7_cost, "block_cols", [1, 2, 4, 8, 16, 32, 64]),
    }
    builder, param, candidates = builders[args.kernel]

    def build(cand):
        if args.kernel == "kernel5":
            return builder(cfg, "tuned", cand[param])
        return builder(cfg, "v3", **{param: cand[param]})

    def feasible(cand):
        try:
            execute_kernel(spec, build(cand))
            return True
        except ValueError:
            return False

    space = ParamSpace(**{param: candidates}).constrain(feasible)

    def campaign():
        tuner = Autotuner(
            lambda c: execute_kernel(spec, build(c)).time_s,
            space, steps_per_period=40, noise_rel=0.02,
        )
        return tuner.tune().best

    cache = TuningCache(args.cache)
    best = cache.get_or_tune(spec, cfg, args.kernel, campaign)
    t = execute_kernel(spec, build(best))
    print(f"{args.kernel} on {spec.name} ({cfg.describe()}):")
    print(f"  best {param} = {best[param]}  ->  {t.gflops:.1f} Gflop/s, "
          f"occupancy {t.occupancy.occupancy:.1%}")
    return 0


def _cmd_submit(args) -> int:
    """Write-ahead submission: journal the job, don't run it."""
    import uuid

    from repro.api import RunConfig
    from repro.service import JobJournal, JobSpec

    cfg = RunConfig(
        dim=args.dim, order=args.order, zones=args.zones,
        t_final=args.t_final, max_steps=args.max_steps,
        backend=args.backend,
    )
    spec = JobSpec(
        problem=args.problem, config=cfg, priority=args.priority,
        deadline_s=args.deadline, max_attempts=args.max_attempts,
        job_id=args.job_id or f"job-{uuid.uuid4().hex[:10]}",
    )
    JobJournal(args.journal).append("submit", job=spec.to_dict())
    print(f"journaled {spec.job_id} ({spec.problem}, priority "
          f"{spec.priority}) to {args.journal}")
    return 0


def _cmd_serve(args) -> int:
    """Drain a journal's pending jobs through a `SimulationFleet`."""
    from repro.errors import ConfigError
    from repro.service import FleetConfig, SimulationFleet
    from repro.telemetry import FleetManifest

    if args.workers < 0:
        raise ConfigError("workers must be non-negative")
    if args.strict_journal:
        from repro.service import JobJournal

        # Strict pre-flight: a corrupt line fails the serve up front
        # (typed JournalCorruptionError -> exit code 3 in main) instead
        # of being skipped with a warning during recovery.
        JobJournal(args.journal, strict=True)
    fleet = SimulationFleet(
        FleetConfig(workers=args.workers),
        journal_path=args.journal,
        results_dir=args.results_dir,
        tuning_cache=args.tuning_cache,
    )
    pending = len(fleet.recovered)
    done = sum(1 for h in fleet.recovered if h.done)
    print(f"recovered {pending} pending jobs from {args.journal} "
          f"({done} served from the result store)")
    fleet.drain()
    fleet.shutdown(wait=False)
    manifest = FleetManifest.from_rollup(fleet.rollup())
    print(manifest.summary())
    if args.manifest:
        manifest.write(args.manifest)
        print(f"wrote {args.manifest}")
    failed = fleet.rollup()["jobs"]["failed"]
    return 1 if failed else 0


#: Per-error-type remediation hints, appended to the message the user
#: sees. Keyed by class name so the CLI never imports every subsystem.
_ERROR_HINTS = {
    "TuningCacheCorruptionError":
        "re-run without --strict-tuning-cache to discard the corrupt "
        "cache and retune",
    "JournalCorruptionError":
        "re-run without --strict-journal to skip corrupt lines",
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse argv (default sys.argv) and dispatch.

    Typed errors map to exit codes in exactly one place: `ConfigError`
    -> 2, `CorruptionError` -> 3, any other `ReproError` -> 1 (see
    `repro.errors.exit_code_for`). Commands raise; they don't print
    error messages or pick codes themselves.
    """
    from repro.errors import ReproError, exit_code_for

    args = build_parser().parse_args(argv)
    commands = {
        "run": _cmd_run,
        "bench": _cmd_bench,
        "info": _cmd_info,
        "model": _cmd_model,
        "tune": _cmd_tune,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
    }
    try:
        return commands[args.command](args)
    except ReproError as exc:
        hint = _ERROR_HINTS.get(type(exc).__name__)
        print(f"{exc} ({hint})" if hint else str(exc), file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
