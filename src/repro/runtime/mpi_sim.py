"""Single-process MPI simulator.

Runs `nranks` logical ranks inside one process: rank-local payloads,
collectives with the semantics the solver needs (min-reductions for the
global time step, sums for assembly), and byte/message accounting that
the communication cost model prices. The functional layer is exact —
collectives really combine the rank-local arrays — so distributed
algorithms can be validated against their serial counterparts without
real MPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SimulatedComm", "CommCostModel"]


@dataclass
class _Traffic:
    messages: int = 0
    bytes: int = 0
    reductions: int = 0


class SimulatedComm:
    """An MPI_COMM_WORLD of `nranks` simulated ranks."""

    def __init__(self, nranks: int, fault_injector=None):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = nranks
        self.traffic = _Traffic()
        self._mailboxes: dict[tuple[int, int, int], list] = {}
        # Optional repro.resilience.FaultInjector: collectives may then
        # abort with a RankFailure (a simulated dead rank), which the
        # resilient driver answers with rank exclusion.
        self.fault_injector = fault_injector

    # -- Collectives -----------------------------------------------------------

    def _check_contribs(self, contribs: list) -> None:
        if len(contribs) != self.nranks:
            raise ValueError(f"expected one contribution per rank ({self.nranks})")

    def _check_rank(self, rank: int, name: str) -> None:
        if not (0 <= rank < self.nranks):
            raise ValueError(
                f"{name} rank {rank} out of range for a {self.nranks}-rank communicator"
            )

    def _maybe_fail(self, op: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.check("rank", detail=op)

    def allreduce_min(self, contribs: list[float]) -> float:
        """Global minimum (the paper's min-dt reduction, step 5)."""
        self._check_contribs(contribs)
        self._maybe_fail("allreduce_min")
        self.traffic.reductions += 1
        self.traffic.messages += 2 * (self.nranks - 1)
        self.traffic.bytes += 8 * 2 * (self.nranks - 1)
        return float(min(contribs))

    def allreduce_sum(self, contribs: list[np.ndarray]) -> np.ndarray:
        """Global element-wise sum of equal-shaped arrays."""
        self._check_contribs(contribs)
        arrays = [np.asarray(c, dtype=np.float64) for c in contribs]
        shape = arrays[0].shape
        if any(a.shape != shape for a in arrays):
            raise ValueError("allreduce_sum requires equal shapes")
        self._maybe_fail("allreduce_sum")
        self.traffic.reductions += 1
        nbytes = arrays[0].nbytes
        self.traffic.messages += 2 * (self.nranks - 1)
        self.traffic.bytes += 2 * nbytes * (self.nranks - 1)
        return np.sum(arrays, axis=0)

    def bcast(self, value, root: int = 0):
        if not (0 <= root < self.nranks):
            raise ValueError("root out of range")
        self.traffic.messages += self.nranks - 1
        if isinstance(value, np.ndarray):
            self.traffic.bytes += value.nbytes * (self.nranks - 1)
        else:
            self.traffic.bytes += 8 * (self.nranks - 1)
        return value

    # -- Point to point ---------------------------------------------------------

    def send(self, payload: np.ndarray, src: int, dest: int, tag: int = 0) -> None:
        self._check_rank(src, "src")
        self._check_rank(dest, "dest")
        if src == dest:
            raise ValueError("self-sends are not modelled")
        payload = np.asarray(payload)
        self._mailboxes.setdefault((src, dest, tag), []).append(payload.copy())
        self.traffic.messages += 1
        self.traffic.bytes += payload.nbytes

    def recv(self, src: int, dest: int, tag: int = 0) -> np.ndarray:
        self._check_rank(src, "src")
        self._check_rank(dest, "dest")
        box = self._mailboxes.get((src, dest, tag))
        if not box:
            pending = sorted(
                (s, d, t) for (s, d, t), msgs in self._mailboxes.items() if msgs
            )
            raise RuntimeError(
                f"recv on empty mailbox: no message from rank {src} to rank {dest} "
                f"with tag {tag} (pending mailboxes: {pending or 'none'})"
            )
        return box.pop(0)


@dataclass(frozen=True)
class CommCostModel:
    """Alpha-beta-tree communication cost model.

    alpha_s: per-message latency; beta_s_per_byte: inverse bandwidth.
    Collectives over P ranks cost log2(P) rounds (binomial tree).
    """

    alpha_s: float = 2e-6
    beta_s_per_byte: float = 1.0 / 5e9

    def p2p_time(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.alpha_s + nbytes * self.beta_s_per_byte

    def allreduce_time(self, nranks: int, nbytes: float) -> float:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        if nranks == 1:
            return 0.0
        rounds = int(np.ceil(np.log2(nranks)))
        return 2 * rounds * self.p2p_time(nbytes)

    def neighbor_exchange_time(self, nbytes_per_neighbor: float, nneighbors: int) -> float:
        if nneighbors < 0:
            raise ValueError("nneighbors must be non-negative")
        return nneighbors * self.p2p_time(nbytes_per_neighbor)
