"""Single-process MPI simulator.

Runs `nranks` logical ranks inside one process: rank-local payloads,
collectives with the semantics the solver needs (min-reductions for the
global time step, sums for assembly), and byte/message accounting that
the communication cost model prices. The functional layer is exact —
collectives really combine the rank-local arrays — so distributed
algorithms can be validated against their serial counterparts without
real MPI.

Beyond the blocking collectives, the communicator offers MPI-style
nonblocking primitives (`iallreduce_min` / `iallreduce_sum` / `isend` /
`irecv` returning `CommRequest` handles completed by `wait` /
`waitall`). The *functional* result is computed eagerly — the sim has
no real asynchrony — but the *modeled* cost is settled at completion:
wall time elapsed between post and wait counts as compute the transfer
hid under, and only the remainder lands in `CommLedger.exposed_s`.
That is the pricing rule that makes communication/computation overlap
measurable without double-counting hidden time.

With a `Tracer` attached, every traffic-incrementing operation emits
one span of category "comm" (name = the collective, meta = bytes/ranks)
at its completion point, so the summed span bytes always equal
`traffic.bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

__all__ = ["SimulatedComm", "CommCostModel", "CommRequest", "CommLedger"]


@dataclass
class _Traffic:
    messages: int = 0
    bytes: int = 0
    reductions: int = 0
    #: Per-rank attribution as flat int64 arrays indexed by rank (grown on
    #: demand; survives `exclude_rank`/`resize_ranks` rebuilds because the
    #: object is carried over to the new communicator). Arrays, not a dict:
    #: at O(1000) ranks a per-rank `dict.setdefault` inside every collective
    #: made the bookkeeping itself a hot path.
    rank_messages: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    rank_bytes: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def _ensure(self, nranks: int) -> None:
        if self.rank_messages.shape[0] < nranks:
            grow = max(nranks, 2 * self.rank_messages.shape[0])
            for name in ("rank_messages", "rank_bytes"):
                old = getattr(self, name)
                new = np.zeros(grow, dtype=np.int64)
                new[: old.shape[0]] = old
                setattr(self, name, new)

    def charge_rank(self, rank: int, messages: int, nbytes: int) -> None:
        self._ensure(rank + 1)
        self.rank_messages[rank] += messages
        self.rank_bytes[rank] += nbytes

    def charge_nonroot(self, nranks: int, messages_each: int, nbytes_each: int) -> None:
        """Charge ranks 1..nranks-1 uniformly (the reduce+bcast legs)."""
        self._ensure(nranks)
        self.rank_messages[1:nranks] += messages_each
        self.rank_bytes[1:nranks] += nbytes_each

    def per_rank_dict(self) -> dict:
        charged = np.nonzero((self.rank_messages != 0) | (self.rank_bytes != 0))[0]
        return {
            int(r): {"messages": int(self.rank_messages[r]), "bytes": int(self.rank_bytes[r])}
            for r in charged
        }


@dataclass
class CommLedger:
    """Modeled communication seconds, split by whether compute hid them.

    `total_s` is what the cost model charged; `hidden_s` the part that
    overlapped with computation between a nonblocking post and its
    wait; `exposed_s` the remainder that a real run would stall on.
    Blocking operations are fully exposed by construction.
    """

    total_s: float = 0.0
    hidden_s: float = 0.0
    exposed_s: float = 0.0

    def settle(self, cost_s: float, hidden_window_s: float) -> None:
        hidden = min(cost_s, max(hidden_window_s, 0.0))
        self.total_s += cost_s
        self.hidden_s += hidden
        self.exposed_s += cost_s - hidden


class CommRequest:
    """Handle for one in-flight nonblocking operation.

    The functional result already exists (the sim is synchronous); the
    request carries it plus the modeled cost, and `SimulatedComm.wait`
    settles the exposed/hidden split against the wall-clock window the
    caller kept it in flight.
    """

    __slots__ = ("op", "result", "cost_s", "nbytes", "posted_at", "done", "_recv")

    def __init__(self, op: str, result, cost_s: float, nbytes: int, recv=None):
        self.op = op
        self.result = result
        self.cost_s = cost_s
        self.nbytes = nbytes
        self.posted_at = perf_counter()
        self.done = False
        self._recv = recv  # lazy (src, dest, tag) for irecv


class SimulatedComm:
    """An MPI_COMM_WORLD of `nranks` simulated ranks.

    Parameters
    ----------
    nranks : number of simulated ranks.
    fault_injector : optional `repro.resilience.FaultInjector`;
        collectives may then abort with a `RankFailure` (a simulated
        dead rank), which the resilient driver answers with rank
        exclusion.
    cost_model : `CommCostModel` pricing every operation into `ledger`
        (defaults to the standard alpha-beta-tree model).
    tracer : optional enabled `repro.telemetry.Tracer` — every
        traffic-incrementing operation then emits a "comm" span.
    """

    def __init__(self, nranks: int, fault_injector=None,
                 cost_model: "CommCostModel | None" = None, tracer=None):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = nranks
        self.traffic = _Traffic()
        self.ledger = CommLedger()
        self.cost_model = cost_model or CommCostModel()
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._mailboxes: dict[tuple[int, int, int], list] = {}
        self.fault_injector = fault_injector

    # -- Validation ------------------------------------------------------------

    def _check_contribs(self, contribs: list) -> None:
        if len(contribs) != self.nranks:
            raise ValueError(f"expected one contribution per rank ({self.nranks})")

    def _check_rank(self, rank: int, name: str) -> None:
        if not (0 <= rank < self.nranks):
            raise ValueError(
                f"{name} rank {rank} out of range for a {self.nranks}-rank communicator"
            )

    def _validate_arrays(self, op: str, contribs: list) -> list[np.ndarray]:
        """Coerce + validate per-rank arrays, naming the offending rank.

        Shape/dtype mismatches would otherwise surface as raw NumPy
        broadcast errors deep inside the reduction; here they fail fast
        with the rank that contributed the bad payload.
        """
        self._check_contribs(contribs)
        arrays = [np.asarray(c) for c in contribs]
        for rank, a in enumerate(arrays):
            if not np.issubdtype(a.dtype, np.number) or np.issubdtype(a.dtype, np.complexfloating):
                raise TypeError(
                    f"{op}: rank {rank} contributed dtype {a.dtype}; "
                    "contributions must be real numeric arrays"
                )
        shape = arrays[0].shape
        for rank, a in enumerate(arrays[1:], start=1):
            if a.shape != shape:
                raise ValueError(
                    f"{op}: rank {rank} contributed shape {a.shape}, "
                    f"expected {shape} (rank 0's shape)"
                )
        return [np.asarray(a, dtype=np.float64) for a in arrays]

    def _validate_scalars(self, op: str, contribs: list) -> list[float]:
        self._check_contribs(contribs)
        out = []
        for rank, c in enumerate(contribs):
            if np.ndim(c) != 0:
                raise ValueError(
                    f"{op}: rank {rank} contributed shape {np.shape(c)}, "
                    "expected a scalar"
                )
            try:
                out.append(float(c))
            except (TypeError, ValueError):
                raise TypeError(
                    f"{op}: rank {rank} contributed {type(c).__name__!s}, "
                    "expected a real scalar"
                ) from None
        return out

    def _maybe_fail(self, op: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.check("rank", detail=op)

    # -- Accounting ------------------------------------------------------------

    def _account_reduction(self, nbytes_each: int, count: int = 1) -> int:
        """Traffic of `count` tree allreduces; returns the total bytes moved.

        Totals keep the historic formula (2 (P-1) messages, 2 payload
        (P-1) bytes) per reduction. Per-rank attribution uses the
        reduce+bcast view: each non-root rank sends its payload up and
        receives the result down; the root's relaying is folded into
        those legs so the per-rank sum equals the communicator total.
        The per-rank charge is one vectorized slice update regardless of
        P or `count`, so accounting stays O(1) per collective even on
        O(1000)-rank communicators.
        """
        p = self.nranks
        self.traffic.reductions += count
        total = 2 * nbytes_each * (p - 1) * count
        self.traffic.messages += 2 * (p - 1) * count
        self.traffic.bytes += total
        self.traffic.charge_nonroot(p, 2 * count, 2 * nbytes_each * count)
        return total

    def _span(self, op: str, nbytes: int, **meta):
        """One "comm"-category span (or a no-op context when untraced)."""
        if self.tracer is None:
            from repro.telemetry.tracer import NULL_SPAN

            return NULL_SPAN
        return self.tracer.span(
            op, category="comm",
            meta={"bytes": int(nbytes), "ranks": self.nranks, **meta},
        )

    # -- Collectives (blocking = post + immediate wait) --------------------------

    def allreduce_min(self, contribs: list[float]) -> float:
        """Global minimum (the paper's min-dt reduction, step 5)."""
        return self.wait(self.iallreduce_min(contribs))

    def allreduce_sum(self, contribs: list[np.ndarray]) -> np.ndarray:
        """Global element-wise sum of equal-shaped arrays."""
        return self.wait(self.iallreduce_sum(contribs))

    def bcast(self, value, root: int = 0):
        if not (0 <= root < self.nranks):
            raise ValueError("root out of range")
        nbytes = value.nbytes if isinstance(value, np.ndarray) else 8
        total = nbytes * (self.nranks - 1)
        self.traffic.messages += self.nranks - 1
        self.traffic.bytes += total
        self.traffic._ensure(self.nranks)
        self.traffic.rank_messages[: self.nranks] += 1
        self.traffic.rank_bytes[: self.nranks] += nbytes
        self.traffic.rank_messages[root] -= 1
        self.traffic.rank_bytes[root] -= nbytes
        cost = self.cost_model.allreduce_time(self.nranks, nbytes) / 2.0
        with self._span("bcast", total, root=root):
            self.ledger.settle(cost, 0.0)
        return value

    # -- Nonblocking primitives --------------------------------------------------

    def iallreduce_min(self, contribs: list[float]) -> CommRequest:
        """Post a nonblocking global-min reduction; complete with `wait`."""
        vals = self._validate_scalars("allreduce_min", contribs)
        self._maybe_fail("allreduce_min")
        total = self._account_reduction(8)
        cost = self.cost_model.allreduce_time(self.nranks, 8)
        return CommRequest("allreduce_min", float(min(vals)), cost, total)

    def iallreduce_sum(self, contribs: list[np.ndarray]) -> CommRequest:
        """Post a nonblocking element-wise sum; complete with `wait`."""
        arrays = self._validate_arrays("allreduce_sum", contribs)
        self._maybe_fail("allreduce_sum")
        nbytes = arrays[0].nbytes
        total = self._account_reduction(nbytes)
        cost = self.cost_model.allreduce_time(self.nranks, nbytes)
        return CommRequest("allreduce_sum", np.sum(arrays, axis=0), cost, total)

    def iallreduce_sum_stacked(self, stacked: np.ndarray,
                               nbytes_each: "int | None" = None) -> CommRequest:
        """Post a sum-allreduce whose contributions arrive pre-stacked.

        `stacked` has shape (nranks, ...): row r is rank r's
        contribution. Functionally identical to
        `iallreduce_sum(list(stacked))` — the result is the sum over
        axis 0 — but validation and accounting are O(1) array ops, which
        is what lets the vectorized rank layer post one collective for
        O(1000) ranks without a Python loop. `nbytes_each` overrides the
        priced per-rank payload (defaults to one row's bytes); the
        vectorized distributed backend passes the loop-mode payload size
        so both modes price identically.
        """
        stacked = np.asarray(stacked)
        if stacked.ndim < 1 or stacked.shape[0] != self.nranks:
            raise ValueError(
                f"stacked contributions must have leading axis nranks={self.nranks}, "
                f"got shape {stacked.shape}"
            )
        if not np.issubdtype(stacked.dtype, np.number) or np.issubdtype(
            stacked.dtype, np.complexfloating
        ):
            raise TypeError(
                f"allreduce_sum: contributions must be real numeric arrays, got {stacked.dtype}"
            )
        self._maybe_fail("allreduce_sum")
        row_bytes = stacked[0].nbytes if nbytes_each is None else int(nbytes_each)
        total = self._account_reduction(row_bytes)
        cost = self.cost_model.allreduce_time(self.nranks, row_bytes)
        result = np.sum(np.asarray(stacked, dtype=np.float64), axis=0)
        return CommRequest("allreduce_sum", result, cost, total)

    def iallreduce_min_batch(self, values: np.ndarray) -> CommRequest:
        """Post `k` independent scalar min-allreduces as one batch.

        `values` has shape (nranks,) for one reduction or (nranks, k)
        for k of them; the result is the column-wise minimum (a float
        for the 1-D form, an array of k floats otherwise). Priced and
        accounted as k scalar tree reductions — the same totals the
        per-rank loop produced with k separate `iallreduce_min` calls.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim not in (1, 2) or values.shape[0] != self.nranks:
            raise ValueError(
                f"values must have shape (nranks,) or (nranks, k) with "
                f"nranks={self.nranks}, got {values.shape}"
            )
        self._maybe_fail("allreduce_min")
        k = 1 if values.ndim == 1 else values.shape[1]
        total = self._account_reduction(8, count=k)
        cost = k * self.cost_model.allreduce_time(self.nranks, 8)
        result = float(values.min()) if values.ndim == 1 else values.min(axis=0)
        return CommRequest("allreduce_min", result, cost, total)

    def isend(self, payload: np.ndarray, src: int, dest: int, tag: int = 0) -> CommRequest:
        """Post a nonblocking send (the mailbox deposit happens eagerly)."""
        self._check_rank(src, "src")
        self._check_rank(dest, "dest")
        if src == dest:
            raise ValueError("self-sends are not modelled")
        payload = np.asarray(payload)
        self._mailboxes.setdefault((src, dest, tag), []).append(payload.copy())
        self.traffic.messages += 1
        self.traffic.bytes += payload.nbytes
        self.traffic.charge_rank(src, 1, payload.nbytes)
        cost = self.cost_model.p2p_time(payload.nbytes)
        return CommRequest("send", None, cost, payload.nbytes)

    def irecv(self, src: int, dest: int, tag: int = 0) -> CommRequest:
        """Post a nonblocking receive; the payload materializes at `wait`."""
        self._check_rank(src, "src")
        self._check_rank(dest, "dest")
        req = CommRequest("recv", None, 0.0, 0, recv=(src, dest, tag))
        return req

    def wait(self, req: CommRequest):
        """Complete one request: settle its cost, emit its span."""
        if req.done:
            raise RuntimeError(f"request '{req.op}' already completed")
        req.done = True
        if req._recv is not None:
            # The transfer was priced and accounted on the send side;
            # completing the receive just hands over the payload.
            src, dest, tag = req._recv
            req.result = self._pop_mailbox(src, dest, tag)
        hidden_window = perf_counter() - req.posted_at
        with self._span(req.op, req.nbytes):
            self.ledger.settle(req.cost_s, hidden_window)
        return req.result

    def waitall(self, reqs: list[CommRequest]) -> list:
        """Complete a batch of requests in posting order."""
        return [self.wait(r) for r in reqs]

    # -- Point to point ---------------------------------------------------------

    def send(self, payload: np.ndarray, src: int, dest: int, tag: int = 0) -> None:
        self.wait(self.isend(payload, src, dest, tag))

    def recv(self, src: int, dest: int, tag: int = 0) -> np.ndarray:
        self._check_rank(src, "src")
        self._check_rank(dest, "dest")
        return self.wait(self.irecv(src, dest, tag))

    def _pop_mailbox(self, src: int, dest: int, tag: int) -> np.ndarray:
        box = self._mailboxes.get((src, dest, tag))
        if not box:
            pending = sorted(
                (s, d, t) for (s, d, t), msgs in self._mailboxes.items() if msgs
            )
            raise RuntimeError(
                f"recv on empty mailbox: no message from rank {src} to rank {dest} "
                f"with tag {tag} (pending mailboxes: {pending or 'none'})"
            )
        return box.pop(0)


@dataclass(frozen=True)
class CommCostModel:
    """Alpha-beta-tree communication cost model.

    alpha_s: per-message latency; beta_s_per_byte: inverse bandwidth.
    Collectives over P ranks cost log2(P) rounds (binomial tree).
    """

    alpha_s: float = 2e-6
    beta_s_per_byte: float = 1.0 / 5e9

    def p2p_time(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.alpha_s + nbytes * self.beta_s_per_byte

    def allreduce_time(self, nranks: int, nbytes: float) -> float:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        if nranks == 1:
            return 0.0
        rounds = int(np.ceil(np.log2(nranks)))
        return 2 * rounds * self.p2p_time(nbytes)

    def neighbor_exchange_time(self, nbytes_per_neighbor: float, nneighbors: int) -> float:
        if nneighbors < 0:
            raise ValueError("nneighbors must be non-negative")
        return nneighbors * self.p2p_time(nbytes_per_neighbor)
