"""Shared-memory zone-parallel corner-force executor.

The paper's CPU baseline splits the corner-force loop over zones across
OpenMP threads; the MPI layer does the same across ranks. This module
is the real (multi-process) analogue for the NumPy engine: the mesh's
zones are partitioned into contiguous chunks, each worker process owns
its chunks for the lifetime of the run, and all state/result traffic
goes through `multiprocessing.shared_memory` segments mapped before the
fork — the only per-evaluation costs are three array copies in
(v, e, x) and one 16-byte command packet per worker
(`runtime.workers.PersistentWorkerPool`), never pickling of mesh-sized
data and never a steady-state allocation.

Partition contract: the default is **one contiguous span per worker**
(`chunks = workers`), the paper's static OpenMP schedule. With a fused
engine each span goes through `ForceEngine.compute_fused_span`, and the
single-worker partition is the full span (0, nzones) — documented
bitwise-identical to `ForceEngine.compute` — so `workers=1` costs only
the dispatch syscalls over serial and returns serial's exact bits.
Multi-worker partitions are deterministic for a fixed (nzones, chunks)
pair; pin `chunks=K` explicitly to make results invariant under the
worker count (K spans round-robined over however many processes run
them). `compute_chunked` runs the identical chunked loop serially so
tests can assert bitwise equality directly. The global dt is the min
over chunk minima (min is exactly associative).

The executor is wired into the solver via `SolverOptions(workers=N)`
(or `executor="parallel"`) and the CLI's `repro run --workers N`.
"""

from __future__ import annotations

import atexit
import os

import numpy as np
from multiprocessing import shared_memory

from repro.hydro.corner_force import ForceEngine, ForceResult
from repro.hydro.state import HydroState
from repro.runtime.workers import PersistentWorkerPool, WorkerError

__all__ = ["ZoneParallelExecutor", "SPAN_GRANULE", "default_chunk_count"]

#: Minimum zones per chunk: partitions never go finer than this, so a
#: huge worker count on a small mesh cannot shred the BLAS batch sizes.
SPAN_GRANULE = 16


def default_chunk_count(nzones: int, workers: int) -> int:
    """Default partition: one span per worker, floored at SPAN_GRANULE zones."""
    return max(1, min(int(workers), -(-int(nzones) // SPAN_GRANULE)))


class ZoneParallelExecutor:
    """Persistent fork-based worker pool over static zone chunks.

    Parameters
    ----------
    engine : the (already constructed) ForceEngine; workers inherit it
        copy-on-write through fork, so no per-call serialization.
    workers : process count (default: os.cpu_count(), capped at the
        chunk count).
    chunks : zone partition count. Default: one contiguous span per
        worker (the paper's static OpenMP schedule) — the coarsest
        partition, so per-span batching stays near the full-batch
        optimum. Pinning an explicit count instead makes the schedule —
        and therefore the result bits — independent of how many
        processes run it.
    tracer : optional enabled `repro.telemetry.Tracer`; when given,
        each parallel dispatch is one "executor"-category span covering
        copy-in, worker wake-up, evaluation and the dt reduction.

    Lifecycle: `start()` forks the pool (idempotent; `compute` calls it
    lazily), `close()` shuts it down and releases shared memory. The
    fork happens *after* `prepare_spans` leased every span workspace on
    the arena, so children never allocate on the hot path and the pool
    can serve thousands of evaluations (`stats()` reports how the fork
    amortized).
    """

    def __init__(
        self,
        engine: ForceEngine,
        workers: int | None = None,
        chunks: int | None = None,
        tracer=None,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        nzones = engine.kinematic.mesh.nzones
        workers = max(1, int(workers))
        chunks = (
            default_chunk_count(nzones, workers)
            if chunks is None
            else max(1, min(int(chunks), nzones))
        )
        workers = min(workers, chunks)
        self.engine = engine
        self.workers = workers
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        self.chunk_ids = [
            np.ascontiguousarray(c, dtype=np.int64)
            for c in np.array_split(np.arange(nzones, dtype=np.int64), chunks)
        ]
        spans = np.cumsum([0] + [c.size for c in self.chunk_ids])
        self._spans = [
            (int(spans[i]), int(spans[i + 1])) for i in range(len(self.chunk_ids))
        ]

        kin = engine.kinematic
        thermo = engine.thermodynamic
        dim = kin.dim
        self._segments: list[shared_memory.SharedMemory] = []

        def shared_array(shape: tuple[int, ...]) -> np.ndarray:
            nbytes = max(int(np.prod(shape)) * 8, 8)
            seg = shared_memory.SharedMemory(create=True, size=nbytes)
            self._segments.append(seg)
            return np.ndarray(shape, dtype=np.float64, buffer=seg.buf)

        # Inputs (parent writes, workers read).
        self._x = shared_array((kin.ndof, dim))
        self._v = shared_array((kin.ndof, dim))
        self._e = shared_array((thermo.ndof,))
        # Outputs (workers write disjoint slices). F_z is double-buffered
        # so the two most recent results stay live across RK2's stages.
        fz_shape = (nzones, kin.ndof_per_zone, dim, thermo.ndof_per_zone)
        self._fz = [shared_array(fz_shape), shared_array(fz_shape)]
        self._dt = shared_array((len(self.chunk_ids),))
        self._valid = shared_array((len(self.chunk_ids),))
        self._slot = 0

        # Static round-robin chunk -> worker assignment (1:1 under the
        # default chunks == workers partition).
        self._assignment: list[list[int]] = [[] for _ in range(workers)]
        for i in range(len(self.chunk_ids)):
            self._assignment[i % workers].append(i)

        # Lease the per-span workspaces parent-side before forking: the
        # children inherit the arena-backed buffers copy-on-write, so a
        # fused worker never allocates on its hot path and the parent's
        # arena high-water statistic covers the span pool.
        if engine.fused and hasattr(engine, "prepare_spans"):
            engine.prepare_spans(self._spans)

        self._pool = PersistentWorkerPool(
            workers, self._worker_eval, name="zone-parallel"
        )
        self._closed = False
        atexit.register(self.close)

    # -- worker side --------------------------------------------------------

    def _worker_eval(self, wid: int, slot: int, t: float) -> None:
        """Runs in the forked child: evaluate owned chunks into shared out."""
        state = HydroState(self._v, self._e, self._x, t)
        fz = self._fz[slot]
        for ci in self._assignment[wid]:
            lo, hi = self._spans[ci]
            res = self._compute_chunk(state, ci)
            fz[lo:hi] = res.Fz
            self._dt[ci] = res.dt_est
            self._valid[ci] = 1.0 if res.valid else 0.0

    def _compute_chunk(self, state: HydroState, ci: int) -> ForceResult:
        """One chunk's corner forces: fused span path or legacy subset."""
        if self.engine.fused:
            lo, hi = self._spans[ci]
            return self.engine.compute_fused_span(state, lo, hi)
        return self.engine.compute_local(state, self.chunk_ids[ci])

    # -- parent side --------------------------------------------------------

    def start(self) -> None:
        """Fork the worker pool (idempotent)."""
        if self._closed:
            raise RuntimeError("executor has been closed")
        self._pool.start()

    def compute(self, state: HydroState, keep_az: bool = False) -> ForceResult:
        """Drop-in replacement for `ForceEngine.compute`.

        Returns a ForceResult whose F_z is a view of the shared output
        buffer (double-buffered; valid until two more evaluations).
        `geometry`/`points` are not assembled here — the time loop only
        consumes Fz / dt_est / valid, and geometry queries go through
        the engine's own cached `point_geometry`.
        """
        if self._closed:
            raise RuntimeError("executor has been closed")
        if keep_az:  # debug path: not worth distributing
            return self.engine.compute(state, keep_az=True)
        if not self._pool.running:
            self._pool.start()
        if self.tracer is not None:
            with self.tracer.span(
                "parallel_dispatch", category="executor",
                meta={"workers": self.workers, "chunks": len(self.chunk_ids)},
            ):
                return self._compute_impl(state)
        return self._compute_impl(state)

    def _compute_impl(self, state: HydroState) -> ForceResult:
        np.copyto(self._x, state.x)
        np.copyto(self._v, state.v)
        np.copyto(self._e, state.e)
        slot = self._slot
        self._slot = 1 - slot
        try:
            self._pool.dispatch(slot, state.t)
            self._pool.wait()
        except WorkerError as exc:
            raise RuntimeError(f"parallel corner-force worker failed: {exc}") from exc
        valid = bool(np.all(self._valid > 0.5))
        dt_est = float(self._dt.min()) if valid else 0.0
        return ForceResult(
            Fz=self._fz[slot],
            geometry=None,
            points=None,
            dt_est=dt_est,
            valid=valid,
        )

    def compute_chunked(self, state: HydroState) -> ForceResult:
        """The identical chunked evaluation, run serially in-process.

        This is the executor's bitwise reference: `compute` must produce
        exactly these arrays (tests assert equality down to the last
        ULP), proving the multiprocessing layer changes scheduling only,
        never arithmetic. With a fused engine this is additionally
        bitwise equal to `engine.compute` itself when the partition is a
        single span (the default at workers=1), and within span
        slice-invariance otherwise.
        """
        results = [self._compute_chunk(state, ci) for ci in range(len(self.chunk_ids))]
        Fz = np.concatenate([r.Fz for r in results], axis=0)
        valid = all(r.valid for r in results)
        dt_est = min((r.dt_est for r in results)) if valid else 0.0
        return ForceResult(Fz=Fz, geometry=None, points=None, dt_est=dt_est, valid=valid)

    def stats(self) -> dict:
        """Pool amortization stats plus the partition geometry."""
        return {
            **self._pool.stats(),
            "chunks": len(self.chunk_ids),
            "nzones": int(self.chunk_ids[-1][-1]) + 1 if self.chunk_ids else 0,
        }

    def close(self) -> None:
        """Stop workers and release the shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown()
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except Exception:
                pass
        self._segments.clear()
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def __enter__(self) -> "ZoneParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass
