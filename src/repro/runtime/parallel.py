"""Shared-memory zone-parallel corner-force executor.

The paper's CPU baseline splits the corner-force loop over zones across
OpenMP threads; the MPI layer does the same across ranks. This module
is the real (multi-process) analogue for the NumPy engine: the mesh's
zones are partitioned into contiguous chunks (chunk count = worker
count, the paper's static OpenMP schedule), each worker process owns
its chunks for the lifetime of the run, and all state/result traffic
goes through `multiprocessing.shared_memory` segments — the only
per-evaluation costs are three array copies in (v, e, x) and the
worker wake-up, never pickling of mesh-sized data.

Correctness contract: a worker evaluates its chunks' corner forces,
writing its F_z slice and its chunk-local dt estimate into shared
output arrays. The default partition is *worker-independent* (a fixed
zone granule, `SPAN_GRANULE`), and with a fused engine each chunk goes
through `ForceEngine.compute_fused_span`, whose arithmetic is
schedule-deterministic — so the parallel evaluation is *bit-identical
across worker counts*, not merely to a chunked serial loop run with the
same chunking. With a legacy engine, workers fall back to
`ForceEngine.compute_local` (the staged reference arithmetic). Either
way the global dt is the min over chunk minima (min is exactly
associative), and `compute_chunked` runs the identical chunked loop
serially so tests can assert bitwise equality directly.

The executor is wired into the solver via `SolverOptions(workers=N)`
(or `executor="parallel"`) and the CLI's `repro run --workers N`.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
from multiprocessing import shared_memory

import numpy as np

from repro.hydro.corner_force import ForceEngine, ForceResult
from repro.hydro.state import HydroState

__all__ = ["ZoneParallelExecutor", "SPAN_GRANULE", "default_chunk_count"]

#: Target zones per chunk of the default partition. Fixed (never derived
#: from the worker count) so the evaluation schedule — and therefore the
#: result bits — cannot depend on how many processes happen to run it.
SPAN_GRANULE = 16


def default_chunk_count(nzones: int) -> int:
    """The worker-independent default partition size for a mesh."""
    return max(1, -(-int(nzones) // SPAN_GRANULE))


class ZoneParallelExecutor:
    """Persistent fork-based worker pool over static zone chunks.

    Parameters
    ----------
    engine : the (already constructed) ForceEngine; workers inherit it
        copy-on-write through fork, so no per-call serialization.
    workers : process count (default: os.cpu_count(), capped at the
        chunk count).
    chunks : zone partition count. The default is worker-independent —
        ceil(nzones / SPAN_GRANULE) contiguous spans, round-robined over
        the workers (the paper's static OpenMP schedule) — which is what
        makes results bitwise invariant under the worker count. Passing
        an explicit count pins a different (still deterministic)
        schedule.
    tracer : optional enabled `repro.telemetry.Tracer`; when given,
        each parallel dispatch is one "executor"-category span covering
        copy-in, worker wake-up, evaluation and the dt reduction.
    """

    def __init__(
        self,
        engine: ForceEngine,
        workers: int | None = None,
        chunks: int | None = None,
        tracer=None,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        nzones = engine.kinematic.mesh.nzones
        chunks = (
            default_chunk_count(nzones)
            if chunks is None
            else max(1, min(int(chunks), nzones))
        )
        workers = max(1, min(int(workers), chunks))
        self.engine = engine
        self.workers = workers
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        self.chunk_ids = [
            np.ascontiguousarray(c, dtype=np.int64)
            for c in np.array_split(np.arange(nzones, dtype=np.int64), chunks)
        ]
        spans = np.cumsum([0] + [c.size for c in self.chunk_ids])
        self._spans = [
            (int(spans[i]), int(spans[i + 1])) for i in range(len(self.chunk_ids))
        ]

        kin = engine.kinematic
        thermo = engine.thermodynamic
        dim = kin.dim
        self._segments: list[shared_memory.SharedMemory] = []

        def shared_array(shape: tuple[int, ...]) -> np.ndarray:
            nbytes = max(int(np.prod(shape)) * 8, 8)
            seg = shared_memory.SharedMemory(create=True, size=nbytes)
            self._segments.append(seg)
            return np.ndarray(shape, dtype=np.float64, buffer=seg.buf)

        # Inputs (parent writes, workers read).
        self._x = shared_array((kin.ndof, dim))
        self._v = shared_array((kin.ndof, dim))
        self._e = shared_array((thermo.ndof,))
        # Outputs (workers write disjoint slices). F_z is double-buffered
        # so the two most recent results stay live across RK2's stages.
        fz_shape = (nzones, kin.ndof_per_zone, dim, thermo.ndof_per_zone)
        self._fz = [shared_array(fz_shape), shared_array(fz_shape)]
        self._dt = shared_array((len(self.chunk_ids),))
        self._valid = shared_array((len(self.chunk_ids),))
        self._slot = 0

        # Static round-robin chunk -> worker assignment.
        assignment: list[list[int]] = [[] for _ in range(workers)]
        for i in range(len(self.chunk_ids)):
            assignment[i % workers].append(i)

        # Lease the per-span workspaces parent-side before forking: the
        # children inherit the arena-backed buffers copy-on-write, so a
        # fused worker never allocates on its hot path and the parent's
        # arena high-water statistic covers the span pool.
        if engine.fused and hasattr(engine, "prepare_spans"):
            engine.prepare_spans(self._spans)

        ctx = mp.get_context("fork")
        self._task_queues = [ctx.SimpleQueue() for _ in range(workers)]
        self._done_queue = ctx.SimpleQueue()
        self._procs = [
            ctx.Process(
                target=self._worker_loop,
                args=(w, assignment[w]),
                daemon=True,
            )
            for w in range(workers)
        ]
        for p in self._procs:
            p.start()
        self._closed = False
        atexit.register(self.close)

    # -- worker side --------------------------------------------------------

    def _worker_loop(self, wid: int, my_chunks: list[int]) -> None:
        """Runs in the forked child: wait, evaluate owned chunks, signal."""
        queue = self._task_queues[wid]
        while True:
            msg = queue.get()
            if msg is None:
                return
            slot, t = msg
            try:
                state = HydroState(self._v, self._e, self._x, t)
                fz = self._fz[slot]
                for ci in my_chunks:
                    lo, hi = self._spans[ci]
                    res = self._compute_chunk(state, ci)
                    fz[lo:hi] = res.Fz
                    self._dt[ci] = res.dt_est
                    self._valid[ci] = 1.0 if res.valid else 0.0
                self._done_queue.put((wid, None))
            except Exception as exc:  # surface worker failures in the parent
                self._done_queue.put((wid, f"{type(exc).__name__}: {exc}"))

    def _compute_chunk(self, state: HydroState, ci: int) -> ForceResult:
        """One chunk's corner forces: fused span path or legacy subset."""
        if self.engine.fused:
            lo, hi = self._spans[ci]
            return self.engine.compute_fused_span(state, lo, hi)
        return self.engine.compute_local(state, self.chunk_ids[ci])

    # -- parent side --------------------------------------------------------

    def compute(self, state: HydroState, keep_az: bool = False) -> ForceResult:
        """Drop-in replacement for `ForceEngine.compute`.

        Returns a ForceResult whose F_z is a view of the shared output
        buffer (double-buffered; valid until two more evaluations).
        `geometry`/`points` are not assembled here — the time loop only
        consumes Fz / dt_est / valid, and geometry queries go through
        the engine's own cached `point_geometry`.
        """
        if self._closed:
            raise RuntimeError("executor has been closed")
        if keep_az:  # debug path: not worth distributing
            return self.engine.compute(state, keep_az=True)
        if self.tracer is not None:
            with self.tracer.span(
                "parallel_dispatch", category="executor",
                meta={"workers": self.workers, "chunks": len(self.chunk_ids)},
            ):
                return self._compute_impl(state)
        return self._compute_impl(state)

    def _compute_impl(self, state: HydroState) -> ForceResult:
        np.copyto(self._x, state.x)
        np.copyto(self._v, state.v)
        np.copyto(self._e, state.e)
        slot = self._slot
        self._slot = 1 - slot
        for queue in self._task_queues:
            queue.put((slot, state.t))
        errors = []
        for _ in self._procs:
            _, err = self._done_queue.get()
            if err is not None:
                errors.append(err)
        if errors:
            raise RuntimeError("parallel corner-force worker failed: " + "; ".join(errors))
        valid = bool(np.all(self._valid > 0.5))
        dt_est = float(self._dt.min()) if valid else 0.0
        return ForceResult(
            Fz=self._fz[slot],
            geometry=None,
            points=None,
            dt_est=dt_est,
            valid=valid,
        )

    def compute_chunked(self, state: HydroState) -> ForceResult:
        """The identical chunked evaluation, run serially in-process.

        This is the executor's bitwise reference: `compute` must produce
        exactly these arrays (tests assert equality down to the last
        ULP), proving the multiprocessing layer changes scheduling only,
        never arithmetic. With a fused engine this is additionally
        bitwise equal to `engine.compute` itself (span slice-invariance).
        """
        results = [self._compute_chunk(state, ci) for ci in range(len(self.chunk_ids))]
        Fz = np.concatenate([r.Fz for r in results], axis=0)
        valid = all(r.valid for r in results)
        dt_est = min((r.dt_est for r in results)) if valid else 0.0
        return ForceResult(Fz=Fz, geometry=None, points=None, dt_est=dt_est, valid=valid)

    def close(self) -> None:
        """Stop workers and release the shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        for queue in self._task_queues:
            try:
                queue.put(None)
            except Exception:
                pass
        for p in self._procs:
            p.join(timeout=5)
            if p.is_alive():
                p.terminate()
                p.join(timeout=1)
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except Exception:
                pass
        self._segments.clear()
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def __enter__(self) -> "ZoneParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass
