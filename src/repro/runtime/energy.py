"""Energy accounting and the greenup metric (paper Section 5.3).

    Greenup = CPU_energy / (CPU+GPU)_energy
            = Powerup * Speedup

"Powerup may be less than 1, since CPU+GPU power may exceed that of CPU
only. Yet, the speedup is greater than 1. Therefore the greenup will be
larger than 1."
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyAccount", "GreenupReport", "greenup", "account_from_tracer"]


@dataclass
class EnergyAccount:
    """Accumulates (power, duration) phases for one configuration."""

    label: str = ""
    phases: list[tuple[str, float, float]] = field(default_factory=list)
    # entries: (phase name, duration_s, power_w)

    def add(self, name: str, duration_s: float, power_w: float) -> None:
        if duration_s < 0 or power_w < 0:
            raise ValueError("duration and power must be non-negative")
        self.phases.append((name, duration_s, power_w))

    @property
    def time_s(self) -> float:
        return sum(d for _, d, _ in self.phases)

    @property
    def energy_j(self) -> float:
        return sum(d * p for _, d, p in self.phases)

    @property
    def average_power_w(self) -> float:
        t = self.time_s
        return self.energy_j / t if t > 0 else 0.0


@dataclass(frozen=True)
class GreenupReport:
    """The paper's Table 7 row."""

    method: str
    cpu_time_s: float
    cpu_power_w: float
    hybrid_time_s: float
    hybrid_power_w: float

    @property
    def speedup(self) -> float:
        return self.cpu_time_s / self.hybrid_time_s

    @property
    def powerup(self) -> float:
        """'Power Efficiency' in Table 7: CPU power over hybrid power."""
        return self.cpu_power_w / self.hybrid_power_w

    @property
    def greenup(self) -> float:
        return self.powerup * self.speedup

    @property
    def energy_saved_fraction(self) -> float:
        """1 - hybrid energy / CPU energy (the paper's 27% / 42%)."""
        return 1.0 - 1.0 / self.greenup

    def row(self) -> str:
        return (
            f"{self.method:8s} powerup={self.powerup:5.2f} "
            f"speedup={self.speedup:5.2f} greenup={self.greenup:5.2f} "
            f"energy saved={self.energy_saved_fraction:5.1%}"
        )


def account_from_tracer(tracer, label: str = "") -> EnergyAccount:
    """Lift a live telemetry trace into an `EnergyAccount`.

    One phase per distinct span name, using the leaf-attributed joules
    and wall seconds from `tracer.leaf_energy_table()` — so a traced
    real run can be compared (greenup, average power) against the
    modelled `HybridExecutor` accounts with the same machinery.
    """
    account = EnergyAccount(label or "traced")
    for name, row in tracer.leaf_energy_table().items():
        seconds = row["seconds"]
        joules = row["cpu_j"] + row["gpu_j"]
        power = joules / seconds if seconds > 0 else 0.0
        account.add(name, seconds, power)
    return account


def greenup(cpu: EnergyAccount, hybrid: EnergyAccount, method: str = "") -> GreenupReport:
    """Build a greenup report from two measured energy accounts."""
    if cpu.time_s <= 0 or hybrid.time_s <= 0:
        raise ValueError("both accounts need positive total time")
    return GreenupReport(
        method=method or f"{cpu.label} vs {hybrid.label}",
        cpu_time_s=cpu.time_s,
        cpu_power_w=cpu.average_power_w,
        hybrid_time_s=hybrid.time_s,
        hybrid_power_w=hybrid.average_power_w,
    )
