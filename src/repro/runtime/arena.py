"""Umpire-style arena/pool allocator backing the hot-path workspaces.

The matrix-free MFEM follow-on to the paper (PAPERS.md, arxiv
2112.07075) pairs its sum-factorized kernels with a pool allocator
(Umpire) so the refactored hot path stays allocation-free even as
problem sizes change between runs.  This module is the NumPy analogue:
an `Arena` hands out *leases* on size-bucketed, alignment-padded byte
blocks, and `hydro.workspace.Workspace` becomes a named-view shim over
it.  When a workspace buffer changes shape (mesh resize, solver reuse in
the service warm pool) the old block is returned to a power-of-two free
list instead of the heap, so the next lease — from the same workspace or
a sibling solver sharing the arena — is satisfied without touching the
system allocator.

Leases are name-tagged for diagnostics and the arena keeps high-water
footprint statistics that `repro.api.run` surfaces in the run manifest.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ALIGNMENT", "Arena", "Lease", "bucket_size"]

ALIGNMENT = 64  # bytes; one cache line / AVX-512 vector
_MIN_BUCKET = 256  # don't fragment the free lists with tiny blocks


def bucket_size(nbytes: int) -> int:
    """Power-of-two bucket (>= _MIN_BUCKET) that holds `nbytes`."""
    n = max(int(nbytes), _MIN_BUCKET)
    return 1 << (n - 1).bit_length()


@dataclass
class Lease:
    """A checked-out block: the raw bytes plus its bookkeeping tag."""

    name: str
    nbytes: int
    bucket: int
    block: np.ndarray = field(repr=False)  # 1-D uint8, bucket + ALIGNMENT long
    released: bool = False

    def view(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Aligned ndarray view of the leased bytes."""
        offset = (-self.block.ctypes.data) % ALIGNMENT
        flat = self.block[offset : offset + self.nbytes]
        return flat.view(dtype).reshape(shape)


class Arena:
    """Size-bucketed pool of aligned byte blocks with high-water stats.

    Thread-safe at the lease/release boundary (the service warm pool
    shares one arena across fleet workers); steady-state hot-path code
    never enters this class at all — it reuses views it already holds.
    """

    def __init__(self, name: str = "arena"):
        self.name = name
        self._free: dict[int, list[np.ndarray]] = {}
        self._lock = threading.Lock()
        self.block_allocations = 0
        self.block_reuses = 0
        self.releases = 0
        self.live_leases = 0
        self.leased_bytes = 0
        self.free_bytes = 0
        self.high_water_bytes = 0

    def lease(self, name: str, nbytes: int) -> Lease:
        bucket = bucket_size(nbytes)
        with self._lock:
            stack = self._free.get(bucket)
            if stack:
                block = stack.pop()
                self.block_reuses += 1
                self.free_bytes -= bucket
            else:
                block = np.empty(bucket + ALIGNMENT, dtype=np.uint8)
                self.block_allocations += 1
            self.live_leases += 1
            self.leased_bytes += bucket
            footprint = self.leased_bytes + self.free_bytes
            if footprint > self.high_water_bytes:
                self.high_water_bytes = footprint
        return Lease(name=name, nbytes=int(nbytes), bucket=bucket, block=block)

    def release(self, lease: Lease) -> None:
        if lease.released:
            return
        lease.released = True
        with self._lock:
            self._free.setdefault(lease.bucket, []).append(lease.block)
            self.releases += 1
            self.live_leases -= 1
            self.leased_bytes -= lease.bucket
            self.free_bytes += lease.bucket

    def alloc(self, name: str, shape: tuple[int, ...], dtype=np.float64):
        """Convenience: lease + view in one call; returns (array, lease)."""
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        lease = self.lease(name, nbytes)
        return lease.view(shape, dtype), lease

    def stats(self) -> dict:
        """Snapshot for the run manifest (all counters, high-water bytes)."""
        with self._lock:
            return {
                "name": self.name,
                "alignment": ALIGNMENT,
                "block_allocations": self.block_allocations,
                "block_reuses": self.block_reuses,
                "releases": self.releases,
                "live_leases": self.live_leases,
                "leased_bytes": self.leased_bytes,
                "free_bytes": self.free_bytes,
                "high_water_bytes": self.high_water_bytes,
                "free_buckets": {
                    str(size): len(stack) for size, stack in sorted(self._free.items()) if stack
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Arena({self.name!r}, {self.live_leases} leases, "
            f"{self.high_water_bytes / 1e6:.2f} MB high-water)"
        )
