"""Persistent warm worker pool: fork-once processes, pickle-free wake-ups.

`PersistentWorkerPool` is the process-lifecycle substrate under
`runtime.parallel.ZoneParallelExecutor`. The design goal is a dispatch
path whose steady-state cost is two tiny `write(2)`/`read(2)` syscalls
per worker and *zero Python-level allocation*:

- **Fork once.** Workers are forked at `start()`; everything big (the
  force engine, mesh, arena-backed span workspaces, shared-memory
  segments) is inherited copy-on-write. Nothing mesh-sized ever crosses
  a pipe.
- **Pickle-free command channel.** Each worker owns an `os.pipe`; the
  parent wakes it by writing one fixed 16-byte packet
  (`struct.Struct("<iid")` = opcode, slot, time) packed with
  `pack_into` into a preallocated per-worker buffer. No pickling, no
  queue locks, no allocation.
- **Byte-ack completion.** Workers share one done pipe and acknowledge
  with a single status byte (`wid` on success, `0x80 | wid` on
  failure). On failure the worker leaves a UTF-8 traceback summary in
  its slot of a shared error segment, which the parent raises from.
- **Explicit lifecycle.** `start()` forks, `shutdown()` drains and
  reaps. Pools are reusable across many thousands of dispatches — the
  service warm pool keeps them alive across jobs — and `stats()`
  reports how well the fork cost amortized.

The pool is deliberately dumb about *work*: the only payload a command
carries is `(slot, t)`. The worker body is a callable the owner
provides at construction; it reads its real inputs from shared memory
mapped before the fork. That division is what keeps this layer generic
enough for any engine while keeping the hot path allocation-free.
"""

from __future__ import annotations

import atexit
import os
import signal
import struct
from multiprocessing import shared_memory
from time import perf_counter
from typing import Callable

__all__ = ["PersistentWorkerPool", "WorkerError"]

#: Command packet: little-endian (opcode int32, slot int32, t float64).
_COMMAND = struct.Struct("<iid")

_OP_SHUTDOWN = 0
_OP_DISPATCH = 1

#: Bytes reserved per worker for an error report (length-prefixed UTF-8).
_ERRBUF = 4096

#: Ack byte flag marking a failed evaluation.
_ACK_FAIL = 0x80


class WorkerError(RuntimeError):
    """A worker's evaluation raised; carries the per-worker reports."""


class PersistentWorkerPool:
    """Fork-once worker processes woken by fixed-size command packets.

    Parameters
    ----------
    nworkers : number of child processes to fork at `start()`.
    worker_fn : called in the child as `worker_fn(wid, slot, t)` for
        every dispatch; its inputs/outputs live in shared memory mapped
        before the fork. Exceptions are caught, reported through the
        error segment, and re-raised in the parent as `WorkerError`.
    name : label used in error messages and `stats()`.
    """

    def __init__(self, nworkers: int, worker_fn: Callable[[int, int, float], None],
                 name: str = "pool"):
        if nworkers < 1:
            raise ValueError("need at least one worker")
        self.nworkers = int(nworkers)
        self.worker_fn = worker_fn
        self.name = name
        self._pids: list[int] = []
        self._cmd_w: list[int] = []  # parent->worker command write ends
        self._done_r: int = -1  # parent read end of the shared done pipe
        self._done_w: int = -1
        self._err_seg: shared_memory.SharedMemory | None = None
        self._started = False
        self._closed = False
        # Preallocated dispatch state: one packed command buffer per
        # worker plus a reusable ack scratch — steady-state dispatch
        # touches only these.
        self._cmd_buf = [bytearray(_COMMAND.size) for _ in range(self.nworkers)]
        self._ack_buf = bytearray(self.nworkers)
        self.dispatches = 0
        self._started_at = 0.0
        self._dispatch_s = 0.0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Fork the workers. Idempotent; cheap to call on a live pool."""
        if self._closed:
            raise RuntimeError(f"{self.name}: pool has been shut down")
        if self._started:
            return
        self._err_seg = shared_memory.SharedMemory(
            create=True, size=self.nworkers * _ERRBUF
        )
        done_r, done_w = os.pipe()
        self._done_r, self._done_w = done_r, done_w
        for wid in range(self.nworkers):
            cmd_r, cmd_w = os.pipe()
            pid = os.fork()
            if pid == 0:  # child
                try:
                    os.close(cmd_w)
                    os.close(done_r)
                    self._child_loop(wid, cmd_r, done_w)
                finally:
                    # Never fall back into the parent's atexit machinery.
                    os._exit(0)
            os.close(cmd_r)
            self._cmd_w.append(cmd_w)
            self._pids.append(pid)
        self._started = True
        self._started_at = perf_counter()
        atexit.register(self.shutdown)

    def _child_loop(self, wid: int, cmd_r: int, done_w: int) -> None:
        """Child body: block on the command pipe, evaluate, ack one byte."""
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        unpack = _COMMAND.unpack
        want = _COMMAND.size
        buf = bytearray(want)
        view = memoryview(buf)
        err_view = memoryview(self._err_seg.buf)[wid * _ERRBUF:(wid + 1) * _ERRBUF]
        ok = bytes([wid])
        fail = bytes([_ACK_FAIL | wid])
        while True:
            got = 0
            while got < want:
                n = os.readv(cmd_r, [view[got:]])
                if n == 0:  # parent died without shutdown
                    return
                got += n
            opcode, slot, t = unpack(buf)
            if opcode == _OP_SHUTDOWN:
                os.write(done_w, ok)
                return
            try:
                self.worker_fn(wid, slot, t)
                os.write(done_w, ok)
            except Exception as exc:
                msg = f"{type(exc).__name__}: {exc}".encode("utf-8", "replace")[: _ERRBUF - 4]
                err_view[:4] = len(msg).to_bytes(4, "little")
                err_view[4:4 + len(msg)] = msg
                os.write(done_w, fail)

    # -- dispatch -----------------------------------------------------------

    def dispatch(self, slot: int, t: float) -> None:
        """Wake every worker with (slot, t). Allocates nothing."""
        if not self._started or self._closed:
            raise RuntimeError(f"{self.name}: pool is not running")
        t0 = perf_counter()
        for wid in range(self.nworkers):
            buf = self._cmd_buf[wid]
            _COMMAND.pack_into(buf, 0, _OP_DISPATCH, slot, t)
            os.write(self._cmd_w[wid], buf)
        self.dispatches += 1
        self._dispatch_s += perf_counter() - t0

    def wait(self) -> None:
        """Block until every worker acked the last dispatch.

        Raises `WorkerError` with each failed worker's report if any
        ack carries the failure flag.
        """
        t0 = perf_counter()
        view = memoryview(self._ack_buf)
        got = 0
        while got < self.nworkers:
            n = os.readv(self._done_r, [view[got:]])
            if n == 0:
                raise WorkerError(f"{self.name}: done pipe closed unexpectedly")
            got += n
        self._dispatch_s += perf_counter() - t0
        failed = [b & ~_ACK_FAIL for b in self._ack_buf if b & _ACK_FAIL]
        if failed:
            raise WorkerError(
                f"{self.name}: worker failure: "
                + "; ".join(f"worker {w}: {self._read_error(w)}" for w in sorted(failed))
            )

    def _read_error(self, wid: int) -> str:
        view = memoryview(self._err_seg.buf)[wid * _ERRBUF:(wid + 1) * _ERRBUF]
        n = int.from_bytes(view[:4], "little")
        return bytes(view[4:4 + min(n, _ERRBUF - 4)]).decode("utf-8", "replace")

    # -- teardown -----------------------------------------------------------

    def shutdown(self) -> None:
        """Stop workers, reap them, release pipes and the error segment."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            for wid, fd in enumerate(self._cmd_w):
                try:
                    _COMMAND.pack_into(self._cmd_buf[wid], 0, _OP_SHUTDOWN, 0, 0.0)
                    os.write(fd, self._cmd_buf[wid])
                except OSError:
                    pass
            for pid in self._pids:
                try:
                    _, status = os.waitpid(pid, 0)
                except ChildProcessError:
                    continue
                if os.waitstatus_to_exitcode(status) not in (0,):  # pragma: no cover
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
            for fd in self._cmd_w + [self._done_r, self._done_w]:
                try:
                    os.close(fd)
                except OSError:
                    pass
            self._cmd_w.clear()
            self._pids.clear()
        if self._err_seg is not None:
            try:
                self._err_seg.close()
                self._err_seg.unlink()
            except Exception:
                pass
            self._err_seg = None
        try:
            atexit.unregister(self.shutdown)
        except Exception:
            pass

    @property
    def running(self) -> bool:
        return self._started and not self._closed

    @property
    def pids(self) -> tuple[int, ...]:
        """Child process ids while running (empty before start/after shutdown)."""
        return tuple(self._pids)

    def stats(self) -> dict:
        """Amortization report: how much the fork-once design paid off."""
        uptime = perf_counter() - self._started_at if self._started else 0.0
        return {
            "name": self.name,
            "workers": self.nworkers,
            "running": self.running,
            "dispatches": self.dispatches,
            "dispatch_s": self._dispatch_s,
            "dispatch_us_mean": (
                1e6 * self._dispatch_s / self.dispatches if self.dispatches else 0.0
            ),
            "uptime_s": uptime,
        }

    def __enter__(self) -> "PersistentWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
