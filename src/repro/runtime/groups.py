"""Shared-DOF groups across MPI ranks (paper Figure 10).

"Finite element degrees of freedom (DOFs) shared by multiple MPI tasks
are grouped by the set (group) of tasks sharing them and each group is
assigned to one of the tasks in the group (the master). This results in
a non-overlapping decomposition of the global vectors..."

`build_dof_groups` computes exactly that structure from an H1 space and
a zone partition, and `DofGroups` provides the two primitives MFEM-style
parallel assembly needs: summing duplicated interface contributions
(group reduce) and the master-owned non-overlapping decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.spaces import H1Space

__all__ = ["DofGroups", "build_dof_groups", "interface_dofs", "split_interface_zones"]


@dataclass
class DofGroups:
    """Group structure of the kinematic dofs under a zone partition.

    Attributes
    ----------
    nranks : ranks in the partition.
    dof_ranks : list (len ndof) of sorted rank tuples sharing each dof.
    master : (ndof,) owning rank of each dof (min rank of its group).
    shared_dofs : per rank, the dofs it touches that others also touch.
    """

    nranks: int
    dof_ranks: list[tuple[int, ...]]
    master: np.ndarray
    shared_dofs: list[np.ndarray]

    @property
    def ndof(self) -> int:
        return self.master.size

    def groups(self) -> dict[tuple[int, ...], np.ndarray]:
        """Map group (rank tuple) -> dof ids, the paper's Figure 10."""
        out: dict[tuple[int, ...], list[int]] = {}
        for dof, ranks in enumerate(self.dof_ranks):
            out.setdefault(ranks, []).append(dof)
        return {g: np.asarray(d) for g, d in out.items()}

    def owned_dofs(self, rank: int) -> np.ndarray:
        """Non-overlapping decomposition: dofs mastered by `rank`."""
        if not (0 <= rank < self.nranks):
            raise ValueError("rank out of range")
        return np.flatnonzero(self.master == rank)

    def interface_bytes_per_rank(self, dofs_per_value: int = 8) -> np.ndarray:
        """Communication volume estimate per rank (one exchange)."""
        return np.array([s.size * dofs_per_value for s in self.shared_dofs], dtype=float)


def build_dof_groups(space: H1Space, zone_rank: np.ndarray) -> DofGroups:
    """Compute the dof group structure from a zone->rank partition."""
    zone_rank = np.asarray(zone_rank, dtype=np.int64)
    if zone_rank.shape != (space.mesh.nzones,):
        raise ValueError("zone_rank must assign every zone exactly once")
    if zone_rank.size and zone_rank.min() < 0:
        raise ValueError("ranks must be non-negative")
    nranks = int(zone_rank.max()) + 1 if zone_rank.size else 1
    touched: list[set[int]] = [set() for _ in range(space.ndof)]
    for z in range(space.mesh.nzones):
        r = int(zone_rank[z])
        for dof in space.ldof[z]:
            touched[int(dof)].add(r)
    dof_ranks = [tuple(sorted(s)) for s in touched]
    if any(not r for r in dof_ranks):
        raise ValueError("found a dof touched by no zone (corrupt space)")
    master = np.array([r[0] for r in dof_ranks], dtype=np.int64)
    shared: list[list[int]] = [[] for _ in range(nranks)]
    for dof, ranks in enumerate(dof_ranks):
        if len(ranks) > 1:
            for r in ranks:
                shared[r].append(dof)
    return DofGroups(
        nranks=nranks,
        dof_ranks=dof_ranks,
        master=master,
        shared_dofs=[np.asarray(s, dtype=np.int64) for s in shared],
    )


def interface_dofs(groups: DofGroups) -> np.ndarray:
    """The global interface: dofs shared by more than one rank."""
    return np.flatnonzero([len(r) > 1 for r in groups.dof_ranks])


def split_interface_zones(
    space: H1Space, zone_rank: np.ndarray, groups: DofGroups
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per rank, its (interface_zones, interior_zones) split.

    A zone is *interface* when it touches at least one shared dof —
    its assembly contributions need the group exchange. Interior zones
    touch only rank-private dofs, so their corner-force evaluation can
    run while the interface exchange is in flight: this split is the
    comm/compute overlap window of the distributed backend.
    """
    zone_rank = np.asarray(zone_rank, dtype=np.int64)
    shared = np.zeros(space.ndof, dtype=bool)
    shared[interface_dofs(groups)] = True
    zone_touches_iface = shared[space.ldof].any(axis=1)
    out = []
    for r in range(groups.nranks):
        zones = np.flatnonzero(zone_rank == r)
        mask = zone_touches_iface[zones]
        out.append((zones[mask], zones[~mask]))
    return out


def distributed_scatter_add(
    space: H1Space,
    zone_rank: np.ndarray,
    zvals: np.ndarray,
    groups: DofGroups | None = None,
) -> np.ndarray:
    """Assemble zone contributions rank-by-rank, then combine groups.

    The functional proof that the decomposition is correct: each rank
    assembles only its own zones; interface dofs are then summed across
    the sharing group. The result must equal the serial scatter_add.
    """
    zone_rank = np.asarray(zone_rank, dtype=np.int64)
    if groups is None:
        groups = build_dof_groups(space, zone_rank)
    partial = np.zeros((groups.nranks,) + (space.ndof,) + zvals.shape[2:])
    for r in range(groups.nranks):
        mask = zone_rank == r
        if not mask.any():
            continue
        sub = np.zeros((space.ndof,) + zvals.shape[2:])
        np.add.at(
            sub,
            space.ldof[mask].reshape(-1),
            zvals[mask].reshape((-1,) + zvals.shape[2:]),
        )
        partial[r] = sub
    # Group combine: interface dofs sum their sharing ranks' parts;
    # interior dofs live wholly on their single rank.
    return partial.sum(axis=0)
