"""Deprecated shim: `DistributedLagrangianSolver`.

The distributed layer now lives in the backend seam —
`repro.backends.distributed.DistributedBackend` — and composes with
every node backend through `RunConfig(ranks=N, backend=...)`. This
class keeps the historical constructor working: it builds ONE ordinary
`LagrangianHydroSolver` whose backend is a `DistributedBackend` (so
problem assembly runs once — the old implementation assembled a full
private serial solver and then re-ran its own forked time loop) and
delegates everything to it.

New code should call `repro.api.run(problem, RunConfig(ranks=N))` or
construct `LagrangianHydroSolver` with `SolverOptions(ranks=N)`; see
the migration note in README.md.
"""

from __future__ import annotations


import numpy as np

from repro.backends.distributed import DistributedBackend
from repro._compat import warn_deprecated
from repro.config import RunConfig, _internal_construction
from repro.hydro.solver import (
    LagrangianHydroSolver,
    RunResult,
    SolverOptions,
    backend_kwargs,
    resolve_backend_name,
)

__all__ = ["DistributedLagrangianSolver"]


class DistributedLagrangianSolver:
    """Deprecated facade over `LagrangianHydroSolver` + `DistributedBackend`.

    Accepts the historical signature and exposes the historical surface
    (`state`, `comm`, `zone_rank`, `ranks`, `groups`, `exclude_rank`,
    `run`, `step`, `energies`), all delegating to the one real solver
    (`self.solver`; `self.serial` is the same object — there is no
    second assembly anymore).
    """

    def __init__(
        self,
        problem,
        nranks: int,
        options: SolverOptions | RunConfig | None = None,
        zone_rank: np.ndarray | None = None,
        fault_injector=None,
    ):
        warn_deprecated("DistributedLagrangianSolver", stacklevel=2)
        if isinstance(options, RunConfig):
            options = options.to_solver_options()
        elif options is None:
            with _internal_construction():
                options = SolverOptions()
        self.backend = DistributedBackend(
            nranks,
            node=resolve_backend_name(options),
            node_kwargs=backend_kwargs(options),
            zone_rank=zone_rank,
            overlap=getattr(options, "overlap", True),
            fault_injector=fault_injector,
        )
        self.solver = LagrangianHydroSolver(problem, options, backend=self.backend)
        # Historical name for the underlying serial machinery; it IS the
        # solver now (one factory, assembly runs once).
        self.serial = self.solver

    # -- Delegated surface ---------------------------------------------------

    @property
    def state(self):
        return self.solver.state

    @state.setter
    def state(self, value):
        self.solver.state = value

    @property
    def nranks(self) -> int:
        return self.backend.nranks

    @property
    def comm(self):
        return self.backend.comm

    @property
    def zone_rank(self):
        return self.backend.zone_rank

    @property
    def ranks(self):
        return self.backend.ranks

    @property
    def groups(self):
        return self.backend.groups

    def exclude_rank(self, rank: int) -> None:
        self.backend.exclude_rank(rank)

    def run(self, t_final: float | None = None, max_steps: int | None = None) -> RunResult:
        return self.solver.run(t_final=t_final, max_steps=max_steps)

    def step(self, dt: float) -> bool:
        return self.solver.step(dt)

    def energies(self):
        return self.solver.energies()

    def close(self) -> None:
        self.solver.close()
