"""A functional distributed Lagrangian solver (paper Section 3.4).

Runs the full hydro algorithm with the *data flow* of the MPI
implementation inside one process: the mesh is partitioned across
simulated ranks, each rank evaluates corner forces only for its own
zones, interface dof contributions are combined through the group
structure of Figure 10, the time step comes from the global min
reduction of step 5, and the momentum PCG applies the mass matrix as a
sum of rank-local operators.

The point is correctness, not speed: every collective goes through
`SimulatedComm` (so traffic is accounted), and the result matches the
serial `LagrangianHydroSolver` to floating-point reordering accuracy —
the reproduction of the paper's claim that the MPI level and the
CUDA/OpenMP corner-force level are independent, composable layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.partition import partition_rcb
from repro.hydro.solver import LagrangianHydroSolver, RunResult, SolverOptions
from repro.hydro.state import HydroState
from repro.linalg.csr import CSRMatrix
from repro.linalg.pcg import pcg
from repro.runtime.groups import DofGroups, build_dof_groups
from repro.runtime.mpi_sim import SimulatedComm

__all__ = ["DistributedLagrangianSolver"]


@dataclass
class _RankData:
    zones: np.ndarray
    mass_local: CSRMatrix


class DistributedLagrangianSolver:
    """Rank-parallel version of `LagrangianHydroSolver`.

    Shares the problem setup (spaces, mass matrices, boundary
    conditions) with a serial solver instance, then re-executes the
    time loop with rank-local computation and explicit collectives.
    """

    def __init__(
        self,
        problem,
        nranks: int,
        options: SolverOptions | None = None,
        zone_rank: np.ndarray | None = None,
        fault_injector=None,
    ):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.serial = LagrangianHydroSolver(problem, options)
        self.nranks = nranks
        mesh = problem.mesh
        if zone_rank is None:
            centroids = mesh.zone_vertex_coords().mean(axis=1)
            zone_rank = partition_rcb(centroids, nranks)
        self.zone_rank = np.asarray(zone_rank, dtype=np.int64)
        if self.zone_rank.shape != (mesh.nzones,):
            raise ValueError("zone_rank must assign every zone")
        self.comm = SimulatedComm(nranks, fault_injector=fault_injector)
        self.groups: DofGroups = build_dof_groups(self.serial.kinematic, self.zone_rank)
        self.ranks = [self._build_rank(r) for r in range(nranks)]
        self.state = self.serial.state.copy()
        self._mass_diag = self.serial.mass_v.diagonal()

    def exclude_rank(self, rank: int) -> None:
        """Degrade to `nranks - 1` ranks after a simulated rank failure.

        The dead rank's zones are dealt round-robin to the survivors and
        every partition-derived structure (communicator, dof groups,
        rank-local mass operators) is rebuilt. The functional layer is
        partition-independent, so the physics continues unchanged up to
        floating-point reordering of the reductions — only the (modeled)
        communication and load balance degrade.
        Traffic accounting carries over so a run's totals stay cumulative.
        """
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range (nranks={self.nranks})")
        if self.nranks == 1:
            raise ValueError("cannot exclude the last remaining rank")
        survivors = [r for r in range(self.nranks) if r != rank]
        zr = self.zone_rank.copy()
        failed_zones = np.flatnonzero(zr == rank)
        for i, z in enumerate(failed_zones):
            zr[z] = survivors[i % len(survivors)]
        remap = {old: new for new, old in enumerate(survivors)}
        self.zone_rank = np.asarray([remap[r] for r in zr], dtype=np.int64)
        self.nranks -= 1
        old = self.comm
        self.comm = SimulatedComm(self.nranks, fault_injector=old.fault_injector)
        self.comm.traffic = old.traffic
        self.groups = build_dof_groups(self.serial.kinematic, self.zone_rank)
        self.ranks = [self._build_rank(r) for r in range(self.nranks)]

    def _build_rank(self, rank: int) -> _RankData:
        """Assemble the rank-local share of the kinematic mass matrix."""
        sol = self.serial
        zones = np.flatnonzero(self.zone_rank == rank)
        basis = sol.kinematic.element.tabulate(sol.quad.points)
        geo = sol.engine.geom_eval.evaluate_local(
            sol.kinematic.gather(sol.kinematic.node_coords)[zones]
        )
        rho = sol.engine.mass_qp[zones] / geo.det  # = rho0 on the initial mesh
        w = sol.quad.weights[None, :] * rho * geo.det
        blocks = np.einsum("zk,ki,kj->zij", w, basis, basis, optimize=True)
        ldof = sol.kinematic.ldof[zones]
        ndz = sol.kinematic.ndof_per_zone
        rows = np.repeat(ldof, ndz, axis=1).ravel()
        cols = np.tile(ldof, (1, ndz)).ravel()
        mass = CSRMatrix.from_coo(
            rows, cols, blocks.ravel(), (sol.kinematic.ndof, sol.kinematic.ndof)
        )
        return _RankData(zones=zones, mass_local=mass)

    # -- Distributed primitives -------------------------------------------------

    def _mass_matvec(self, x: np.ndarray) -> np.ndarray:
        """Global M x as the group-sum of rank-local applications."""
        partials = [r.mass_local.matvec(x) for r in self.ranks]
        return self.comm.allreduce_sum(partials)

    def _corner_forces(self, state: HydroState):
        """Per-rank corner forces + the global min-dt reduction."""
        results = [
            self.serial.engine.compute_local(state, r.zones) for r in self.ranks
        ]
        if any(not res.valid for res in results):
            return None, 0.0
        dt = self.comm.allreduce_min(
            [res.dt_est if res.points is not None else np.inf for res in results]
        )
        return results, float(dt)

    def _assemble_rhs(self, results) -> np.ndarray:
        """-F.1: rank-local assembly then interface (group) summation."""
        sol = self.serial
        partials = []
        for rank, res in zip(self.ranks, results):
            rhs_z = sol.engine.force_times_one(res.Fz)  # (nloc, ndz, dim)
            local = np.zeros((sol.kinematic.ndof, sol.kinematic.dim))
            np.add.at(
                local,
                sol.kinematic.ldof[rank.zones].reshape(-1),
                rhs_z.reshape(-1, sol.kinematic.dim),
            )
            partials.append(local)
        return self.comm.allreduce_sum(partials)

    def _solve_momentum(self, rhs: np.ndarray) -> np.ndarray:
        """PCG with the distributed mass operator (per component)."""
        sol = self.serial
        accel = np.zeros_like(rhs)
        for d in range(rhs.shape[1]):
            op = sol.bc.eliminated_operator(self._mass_matvec, d)
            diag = sol.bc.eliminated_diagonal(self._mass_diag, d)
            b = np.where(sol.bc.component_mask(d), 0.0, rhs[:, d])
            res = pcg(op, b, diag=diag, tol=sol.options.pcg_tol,
                      maxiter=sol.momentum.maxiter)
            accel[:, d] = res.x
        accel[sol.bc.mask] = 0.0
        return accel

    def _energy_rhs(self, results, v_avg: np.ndarray) -> np.ndarray:
        """F^T v-bar, zone-local on each rank (no communication)."""
        sol = self.serial
        out = np.zeros(sol.thermodynamic.ndof)
        ez_view = out.reshape(sol.thermodynamic.mesh.nzones, -1)
        vz = sol.kinematic.gather(v_avg)
        for rank, res in zip(self.ranks, results):
            ez_view[rank.zones] = np.einsum(
                "zidj,zid->zj", res.Fz, vz[rank.zones], optimize=True
            )
        return out

    # -- Time stepping ----------------------------------------------------------

    def _stage(self, base: HydroState, results, dt: float) -> HydroState:
        sol = self.serial
        rhs = self._assemble_rhs(results)
        accel = self._solve_momentum(rhs)
        v_new = base.v + dt * accel
        v_avg = 0.5 * (base.v + v_new)
        dedt = sol.mass_e.solve(self._energy_rhs(results, v_avg))
        e_new = base.e + dt * dedt
        x_new = base.x + dt * v_avg
        return HydroState(v_new, e_new, x_new, base.t + dt)

    def step(self, dt: float) -> bool:
        results0, _ = self._corner_forces(self.state)
        if results0 is None:
            return False
        half = self._stage(self.state, results0, 0.5 * dt)
        results_half, dt_est = self._corner_forces(half)
        if results_half is None:
            return False
        new_state = self._stage(self.state, results_half, dt)
        geo = self.serial.engine.point_geometry(new_state.x)
        if not geo.check_valid():
            return False
        self.state = new_state
        self._last_dt_est = dt_est
        return True

    def run(self, t_final: float | None = None, max_steps: int | None = None) -> RunResult:
        sol = self.serial
        t_final = t_final if t_final is not None else sol.problem.default_t_final
        max_steps = max_steps if max_steps is not None else sol.options.max_steps
        controller = type(sol.controller)(cfl=sol.controller.cfl)
        _, dt0 = self._corner_forces(self.state)
        controller.initialize(dt0)
        self._last_dt_est = dt0
        energy_history = [self.energies()]
        dt_history: list[float] = []
        steps = 0
        while self.state.t < t_final - 1e-15 and steps < max_steps:
            dt = controller.propose(self._last_dt_est, self.state.t, t_final)
            if dt <= 0:
                break
            while not self.step(dt):
                dt = controller.reject()
            steps += 1
            dt_history.append(dt)
            energy_history.append(self.energies())
        return RunResult(
            state=self.state,
            steps=steps,
            energy_history=energy_history,
            dt_history=dt_history,
            workload=sol.workload,
            reached_t_final=self.state.t >= t_final - 1e-12,
        )

    def energies(self):
        from repro.hydro.diagnostics import compute_energies

        return compute_energies(self.state, self.serial.mass_v, self.serial.mass_e)
