"""Hybrid MPI + CUDA + OpenMP runtime (simulated).

Functional layer: a single-process MPI simulator with real domain
decomposition, shared-DOF groups and reductions, proving the
decomposition reproduces the serial physics bit-for-bit. Performance
layer: the hybrid executor meters a solver workload on the simulated
CPU/GPU hardware and produces the time/power/energy numbers behind the
paper's Figures 11, 14-16 and Table 7. The memory layer (`arena`) is the
pool allocator behind every hot-path workspace.

Submodules are resolved lazily (PEP 562): `repro.runtime.arena` sits
below `repro.hydro.workspace` in the import graph, while `distributed`/
`parallel`/`hybrid` sit above `repro.hydro` — eager imports here would
close an import cycle through `corner_force`.
"""

_EXPORTS = {
    "SimulatedComm": "repro.runtime.mpi_sim",
    "CommCostModel": "repro.runtime.mpi_sim",
    "DofGroups": "repro.runtime.groups",
    "build_dof_groups": "repro.runtime.groups",
    "EnergyAccount": "repro.runtime.energy",
    "GreenupReport": "repro.runtime.energy",
    "greenup": "repro.runtime.energy",
    "HybridExecutor": "repro.runtime.hybrid",
    "ExecutionReport": "repro.runtime.hybrid",
    "StepBreakdown": "repro.runtime.hybrid",
    "PhaseTimers": "repro.runtime.instrumentation",
    "DistributedLagrangianSolver": "repro.runtime.distributed",
    "ZoneParallelExecutor": "repro.runtime.parallel",
    "PersistentWorkerPool": "repro.runtime.workers",
    "WorkerError": "repro.runtime.workers",
    "Arena": "repro.runtime.arena",
    "Lease": "repro.runtime.arena",
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
