"""Hybrid MPI + CUDA + OpenMP runtime (simulated).

Functional layer: a single-process MPI simulator with real domain
decomposition, shared-DOF groups and reductions, proving the
decomposition reproduces the serial physics bit-for-bit. Performance
layer: the hybrid executor meters a solver workload on the simulated
CPU/GPU hardware and produces the time/power/energy numbers behind the
paper's Figures 11, 14-16 and Table 7.
"""

from repro.runtime.mpi_sim import SimulatedComm, CommCostModel
from repro.runtime.groups import DofGroups, build_dof_groups
from repro.runtime.energy import EnergyAccount, GreenupReport, greenup
from repro.runtime.hybrid import HybridExecutor, ExecutionReport, StepBreakdown
from repro.runtime.instrumentation import PhaseTimers
from repro.runtime.distributed import DistributedLagrangianSolver
from repro.runtime.parallel import ZoneParallelExecutor

__all__ = [
    "SimulatedComm",
    "CommCostModel",
    "DofGroups",
    "build_dof_groups",
    "EnergyAccount",
    "GreenupReport",
    "greenup",
    "HybridExecutor",
    "ExecutionReport",
    "StepBreakdown",
    "PhaseTimers",
    "DistributedLagrangianSolver",
    "ZoneParallelExecutor",
]
