"""The hybrid CPU-GPU executor: times and powers a BLAST workload.

Mirrors the paper's single-node experiment (Section 4.2 / 5): a
dual-package Sandy Bridge node where `nmpi` MPI tasks either run the
whole solver on the CPU, or offload the corner force (and, with one
task, the PCG) to a shared GPU through Hyper-Q.

The same workload description (`FEConfig` + measured PCG iteration
counts) is priced on both configurations; speedup, powerup and greenup
fall out (Figure 11, Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.core_model import CPUExecutionModel
from repro.cpu.specs import CPUSpec
from repro.gpu.device import SimulatedGPU
from repro.gpu.pcie import PCIeModel
from repro.gpu.specs import GPUSpec
from repro.kernels.config import FEConfig
from repro.kernels.k9_pcg import pcg_step_costs
from repro.kernels.k11_spmv import kernel11_cost
from repro.kernels.registry import corner_force_costs
from repro.runtime.energy import EnergyAccount, GreenupReport

__all__ = ["HybridExecutor", "ExecutionReport", "StepBreakdown",
           "OTHER_WORK_FRACTION", "HYBRID_CPU_UTILIZATION"]

# Non-hotspot work (time integration, MFEM form translation, reductions)
# as a fraction of the two hotspots — Table 1 shows 6-11% across methods.
OTHER_WORK_FRACTION = 0.09

# CPU package utilization while the GPU carries the corner force: the
# cores run the CG + updates and drive the device. Calibrated once to
# the paper's Figure 16 (~75 W package against the 95 W full / 19 W
# idle RAPL levels).
HYBRID_CPU_UTILIZATION = 0.72

# RK2Avg stages per time step.
_STAGES = 2


@dataclass
class StepBreakdown:
    """Per-time-step phase seconds for one configuration."""

    corner_force_s: float
    cg_s: float
    other_s: float
    transfer_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.corner_force_s + self.cg_s + self.other_s + self.transfer_s

    def fractions(self) -> dict[str, float]:
        t = self.total_s
        return {
            "corner_force": self.corner_force_s / t,
            "cg": self.cg_s / t,
            "other": self.other_s / t,
            "transfer": self.transfer_s / t,
        }


@dataclass
class ExecutionReport:
    """One configuration's modelled run."""

    mode: str
    step: StepBreakdown
    steps: int
    cpu_power_w: float
    gpu_power_w: float
    account: EnergyAccount = field(repr=False, default=None)

    @property
    def time_s(self) -> float:
        return self.step.total_s * self.steps

    @property
    def total_power_w(self) -> float:
        """Stable active power, the Table 7 measurement."""
        return self.cpu_power_w + self.gpu_power_w

    @property
    def energy_j(self) -> float:
        return self.account.energy_j if self.account else self.total_power_w * self.time_s


class HybridExecutor:
    """Prices CPU-only and hybrid executions of one workload."""

    def __init__(
        self,
        cfg: FEConfig,
        cpu: CPUSpec,
        gpu: GPUSpec | None = None,
        nmpi: int = 8,
        packages: int = 2,
        pcg_iterations: float = 30.0,
        mass_nnz: float | None = None,
        implementation: str = "optimized",
        use_cuda_pcg: bool | None = None,
    ):
        if nmpi < 1 or packages < 1:
            raise ValueError("nmpi and packages must be >= 1")
        if pcg_iterations < 0:
            raise ValueError("pcg_iterations must be non-negative")
        self.cfg = cfg
        self.cpu = cpu
        self.gpu = gpu
        self.nmpi = nmpi
        self.packages = packages
        self.pcg_iterations = pcg_iterations
        self.mass_nnz = mass_nnz if mass_nnz is not None else cfg.mass_nnz_estimate
        self.implementation = implementation
        # The paper's CUDA-PCG runs only in single-task configurations
        # (multi-GPU PCG is out of scope there and here).
        self.use_cuda_pcg = (nmpi == 1) if use_cuda_pcg is None else use_cuda_pcg
        if self.use_cuda_pcg and gpu is None:
            raise ValueError("CUDA-PCG requires a GPU")
        self._cpu_model = CPUExecutionModel(cpu)

    # -- Workload pieces -----------------------------------------------------------

    def corner_force_flops(self) -> float:
        """Useful flops of one corner-force evaluation (impl-independent:
        'both perform the same FLOPs')."""
        return sum(c.flops for c in corner_force_costs(self.cfg, "optimized"))

    def _node_peak_cores(self) -> int:
        # The CUDA+OpenMP design keeps every host core busy regardless
        # of the MPI task count (Section 3.3), so CPU phases always use
        # the full node.
        return self.packages * self.cpu.cores

    def _cpu_corner_force_s(self) -> float:
        """One stage of corner force on the busy CPU cores.

        Efficiency rises with the FE order: higher orders do more flops
        per memory access (the paper's core argument for p-refinement),
        so the CPU's cache/BLAS behaviour — and hence its fraction of
        peak — improves substantially. The exponent was fixed once so
        that the modelled Q4-Q3 corner-force share of a CPU run matches
        the paper's ~75% (Table 1) and never re-tuned per experiment.
        """
        flops = self.corner_force_flops()
        per_core_peak = self.cpu.peak_dp_gflops / self.cpu.cores * 1e9
        from repro.cpu.core_model import CORNER_FORCE_EFFICIENCY

        order_gain = (self.cfg.order / 2.0) ** 1.8
        rate = self._node_peak_cores() * per_core_peak * CORNER_FORCE_EFFICIENCY * order_gain
        return flops / rate

    def _cpu_cg_s(self) -> float:
        """One stage of momentum CG + the energy solve on the node."""
        n = self.cfg.kinematic_ndof_estimate
        # Node-level bandwidth scales with the loaded packages.
        node = CPUExecutionModel(self.cpu)
        cg = node.cg_time(self.pcg_iterations * self.cfg.dim, self.mass_nnz, n)
        energy_solve = node.spmv_time(
            self.cfg.nzones * self.cfg.ndof_thermo_zone**2,
            self.cfg.nzones * self.cfg.ndof_thermo_zone,
        )
        # Bandwidth-bound phases scale with the number of packages that
        # actually host MPI tasks (each brings its own memory channels).
        busy_packages = min(self.packages, -(-self.nmpi // self.cpu.cores))
        return (cg.seconds + energy_solve.seconds) / busy_packages

    # -- Configurations ---------------------------------------------------------------

    def cpu_only(self, steps: int = 1) -> ExecutionReport:
        """All phases on the CPU node (the paper's baseline)."""
        cf = _STAGES * self._cpu_corner_force_s()
        cg = _STAGES * self._cpu_cg_s()
        other = OTHER_WORK_FRACTION * (cf + cg)
        step = StepBreakdown(cf, cg, other)
        pkg = self._cpu_model.package_power(1.0) + self._cpu_model.dram_power(1.0)
        cpu_power = self.packages * pkg
        account = EnergyAccount("cpu-only")
        account.add("step", step.total_s * steps, cpu_power)
        return ExecutionReport("cpu-only", step, steps, cpu_power, 0.0, account)

    def hybrid(self, steps: int = 1, seed: int = 0) -> ExecutionReport:
        """Corner force on the GPU; CG on GPU only with one MPI task."""
        if self.gpu is None:
            raise ValueError("hybrid execution requires a GPU")
        device = SimulatedGPU(self.gpu, seed=seed)
        cf_costs = corner_force_costs(self.cfg, self.implementation)
        cf_phase = device.run_phase(cf_costs * _STAGES, concurrent_clients=self.nmpi)
        pcie = PCIeModel(self.gpu)
        plan = pcie.state_vectors_plan(
            self.cfg.kinematic_ndof_estimate,
            self.cfg.nzones * self.cfg.ndof_thermo_zone,
            self.cfg.dim,
        )
        transfer = _STAGES * pcie.transfer_time_s(plan.total, ncalls=5)

        if self.use_cuda_pcg:
            cg_costs = pcg_step_costs(
                self.cfg, self.pcg_iterations, mass_nnz=self.mass_nnz, solves=self.cfg.dim
            )
            cg_costs = cg_costs + [kernel11_cost(self.cfg)]
            cg_phase = device.run_phase(cg_costs * _STAGES, concurrent_clients=1)
            cg_s = cg_phase.time_s
            gpu_power = (
                cf_phase.power_w * cf_phase.time_s + cg_phase.power_w * cg_phase.time_s
            ) / (cf_phase.time_s + cg_phase.time_s)
        else:
            cg_s = _STAGES * self._cpu_cg_s()
            gpu_power = cf_phase.power_w

        cpu_ref = self.cpu_only()
        other = cpu_ref.step.other_s
        step = StepBreakdown(cf_phase.time_s, cg_s, other, transfer)
        pkg = (
            self._cpu_model.package_power(HYBRID_CPU_UTILIZATION)
            + self._cpu_model.dram_power(HYBRID_CPU_UTILIZATION)
        )
        cpu_power = self.packages * pkg
        account = EnergyAccount("hybrid")
        account.add("step", step.total_s * steps, cpu_power + gpu_power)
        return ExecutionReport("hybrid", step, steps, cpu_power, gpu_power, account)

    def kernel_breakdown(self, seed: int = 0) -> list[dict]:
        """Modelled per-kernel time/power of one GPU corner-force stage.

        Returns Table 2-keyed rows (name, seconds, watts, joules,
        occupancy) from the roofline model. This is *simulated* device
        time — it deliberately does not go on the live wall-clock tracer
        (which meters host execution only); `RunManifest` embeds it so a
        traced offload run still reports where the modelled GPU joules
        would go.
        """
        if self.gpu is None:
            return []
        from repro.gpu.execution import execute_kernel

        rows = []
        for cost in corner_force_costs(self.cfg, self.implementation):
            t = execute_kernel(self.gpu, cost)
            watts = self.gpu.idle_w + t.dynamic_power_w
            rows.append(
                {
                    "name": cost.name,
                    "seconds": t.time_s,
                    "watts": watts,
                    "joules": watts * t.time_s,
                    "occupancy": t.occupancy.occupancy,
                }
            )
        return rows

    # -- Comparisons --------------------------------------------------------------------

    def greenup_report(self, method: str = "") -> GreenupReport:
        """The Table 7 row for this configuration."""
        cpu = self.cpu_only()
        hyb = self.hybrid()
        return GreenupReport(
            method=method or f"Q{self.cfg.order}-Q{self.cfg.order - 1}",
            cpu_time_s=cpu.step.total_s,
            cpu_power_w=cpu.total_power_w,
            hybrid_time_s=hyb.step.total_s,
            hybrid_power_w=hyb.total_power_w,
        )

    def speedup(self) -> float:
        return self.cpu_only().step.total_s / self.hybrid().step.total_s
