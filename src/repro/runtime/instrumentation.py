"""Lightweight phase timers (wall clock) for profiling real runs.

Since the telemetry redesign, `PhaseTimers` is a thin view over tracer
spans: construct it with a `repro.telemetry.Tracer` and every
`measure()` block both opens a span (category "phase") on the shared
trace and accumulates into the local totals, using one pair of clock
readings. Without a tracer (the default) it is the same dependency-free
dict-based timer it always was, so telemetry-off costs nothing extra.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["PhaseTimers"]


class PhaseTimers:
    """Named cumulative wall-clock timers with context-manager scoping.

    Parameters
    ----------
    tracer : optional `repro.telemetry.Tracer`. When given (and
        enabled), each measured block is also emitted as a "phase" span
        so the energy sampler can attribute joules to it; the local
        totals then derive from the span's own monotonic timestamps.
    """

    def __init__(self, tracer=None):
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None

    @contextmanager
    def measure(self, name: str):
        tracer = self.tracer
        if tracer is None:
            t0 = time.perf_counter()
            try:
                yield
            finally:
                dt = time.perf_counter() - t0
                self.totals[name] = self.totals.get(name, 0.0) + dt
                self.counts[name] = self.counts.get(name, 0) + 1
        else:
            with tracer.span(name, category="phase") as span:
                try:
                    yield
                finally:
                    # The span closes on context exit; read the clock
                    # here so the timer view matches the span window.
                    dt = tracer.now() - span.t0_s
                    self.totals[name] = self.totals.get(name, 0.0) + dt
                    self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Credit wall-clock time measured outside a `measure` block
        (e.g. the solver's derived "other = total - force - cg" phase)."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + calls

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def to_dict(self) -> dict[str, dict[str, float]]:
        """Structured export: {phase: {seconds, calls, fraction}}.

        The `ResilientDriver` embeds this in its `RecoveryReport` (and
        `RunManifest` embeds it as the phase table) so the per-phase
        cost of resilience (checkpointing, rollback, replay) is
        machine-readable, not just printable.
        """
        grand = sum(self.totals.values())
        return {
            name: {
                "seconds": t,
                "calls": self.counts.get(name, 0),
                "fraction": t / grand if grand > 0 else 0.0,
            }
            for name, t in sorted(self.totals.items(), key=lambda kv: -kv[1])
        }

    def reset(self) -> None:
        """Zero every timer (e.g. between resilient-driver runs)."""
        self.totals.clear()
        self.counts.clear()

    def fraction(self, name: str) -> float:
        grand = sum(self.totals.values())
        return self.totals.get(name, 0.0) / grand if grand > 0 else 0.0

    def report(self) -> str:
        grand = sum(self.totals.values())
        lines = []
        for name, t in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            share = t / grand if grand else 0.0
            lines.append(f"{name:24s} {t:10.4f}s {share:6.1%} ({self.counts[name]} calls)")
        return "\n".join(lines)
