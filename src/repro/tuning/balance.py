"""CPU-GPU auto-balance (paper Section 3.3, Table 5).

Inside each MPI task, the corner-force zones are split between the GPU
(CUDA) and the host cores (OpenMP). "The scheduler will compare their
time to decide to move more or less work to each processor. After a few
sampling periods, the scheduler will converge to an optimal ratio."

The balancer measures the two sides' times each sampling period and
damps the ratio toward the throughput-proportional split; convergence
is declared when the two sides' times agree to a tolerance over a full
period — the paper reports 75% / 77% of zones on a C2050 against a
six-core host, converging in 14 / 12 periods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["AutoBalancer", "BalanceResult"]


@dataclass
class BalanceResult:
    """Outcome of a balancing campaign."""

    ratio: float  # fraction of zones on the GPU
    converged: bool
    periods: int
    history: list[tuple[float, float, float]] = field(default_factory=list)
    # history entries: (ratio, t_gpu, t_cpu)


class AutoBalancer:
    """Iteratively rebalances the zone split between GPU and CPU.

    Parameters
    ----------
    gpu_time : fraction-of-zones -> seconds for the GPU side.
    cpu_time : fraction-of-zones -> seconds for the CPU side
        (called with 1 - ratio).
    damping : step fraction toward the estimated optimum per period
        (full jumps oscillate under measurement noise).
    tol : relative time mismatch below which the split is balanced.
    noise_rel : synthetic per-measurement noise.
    """

    def __init__(
        self,
        gpu_time: Callable[[float], float],
        cpu_time: Callable[[float], float],
        damping: float = 0.35,
        tol: float = 0.02,
        noise_rel: float = 0.01,
        seed: int = 0,
    ):
        if not (0 < damping <= 1.0):
            raise ValueError("damping must be in (0, 1]")
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.gpu_time = gpu_time
        self.cpu_time = cpu_time
        self.damping = damping
        self.tol = tol
        self.noise_rel = noise_rel
        self._rng = np.random.default_rng(seed)

    def _measure(self, fn: Callable[[float], float], share: float) -> float:
        t = fn(share)
        if t < 0 or not np.isfinite(t):
            raise ValueError(f"invalid measured time {t}")
        if self.noise_rel:
            t *= 1.0 + self._rng.normal(0.0, self.noise_rel)
        return max(t, 1e-12)

    # -- Incremental API (one sampling period at a time) -------------------

    @staticmethod
    def is_balanced(t_gpu: float, t_cpu: float, tol: float) -> bool:
        """The convergence criterion: both sides' times agree to `tol`."""
        return abs(t_gpu - t_cpu) <= tol * max(t_gpu, t_cpu)

    @staticmethod
    def update_ratio(ratio: float, t_gpu: float, t_cpu: float, damping: float) -> float:
        """One damped step of the ratio toward the measured optimum.

        The throughput estimates s_gpu = ratio / t_gpu and
        s_cpu = (1 - ratio) / t_cpu give the throughput-proportional
        target split; the ratio moves a `damping` fraction toward it
        (full jumps oscillate under measurement noise) and stays clipped
        inside (0, 1) so neither side ever starves completely.

        This is the single-period kernel both `balance` (the offline
        campaign) and the in-band `repro.sched.OnlineScheduler` use —
        one update rule, two drivers.
        """
        s_gpu = ratio / t_gpu
        s_cpu = (1.0 - ratio) / t_cpu
        target = s_gpu / (s_gpu + s_cpu)
        ratio += damping * (target - ratio)
        return float(np.clip(ratio, 0.01, 0.99))

    def balance(self, initial_ratio: float = 0.5, max_periods: int = 50) -> BalanceResult:
        """Run sampling periods until the split is balanced."""
        if not (0.0 < initial_ratio < 1.0):
            raise ValueError("initial_ratio must be in (0, 1)")
        ratio = initial_ratio
        history: list[tuple[float, float, float]] = []
        for period in range(1, max_periods + 1):
            t_gpu = self._measure(self.gpu_time, ratio)
            t_cpu = self._measure(self.cpu_time, 1.0 - ratio)
            history.append((ratio, t_gpu, t_cpu))
            if self.is_balanced(t_gpu, t_cpu, self.tol):
                return BalanceResult(ratio, True, period, history)
            ratio = self.update_ratio(ratio, t_gpu, t_cpu, self.damping)
        return BalanceResult(ratio, False, max_periods, history)
