"""`repro.tuning.search`: the unified multi-objective tuning engine.

The paper's Section 3.2.1 tuner walks one hand-listed candidate per
sampling period and can only minimize time. This module generalizes it
behind one declarative API in the kernel_tuner idiom:

* the configuration space is a `ParamSpace` (named ranges +
  restrictions, declared once — see `repro.sched.hybrid_param_space`
  for the joint kernel/runtime space);
* a pluggable `SearchStrategy` decides which candidate to price next
  and when the campaign has converged (`exhaustive`, seeded `random`
  subsampling, greedy `local` coordinate descent);
* a pluggable `Objective` scores each candidate `Measurement` — wall
  time, joules from the simulated power models, or the energy-delay
  product. "Racing to Idle" applies: the energy winner is routinely a
  different configuration than the time winner, and both persist side
  by side in the `TuningCache` under per-objective keys.

Strategies follow an ask/tell protocol so the in-band
`OnlineScheduler` can interleave one evaluation per sampling period:
`reset(space)` binds the feasible set (raising the typed
`EmptyParamSpaceError` for an over-restricted declaration), `ask()`
yields the next candidate or None on convergence, `tell(cand, score)`
feeds the period-averaged measurement back. `run_search` is the
synchronous driver for offline campaigns (`repro tune campaign`).

Everything is deterministic under a fixed seed — strategies use their
own `random.Random`, never global state.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.tuning.parameters import ParamSpace

__all__ = [
    "Measurement",
    "Objective",
    "OBJECTIVES",
    "get_objective",
    "SearchStrategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "LocalSearch",
    "STRATEGIES",
    "make_strategy",
    "SearchResult",
    "run_search",
]


# -- Objectives -------------------------------------------------------------


@dataclass(frozen=True)
class Measurement:
    """One candidate's priced execution: seconds and joules.

    `time_s` is the balanced per-evaluation wall time, `energy_j` the
    board+package joules attributed to it by the simulated power models
    (the same accounting the CounterSampler integrates live).
    """

    time_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        """Energy-delay product (J·s) — the battery-aware compromise."""
        return self.energy_j * self.time_s


@dataclass(frozen=True)
class Objective:
    """A named scoring rule over `Measurement`s (lower is better)."""

    name: str
    unit: str
    _score: object = field(repr=False)

    def score(self, m: Measurement) -> float:
        return self._score(m)


#: The registry. `repro.config._TUNING_OBJECTIVES` mirrors these keys
#: (cross-checked by a test) so `RunConfig` validation and the engine
#: can never drift apart.
OBJECTIVES: dict[str, Objective] = {
    "time": Objective("time", "s", lambda m: m.time_s),
    "energy": Objective("energy", "J", lambda m: m.energy_j),
    "edp": Objective("edp", "J*s", lambda m: m.edp),
}


def get_objective(objective: str | Objective) -> Objective:
    """Resolve a name (or pass an `Objective` through), typed error out."""
    if isinstance(objective, Objective):
        return objective
    try:
        return OBJECTIVES[objective]
    except KeyError:
        raise ConfigError(
            f"unknown tuning objective '{objective}' "
            f"(choose from {tuple(OBJECTIVES)})"
        ) from None


# -- Strategies -------------------------------------------------------------


class SearchStrategy:
    """Ask/tell base: bookkeeping shared by every concrete strategy.

    Subclasses implement `_start()` (after the feasible set is bound)
    and `_next()` (the next unevaluated candidate, or None when the
    strategy considers the campaign converged).
    """

    name = "base"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.evaluations = 0
        self.best: dict | None = None
        self.best_score = math.inf
        self._space: ParamSpace | None = None
        self._feasible: list[dict] = []
        self._scores: dict[tuple, float] = {}

    # -- protocol --

    def reset(self, space: ParamSpace) -> None:
        """Bind the space; raises `EmptyParamSpaceError` if over-restricted."""
        self._space = space
        self._feasible = space.feasible()
        # Every candidate of one space has the same keys, so a fixed
        # key order beats re-sorting dict items per memo probe (the
        # local strategy keys the whole feasible set on reset).
        self._key_order = sorted(space.ranges)
        self._scores = {}
        self.evaluations = 0
        self.best = None
        self.best_score = math.inf
        self._rng = random.Random(self.seed)
        self._start()

    def ask(self) -> dict | None:
        """Next candidate to price, or None once converged."""
        if self._space is None:
            raise RuntimeError("strategy not reset() on a ParamSpace")
        return self._next()

    def _key(self, cand: dict) -> tuple:
        return tuple(cand[k] for k in self._key_order)

    def tell(self, candidate: dict, score: float) -> None:
        """Feed one candidate's objective score back to the strategy."""
        self._scores[self._key(candidate)] = float(score)
        self.evaluations += 1
        if score < self.best_score:
            self.best_score = float(score)
            self.best = dict(candidate)

    @property
    def feasible_points(self) -> int:
        return len(self._feasible)

    # -- subclass hooks --

    def _start(self) -> None:  # pragma: no cover - trivial default
        pass

    def _next(self) -> dict | None:
        raise NotImplementedError


class ExhaustiveSearch(SearchStrategy):
    """Every feasible point, in declaration order (the reference sweep)."""

    name = "exhaustive"

    def _start(self) -> None:
        self._i = 0

    def _next(self) -> dict | None:
        if self._i >= len(self._feasible):
            return None
        cand = self._feasible[self._i]
        self._i += 1
        return dict(cand)


class RandomSearch(SearchStrategy):
    """A seeded random subsample of the feasible set.

    Evaluates `fraction` of the feasible points (at least one, never
    all unless fraction=1) in a seeded shuffle order — the cheap
    baseline that already beats one-candidate-per-period exhaustion on
    large joint spaces.
    """

    name = "random"

    def __init__(self, seed: int = 0, fraction: float = 0.5):
        super().__init__(seed)
        if not (0.0 < fraction <= 1.0):
            raise ConfigError("fraction must be in (0, 1]")
        self.fraction = float(fraction)

    def _start(self) -> None:
        order = list(range(len(self._feasible)))
        self._rng.shuffle(order)
        budget = max(1, math.ceil(self.fraction * len(order)))
        self._order = order[:budget]
        self._i = 0

    def _next(self) -> dict | None:
        if self._i >= len(self._order):
            return None
        cand = self._feasible[self._order[self._i]]
        self._i += 1
        return dict(cand)


class LocalSearch(SearchStrategy):
    """Greedy coordinate descent with memoized evaluations.

    From a seeded random start the strategy sweeps one axis at a time:
    it prices every feasible value of the current axis (other axes
    held at the incumbent), moves the incumbent to the axis winner and
    advances to the next axis. Already-priced points are never asked
    again, so a full pass over the paper's joint space costs roughly
    the *sum* of the axis lengths instead of their product. `passes`
    controls how many sweeps to run (one is enough when the objective
    is close to separable across axes, which the roofline pricing is);
    the campaign converges when a pass ends.
    """

    name = "local"

    def __init__(self, seed: int = 0, passes: int = 1):
        super().__init__(seed)
        if passes < 1:
            raise ConfigError("passes must be >= 1")
        self.passes = int(passes)

    def _start(self) -> None:
        self._index = {self._key(c) for c in self._feasible}
        self._axes = list(self._space.ranges)
        self._current = dict(self._rng.choice(self._feasible))
        self._axis_i = 0
        self._pass = 0
        self._neighbors: list[dict] = []
        self._queue: list[dict] = []
        self._build_axis_queue()

    def _build_axis_queue(self) -> None:
        axis = self._axes[self._axis_i]
        self._neighbors = []
        for value in self._space.ranges[axis]:
            cand = dict(self._current)
            cand[axis] = value
            if self._key(cand) in self._index:
                self._neighbors.append(cand)
        self._queue = [
            c for c in self._neighbors if self._key(c) not in self._scores
        ]

    def _advance_axis(self) -> bool:
        """Adopt the axis winner; True while more axes/passes remain."""
        scored = [c for c in self._neighbors if self._key(c) in self._scores]
        if scored:
            self._current = dict(
                min(scored, key=lambda c: self._scores[self._key(c)])
            )
        self._axis_i += 1
        if self._axis_i >= len(self._axes):
            self._axis_i = 0
            self._pass += 1
            if self._pass >= self.passes:
                return False
        self._build_axis_queue()
        return True

    def _next(self) -> dict | None:
        while not self._queue:
            if not self._advance_axis():
                return None
        return dict(self._queue.pop(0))


#: Strategy registry (mirrored by `repro.config._TUNING_STRATEGIES`).
STRATEGIES: dict[str, type[SearchStrategy]] = {
    "exhaustive": ExhaustiveSearch,
    "random": RandomSearch,
    "local": LocalSearch,
}


def make_strategy(
    strategy: str | SearchStrategy, seed: int = 0, **kwargs
) -> SearchStrategy:
    """Resolve a strategy name to a fresh instance (typed error out)."""
    if isinstance(strategy, SearchStrategy):
        return strategy
    try:
        cls = STRATEGIES[strategy]
    except KeyError:
        raise ConfigError(
            f"unknown tuning strategy '{strategy}' "
            f"(choose from {tuple(STRATEGIES)})"
        ) from None
    return cls(seed=seed, **kwargs)


# -- The synchronous driver -------------------------------------------------


@dataclass
class SearchResult:
    """One campaign's outcome: the winner and how it was found."""

    best: dict
    score: float
    objective: str
    strategy: str
    evaluations: int
    feasible_points: int

    @property
    def evaluated_fraction(self) -> float:
        """Share of the feasible set actually priced (the pruning win)."""
        return self.evaluations / max(self.feasible_points, 1)

    def describe(self) -> dict:
        return {
            "best": dict(self.best),
            "score": self.score,
            "objective": self.objective,
            "strategy": self.strategy,
            "evaluations": self.evaluations,
            "feasible_points": self.feasible_points,
        }


def run_search(
    space: ParamSpace,
    measure,
    objective: str | Objective = "time",
    strategy: str | SearchStrategy = "local",
    seed: int = 0,
) -> SearchResult:
    """Drive one full campaign synchronously (offline use).

    `measure` maps a candidate dict to a `Measurement`; the strategy
    asks, the objective scores, until the strategy converges. The
    in-band scheduler runs the identical loop spread over sampling
    periods instead.
    """
    obj = get_objective(objective)
    strat = make_strategy(strategy, seed=seed)
    strat.reset(space)
    while (cand := strat.ask()) is not None:
        strat.tell(cand, obj.score(measure(cand)))
    return SearchResult(
        best=dict(strat.best),
        score=strat.best_score,
        objective=obj.name,
        strategy=strat.name,
        evaluations=strat.evaluations,
        feasible_points=strat.feasible_points,
    )
