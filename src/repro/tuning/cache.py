"""Persistent autotuning cache with architecture-change detection.

"Auto tuning is a convenient and robust tool. When the code is ported
on another architecture, the changes will be detected and the load will
be rebalanced automatically." (Section 3.3.) The cache keys tuned
parameters by (device, FE configuration, kernel): a lookup on the same
architecture returns instantly, a lookup on a new device misses —
triggering a fresh tuning campaign — without ever serving stale
parameters across hardware.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.gpu.specs import GPUSpec
from repro.kernels.config import FEConfig

__all__ = ["TuningCache"]


class TuningCache:
    """JSON-backed map: (device fingerprint, config, kernel) -> params."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._store: dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            self._store = json.loads(self.path.read_text())

    # -- Keys ---------------------------------------------------------------

    @staticmethod
    def device_fingerprint(spec: GPUSpec) -> str:
        """Identity of the hardware the tuning is valid for.

        Any property that changes kernel behaviour participates: a port
        from Fermi to Kepler (more registers, Hyper-Q) changes the
        fingerprint and invalidates cached tunings, exactly the
        'detected and rebalanced automatically' behaviour.
        """
        return (
            f"{spec.name}|cc{spec.compute_capability}|sm{spec.sm_count}"
            f"|regs{spec.registers_per_sm}|shmem{spec.shared_kb_per_sm}"
            f"|bw{spec.mem_bandwidth_gbs}"
        )

    @staticmethod
    def config_key(cfg: FEConfig) -> str:
        return f"{cfg.dim}d-q{cfg.order}-qp{cfg.quad_points_1d}"

    def _key(self, spec: GPUSpec, cfg: FEConfig, kernel: str) -> str:
        return f"{self.device_fingerprint(spec)}::{self.config_key(cfg)}::{kernel}"

    # -- API ------------------------------------------------------------------

    def lookup(self, spec: GPUSpec, cfg: FEConfig, kernel: str) -> dict | None:
        """Cached parameters, or None on a (device or config) miss."""
        return self._store.get(self._key(spec, cfg, kernel))

    def store(self, spec: GPUSpec, cfg: FEConfig, kernel: str, params: dict) -> None:
        if not isinstance(params, dict) or not params:
            raise ValueError("params must be a non-empty dict")
        self._store[self._key(spec, cfg, kernel)] = dict(params)
        self._flush()

    def get_or_tune(self, spec: GPUSpec, cfg: FEConfig, kernel: str, tune_fn) -> dict:
        """Return cached parameters or run `tune_fn()` and cache them."""
        hit = self.lookup(spec, cfg, kernel)
        if hit is not None:
            return hit
        params = tune_fn()
        self.store(spec, cfg, kernel, params)
        return params

    def invalidate_device(self, spec: GPUSpec) -> int:
        """Drop every entry for one device; returns the count removed."""
        prefix = self.device_fingerprint(spec) + "::"
        doomed = [k for k in self._store if k.startswith(prefix)]
        for k in doomed:
            del self._store[k]
        self._flush()
        return len(doomed)

    def __len__(self) -> int:
        return len(self._store)

    def _flush(self) -> None:
        if self.path is not None:
            self.path.write_text(json.dumps(self._store, indent=1, sort_keys=True))
