"""Persistent autotuning cache with architecture-change detection.

"Auto tuning is a convenient and robust tool. When the code is ported
on another architecture, the changes will be detected and the load will
be rebalanced automatically." (Section 3.3.) The cache keys tuned
parameters by (device fingerprint, FE configuration, kernel) — plus an
optional execution-backend component, so the in-band scheduler's
winners for `backend="hybrid"` never leak into a different execution
policy: a lookup on the same architecture returns instantly, a lookup
on a new device misses — triggering a fresh tuning campaign — without
ever serving stale parameters across hardware.

Durability mirrors the hardened `repro.io.checkpoint` pattern: every
flush goes to a temp file in the same directory followed by an atomic
`os.replace`, so a crash mid-write can never leave a truncated cache
behind. A cache file that *is* corrupt (hand-edited, torn by an old
writer, wrong shape) raises the typed `TuningCacheCorruptionError` in
strict mode and is otherwise recovered from gracefully: the cache
starts empty and the next campaign repopulates it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import CorruptionError
from repro.gpu.specs import GPUSpec
from repro.kernels.config import FEConfig

__all__ = ["TuningCache", "TuningCacheCorruptionError"]


class TuningCacheCorruptionError(CorruptionError):
    """A tuning-cache file failed to parse or validate.

    Part of the unified `repro.errors` hierarchy (CLI exit code 3);
    still a `RuntimeError` through `CorruptionError` for compatibility.
    """


class TuningCache:
    """JSON-backed map: (device fingerprint, config, kernel[, backend]) -> params.

    Parameters
    ----------
    path : JSON file backing the cache (None = in-memory only).
    strict : raise `TuningCacheCorruptionError` on a corrupt file
        instead of the default graceful recovery (start empty, re-tune;
        `recovered_from_corruption` records that it happened).
    """

    def __init__(self, path: str | Path | None = None, strict: bool = False):
        self.path = Path(path) if path is not None else None
        self._store: dict[str, dict] = {}
        self.recovered_from_corruption = False
        if self.path is not None and self.path.exists():
            self._store = self._load(strict)

    def _load(self, strict: bool) -> dict[str, dict]:
        try:
            store = json.loads(self.path.read_text())
            if not isinstance(store, dict) or not all(
                isinstance(v, dict) for v in store.values()
            ):
                raise TuningCacheCorruptionError(
                    f"tuning cache {self.path} is not a mapping of "
                    "key -> parameter dict"
                )
            return store
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            err = TuningCacheCorruptionError(
                f"tuning cache {self.path} is corrupt ({exc}); "
                "delete it or re-run the tuning campaign"
            )
            if strict:
                raise err from exc
        except TuningCacheCorruptionError:
            if strict:
                raise
        self.recovered_from_corruption = True
        return {}

    # -- Keys ---------------------------------------------------------------

    @staticmethod
    def device_fingerprint(spec: GPUSpec) -> str:
        """Identity of the hardware the tuning is valid for.

        Any property that changes kernel behaviour participates: a port
        from Fermi to Kepler (more registers, Hyper-Q) changes the
        fingerprint and invalidates cached tunings, exactly the
        'detected and rebalanced automatically' behaviour.
        """
        return (
            f"{spec.name}|cc{spec.compute_capability}|sm{spec.sm_count}"
            f"|regs{spec.registers_per_sm}|shmem{spec.shared_kb_per_sm}"
            f"|bw{spec.mem_bandwidth_gbs}"
        )

    @staticmethod
    def config_key(cfg: FEConfig) -> str:
        return f"{cfg.dim}d-q{cfg.order}-qp{cfg.quad_points_1d}"

    def _key(
        self,
        spec: GPUSpec,
        cfg: FEConfig,
        kernel: str,
        backend: str | None = None,
        objective: str | None = None,
    ) -> str:
        key = f"{self.device_fingerprint(spec)}::{self.config_key(cfg)}::{kernel}"
        if backend:
            key += f"::{backend}"
        # The default time objective keeps the historical key shape, so
        # caches written before objectives existed stay valid; any other
        # objective gets its own namespace — an energy winner can never
        # warm-start a time campaign or vice versa.
        if objective and objective != "time":
            key += f"::obj={objective}"
        return key

    # -- API ------------------------------------------------------------------

    def lookup(
        self,
        spec: GPUSpec,
        cfg: FEConfig,
        kernel: str,
        backend: str | None = None,
        objective: str | None = None,
    ) -> dict | None:
        """Cached parameters, or None on a (device/config/backend/objective) miss."""
        return self._store.get(self._key(spec, cfg, kernel, backend, objective))

    def store(
        self,
        spec: GPUSpec,
        cfg: FEConfig,
        kernel: str,
        params: dict,
        backend: str | None = None,
        objective: str | None = None,
    ) -> None:
        if not isinstance(params, dict) or not params:
            raise ValueError("params must be a non-empty dict")
        self._store[self._key(spec, cfg, kernel, backend, objective)] = dict(params)
        self._flush()

    def get_or_tune(
        self,
        spec: GPUSpec,
        cfg: FEConfig,
        kernel: str,
        tune_fn,
        backend: str | None = None,
        objective: str | None = None,
    ) -> dict:
        """Return cached parameters or run `tune_fn()` and cache them."""
        hit = self.lookup(spec, cfg, kernel, backend, objective)
        if hit is not None:
            return hit
        params = tune_fn()
        self.store(spec, cfg, kernel, params, backend, objective)
        return params

    def invalidate_device(self, spec: GPUSpec) -> int:
        """Drop every entry for one device; returns the count removed."""
        prefix = self.device_fingerprint(spec) + "::"
        doomed = [k for k in self._store if k.startswith(prefix)]
        for k in doomed:
            del self._store[k]
        self._flush()
        return len(doomed)

    def __len__(self) -> int:
        return len(self._store)

    def _flush(self) -> None:
        """Atomic write: temp file in the same directory + `os.replace`.

        A crash between the two steps leaves either the previous intact
        cache or the complete new one on disk — never a truncation.
        """
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".{self.path.name}.tmp")
        try:
            tmp.write_text(json.dumps(self._store, indent=1, sort_keys=True))
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)
