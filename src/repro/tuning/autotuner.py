"""Sampling-period autotuner.

"In each sampling period, the scheduler picks up a candidate value and
times it. After comparing all the candidates, the scheduler will give
an optimal one. In our test, one sampling period consists of forty time
steps which will be averaged to eliminate the noise." (Section 3.2.1)

The tuner is generic over an evaluation function (candidate -> time per
step); in this repository that function is usually a simulated-kernel
timing, optionally with synthetic measurement noise to exercise the
averaging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.tuning.parameters import ParamSpace

__all__ = ["Autotuner", "TuningResult"]


@dataclass
class TuningResult:
    """Outcome of a tuning campaign."""

    best: dict
    best_time_s: float
    samples: list[tuple[dict, float]] = field(default_factory=list)
    steps_used: int = 0
    eliminated: int = 0

    def ranking(self) -> list[tuple[dict, float]]:
        return sorted(self.samples, key=lambda kv: kv[1])


class Autotuner:
    """Times every feasible candidate over sampling periods of steps.

    Parameters
    ----------
    evaluate : candidate -> seconds per time step (one noisy sample).
    space : the (constraint-filtered) parameter space.
    steps_per_period : samples averaged per candidate (paper: 40).
    noise_rel : synthetic relative measurement noise injected per step,
        reproducing why averaging is needed at all.
    """

    def __init__(
        self,
        evaluate: Callable[[dict], float],
        space: ParamSpace,
        steps_per_period: int = 40,
        noise_rel: float = 0.0,
        seed: int = 0,
    ):
        if steps_per_period < 1:
            raise ValueError("steps_per_period must be >= 1")
        if noise_rel < 0:
            raise ValueError("noise_rel must be non-negative")
        self.evaluate = evaluate
        self.space = space
        self.steps_per_period = steps_per_period
        self.noise_rel = noise_rel
        self._rng = np.random.default_rng(seed)

    def _time_candidate(self, cand: dict) -> float:
        total = 0.0
        for _ in range(self.steps_per_period):
            t = self.evaluate(cand)
            if t <= 0 or not np.isfinite(t):
                raise ValueError(f"evaluation returned invalid time {t} for {cand}")
            if self.noise_rel:
                t *= 1.0 + self._rng.normal(0.0, self.noise_rel)
                t = max(t, 1e-12)
            total += t
        return total / self.steps_per_period

    def tune(self) -> TuningResult:
        """Run one sampling period per feasible candidate, pick the best."""
        candidates = self.space.candidates()
        if not candidates:
            raise ValueError("no feasible candidates (constraints eliminated all)")
        samples = [(cand, self._time_candidate(cand)) for cand in candidates]
        best, best_time = min(samples, key=lambda kv: kv[1])
        return TuningResult(
            best=best,
            best_time_s=best_time,
            samples=samples,
            steps_used=len(candidates) * self.steps_per_period,
            eliminated=self.space.eliminated_count(),
        )
