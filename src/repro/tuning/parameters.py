"""Tuning parameter spaces with constraint elimination.

Step one of the paper's autotuning recipe: "we parametrize every kernel
as far as possible ... Second, we set up a range of values for the
parameters we want to tune. Artificial values, like those exceeding the
shared memory, will be eliminated."
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterable

__all__ = ["ParamSpace"]


class ParamSpace:
    """Cartesian product of named parameter ranges with constraints."""

    def __init__(self, **ranges: Iterable):
        if not ranges:
            raise ValueError("need at least one parameter")
        self.ranges = {k: list(v) for k, v in ranges.items()}
        for k, v in self.ranges.items():
            if not v:
                raise ValueError(f"parameter '{k}' has an empty range")
        self._constraints: list[Callable[[dict], bool]] = []

    def constrain(self, predicate: Callable[[dict], bool]) -> "ParamSpace":
        """Add a feasibility predicate; infeasible points are eliminated."""
        self._constraints.append(predicate)
        return self

    def candidates(self) -> list[dict]:
        """All feasible parameter combinations."""
        keys = list(self.ranges)
        out = []
        for values in product(*(self.ranges[k] for k in keys)):
            cand = dict(zip(keys, values))
            if all(pred(cand) for pred in self._constraints):
                out.append(cand)
        return out

    @property
    def raw_size(self) -> int:
        n = 1
        for v in self.ranges.values():
            n *= len(v)
        return n

    def eliminated_count(self) -> int:
        return self.raw_size - len(self.candidates())
