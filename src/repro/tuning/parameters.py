"""Tuning parameter spaces with constraint elimination.

Step one of the paper's autotuning recipe: "we parametrize every kernel
as far as possible ... Second, we set up a range of values for the
parameters we want to tune. Artificial values, like those exceeding the
shared memory, will be eliminated."

The space is declared once, in the `tune_params` + `restrictions` idiom
of kernel_tuner: named ranges form the cartesian product, restriction
predicates eliminate infeasible points, and the surviving set feeds the
pluggable search strategies in `repro.tuning.search`. A declaration
whose restrictions eliminate *everything* raises the typed
`EmptyParamSpaceError` — that is a mistake in the declaration, not a
runtime condition to search around.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterable

from repro.errors import ConfigError, EmptyParamSpaceError

__all__ = ["ParamSpace"]


class ParamSpace:
    """Cartesian product of named parameter ranges with constraints.

    Restrictions can be given at construction (`restrictions=`) or added
    later with `constrain()`; both are conjunctive predicates over a
    candidate dict, so their order never changes the feasible set — a
    point survives iff every predicate accepts it.
    """

    def __init__(
        self,
        restrictions: Iterable[Callable[[dict], bool]] = (),
        **ranges: Iterable,
    ):
        if not ranges:
            raise ConfigError("need at least one parameter")
        self.ranges = {k: list(v) for k, v in ranges.items()}
        for k, v in self.ranges.items():
            if not v:
                raise ConfigError(f"parameter '{k}' has an empty range")
        self._constraints: list[Callable[[dict], bool]] = list(restrictions)
        self._feasible: list[dict] | None = None

    def constrain(self, predicate: Callable[[dict], bool]) -> "ParamSpace":
        """Add a feasibility predicate; infeasible points are eliminated."""
        self._constraints.append(predicate)
        self._feasible = None  # previously-enumerated set is stale
        return self

    def candidates(self) -> list[dict]:
        """All feasible parameter combinations (enumerated once, cached)."""
        if self._feasible is None:
            keys = list(self.ranges)
            out = []
            for values in product(*(self.ranges[k] for k in keys)):
                cand = dict(zip(keys, values))
                if all(pred(cand) for pred in self._constraints):
                    out.append(cand)
            self._feasible = out
        return list(self._feasible)

    def feasible(self) -> list[dict]:
        """The feasible set, guaranteed non-empty.

        Raises the typed `EmptyParamSpaceError` when the restrictions
        eliminated every point — the search strategies call this so a
        broken declaration fails loudly before any campaign starts.
        """
        cands = self.candidates()
        if not cands:
            raise EmptyParamSpaceError(
                f"restrictions eliminated all {self.raw_size} candidates "
                f"of the parameter space over {list(self.ranges)}"
            )
        return cands

    @property
    def raw_size(self) -> int:
        n = 1
        for v in self.ranges.values():
            n *= len(v)
        return n

    def eliminated_count(self) -> int:
        return self.raw_size - len(self.candidates())
