"""Autotuning and CPU-GPU load balancing (paper Sections 3.2.1, 3.3).

Both tools exploit the iterative time-stepping of CFD codes: candidate
configurations are timed over *sampling periods* of real time steps and
the scheduler converges on the best one while the simulation runs.
"""

from repro.tuning.parameters import ParamSpace
from repro.tuning.autotuner import Autotuner, TuningResult
from repro.tuning.balance import AutoBalancer, BalanceResult
from repro.tuning.cache import TuningCache, TuningCacheCorruptionError
from repro.tuning.search import (
    OBJECTIVES,
    STRATEGIES,
    ExhaustiveSearch,
    LocalSearch,
    Measurement,
    Objective,
    RandomSearch,
    SearchResult,
    SearchStrategy,
    get_objective,
    make_strategy,
    run_search,
)

__all__ = [
    "ParamSpace",
    "Autotuner",
    "TuningResult",
    "AutoBalancer",
    "BalanceResult",
    "TuningCache",
    "TuningCacheCorruptionError",
    "Measurement",
    "Objective",
    "OBJECTIVES",
    "get_objective",
    "SearchStrategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "LocalSearch",
    "STRATEGIES",
    "make_strategy",
    "SearchResult",
    "run_search",
]
