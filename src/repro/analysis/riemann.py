"""Exact Riemann solver for the 1D Euler equations (ideal gas).

The gold standard for shock-code verification (Toro's classic
iteration): given left/right states it computes the star-region
pressure/velocity by Newton iteration on the pressure function, then
samples the self-similar solution at any x/t. Used to verify the
Lagrangian solver against the Sod shock tube, where the paper-class
artificial-viscosity scheme must reproduce the exact shock, contact and
rarefaction to within its smearing width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RiemannState", "ExactRiemannSolution", "solve_riemann"]


@dataclass(frozen=True)
class RiemannState:
    """Primitive state (density, velocity, pressure)."""

    rho: float
    u: float
    p: float

    def __post_init__(self):
        if self.rho <= 0 or self.p <= 0:
            raise ValueError("density and pressure must be positive")

    def sound_speed(self, gamma: float) -> float:
        return float(np.sqrt(gamma * self.p / self.rho))


def _pressure_function(p: float, state: RiemannState, gamma: float) -> tuple[float, float]:
    """f(p, state) and df/dp for the star-pressure iteration."""
    a = state.sound_speed(gamma)
    if p > state.p:  # shock branch
        A = 2.0 / ((gamma + 1.0) * state.rho)
        B = (gamma - 1.0) / (gamma + 1.0) * state.p
        sq = np.sqrt(A / (p + B))
        f = (p - state.p) * sq
        df = sq * (1.0 - 0.5 * (p - state.p) / (p + B))
    else:  # rarefaction branch
        f = 2.0 * a / (gamma - 1.0) * ((p / state.p) ** ((gamma - 1.0) / (2 * gamma)) - 1.0)
        df = 1.0 / (state.rho * a) * (p / state.p) ** (-(gamma + 1.0) / (2 * gamma))
    return float(f), float(df)


@dataclass(frozen=True)
class ExactRiemannSolution:
    """Star-region quantities plus a sampler for the full solution."""

    left: RiemannState
    right: RiemannState
    gamma: float
    p_star: float
    u_star: float

    def sample(self, xi: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Solution at similarity coordinates xi = x/t.

        Returns (rho, u, p) arrays. Implements the standard five-region
        sampling (Toro ch. 4): left data / left wave fan / star-left /
        star-right / right wave fan / right data.
        """
        xi = np.atleast_1d(np.asarray(xi, dtype=np.float64))
        g = self.gamma
        rho = np.empty_like(xi)
        u = np.empty_like(xi)
        p = np.empty_like(xi)
        for i, s in enumerate(xi):
            if s <= self.u_star:
                rho[i], u[i], p[i] = self._sample_side(s, self.left, sign=+1.0)
            else:
                rho[i], u[i], p[i] = self._sample_side(s, self.right, sign=-1.0)
        return rho, u, p

    def _sample_side(self, s: float, state: RiemannState, sign: float):
        """Sample on one side; sign +1 for left, -1 for right."""
        g = self.gamma
        a = state.sound_speed(g)
        if self.p_star > state.p:
            # Shock on this side.
            ratio = self.p_star / state.p
            shock_speed = state.u - sign * a * np.sqrt(
                (g + 1.0) / (2 * g) * ratio + (g - 1.0) / (2 * g)
            )
            if sign * (s - shock_speed) < 0:
                return state.rho, state.u, state.p
            rho_star = state.rho * (
                (ratio + (g - 1.0) / (g + 1.0)) / ((g - 1.0) / (g + 1.0) * ratio + 1.0)
            )
            return rho_star, self.u_star, self.p_star
        # Rarefaction on this side.
        a_star = a * (self.p_star / state.p) ** ((g - 1.0) / (2 * g))
        head = state.u - sign * a
        tail = self.u_star - sign * a_star
        if sign * (s - head) < 0:
            return state.rho, state.u, state.p
        if sign * (s - tail) > 0:
            rho_star = state.rho * (self.p_star / state.p) ** (1.0 / g)
            return rho_star, self.u_star, self.p_star
        # Inside the fan.
        u_fan = (2.0 / (g + 1.0)) * (sign * a + (g - 1.0) / 2.0 * state.u + s)
        a_fan = sign * (u_fan - s)
        rho_fan = state.rho * (a_fan / a) ** (2.0 / (g - 1.0))
        p_fan = state.p * (a_fan / a) ** (2.0 * g / (g - 1.0))
        return rho_fan, u_fan, p_fan


def solve_riemann(
    left: RiemannState,
    right: RiemannState,
    gamma: float = 1.4,
    tol: float = 1e-12,
    max_iter: int = 100,
) -> ExactRiemannSolution:
    """Newton iteration for the star pressure (guarded against vacuum)."""
    if gamma <= 1.0:
        raise ValueError("gamma must exceed 1")
    aL = left.sound_speed(gamma)
    aR = right.sound_speed(gamma)
    du = right.u - left.u
    if 2.0 * (aL + aR) / (gamma - 1.0) <= du:
        raise ValueError("initial states generate vacuum (pressure positivity fails)")
    # Two-rarefaction initial guess — positive and usually close.
    z = (gamma - 1.0) / (2.0 * gamma)
    p = ((aL + aR - 0.5 * (gamma - 1.0) * du) /
         (aL / left.p**z + aR / right.p**z)) ** (1.0 / z)
    p = max(p, tol)
    for _ in range(max_iter):
        fL, dfL = _pressure_function(p, left, gamma)
        fR, dfR = _pressure_function(p, right, gamma)
        f = fL + fR + du
        step = f / (dfL + dfR)
        p_new = max(p - step, tol)
        if abs(p_new - p) < tol * max(p, 1.0):
            p = p_new
            break
        p = p_new
    fL, _ = _pressure_function(p, left, gamma)
    fR, _ = _pressure_function(p, right, gamma)
    u_star = 0.5 * (left.u + right.u) + 0.5 * (fR - fL)
    return ExactRiemannSolution(left, right, gamma, float(p), float(u_star))
