"""ASCII table / series formatting for the benchmark harness.

Every bench prints the paper's reported values next to our modelled or
measured values through these helpers, so EXPERIMENTS.md rows can be
regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "Series", "paper_vs_measured"]


@dataclass
class Table:
    """Simple fixed-width table."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add(self, *cells) -> None:
        row = [c if isinstance(c, str) else _fmt(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError("row width does not match headers")
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, c in enumerate(row):
                widths[i] = max(widths[i], len(c))
        def line(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        out = [self.title, line(self.headers), line(["-" * w for w in widths])]
        out.extend(line(r) for r in self.rows)
        return "\n".join(out)

    def print(self) -> None:  # pragma: no cover - console I/O
        print(self.render())
        print()


@dataclass
class Series:
    """A labelled (x, y) series for figure-style benches."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    def render(self, xfmt: str = "g", yfmt: str = ".4g") -> str:
        body = "  ".join(f"({x:{xfmt}}, {y:{yfmt}})" for x, y in self.points)
        return f"{self.label}: {body}"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def paper_vs_measured(
    title: str, rows: list[tuple[str, float | str, float | str]]
) -> Table:
    """Three-column comparison table: quantity, paper, this repo."""
    t = Table(title, ["quantity", "paper", "measured"])
    for name, paper, ours in rows:
        t.add(name, paper, ours)
    return t
