"""System-scale power projections (the paper's introduction, quantified).

"DOE has recently set a goal of 20MW for exascale systems, which means
50 GFLOPS per watt; though the current No.1 supercomputer Tianhe-2 has
already reached 17MW at 0.03 EFLOPS." This module turns device-level
efficiency (catalog parts or a measured application efficiency) into
machine-level power, answering the question the paper opens with: what
does a given workload cost at scale, and how far is each architecture
from the exascale target?
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SystemProjection", "project_system", "EXASCALE_TARGET_GFLOPS_PER_W",
           "gflops_per_watt_needed"]

# DOE exascale goal cited in the paper: 1 exaflop in 20 MW.
EXASCALE_TARGET_GFLOPS_PER_W = 50.0


@dataclass(frozen=True)
class SystemProjection:
    """A machine sized to hit `system_gflops` with the given part."""

    part: str
    system_gflops: float
    devices_needed: int
    power_mw: float
    gflops_per_watt: float

    @property
    def meets_exascale_target(self) -> bool:
        return self.gflops_per_watt >= EXASCALE_TARGET_GFLOPS_PER_W


def gflops_per_watt_needed(system_flops: float, power_budget_w: float) -> float:
    """Efficiency required to fit a flop rate inside a power budget."""
    if system_flops <= 0 or power_budget_w <= 0:
        raise ValueError("flops and power must be positive")
    return system_flops / 1e9 / power_budget_w


def project_system(
    part_name: str,
    device_gflops: float,
    device_watts: float,
    system_gflops: float = 1e9,  # one exaflop in Gflop/s
    overhead_fraction: float = 0.25,
) -> SystemProjection:
    """Size a machine from one device type.

    `overhead_fraction` covers everything that is not the compute part
    (interconnect, memory, cooling overhead beyond TDP) — the reason
    real systems land well below their parts' nameplate efficiency.
    """
    if device_gflops <= 0 or device_watts <= 0:
        raise ValueError("device figures must be positive")
    if not (0.0 <= overhead_fraction < 1.0):
        raise ValueError("overhead_fraction must be in [0, 1)")
    n = int(-(-system_gflops // device_gflops))
    device_power = n * device_watts
    total_power = device_power / (1.0 - overhead_fraction)
    return SystemProjection(
        part=part_name,
        system_gflops=system_gflops,
        devices_needed=n,
        power_mw=total_power / 1e6,
        gflops_per_watt=system_gflops / total_power,
    )
