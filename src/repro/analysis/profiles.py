"""Profile breakdowns: the paper's Table 1 and Figure 6 views."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.specs import CPUSpec
from repro.gpu.device import SimulatedGPU
from repro.gpu.specs import GPUSpec
from repro.kernels.config import FEConfig
from repro.kernels.k9_pcg import pcg_step_costs
from repro.kernels.registry import corner_force_costs
from repro.runtime.hybrid import HybridExecutor

__all__ = ["CPUProfile", "cpu_profile", "KernelShare", "kernel_breakdown"]


@dataclass(frozen=True)
class CPUProfile:
    """One Table 1 row: absolute phase times for a run."""

    method: str
    corner_force_s: float
    cg_solver_s: float
    total_s: float

    @property
    def corner_force_frac(self) -> float:
        return self.corner_force_s / self.total_s

    @property
    def cg_frac(self) -> float:
        return self.cg_solver_s / self.total_s

    def row(self) -> str:
        return (
            f"{self.method:12s} {self.corner_force_s:9.1f} {self.cg_solver_s:9.1f} "
            f"{self.total_s:9.1f}   ({self.corner_force_frac:4.0%} / {self.cg_frac:4.0%})"
        )


def cpu_profile(
    cfg: FEConfig,
    cpu: CPUSpec,
    steps: int,
    nmpi: int = 6,
    packages: int = 1,
    pcg_iterations: float = 30.0,
    method: str = "",
) -> CPUProfile:
    """Model the CPU-only phase profile of a `steps`-step run."""
    ex = HybridExecutor(
        cfg, cpu, None, nmpi=nmpi, packages=packages, pcg_iterations=pcg_iterations
    )
    rep = ex.cpu_only(steps=steps)
    label = method or f"{cfg.dim}D: Q{cfg.order}-Q{cfg.order - 1}"
    return CPUProfile(
        method=label,
        corner_force_s=rep.step.corner_force_s * steps,
        cg_solver_s=rep.step.cg_s * steps,
        total_s=rep.step.total_s * steps,
    )


@dataclass(frozen=True)
class KernelShare:
    """One slice of the Figure 6 pie."""

    name: str
    time_s: float
    share: float


def kernel_breakdown(
    cfg: FEConfig,
    gpu: GPUSpec,
    implementation: str,
    pcg_iterations: float = 30.0,
    mass_nnz: float | None = None,
) -> list[KernelShare]:
    """Per-kernel GPU time shares of one full step (Figure 6 panels)."""
    device = SimulatedGPU(gpu)
    costs = corner_force_costs(cfg, implementation)
    costs = costs + pcg_step_costs(cfg, pcg_iterations, mass_nnz=mass_nnz, solves=cfg.dim)
    device.run_phase(costs)
    totals = device.kernel_time_breakdown()
    grand = sum(totals.values())
    shares = [
        KernelShare(name, t, t / grand)
        for name, t in sorted(totals.items(), key=lambda kv: -kv[1])
    ]
    return shares
