"""Analysis and reporting helpers for the benchmark harness."""

from repro.analysis.profiles import cpu_profile, kernel_breakdown
from repro.analysis.report import Table, Series, paper_vs_measured
from repro.analysis.convergence import convergence_study, observed_rate
from repro.analysis.roofline import roofline_point, roofline_report, ridge_intensity
from repro.analysis.exascale import project_system, gflops_per_watt_needed

__all__ = [
    "cpu_profile",
    "kernel_breakdown",
    "Table",
    "Series",
    "paper_vs_measured",
    "convergence_study",
    "observed_rate",
    "roofline_point",
    "roofline_report",
    "ridge_intensity",
    "project_system",
    "gflops_per_watt_needed",
]
