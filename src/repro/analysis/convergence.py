"""Self-convergence studies (the quantitative face of Figure 2).

The paper argues p-refinement "can lead to better numerical
approximations"; this tool measures it. Because the mesh moves with the
fluid, fields from different discretizations live on different grids —
so convergence is measured through scalar functionals (kinetic energy
at a fixed time is the default) against the richest configuration in
the study, Richardson style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hydro.solver import LagrangianHydroSolver, SolverOptions

__all__ = ["ConvergencePoint", "convergence_study", "kinetic_energy_metric",
           "observed_rate"]


@dataclass(frozen=True)
class ConvergencePoint:
    """One configuration's error against the study's reference."""

    label: str
    dofs: int
    value: float
    error: float


def kinetic_energy_metric(solver: LagrangianHydroSolver, result) -> float:
    """Final kinetic energy — smooth in the solution, so its error
    tracks the discretization error of the velocity field."""
    return result.energy_history[-1].kinetic


def convergence_study(
    configurations: list[tuple[str, Callable[[], object]]],
    t_final: float,
    metric: Callable = kinetic_energy_metric,
    options: SolverOptions | None = None,
) -> list[ConvergencePoint]:
    """Run every configuration and report errors against the last one.

    `configurations` is an ordered list of (label, problem factory)
    pairs, coarsest first; the final entry is the reference and gets
    error = 0 by construction (its own discretization error is the
    study's noise floor — standard self-convergence caveat).
    """
    if len(configurations) < 2:
        raise ValueError("need at least two configurations (last is reference)")
    values = []
    dofs = []
    for label, factory in configurations:
        solver = LagrangianHydroSolver(factory(), options)
        result = solver.run(t_final=t_final)
        if not result.reached_t_final:
            raise RuntimeError(f"configuration '{label}' did not reach t_final")
        values.append(float(metric(solver, result)))
        dofs.append(solver.kinematic.ndof * solver.kinematic.dim + solver.thermodynamic.ndof)
    reference = values[-1]
    return [
        ConvergencePoint(label, n, v, abs(v - reference))
        for (label, _), n, v in zip(configurations, dofs, values)
    ]


def observed_rate(points: list[ConvergencePoint]) -> float:
    """Least-squares slope of log(error) vs log(dofs) over the
    non-reference points (negative = converging)."""
    pts = [p for p in points[:-1] if p.error > 0]
    if len(pts) < 2:
        raise ValueError("need at least two nonzero-error points")
    x = np.log([p.dofs for p in pts])
    y = np.log([p.error for p in pts])
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)
