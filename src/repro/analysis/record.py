"""Durable BENCH_*.json history files.

Every benchmark in this repo appends one record per invocation to a
JSON history file at the repo root (`BENCH_hotpath.json`,
`BENCH_comm_overlap.json`, ...), so regressions are visible across
runs. `append_bench_record` is the one shared writer, with the same
hardening the rest of the repo's durable artifacts get:

* the updated history is written to a temp file in the same directory
  and moved into place with `os.replace` — a crash mid-write can never
  leave a truncated history under the final name;
* a missing, unreadable, or non-list history file is *tolerated*: the
  helper warns and starts a fresh history rather than crashing the
  benchmark that produced a perfectly good new record.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

__all__ = ["append_bench_record"]


def append_bench_record(record: dict, path: str | Path,
                        timestamp: bool = True) -> Path:
    """Atomically append one record to a BENCH_*.json history file.

    Returns the path written. The file holds a JSON list (a legacy
    single-object file is wrapped into one); corrupt content warns and
    starts fresh. When `timestamp`, a UTC ISO `timestamp` field is
    added to the record unless it already has one.
    """
    path = Path(path)
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
            warnings.warn(
                f"benchmark history {path} is unreadable ({exc}); "
                "starting a fresh history",
                stacklevel=2,
            )
            history = []
        if not isinstance(history, list):
            history = [history]
    record = dict(record)
    if timestamp and "timestamp" not in record:
        record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
    history.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp")
    try:
        tmp.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path
