"""Durable BENCH_*.json history files.

Every benchmark in this repo appends one record per invocation to a
JSON history file at the repo root (`BENCH_hotpath.json`,
`BENCH_comm_overlap.json`, ...), so regressions are visible across
runs. `append_bench_record` is the one shared writer, with the same
hardening the rest of the repo's durable artifacts get:

* the updated history is written to a temp file in the same directory
  and moved into place with `os.replace` — a crash mid-write can never
  leave a truncated history under the final name;
* a missing, unreadable, or non-list history file is *tolerated*: the
  helper warns and starts a fresh history rather than crashing the
  benchmark that produced a perfectly good new record;
* every record is stamped with provenance — the record schema version,
  the git commit it ran at, and a host fingerprint — so a number in a
  shared history can always be traced back to the code and machine
  that produced it.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import platform
import subprocess
import time
import warnings
from pathlib import Path

__all__ = ["append_bench_record", "BENCH_SCHEMA_VERSION", "host_fingerprint"]

#: Version of the record envelope written by `append_bench_record`.
#: Bump when the stamped provenance fields change shape.
BENCH_SCHEMA_VERSION = 2


@functools.lru_cache(maxsize=1)
def _git_commit() -> str:
    """Short commit hash of the working tree, or "unknown" outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


@functools.lru_cache(maxsize=1)
def host_fingerprint() -> str:
    """Stable short identifier of the machine running the benchmark."""
    ident = "|".join((
        platform.node(), platform.machine(), platform.system(),
        str(os.cpu_count() or 0),
    ))
    return hashlib.sha256(ident.encode("utf-8")).hexdigest()[:12]


def append_bench_record(record: dict, path: str | Path,
                        timestamp: bool = True) -> Path:
    """Atomically append one record to a BENCH_*.json history file.

    Returns the path written. The file holds a JSON list (a legacy
    single-object file is wrapped into one); corrupt content warns and
    starts fresh. When `timestamp`, a UTC ISO `timestamp` field is
    added to the record unless it already has one. Provenance fields
    (`schema_version`, `git_commit`, `host_fingerprint`) are stamped
    the same way — caller-supplied values win.
    """
    path = Path(path)
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
            warnings.warn(
                f"benchmark history {path} is unreadable ({exc}); "
                "starting a fresh history",
                stacklevel=2,
            )
            history = []
        if not isinstance(history, list):
            history = [history]
    record = dict(record)
    if timestamp and "timestamp" not in record:
        record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
    record.setdefault("schema_version", BENCH_SCHEMA_VERSION)
    record.setdefault("git_commit", _git_commit())
    record.setdefault("host_fingerprint", host_fingerprint())
    history.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp")
    try:
        tmp.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path
