"""Hot-path performance measurements and the perf-regression record.

Times the corner-force micro-kernel (the paper's 55-80% phase) and the
full solver step under the three engine configurations this repo
supports — `legacy` (allocate-per-call), `workspace` (fused
zero-allocation path) and `parallel` (shared-memory zone executor) —
and appends a machine-readable record to ``BENCH_hotpath.json`` so
every future change has a perf trajectory to regress against.

Used by ``benchmarks/bench_hotpath.py`` (standalone + EXPERIMENTS.md)
and the ``repro bench hotpath`` CLI subcommand.
"""

from __future__ import annotations

import gc
import math
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "HotpathCase",
    "bench_corner_force",
    "bench_full_step",
    "bench_telemetry_overhead",
    "bench_scheduler_overhead",
    "bench_distributed_overhead",
    "bench_dispatch_overhead",
    "bench_sumfact_crossover",
    "run_hotpath_bench",
]

#: Telemetry-off must stay within this of a traced run (fraction of wall).
TELEMETRY_OVERHEAD_LIMIT = 0.03

#: In-band tuning (cold cache, campaign live) must stay within this of a
#: pinned-winner (warm-started) hybrid run.
SCHEDULER_OVERHEAD_LIMIT = 0.05

#: A ranks=2 cpu-fused step must stay within this factor of the serial
#: cpu-fused step. The vectorized rank path legitimately pays ~2.2-2.7x
#: here (interface/interior split evaluation, per-rank scatter
#: accounting, and the interface rows of the mass matvec re-derived
#: per PCG iteration); the gate catches the composition layer growing
#: superlinear overhead, not the modeled comm.
DISTRIBUTED_OVERHEAD_LIMIT = 3.5

#: Steady-state per-call overhead of the warm persistent worker pool at
#: workers=1 vs the in-process fused engine (same single span, same
#: bits): the price of three input copies + one 16-byte command wake-up
#: + one ack read. Fork/start cost is excluded by construction — the
#: pool is measured warm, which is how every step after the first sees
#: it. 10% is the bar for "always-on default" rather than a crossover.
DISPATCH_OVERHEAD_LIMIT = 0.10

#: Order at which the sum-factorized route must beat the dense tables
#: on modeled work (the documented 2D crossover is Q3; Q4 leaves margin).
#: The gate catches the work model or the contraction layer regressing
#: past the crossover, not wall-clock noise.
SUMFACT_GATE_ORDER = 4

#: Parity budget between the sumfact and fused corner forces: pure
#: contraction-reordering roundoff, documented in DESIGN.md section 16.
SUMFACT_PARITY_LIMIT = 1e-10

_SEED = 20140519
_PERTURB = 5e-4  # keeps randomized high-order meshes untangled


@dataclass
class HotpathCase:
    """One corner-force microbenchmark row."""

    label: str
    order: int
    nzones: int
    nqp: int
    reps: int
    legacy_ms: float
    fused_ms: float
    fused_speedup: float
    parallel_ms: float
    parallel_speedup: float
    workers: int
    fused_rel_err: float
    parallel_rel_err: float
    #: Why the parallel row was not measured (None = it was).
    parallel_skipped: str | None = None


def _setup(order: int, nz1d: int):
    """Engines (legacy + fused) and two randomized curved-mesh states."""
    from repro.fem.geometry import GeometryEvaluator
    from repro.fem.mesh import cartesian_mesh_2d
    from repro.fem.quadrature import tensor_quadrature
    from repro.fem.spaces import H1Space, L2Space
    from repro.hydro.corner_force import ForceEngine
    from repro.hydro.eos import GammaLawEOS
    from repro.hydro.state import HydroState

    mesh = cartesian_mesh_2d(nz1d, nz1d)
    h1 = H1Space(mesh, order)
    l2 = L2Space(mesh, order - 1)
    quad = tensor_quadrature(2, 2 * order)
    geo0 = GeometryEvaluator(h1, quad).evaluate(h1.node_coords)
    rho0 = np.ones((mesh.nzones, quad.nqp))
    args = (h1, l2, quad, GammaLawEOS(), rho0, geo0)
    legacy = ForceEngine(*args, fused=False)
    fused = ForceEngine(*args, fused=True)
    rng = np.random.default_rng(_SEED)
    states = []
    for _ in range(2):
        v = 0.1 * rng.standard_normal((h1.ndof, 2))
        e = rng.random(l2.ndof) + 0.5
        x = h1.node_coords + _PERTURB * rng.standard_normal((h1.ndof, 2))
        states.append(HydroState(v, e, x, 0.0))
    return legacy, fused, states


def _time_compute(fn, states, reps: int) -> float:
    """Mean seconds per call, alternating states (defeats trivial caching
    of a single input while exercising the per-x geometry cache shape)."""
    for i in range(3):
        fn(states[i % 2])
    t0 = time.perf_counter()
    for i in range(reps):
        fn(states[i % 2])
    return (time.perf_counter() - t0) / reps


def bench_corner_force(
    order: int, nz1d: int, reps: int, workers: int | None = None
) -> HotpathCase:
    """Time one corner-force evaluation: legacy vs fused vs parallel."""
    from repro.runtime.parallel import ZoneParallelExecutor

    legacy, fused, states = _setup(order, nz1d)
    ref = legacy.compute(states[0])
    got = fused.compute(states[0])
    scale = np.abs(ref.Fz).max()
    fused_err = float(np.abs(ref.Fz - got.Fz).max() / scale)
    legacy_s = _time_compute(legacy.compute, states, reps)
    fused_s = _time_compute(fused.compute, states, reps)
    if workers is None and (os.cpu_count() or 1) == 1:
        # A 1-core host cannot measure parallel *speedup*: the row would
        # time pure pool dispatch against serial compute and read as a
        # regression. Record why instead of a misleading number (the
        # dispatch cost itself is gated by bench_dispatch_overhead).
        return HotpathCase(
            label=f"Q{order}-Q{order - 1}",
            order=order,
            nzones=legacy.kinematic.mesh.nzones,
            nqp=legacy.quad.nqp,
            reps=reps,
            legacy_ms=legacy_s * 1e3,
            fused_ms=fused_s * 1e3,
            fused_speedup=legacy_s / fused_s,
            parallel_ms=0.0,
            parallel_speedup=0.0,
            workers=0,
            fused_rel_err=fused_err,
            parallel_rel_err=0.0,
            parallel_skipped="single-core host (os.cpu_count() == 1)",
        )
    nworkers = workers if workers is not None else (os.cpu_count() or 1)
    with ZoneParallelExecutor(fused, workers=nworkers) as ex:
        par_err = float(np.abs(ref.Fz - ex.compute(states[0]).Fz).max() / scale)
        parallel_s = _time_compute(ex.compute, states, reps)
        nworkers = ex.workers
    return HotpathCase(
        label=f"Q{order}-Q{order - 1}",
        order=order,
        nzones=legacy.kinematic.mesh.nzones,
        nqp=legacy.quad.nqp,
        reps=reps,
        legacy_ms=legacy_s * 1e3,
        fused_ms=fused_s * 1e3,
        fused_speedup=legacy_s / fused_s,
        parallel_ms=parallel_s * 1e3,
        parallel_speedup=legacy_s / parallel_s,
        workers=nworkers,
        fused_rel_err=fused_err,
        parallel_rel_err=par_err,
    )


def bench_full_step(order: int, zones_per_dim: int, steps: int) -> dict:
    """Whole-solver steps/second, legacy vs fused engine, same physics."""
    from repro.hydro.solver import LagrangianHydroSolver, SolverOptions
    from repro.problems import SedovProblem

    rows = {}
    final = {}
    for label, fused in (("legacy", False), ("workspace", True)):
        problem = SedovProblem(dim=2, order=order, zones_per_dim=zones_per_dim)
        solver = LagrangianHydroSolver(problem, SolverOptions(fused=fused))
        t0 = time.perf_counter()
        result = solver.run(max_steps=steps)
        elapsed = time.perf_counter() - t0
        rows[label] = {
            "steps": result.steps,
            "wall_s": elapsed,
            "ms_per_step": elapsed / max(result.steps, 1) * 1e3,
            "energy_drift": result.energy_change,
        }
        final[label] = result.state
    dv = np.abs(final["legacy"].v - final["workspace"].v).max()
    de = np.abs(final["legacy"].e - final["workspace"].e).max()
    rows["state_max_diff"] = float(max(dv, de))
    rows["speedup"] = rows["legacy"]["ms_per_step"] / rows["workspace"]["ms_per_step"]
    rows["order"] = order
    rows["zones_per_dim"] = zones_per_dim
    return rows


def bench_telemetry_overhead(
    order: int = 2, zones_per_dim: int = 6, steps: int = 6, reps: int = 12
) -> dict:
    """Wall time of a traced run vs an untraced one (quietest-pair estimate).

    Full tracer + `CounterSampler` stack against tracer=None on the same
    Sedov march; the paper's instrumentation argument only holds if
    measuring the run does not perturb it.
    """
    from repro.config import RunConfig
    from repro.hydro.solver import LagrangianHydroSolver
    from repro.problems import SedovProblem
    from repro.telemetry import CounterSampler, Tracer

    def once(traced: bool) -> tuple[float, int]:
        problem = SedovProblem(dim=2, order=order, zones_per_dim=zones_per_dim)
        tracer = None
        if traced:
            tracer = Tracer()
            tracer.add_listener(CounterSampler())
        solver = LagrangianHydroSolver(problem, RunConfig(), tracer=tracer)
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            solver.run(max_steps=steps)
            elapsed = time.perf_counter() - t0
        finally:
            gc.enable()
        return elapsed, len(tracer.spans) if traced else 0

    # One untimed warmup pair absorbs first-call costs (imports, numpy
    # buffer pools, the sampler's first read), then back-to-back off/on
    # pairs with the cyclic GC parked outside the timed region (span
    # dicts advance the gen0 counter, so collections would fire
    # preferentially inside traced runs and read as phantom overhead).
    # The gate reads the *minimum* pair: off/on in one pair share one
    # load window, so differencing cancels whatever the host was doing,
    # and the quietest window is the truest — a real regression cannot
    # hide there because it is carried by every pair, the quietest
    # included. (Median-of-pairs and min(on)/min(off) were tried first;
    # both tripped under suite load on this 1-core host, where a single
    # scheduler blip is percent-scale on a ~30 ms run and the global
    # fastest off-run pairs with nobody.)
    once(False)
    once(True)
    pairs, spans = [], 0
    for _ in range(reps):
        off = once(False)[0]
        on, spans = once(True)
        pairs.append(((on - off) / off, off, on))
    overhead, off, on = min(pairs)
    return {
        "order": order,
        "zones_per_dim": zones_per_dim,
        "steps": steps,
        "reps": reps,
        "off_ms": off * 1e3,
        "on_ms": on * 1e3,
        "spans": spans,
        "overhead_pct": overhead * 100.0,
        "median_pair_pct": 100.0 * sorted(p[0] for p in pairs)[len(pairs) // 2],
        "pair_overheads_pct": [p[0] * 100.0 for p in pairs],
    }


def bench_scheduler_overhead(
    order: int = 2, zones_per_dim: int = 6, steps: int = 6, reps: int = 3
) -> dict:
    """Per-step cost of in-band tuning vs the hybrid march itself.

    Differencing two short full runs cannot resolve a few percent on a
    loaded host, so the added work is timed directly. The denominator is
    the per-step wall time of a warm-started (pinned-winner) hybrid run;
    the numerator drives a cold scheduler through its *entire* campaign
    — joint-space construction, the in-band local search asking/pricing
    one candidate per `on_step` at `tune_period_steps=1` (the most
    scheduler work per step possible), and every cache flush — and
    amortizes the total over the campaign's steps. The march is bitwise identical under either
    scheduler state (pinned by tests/test_backends.py), so this ratio
    *is* the in-band scheduling overhead.
    """
    import tempfile

    from repro.config import RunConfig
    from repro.hydro.solver import LagrangianHydroSolver
    from repro.problems import SedovProblem
    from repro.sched import OnlineScheduler, SchedulerConfig
    from repro.tuning import TuningCache

    def build(cache_path: str) -> LagrangianHydroSolver:
        problem = SedovProblem(dim=2, order=order, zones_per_dim=zones_per_dim)
        cfg = RunConfig(backend="hybrid", tune_period_steps=1,
                        tuning_cache=cache_path)
        return LagrangianHydroSolver(problem, cfg)

    def drain(sched) -> int:
        calls = 0
        while not sched.done and calls < 1000:
            sched.on_step()
            calls += 1
        return calls

    with tempfile.TemporaryDirectory() as d:
        warm = os.path.join(d, "warm.json")
        seed = build(warm)  # run one full campaign to populate the cache
        drain(seed.scheduler)
        seed.close()

        pinned_s = []
        for _ in range(reps):
            solver = build(warm)  # warm-starts: scheduler immediately done
            t0 = time.perf_counter()
            solver.run(max_steps=steps)
            pinned_s.append((time.perf_counter() - t0) / steps)
            solver.close()
        pinned_step = min(pinned_s)

        sched_step_s, campaign_steps = [], 0
        host = build(warm)  # donor of an attached hybrid backend
        # A campaign is milliseconds, so extra reps are nearly free and
        # the min is far less exposed to a noisy-host window than the
        # (expensive, `reps`-capped) pinned-step measurement above.
        for i in range(reps + 2):
            cache = TuningCache(os.path.join(d, f"cold{i}.json"))
            t0 = time.perf_counter()
            # Construction prices the candidate spaces on the simulated
            # device — a cost warm starts skip, so it belongs in the bill.
            sched = OnlineScheduler(
                host.backend, cache, SchedulerConfig(steps_per_period=1)
            )
            campaign_steps = drain(sched)
            sched_step_s.append(
                (time.perf_counter() - t0) / max(campaign_steps, 1)
            )
        host.close()
        sched_step = min(sched_step_s)
    return {
        "order": order,
        "zones_per_dim": zones_per_dim,
        "steps": steps,
        "reps": reps,
        "strategy": "local",  # SchedulerConfig default drives the search
        "campaign_steps": campaign_steps,
        "pinned_ms": pinned_step * 1e3,
        "tuned_ms": (pinned_step + sched_step) * 1e3,
        "sched_us_per_step": sched_step * 1e6,
        "overhead_pct": sched_step / pinned_step * 100.0,
    }


def bench_distributed_overhead(
    order: int = 2, zones_per_dim: int = 6, steps: int = 6, reps: int = 3
) -> dict:
    """Per-step wall of a ranks=2 cpu-fused run vs the serial fused run.

    Times back-to-back serial/distributed pairs and gates on the best
    pair's factor (one pair shares one load window): the vectorized
    rank path evaluates interface and interior zones in two passes,
    scatters per-rank partial sums, and re-derives the interface rows
    of the mass matvec every PCG iteration, so a bounded constant
    factor is expected — a blowout means the composition layer
    regressed.
    """
    from repro.config import RunConfig
    from repro.hydro.solver import LagrangianHydroSolver
    from repro.problems import SedovProblem

    def once(ranks: int) -> float:
        problem = SedovProblem(dim=2, order=order, zones_per_dim=zones_per_dim)
        solver = LagrangianHydroSolver(problem, RunConfig(ranks=ranks))
        t0 = time.perf_counter()
        solver.run(max_steps=steps)
        elapsed = time.perf_counter() - t0
        solver.close()
        return elapsed / steps

    best = (math.inf, math.inf, math.inf)
    for _ in range(reps):
        serial = once(0)
        dist = once(2)
        best = min(best, (dist / serial, serial, dist))
    factor, serial, dist = best
    return {
        "order": order,
        "zones_per_dim": zones_per_dim,
        "steps": steps,
        "reps": reps,
        "ranks": 2,
        "serial_ms": serial * 1e3,
        "distributed_ms": dist * 1e3,
        "factor": factor,
    }


def bench_dispatch_overhead(order: int = 2, nz1d: int = 10, reps: int = 20) -> dict:
    """Steady-state fabric cost of the warm persistent pool at workers=1.

    The gated quantity is what the pool *adds* to one corner-force
    evaluation — a command round trip on the real pipe machinery (no-op
    worker fn, so the 16-byte packed wake-up + 1-byte ack is isolated
    from the compute it normally brackets) plus publishing the three
    state arrays into shared segments — measured directly rather than as
    the difference of two ms-scale timings: on a busy 1-core host the
    end-to-end pool/serial delta swings tens of percent either way with
    scheduler luck, while the fabric itself is tens of microseconds and
    times stably. Per-evaluation is strictly conservative versus the
    acceptance criterion's per-step form: a step dispatches twice but
    also pays 2*dim PCG solves on top of the two evaluations. The
    end-to-end workers=1 comparison (bitwise-equal results by the
    single-span contract) is recorded alongside as the unguarded
    trajectory number.
    """
    from repro.runtime.parallel import ZoneParallelExecutor
    from repro.runtime.workers import PersistentWorkerPool

    _, fused, states = _setup(order, nz1d)
    serial_s = min(_time_compute(fused.compute, states, reps) for _ in range(3))

    def _noop(wid: int, slot: int, t: float) -> None:
        pass

    with PersistentWorkerPool(1, _noop, name="bench-noop") as pool:
        pool.start()
        for _ in range(20):
            pool.dispatch(0, 0.0)
            pool.wait()
        n = 500
        t0 = time.perf_counter()
        for _ in range(n):
            pool.dispatch(0, 0.0)
            pool.wait()
        roundtrip_s = (time.perf_counter() - t0) / n

    # The executor's per-compute input publish: np.copyto into the
    # pre-mapped shared segments (same shapes, private destinations).
    st = states[0]
    dst = [np.empty_like(st.x), np.empty_like(st.v), np.empty_like(st.e)]
    src = [st.x, st.v, st.e]
    for d, s in zip(dst, src):
        np.copyto(d, s)
    n = 500
    t0 = time.perf_counter()
    for _ in range(n):
        for d, s in zip(dst, src):
            np.copyto(d, s)
    publish_s = (time.perf_counter() - t0) / n

    fabric_s = roundtrip_s + publish_s
    overhead = fabric_s / serial_s

    with ZoneParallelExecutor(fused, workers=1) as ex:
        ex.compute(states[0])  # fork + first dispatch outside the clock
        pool_s = min(_time_compute(ex.compute, states, reps) for _ in range(3))
        stats = ex.stats()
    return {
        "order": order,
        "nzones": fused.kinematic.mesh.nzones,
        "reps": reps,
        "serial_ms": serial_s * 1e3,
        "roundtrip_us": roundtrip_s * 1e6,
        "publish_us": publish_s * 1e6,
        "fabric_us": fabric_s * 1e6,
        "overhead_pct": overhead * 100.0,
        "pool_ms": pool_s * 1e3,
        "end_to_end_pct": (pool_s - serial_s) / serial_s * 100.0,
        "dispatches": stats["dispatches"],
        "dispatch_us_mean": stats["dispatch_us_mean"],
    }


def bench_sumfact_crossover(order: int = 4, nz1d: int = 8, reps: int = 5) -> dict:
    """Measure the Q`order` sumfact-vs-dense case and model the crossover.

    One measured corner-force comparison (fused dense tables vs the
    matrix-free sum-factorized engine, same randomized curved mesh) plus
    the modeled-work crossover table the tuner prices its fusion axis
    from — both land in the BENCH record so the per-order crossover has
    a trajectory.
    """
    from repro.fem.geometry import GeometryEvaluator
    from repro.fem.mesh import cartesian_mesh_2d
    from repro.fem.quadrature import tensor_quadrature
    from repro.fem.spaces import H1Space, L2Space
    from repro.fem.sumfact import modeled_work_dense, modeled_work_sumfact
    from repro.hydro.corner_force import ForceEngine, SumfactForceEngine
    from repro.hydro.eos import GammaLawEOS
    from repro.hydro.state import HydroState
    from repro.kernels import FEConfig

    mesh = cartesian_mesh_2d(nz1d, nz1d)
    h1 = H1Space(mesh, order)
    l2 = L2Space(mesh, order - 1)
    quad = tensor_quadrature(2, 2 * order)
    geo0 = GeometryEvaluator(h1, quad).evaluate(h1.node_coords)
    rho0 = np.ones((mesh.nzones, quad.nqp))
    args = (h1, l2, quad, GammaLawEOS(), rho0, geo0)
    fused = ForceEngine(*args, fused=True)
    sumfact = SumfactForceEngine(*args)
    rng = np.random.default_rng(_SEED)
    states = []
    for _ in range(2):
        v = 0.1 * rng.standard_normal((h1.ndof, 2))
        e = rng.random(l2.ndof) + 0.5
        x = h1.node_coords + _PERTURB * rng.standard_normal((h1.ndof, 2))
        states.append(HydroState(v, e, x, 0.0))

    ref = fused.compute(states[0]).Fz
    got = sumfact.dense_force(sumfact.compute(states[0]).Fz)
    rel_err = float(np.abs(ref - got).max() / np.abs(ref).max())
    fused_s = _time_compute(fused.compute, states, reps)
    sumfact_s = _time_compute(sumfact.compute, states, reps)

    crossover = []
    for o in (1, 2, 3, 4, 6, 8):
        cfg = FEConfig(dim=2, order=o, nzones=mesh.nzones)
        dense_w = modeled_work_dense(cfg)
        sf_w = modeled_work_sumfact(cfg)
        crossover.append({
            "order": o,
            "dim": 2,
            "work_dense": dense_w,
            "work_sumfact": sf_w,
            "ratio": sf_w / dense_w,
        })
    gate = next(c for c in crossover if c["order"] == SUMFACT_GATE_ORDER)
    return {
        "order": order,
        "nzones": mesh.nzones,
        "nqp": quad.nqp,
        "reps": reps,
        "fused_ms": fused_s * 1e3,
        "sumfact_ms": sumfact_s * 1e3,
        "measured_speedup": fused_s / sumfact_s,
        "rel_err": rel_err,
        "crossover": crossover,
        "gate_order": SUMFACT_GATE_ORDER,
        "gate_ratio": gate["ratio"],
    }


def run_hotpath_bench(
    quick: bool = False,
    workers: int | None = None,
    json_path: str | os.PathLike | None = None,
) -> dict:
    """Run the suite, print the table, append the JSON record.

    quick : smaller meshes / fewer reps (the < 60 s perf-smoke target of
        the tier-1 verify recipe).
    """
    if quick:
        micro = [(2, 10, 10), (4, 8, 8)]  # (order, nz1d, reps)
        step_cfg = (2, 6, 6)  # (order, zones_per_dim, steps)
    else:
        micro = [(2, 12, 30), (4, 12, 20)]
        step_cfg = (2, 10, 20)

    cases = [bench_corner_force(o, n, r, workers=workers) for o, n, r in micro]
    print("corner-force microbenchmark (one evaluation, mean over reps)")
    print(f"{'case':10s} {'zones':>6} {'legacy ms':>10} {'fused ms':>9} "
          f"{'speedup':>8} {'par ms':>8} {'par x':>6} {'wkr':>4} {'rel err':>9}")
    for c in cases:
        if c.parallel_skipped:
            par = f"{'skipped':>8} {'-':>6} {c.workers:4d}"
        else:
            par = (f"{c.parallel_ms:8.2f} {c.parallel_speedup:5.2f}x "
                   f"{c.workers:4d}")
        print(f"{c.label:10s} {c.nzones:6d} {c.legacy_ms:10.2f} {c.fused_ms:9.2f} "
              f"{c.fused_speedup:7.2f}x {par} "
              f"{max(c.fused_rel_err, c.parallel_rel_err):9.1e}")
    if any(c.parallel_skipped for c in cases):
        print(f"  parallel rows skipped: {cases[0].parallel_skipped}")

    full = bench_full_step(*step_cfg)
    print(f"\nfull solver step (2D Sedov Q{step_cfg[0]}, "
          f"{step_cfg[1]}x{step_cfg[1]} zones, {step_cfg[2]} steps)")
    for label in ("legacy", "workspace"):
        row = full[label]
        print(f"{label:10s} {row['ms_per_step']:8.2f} ms/step   "
              f"energy drift {row['energy_drift']:+.3e}")
    print(f"workspace step speedup {full['speedup']:.2f}x, "
          f"final-state max diff {full['state_max_diff']:.2e}")

    tele = bench_telemetry_overhead(step_cfg[0], step_cfg[1], step_cfg[2])
    print(f"\ntelemetry overhead ({tele['spans']} spans + power sampler): "
          f"off {tele['off_ms']:.1f} ms, on {tele['on_ms']:.1f} ms "
          f"-> {tele['overhead_pct']:+.2f}% "
          f"(limit {TELEMETRY_OVERHEAD_LIMIT:.0%})")

    sched = bench_scheduler_overhead(step_cfg[0], step_cfg[1], step_cfg[2])
    print(f"scheduler overhead ({sched['campaign_steps']}-step "
          f"{sched['strategy']}-search campaign, "
          f"amortized): step {sched['pinned_ms']:.2f} ms, "
          f"+{sched['sched_us_per_step']:.0f} us/step in-band "
          f"-> {sched['overhead_pct']:+.2f}% "
          f"(limit {SCHEDULER_OVERHEAD_LIMIT:.0%})")

    dist = bench_distributed_overhead(step_cfg[0], step_cfg[1], step_cfg[2])
    print(f"distributed overhead (ranks=2 cpu-fused vs serial): "
          f"serial {dist['serial_ms']:.2f} ms/step, "
          f"distributed {dist['distributed_ms']:.2f} ms/step "
          f"-> {dist['factor']:.2f}x "
          f"(limit {DISTRIBUTED_OVERHEAD_LIMIT:.1f}x)")

    disp = bench_dispatch_overhead(reps=10 if quick else 20)
    print(f"pool dispatch overhead (warm workers=1 fabric vs in-process): "
          f"round trip {disp['roundtrip_us']:.0f} us + publish "
          f"{disp['publish_us']:.0f} us on a {disp['serial_ms']:.2f} ms eval "
          f"-> {disp['overhead_pct']:+.2f}% "
          f"(limit {DISPATCH_OVERHEAD_LIMIT:.0%}; end-to-end "
          f"{disp['end_to_end_pct']:+.1f}%)")

    sumfact = bench_sumfact_crossover(
        order=SUMFACT_GATE_ORDER,
        nz1d=8 if quick else 10,
        reps=5 if quick else 10,
    )
    print(f"\nsumfact crossover (Q{sumfact['order']}, "
          f"{sumfact['nzones']} zones): fused {sumfact['fused_ms']:.2f} ms, "
          f"sumfact {sumfact['sumfact_ms']:.2f} ms "
          f"({sumfact['measured_speedup']:.2f}x measured), "
          f"rel err {sumfact['rel_err']:.1e}")
    print("  modeled work sumfact/dense by order: "
          + "  ".join(f"Q{c['order']}:{c['ratio']:.3f}"
                      for c in sumfact["crossover"]))

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "cases": [asdict(c) for c in cases],
        "full_step": full,
        "telemetry": tele,
        "scheduler": sched,
        "distributed": dist,
        "dispatch": disp,
        "sumfact": sumfact,
    }
    from repro.analysis.record import append_bench_record

    path = Path(json_path) if json_path is not None else _default_json_path()
    append_bench_record(record, path, timestamp=False)
    print(f"\nappended record to {path}")
    if tele["overhead_pct"] > TELEMETRY_OVERHEAD_LIMIT * 100.0:
        raise SystemExit(
            f"telemetry overhead {tele['overhead_pct']:.2f}% exceeds the "
            f"{TELEMETRY_OVERHEAD_LIMIT:.0%} gate (off {tele['off_ms']:.1f} ms, "
            f"on {tele['on_ms']:.1f} ms)"
        )
    if sched["overhead_pct"] > SCHEDULER_OVERHEAD_LIMIT * 100.0:
        raise SystemExit(
            f"in-band {sched['strategy']}-search overhead "
            f"{sched['overhead_pct']:.2f}% exceeds the "
            f"{SCHEDULER_OVERHEAD_LIMIT:.0%} gate "
            f"({sched['sched_us_per_step']:.0f} us/step on a "
            f"{sched['pinned_ms']:.2f} ms step)"
        )
    if dist["factor"] > DISTRIBUTED_OVERHEAD_LIMIT:
        raise SystemExit(
            f"distributed overhead {dist['factor']:.2f}x exceeds the "
            f"{DISTRIBUTED_OVERHEAD_LIMIT:.1f}x gate "
            f"(serial {dist['serial_ms']:.2f} ms/step, "
            f"ranks=2 {dist['distributed_ms']:.2f} ms/step)"
        )
    if disp["overhead_pct"] > DISPATCH_OVERHEAD_LIMIT * 100.0:
        raise SystemExit(
            f"persistent-pool dispatch overhead {disp['overhead_pct']:.2f}% "
            f"exceeds the {DISPATCH_OVERHEAD_LIMIT:.0%} gate "
            f"({disp['fabric_us']:.0f} us fabric on a "
            f"{disp['serial_ms']:.2f} ms serial evaluation)"
        )
    if sumfact["gate_ratio"] >= 1.0:
        raise SystemExit(
            f"sumfact modeled work no longer beats the dense tables at "
            f"Q{SUMFACT_GATE_ORDER} (ratio {sumfact['gate_ratio']:.3f} >= 1.0) "
            f"— the crossover regressed"
        )
    if sumfact["rel_err"] > SUMFACT_PARITY_LIMIT:
        raise SystemExit(
            f"sumfact corner-force parity {sumfact['rel_err']:.1e} exceeds "
            f"the {SUMFACT_PARITY_LIMIT:.0e} budget vs the fused engine"
        )
    return record


def _default_json_path() -> Path:
    """BENCH_hotpath.json at the repo root (next to EXPERIMENTS.md)."""
    root = Path(__file__).resolve().parents[3]  # src/repro/analysis -> repo
    if (root / "pyproject.toml").exists():
        return root / "BENCH_hotpath.json"
    return Path.cwd() / "BENCH_hotpath.json"
