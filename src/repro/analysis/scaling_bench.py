"""Functional weak/strong scaling measurements (Figures 12-13, measured).

`repro.cluster.scaling` *predicts* the paper's weak and strong scaling
curves from a hardware model. This bench closes the loop functionally:
it actually runs the distributed solver at P = 1..64 simulated ranks
(vectorized rank stepping, so every point is seconds of wall time),
derives a simulated per-cycle cluster time

    t(P) = t_node(local zones) + ledger(P) / steps

where the ledger is the alpha-beta-tree price of every collective the
run really posted, and cross-checks the resulting efficiency curves
against the analytic model fed the *same* compute baseline and a sync
amplification fitted from the measured collectives-per-step count —
exactly how the Titan curve's coefficient was fitted to the paper's
published endpoints. A drift past `SCALING_MODEL_TOLERANCE` means the
communicator's pricing and the analytic model no longer describe the
same machine.

The third case is the throughput gate the vectorized rank axis exists
for: `RANK_THROUGHPUT_RANKS` simulated ranks on a 16x16 Sedov must
complete a fixed step budget inside `RANK_THROUGHPUT_BUDGET_S` seconds
of wall time on one host.

Used by ``benchmarks/bench_scaling.py`` and ``repro bench scaling``;
records append to ``BENCH_scaling.json``.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

__all__ = [
    "SCALING_MODEL_TOLERANCE",
    "RANK_THROUGHPUT_BUDGET_S",
    "RANK_THROUGHPUT_RANKS",
    "bench_weak_scaling",
    "bench_strong_scaling",
    "bench_rank_throughput",
    "run_scaling_bench",
]

#: Measured and analytic efficiency must agree to this relative error at
#: every overlapping node count.
SCALING_MODEL_TOLERANCE = 0.15

#: Wall-clock budget for the high-rank-count functional run.
RANK_THROUGHPUT_BUDGET_S = 10.0
RANK_THROUGHPUT_RANKS = 256

#: Pinned PCG iteration cap: the collective count per step is then a
#: property of the integrator, not of how fast a given mesh converges.
_PCG_MAXITER = 12


def _bench_machine():
    """An alpha-dominated machine for the cross-check.

    Functional meshes are tiny, so per-message latency must carry the
    communication cost for scaling to be visible at all (beta ~ 0 also
    makes the fit formula exact: every collective costs ~2 log2(P)
    alpha regardless of payload). Titan's node geometry is reused; only
    the interconnect constants change.
    """
    from repro.cluster.machines import TITAN
    from repro.runtime.mpi_sim import CommCostModel

    return replace(
        TITAN,
        name="alpha-sim",
        comm=CommCostModel(alpha_s=5e-4, beta_s_per_byte=1e-12),
    )


def _measured_run(zones_per_dim: int, nranks: int, steps: int, machine) -> dict:
    """One functional distributed run; ledger + traffic per fixed steps."""
    from repro.backends.distributed import DistributedBackend
    from repro.config import RunConfig
    from repro.hydro.solver import LagrangianHydroSolver
    from repro.problems import SedovProblem

    problem = SedovProblem(dim=2, order=2, zones_per_dim=zones_per_dim)
    backend = DistributedBackend(
        nranks,
        node="cpu-fused",
        overlap=False,  # ledger fully exposed: total_s is the comm bill
        rank_step="vectorized",
        cost_model=machine.comm,
    )
    solver = LagrangianHydroSolver(
        problem, RunConfig(pcg_maxiter=_PCG_MAXITER), backend=backend
    )
    t0 = time.perf_counter()
    result = solver.run(max_steps=steps)
    wall = time.perf_counter() - t0
    comm = solver.backend.comm
    row = {
        "ranks": nranks,
        "zones": zones_per_dim * zones_per_dim,
        "steps": result.steps,
        "wall_s": wall,
        "ledger_s": comm.ledger.total_s,
        "reductions": comm.traffic.reductions,
        "messages": comm.traffic.messages,
        "bytes": comm.traffic.bytes,
    }
    solver.close()
    return row


def _fit_sync_amplification(machine, runs: list[dict]) -> tuple[float, float]:
    """(mean collectives per step, fitted sync amplification seconds).

    The analytic model bills one explicit 8-byte allreduce per cycle and
    folds everything else into `amp * log2(P)`; each extra collective on
    an alpha-beta tree costs 2 log2(P) (alpha + 8 beta), so the fit is

        amp = (K - 1) * 2 * (alpha + 8 beta),   K = collectives/step.
    """
    per_step = [r["reductions"] / r["steps"] for r in runs if r["ranks"] > 1]
    k_bar = float(np.mean(per_step)) if per_step else 1.0
    amp = max(k_bar - 1.0, 0.0) * 2.0 * (
        machine.comm.alpha_s + 8.0 * machine.comm.beta_s_per_byte
    )
    return k_bar, amp


def _efficiency_rows(ranks, t_measured, t_model, weak: bool) -> list[dict]:
    """Pointwise measured-vs-model efficiency with relative errors."""
    rows = []
    base_m, base_a = t_measured[0], t_model[0]
    p0 = ranks[0]
    for p, tm, ta in zip(ranks, t_measured, t_model):
        if weak:
            eff_m, eff_a = base_m / tm, base_a / ta
        else:
            eff_m = (base_m * p0 / p) / tm
            eff_a = (base_a * p0 / p) / ta
        rows.append({
            "nodes": int(p),
            "t_cycle_measured_s": float(tm),
            "t_cycle_model_s": float(ta),
            "eff_measured": float(eff_m),
            "eff_model": float(eff_a),
            "eff_rel_err": float(abs(eff_m - eff_a) / eff_a),
        })
    return rows


def bench_weak_scaling(
    ranks=(4, 16, 64), zones_per_rank: int = 4, steps: int = 4
) -> dict:
    """Fixed zones per rank; time grows only through synchronization.

    Mesh sizes are `zones_per_rank * P` (P a square times the per-rank
    square so every mesh is a square Sedov), measured functionally at
    every P, then compared against `cluster.scaling.weak_scaling` with
    the measured single-rank cycle time as the compute baseline. The
    efficiency base is the smallest multi-rank P (the paper's Figure 12
    base is 8 nodes, not 1): the analytic sync term has a log2(max(P,2))
    floor, so a P=1 base would compare modeled sync against a run that
    genuinely posts no collectives.
    """
    from repro.cluster.scaling import weak_scaling

    machine = _bench_machine()
    base = _measured_run(math.isqrt(zones_per_rank), 1, steps, machine)
    runs = []
    for p in ranks:
        zpd = math.isqrt(zones_per_rank * p)
        if zpd * zpd != zones_per_rank * p:
            raise ValueError(f"zones_per_rank*P={zones_per_rank * p} not square")
        runs.append(_measured_run(zpd, p, steps, machine))

    # The same per-node compute baseline feeds both curves: the measured
    # side adds the ledger, the analytic side adds the modeled comm.
    t_node = base["wall_s"] / base["steps"]
    k_bar, amp = _fit_sync_amplification(machine, runs)
    t_measured = [t_node + r["ledger_s"] / r["steps"] for r in runs]
    analytic = weak_scaling(
        machine, list(ranks), zones_per_node=zones_per_rank,
        cycles=1, node_cycle_s=t_node, sync_amplification_s=amp,
    )
    rows = _efficiency_rows(
        list(ranks), t_measured, [a.time_s for a in analytic], weak=True
    )
    for row, run in zip(rows, runs):
        row["reductions_per_step"] = run["reductions"] / run["steps"]
        row["host_wall_s"] = run["wall_s"]
    return {
        "zones_per_rank": zones_per_rank,
        "steps": steps,
        "node_cycle_s": t_node,
        "collectives_per_step": k_bar,
        "sync_amplification_s": amp,
        "points": rows,
        "max_eff_rel_err": max(r["eff_rel_err"] for r in rows),
    }


def bench_strong_scaling(
    ranks=(4, 16, 64), zones_per_dim: int = 16, steps: int = 4
) -> dict:
    """Fixed total domain divided across ranks (Shannon-style).

    The compute baseline is the measured single-rank per-zone step cost
    scaled linearly to the local zone count — passed as `node_cycle_fn`
    so the analytic curve shares it and the comparison isolates the comm
    terms. Like the weak curve, efficiency is based at the smallest
    multi-rank P (see `bench_weak_scaling`).
    """
    from repro.cluster.scaling import strong_scaling

    machine = _bench_machine()
    total_zones = zones_per_dim * zones_per_dim
    base = _measured_run(zones_per_dim, 1, steps, machine)
    runs = [_measured_run(zones_per_dim, p, steps, machine) for p in ranks]

    t_base = base["wall_s"] / base["steps"]
    t_zone = t_base / total_zones
    k_bar, amp = _fit_sync_amplification(machine, runs)
    t_measured = [
        t_zone * max(1, total_zones // r["ranks"]) + r["ledger_s"] / r["steps"]
        for r in runs
    ]
    analytic = strong_scaling(
        machine, total_zones, list(ranks), cycles=1,
        node_cycle_fn=lambda local: t_zone * local,
        sync_amplification_s=amp,
    )
    rows = _efficiency_rows(
        list(ranks), t_measured, [a.time_s for a in analytic], weak=False
    )
    for row, run in zip(rows, runs):
        row["reductions_per_step"] = run["reductions"] / run["steps"]
        row["host_wall_s"] = run["wall_s"]
    return {
        "total_zones": total_zones,
        "steps": steps,
        "zone_step_s": t_zone,
        "collectives_per_step": k_bar,
        "sync_amplification_s": amp,
        "points": rows,
        "max_eff_rel_err": max(r["eff_rel_err"] for r in rows),
    }


def bench_rank_throughput(
    nranks: int = RANK_THROUGHPUT_RANKS, zones_per_dim: int = 16,
    steps: int = 10,
) -> dict:
    """O(100) simulated ranks must step in seconds on one host.

    This is the vectorized rank axis's reason to exist: the loop-mode
    backend pays O(P) rank-local evaluations per step, the stacked path
    pays O(total zones) once. The budget is wall time for the whole
    fixed step budget, setup included.
    """
    machine = _bench_machine()
    t0 = time.perf_counter()
    run = _measured_run(zones_per_dim, nranks, steps, machine)
    total_wall = time.perf_counter() - t0
    return {
        "ranks": nranks,
        "zones": run["zones"],
        "steps": run["steps"],
        "step_wall_s": run["wall_s"],
        "total_wall_s": total_wall,
        "budget_s": RANK_THROUGHPUT_BUDGET_S,
        "reductions_per_step": run["reductions"] / run["steps"],
    }


def run_scaling_bench(
    quick: bool = False, json_path: str | os.PathLike | None = None
) -> dict:
    """Run the suite, print the curves, append the JSON record."""
    steps = 3 if quick else 6

    weak = bench_weak_scaling(steps=steps)
    print(f"weak scaling ({weak['zones_per_rank']} zones/rank, "
          f"{weak['steps']} steps, "
          f"{weak['collectives_per_step']:.1f} collectives/step, "
          f"fitted amp {weak['sync_amplification_s'] * 1e3:.2f} ms)")
    print(f"{'P':>5} {'t_meas ms':>10} {'t_model ms':>11} "
          f"{'eff meas':>9} {'eff model':>10} {'rel err':>8}")
    for r in weak["points"]:
        print(f"{r['nodes']:5d} {r['t_cycle_measured_s'] * 1e3:10.2f} "
              f"{r['t_cycle_model_s'] * 1e3:11.2f} {r['eff_measured']:9.3f} "
              f"{r['eff_model']:10.3f} {r['eff_rel_err']:8.1%}")

    strong = bench_strong_scaling(steps=steps)
    print(f"\nstrong scaling ({strong['total_zones']} zones total, "
          f"{strong['steps']} steps)")
    print(f"{'P':>5} {'t_meas ms':>10} {'t_model ms':>11} "
          f"{'eff meas':>9} {'eff model':>10} {'rel err':>8}")
    for r in strong["points"]:
        print(f"{r['nodes']:5d} {r['t_cycle_measured_s'] * 1e3:10.2f} "
              f"{r['t_cycle_model_s'] * 1e3:11.2f} {r['eff_measured']:9.3f} "
              f"{r['eff_model']:10.3f} {r['eff_rel_err']:8.1%}")

    throughput = bench_rank_throughput()
    print(f"\nrank throughput: {throughput['ranks']} ranks x "
          f"{throughput['steps']} steps on {throughput['zones']} zones "
          f"in {throughput['total_wall_s']:.2f} s wall "
          f"(budget {throughput['budget_s']:.0f} s)")

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "weak": weak,
        "strong": strong,
        "throughput": throughput,
    }
    from repro.analysis.record import append_bench_record

    path = Path(json_path) if json_path is not None else _default_json_path()
    append_bench_record(record, path, timestamp=False)
    print(f"\nappended record to {path}")

    for name, res in (("weak", weak), ("strong", strong)):
        if res["max_eff_rel_err"] > SCALING_MODEL_TOLERANCE:
            raise SystemExit(
                f"{name}-scaling efficiency drifts "
                f"{res['max_eff_rel_err']:.1%} from the analytic model "
                f"(tolerance {SCALING_MODEL_TOLERANCE:.0%})"
            )
    if throughput["total_wall_s"] > RANK_THROUGHPUT_BUDGET_S:
        raise SystemExit(
            f"{throughput['ranks']}-rank functional run took "
            f"{throughput['total_wall_s']:.1f} s, over the "
            f"{RANK_THROUGHPUT_BUDGET_S:.0f} s budget"
        )
    return record


def _default_json_path() -> Path:
    """BENCH_scaling.json at the repo root (next to BENCH_hotpath.json)."""
    root = Path(__file__).resolve().parents[3]  # src/repro/analysis -> repo
    if (root / "pyproject.toml").exists():
        return root / "BENCH_scaling.json"
    return Path.cwd() / "BENCH_scaling.json"
