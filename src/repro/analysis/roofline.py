"""Roofline analysis of the kernel set.

The paper reasons about its kernels exactly this way ("The bandwidth of
K20 is 208GB/s, which means it is able to get 26G data in double
precision per second. Since each element will perform 4/3, 2
operations, the theoretical peak performance on K20 is 35, 52
Gflop/s"). This tool generalizes that arithmetic: for any kernel cost
descriptor it reports arithmetic intensity, the attainable roof on a
device, the modelled achievement, and which resource binds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.execution import KernelCost, execute_kernel
from repro.gpu.specs import GPUSpec

__all__ = ["RooflinePoint", "roofline_point", "roofline_report", "ridge_intensity"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on a device's roofline."""

    name: str
    intensity: float  # flops per DRAM byte
    attainable_gflops: float
    achieved_gflops: float
    bound: str

    @property
    def efficiency(self) -> float:
        """Achieved over attainable (1.0 = sitting on the roof)."""
        return self.achieved_gflops / self.attainable_gflops if self.attainable_gflops else 0.0


def ridge_intensity(spec: GPUSpec) -> float:
    """Intensity where the compute and bandwidth roofs meet (flops/B)."""
    return spec.peak_dp_gflops / spec.mem_bandwidth_gbs


def roofline_point(spec: GPUSpec, cost: KernelCost) -> RooflinePoint:
    """Place one kernel on the device's DRAM roofline."""
    if cost.dram_bytes > 0:
        intensity = cost.flops / cost.dram_bytes
        attainable = min(spec.peak_dp_gflops, spec.mem_bandwidth_gbs * intensity)
    else:
        intensity = float("inf")
        attainable = spec.peak_dp_gflops
    timing = execute_kernel(spec, cost)
    return RooflinePoint(
        name=cost.name,
        intensity=intensity,
        attainable_gflops=attainable,
        achieved_gflops=timing.gflops,
        bound=timing.bound,
    )


def roofline_report(spec: GPUSpec, costs: list[KernelCost]) -> list[RooflinePoint]:
    """Roofline placement of a whole kernel mix, sorted by intensity."""
    points = [roofline_point(spec, c) for c in costs]
    return sorted(points, key=lambda p: p.intensity)
