"""The Sedov blast wave (the paper's primary benchmark).

A quiescent unit-density gamma-law gas fills [0, 1]^dim; a finite
internal energy is deposited in the zone at the origin. Symmetry walls
make the domain one quadrant (2D) or octant (3D) of the full blast. The
exact self-similar solution gives the shock radius

    R(t) = (E t^2 / (alpha rho0))^{1/(dim+2)}

used by the verification helpers (`shock_radius`).
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import cartesian_mesh_2d, cartesian_mesh_3d
from repro.fem.spaces import L2Space
from repro.problems.base import Problem

__all__ = ["SedovProblem"]


class SedovProblem(Problem):
    """Sedov blast in a unit box with origin energy deposition.

    Parameters
    ----------
    dim : 2 or 3.
    order : kinematic FE order k (thermodynamic order is k-1).
    zones_per_dim : zones per direction of the Cartesian mesh.
    total_energy : blast energy E deposited at the origin (the full-space
        blast energy is 2^dim times this, by symmetry).
    background_e : small ambient specific internal energy (a strictly
        cold background has zero sound speed; a tiny floor keeps the
        initial dt estimate finite).
    """

    name = "sedov"
    default_t_final = 0.05
    default_cfl = 0.5

    def __init__(
        self,
        dim: int = 3,
        order: int = 2,
        zones_per_dim: int = 8,
        total_energy: float = 0.25,
        gamma: float = 1.4,
        background_e: float = 1e-8,
    ):
        if dim == 2:
            mesh = cartesian_mesh_2d(zones_per_dim, zones_per_dim)
        elif dim == 3:
            mesh = cartesian_mesh_3d(zones_per_dim, zones_per_dim, zones_per_dim)
        else:
            raise ValueError("Sedov problem supports dim 2 and 3")
        super().__init__(mesh, order)
        self.zones_per_dim = zones_per_dim
        self.total_energy = total_energy
        self.gamma = gamma
        self.background_e = background_e

    def make_eos(self):
        from repro.hydro.eos import GammaLawEOS

        return GammaLawEOS(gamma=self.gamma)

    def e0(self, pts: np.ndarray) -> np.ndarray:
        return np.full(pts.shape[0], self.background_e)

    def initial_energy(self, l2: L2Space, zone_node_coords: np.ndarray) -> np.ndarray:
        """Background energy plus a delta in the origin zone.

        The deposition sets a uniform specific energy inside the origin
        zone such that its integrated internal energy (rho0 = 1) equals
        `total_energy`.
        """
        e = np.full(l2.ndof, self.background_e)
        centroids = zone_node_coords.mean(axis=1)
        origin_zone = int(np.argmin(np.linalg.norm(centroids, axis=1)))
        zone_vol = (1.0 / self.zones_per_dim) ** self.dim
        e_zone = self.total_energy / zone_vol
        ez = l2.gather(e)
        ez[origin_zone, :] = e_zone
        return l2.scatter(ez)

    def shock_radius(self, t: float, alpha: float | None = None) -> float:
        """Self-similar shock radius estimate.

        `alpha` is the Sedov similarity constant; the common gamma=1.4
        values (~0.851 in 3D spherical, ~0.984 in 2D cylindrical) are
        used when not given. The deposited energy corresponds to a
        full-space blast of 2^dim * total_energy.
        """
        if alpha is None:
            alpha = 0.851 if self.dim == 3 else 0.984
        e_full = (2**self.dim) * self.total_energy
        return float((e_full * t * t / alpha) ** (1.0 / (self.dim + 2)))
