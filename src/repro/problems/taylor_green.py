"""Smooth Taylor-Green-like vortex for convergence testing.

A manufactured smooth flow: single-mode vortical velocity with a
pressure field in approximate balance. There is no shock, so the
artificial viscosity switch should stay (nearly) inactive and the
high-order method should track the smooth dynamics accurately — the
setting where p-refinement pays off, per the paper's introduction.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import cartesian_mesh_2d
from repro.hydro.viscosity import ViscosityCoefficients
from repro.problems.base import Problem

__all__ = ["TaylorGreenProblem"]


class TaylorGreenProblem(Problem):
    """2D single-vortex smooth flow on the unit box."""

    name = "taylor-green"
    default_t_final = 0.25
    default_cfl = 0.5

    def __init__(
        self,
        order: int = 3,
        zones_per_dim: int = 4,
        mach: float = 0.1,
        gamma: float = 5.0 / 3.0,
        viscosity_on: bool = False,
    ):
        mesh = cartesian_mesh_2d(zones_per_dim, zones_per_dim)
        super().__init__(mesh, order)
        self.mach = mach
        self.gamma = gamma
        self.viscosity_on = viscosity_on
        # Background state: rho = 1, p chosen so the sound speed is
        # v_max / mach.
        self.p0 = (self.mach_speed() ** 2) / gamma

    def mach_speed(self) -> float:
        return 1.0 / self.mach

    def make_eos(self):
        from repro.hydro.eos import GammaLawEOS

        return GammaLawEOS(gamma=self.gamma)

    def viscosity(self) -> ViscosityCoefficients:
        return ViscosityCoefficients(enabled=self.viscosity_on)

    def v0(self, pts: np.ndarray) -> np.ndarray:
        x = pts[:, 0]
        y = pts[:, 1]
        vx = np.sin(np.pi * x) * np.cos(np.pi * y)
        vy = -np.cos(np.pi * x) * np.sin(np.pi * y)
        return np.column_stack([vx, vy])

    def e0(self, pts: np.ndarray) -> np.ndarray:
        x = pts[:, 0]
        y = pts[:, 1]
        p = self.p0 + 0.25 * (np.cos(2 * np.pi * x) + np.cos(2 * np.pi * y))
        p = np.maximum(p, 0.1 * self.p0)
        return p / (self.gamma - 1.0)

    def initial_kinetic_energy(self) -> float:
        """Exact integral of 1/2 |v0|^2 over the unit box (rho = 1)."""
        return 0.25
