"""The Noh implosion problem.

A cold, unit-density gas streams radially inward at speed 1; an
infinite-strength shock reflects from the origin and moves outward at
speed (gamma - 1)/2. With gamma = 5/3 the exact post-shock density is
((gamma + 1) / (gamma - 1))^dim = 16 in 2D (cylindrical) and 64 in 3D
(spherical). A brutal benchmark for Lagrangian codes (wall heating at
the origin is the classic artifact); BLAST's lineage of schemes is
routinely validated on it.

Boundary conditions: symmetry walls on the origin planes only — the
outer boundary is free and rides inward with the flow.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import cartesian_mesh_2d, cartesian_mesh_3d
from repro.hydro.boundary import BoundaryConditions
from repro.problems.base import Problem

__all__ = ["NohProblem"]


class NohProblem(Problem):
    """Noh implosion on [0, 1]^dim (one quadrant/octant)."""

    name = "noh"
    default_t_final = 0.25
    default_cfl = 0.4

    def __init__(
        self,
        dim: int = 2,
        order: int = 2,
        zones_per_dim: int = 8,
        gamma: float = 5.0 / 3.0,
        background_e: float = 1e-10,
    ):
        if dim == 2:
            mesh = cartesian_mesh_2d(zones_per_dim, zones_per_dim)
        elif dim == 3:
            mesh = cartesian_mesh_3d(zones_per_dim, zones_per_dim, zones_per_dim)
        else:
            raise ValueError("Noh problem supports dim 2 and 3")
        super().__init__(mesh, order)
        self.gamma = gamma
        self.background_e = background_e

    def make_eos(self):
        from repro.hydro.eos import GammaLawEOS

        return GammaLawEOS(gamma=self.gamma)

    def v0(self, pts: np.ndarray) -> np.ndarray:
        r = np.linalg.norm(pts, axis=1)
        safe = np.maximum(r, 1e-14)
        v = -pts / safe[:, None]
        v[r < 1e-12] = 0.0  # the origin node is stagnant by symmetry
        return v

    def e0(self, pts: np.ndarray) -> np.ndarray:
        return np.full(pts.shape[0], self.background_e)

    def boundary_conditions(self, space) -> BoundaryConditions:
        """Walls on the origin planes; the outer boundary is free."""
        return BoundaryConditions.box_faces(
            space, faces=[(d, "lo") for d in range(self.dim)]
        )

    # -- Exact solution helpers ------------------------------------------------

    def shock_speed(self) -> float:
        return 0.5 * (self.gamma - 1.0)

    def shock_radius(self, t: float) -> float:
        return self.shock_speed() * t

    def post_shock_density(self) -> float:
        """((gamma+1)/(gamma-1))^dim: 16 in 2D, 64 in 3D at gamma=5/3."""
        return ((self.gamma + 1.0) / (self.gamma - 1.0)) ** self.dim

    def pre_shock_density(self, r: np.ndarray, t: float) -> np.ndarray:
        """Upstream density profile (1 + t/r)^(dim-1) from convergence."""
        r = np.asarray(r, dtype=np.float64)
        return (1.0 + t / np.maximum(r, 1e-14)) ** (self.dim - 1)
