"""Problem definition interface.

A `Problem` packages everything the solver needs: the mesh, the FE
orders (Qk-Qk-1), the material EOS (possibly per zone), initial fields
and boundary conditions. Initial energy deposition is overridable
because blast problems initialize energy per-zone (a delta at the
origin) rather than from a smooth pointwise function.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh
from repro.fem.spaces import H1Space, L2Space
from repro.hydro.boundary import BoundaryConditions
from repro.hydro.eos import GammaLawEOS
from repro.hydro.viscosity import ViscosityCoefficients

__all__ = ["Problem"]


class Problem:
    """Base problem: quiescent unit-density gamma-law gas in a box.

    Subclasses override the `rho0` / `v0` / `e0` field functions (taking
    (npts, dim) coordinate arrays) and, when needed, `make_eos` (per-zone
    materials) and `initial_energy` (non-pointwise deposition).
    """

    name = "base"
    default_t_final = 0.1
    default_cfl = 0.5

    def __init__(self, mesh: Mesh, order: int):
        if order < 1:
            raise ValueError("kinematic order must be >= 1")
        self.mesh = mesh
        self.order = order

    # -- FE configuration ----------------------------------------------------

    @property
    def dim(self) -> int:
        return self.mesh.dim

    @property
    def kinematic_order(self) -> int:
        return self.order

    @property
    def thermodynamic_order(self) -> int:
        """The paper's Qk-Qk-1 pairing."""
        return self.order - 1

    @property
    def quad_points_1d(self) -> int:
        """2k points per dimension (reproduces the paper's kernel shapes)."""
        return max(2 * self.order, 2)

    # -- Materials -----------------------------------------------------------

    def make_eos(self):
        return GammaLawEOS(gamma=1.4)

    def viscosity(self) -> ViscosityCoefficients:
        return ViscosityCoefficients()

    # -- Initial fields --------------------------------------------------------

    def rho0(self, pts: np.ndarray) -> np.ndarray:
        return np.ones(pts.shape[0])

    def v0(self, pts: np.ndarray) -> np.ndarray:
        return np.zeros_like(pts)

    def e0(self, pts: np.ndarray) -> np.ndarray:
        return np.zeros(pts.shape[0])

    def initial_energy(self, l2: L2Space, zone_node_coords: np.ndarray) -> np.ndarray:
        """Nodal interpolation of `e0` by default.

        zone_node_coords : (nzones, ndof_per_zone, dim) physical positions
        of the thermodynamic dof nodes.
        """
        flat = zone_node_coords.reshape(-1, self.dim)
        return np.asarray(self.e0(flat), dtype=np.float64).reshape(l2.ndof)

    def boundary_conditions(self, space: H1Space) -> BoundaryConditions:
        """Symmetry walls on the full box by default."""
        return BoundaryConditions.box_symmetry(space)
