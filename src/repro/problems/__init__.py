"""Benchmark problem setups (the paper's test cases)."""

from repro.problems.base import Problem
from repro.problems.sedov import SedovProblem
from repro.problems.triple_point import TriplePointProblem
from repro.problems.taylor_green import TaylorGreenProblem
from repro.problems.noh import NohProblem
from repro.problems.saltzman import SaltzmanProblem
from repro.problems.sod import SodProblem

__all__ = [
    "Problem",
    "SedovProblem",
    "TriplePointProblem",
    "TaylorGreenProblem",
    "NohProblem",
    "SaltzmanProblem",
    "SodProblem",
]
