"""The Saltzman piston problem.

A unit-speed piston drives a planar shock through a cold gas meshed
with deliberately *skewed* zones — the acid test for multidimensional
Lagrangian schemes, which must keep the planar shock planar despite the
mesh distortion. With gamma = 5/3 the shock runs at 4/3 and compresses
the gas to rho = 4.

The piston is a prescribed-velocity boundary (v_x = 1 at the left
wall), exercising the inhomogeneous-constraint path of the momentum
solver; total energy is *not* conserved — it grows by exactly the work
the piston does on the gas.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import cartesian_mesh_2d
from repro.hydro.boundary import BoundaryConditions
from repro.problems.base import Problem

__all__ = ["SaltzmanProblem"]


class SaltzmanProblem(Problem):
    """2D Saltzman piston on [0, 1] x [0, 0.1] with a skewed mesh."""

    name = "saltzman"
    default_t_final = 0.4
    default_cfl = 0.3

    PISTON_SPEED = 1.0

    def __init__(
        self,
        order: int = 2,
        nx: int = 20,
        ny: int = 2,
        skew: float = 0.25,
        gamma: float = 5.0 / 3.0,
        background_e: float = 1e-8,
    ):
        if not (0.0 <= skew < 1.0):
            raise ValueError("skew must be in [0, 1)")
        mesh = cartesian_mesh_2d(nx, ny, extent=((0.0, 1.0), (0.0, 0.1)))
        if skew:
            height = 0.1

            def skew_map(verts: np.ndarray) -> np.ndarray:
                out = verts.copy()
                # The classic Saltzman distortion: x shifted by a
                # y-dependent sine, vanishing at both walls' corners.
                out[:, 0] += skew * (height - verts[:, 1]) * np.sin(np.pi * verts[:, 0]) / 2.0
                return out

            mesh = mesh.transform(skew_map)
            mesh.grid_shape = None  # the skewed grid is not lexicographic-uniform
        super().__init__(mesh, order)
        self.gamma = gamma
        self.skew = skew
        self.background_e = background_e

    def make_eos(self):
        from repro.hydro.eos import GammaLawEOS

        return GammaLawEOS(gamma=self.gamma)

    def e0(self, pts: np.ndarray) -> np.ndarray:
        return np.full(pts.shape[0], self.background_e)

    def v0(self, pts: np.ndarray) -> np.ndarray:
        v = np.zeros_like(pts)
        # The piston face starts moving at t=0.
        v[np.abs(pts[:, 0]) < 1e-12, 0] = self.PISTON_SPEED
        return v

    def boundary_conditions(self, space) -> BoundaryConditions:
        bc = BoundaryConditions.box_faces(
            space, faces=[(0, "hi"), (1, "lo"), (1, "hi")]
        )
        piston = space.boundary_dofs_on_plane(0, 0.0)
        bc.constrain(piston, component=0, value=self.PISTON_SPEED)
        return bc

    # -- Exact solution helpers ------------------------------------------------

    def shock_speed(self) -> float:
        """Strong piston shock: D = (gamma+1)/2 * u_piston."""
        return 0.5 * (self.gamma + 1.0) * self.PISTON_SPEED

    def post_shock_density(self) -> float:
        """(gamma+1)/(gamma-1) = 4 at gamma=5/3."""
        return (self.gamma + 1.0) / (self.gamma - 1.0)

    def piston_work(self, t: float) -> float:
        """Energy delivered by the piston: the shocked slab's energy.

        The strong-shock solution: mass swept = rho0 * D * t per unit
        height; post-shock velocity = u_p; specific total energy =
        u_p^2/2 (kinetic) + u_p^2/2 (internal, strong shock) = u_p^2.
        Domain height is 0.1.
        """
        d = self.shock_speed()
        height = 0.1
        swept_mass = 1.0 * d * t * height
        return swept_mass * self.PISTON_SPEED**2 * 0.5 * 2.0
