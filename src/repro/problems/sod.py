"""The Sod shock tube, run as a 2D strip.

The canonical Riemann problem — left state (rho, u, p) = (1, 0, 1),
right state (0.125, 0, 0.1), gamma = 1.4 — run through the full 2D
Lagrangian machinery on a thin strip. Verified against the *exact*
Riemann solution (`analysis.riemann`): shock at x ~ 0.85, contact at
~0.69, rarefaction fan from ~0.26 to ~0.49 at t = 0.2.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.riemann import ExactRiemannSolution, RiemannState, solve_riemann
from repro.fem.mesh import cartesian_mesh_2d
from repro.fem.spaces import L2Space
from repro.problems.base import Problem

__all__ = ["SodProblem"]


class SodProblem(Problem):
    """Sod tube on [0, 1] x [0, height], diaphragm at x = 0.5."""

    name = "sod"
    default_t_final = 0.2
    default_cfl = 0.4

    LEFT = RiemannState(rho=1.0, u=0.0, p=1.0)
    RIGHT = RiemannState(rho=0.125, u=0.0, p=0.1)

    def __init__(self, order: int = 2, nx: int = 50, ny: int = 1,
                 gamma: float = 1.4, height: float = 0.05):
        mesh = cartesian_mesh_2d(nx, ny, extent=((0.0, 1.0), (0.0, height)))
        super().__init__(mesh, order)
        self.gamma = gamma
        self.nx = nx

    def make_eos(self):
        from repro.hydro.eos import GammaLawEOS

        return GammaLawEOS(gamma=self.gamma)

    def _side(self, pts: np.ndarray) -> np.ndarray:
        return pts[:, 0] >= 0.5

    def rho0(self, pts: np.ndarray) -> np.ndarray:
        return np.where(self._side(pts), self.RIGHT.rho, self.LEFT.rho)

    def e0(self, pts: np.ndarray) -> np.ndarray:
        p = np.where(self._side(pts), self.RIGHT.p, self.LEFT.p)
        rho = self.rho0(pts)
        return p / ((self.gamma - 1.0) * rho)

    def initial_energy(self, l2: L2Space, zone_node_coords: np.ndarray) -> np.ndarray:
        """Zone-constant states from centroids: the diaphragm sits on a
        zone boundary, so no zone straddles it."""
        centroids = zone_node_coords.mean(axis=1)
        e_zone = self.e0(centroids)
        return l2.scatter(np.repeat(e_zone[:, None], l2.ndof_per_zone, axis=1))

    # -- Verification ---------------------------------------------------------

    def exact_solution(self) -> ExactRiemannSolution:
        return solve_riemann(self.LEFT, self.RIGHT, self.gamma)

    def exact_profile(self, x: np.ndarray, t: float):
        """(rho, u, p) of the exact solution at positions x, time t."""
        if t <= 0:
            raise ValueError("need t > 0 for the self-similar solution")
        sol = self.exact_solution()
        return sol.sample((np.asarray(x) - 0.5) / t)
