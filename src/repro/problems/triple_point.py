"""The 2D triple-point shock interaction benchmark.

Three gamma-law materials meet at the point (1, 1.5) of the domain
[0, 7] x [0, 3]:

* left driver  (x < 1):           rho = 1,   p = 1,   gamma = 1.5
* bottom right (x > 1, y < 1.5):  rho = 1,   p = 0.1, gamma = 1.4
* top right    (x > 1, y > 1.5):  rho = 0.1, p = 0.1, gamma = 1.5

The pressure jump drives a shock into the low-pressure region; the
density contrast across y = 1.5 shears the flow and rolls up the
interface — the vortical feature whose resolution improves with order
in the paper's Figure 2. Gamma is per *zone* (the thermodynamic basis
is discontinuous, so material interfaces align with zone boundaries).
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import cartesian_mesh_2d
from repro.fem.spaces import L2Space
from repro.problems.base import Problem

__all__ = ["TriplePointProblem"]


class TriplePointProblem(Problem):
    """Three-material 2D triple point on [0, 7] x [0, 3]."""

    name = "triple-pt"
    default_t_final = 0.6
    default_cfl = 0.5

    GAMMA_LEFT = 1.5
    GAMMA_BOTTOM = 1.4
    GAMMA_TOP = 1.5

    def __init__(self, order: int = 3, nx: int = 28, ny: int = 12):
        # Keep zones square-ish: the domain is 7 x 3.
        mesh = cartesian_mesh_2d(nx, ny, extent=((0.0, 7.0), (0.0, 3.0)))
        super().__init__(mesh, order)
        self.nx = nx
        self.ny = ny
        self._zone_gamma = self._compute_zone_gamma()

    def _region(self, pts: np.ndarray) -> np.ndarray:
        """0 = left driver, 1 = bottom right, 2 = top right."""
        out = np.zeros(pts.shape[0], dtype=np.int64)
        right = pts[:, 0] >= 1.0
        top = pts[:, 1] >= 1.5
        out[right & ~top] = 1
        out[right & top] = 2
        return out

    def _compute_zone_gamma(self) -> np.ndarray:
        centroids = self.mesh.zone_vertex_coords().mean(axis=1)
        region = self._region(centroids)
        gammas = np.array([self.GAMMA_LEFT, self.GAMMA_BOTTOM, self.GAMMA_TOP])
        return gammas[region]

    def make_eos(self):
        from repro.hydro.eos import GammaLawEOS

        # Per-zone gamma broadcasts against (nzones, nqp) point arrays.
        return GammaLawEOS(gamma=self._zone_gamma[:, None])

    def rho0(self, pts: np.ndarray) -> np.ndarray:
        region = self._region(pts)
        rho = np.array([1.0, 1.0, 0.1])
        return rho[region]

    def e0(self, pts: np.ndarray) -> np.ndarray:
        region = self._region(pts)
        rho = np.array([1.0, 1.0, 0.1])[region]
        p = np.array([1.0, 0.1, 0.1])[region]
        gamma = np.array([self.GAMMA_LEFT, self.GAMMA_BOTTOM, self.GAMMA_TOP])[region]
        return p / ((gamma - 1.0) * rho)

    def initial_energy(self, l2: L2Space, zone_node_coords: np.ndarray) -> np.ndarray:
        """Per-zone-constant material state evaluated at zone centroids.

        Evaluating at centroids (not at the nodes) keeps each zone purely
        one material even when thermodynamic nodes sit exactly on the
        material interface.
        """
        centroids = zone_node_coords.mean(axis=1)
        region = self._region(centroids)
        rho = np.array([1.0, 1.0, 0.1])[region]
        p = np.array([1.0, 0.1, 0.1])[region]
        gamma = np.array([self.GAMMA_LEFT, self.GAMMA_BOTTOM, self.GAMMA_TOP])[region]
        e_zone = p / ((gamma - 1.0) * rho)
        ez = np.repeat(e_zone[:, None], l2.ndof_per_zone, axis=1)
        return l2.scatter(ez)

    def region_of_zones(self) -> np.ndarray:
        """Material region id per zone (0/1/2) for diagnostics."""
        centroids = self.mesh.zone_vertex_coords().mean(axis=1)
        return self._region(centroids)
