"""Deterministic fault injection for the simulated hybrid runtime.

The paper motivates the CPU-GPU redesign with fault tolerance
("Applications are more fault tolerant and runs faster, since the
frequency of checking points can be reduced") — which only means
something if the runtime can actually fail. This module provides the
failure side of that bargain: a seeded `FaultInjector` whose schedule
deterministically raises simulated GPU ECC/kernel aborts, PCIe transfer
failures and MPI rank deaths at instrumented sites across `gpu/` and
`runtime/`, and corrupts the hydro state (NaN or blow-up) so the
watchdog/rollback machinery in `repro.resilience` has real faults to
recover from.

Fault kinds and their injection sites:

==========  ==========================================  ==================
kind        site (who calls ``check``)                  exception
==========  ==========================================  ==================
``gpu``     `execute_kernel` via `SimulatedGPU`         `GPUKernelFault`
``pcie``    `PCIeModel.transfer_time_s`                 `PCIeTransferFault`
``rank``    `SimulatedComm` collectives                 `RankFailure`
``state``   `FaultInjector.corrupt_state` (the driver)  *silent corruption*
==========  ==========================================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "InjectedFault",
    "GPUKernelFault",
    "PCIeTransferFault",
    "RankFailure",
    "StateCorruptionFault",
    "FaultSpec",
    "FaultRecord",
    "FaultInjector",
    "parse_fault_specs",
    "FAULT_KINDS",
]

FAULT_KINDS = ("gpu", "pcie", "rank", "state")

_STATE_MODES = ("nan", "blowup")


class InjectedFault(RuntimeError):
    """Base class for every simulated failure raised by the injector."""

    kind = "fault"

    def __init__(self, message: str, *, occurrence: int = 0, detail: str | None = None,
                 sticky: bool = False):
        super().__init__(message)
        self.occurrence = occurrence
        self.detail = detail
        self.sticky = sticky


class GPUKernelFault(InjectedFault):
    """A kernel aborted on the device (uncorrectable ECC, launch fault)."""

    kind = "gpu"


class PCIeTransferFault(InjectedFault):
    """A host<->device transfer failed on the PCIe link."""

    kind = "pcie"


class RankFailure(InjectedFault):
    """A simulated MPI rank died inside a collective."""

    kind = "rank"

    def __init__(self, message: str, *, rank: int = 0, **kw):
        super().__init__(message, **kw)
        self.rank = rank


class StateCorruptionFault(InjectedFault):
    """Marker type for silent-data-corruption events (never raised at the
    injection site — the corruption is applied in place and must be
    *detected* by the watchdog, like real SDC)."""

    kind = "state"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    kind : one of `FAULT_KINDS`.
    at : 1-based occurrence of the matching site call at which the fault
        fires (for ``state`` faults: the 1-based step index).
    target : optional filter — a kernel-name prefix for ``gpu`` faults,
        the failing rank for ``rank`` faults, the corruption mode
        ("nan" or "blowup") for ``state`` faults.
    sticky : keep failing every matching call from `at` on (a dead
        device / permanently lost rank rather than a transient).
    """

    kind: str
    at: int
    target: str | int | None = None
    sticky: bool = False

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind '{self.kind}' (choose from {FAULT_KINDS})")
        if self.at < 1:
            raise ValueError("fault occurrence index is 1-based")
        if self.kind == "state" and self.target is not None and self.target not in _STATE_MODES:
            raise ValueError(f"state fault mode must be one of {_STATE_MODES}")


@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually fired."""

    kind: str
    occurrence: int
    detail: str | None = None
    sticky: bool = False


_EXC = {"gpu": GPUKernelFault, "pcie": PCIeTransferFault, "rank": RankFailure}


def parse_fault_specs(text: str) -> tuple[FaultSpec, ...]:
    """Parse a CLI schedule like ``"gpu:3,state:12:blowup,rank:2:1"``.

    Entries are comma-separated ``kind:at[:extra][!]``; the optional
    ``extra`` is the kernel-name prefix (gpu), failing rank (rank) or
    corruption mode (state), and a trailing ``!`` makes the fault sticky.
    """
    specs = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        sticky = entry.endswith("!")
        if sticky:
            entry = entry[:-1]
        parts = entry.split(":")
        if len(parts) < 2:
            raise ValueError(f"fault spec '{entry}' must look like kind:occurrence[:extra]")
        kind = parts[0].strip()
        try:
            at = int(parts[1])
        except ValueError:
            raise ValueError(f"fault spec '{entry}': occurrence must be an integer") from None
        target: str | int | None = None
        if len(parts) > 2 and parts[2]:
            target = int(parts[2]) if kind == "rank" else parts[2]
        specs.append(FaultSpec(kind=kind, at=at, target=target, sticky=sticky))
    return tuple(specs)


class FaultInjector:
    """Seeded, deterministic fault source shared by every instrumented site.

    Two scheduling mechanisms compose:

    * an explicit `schedule` of `FaultSpec`s — each spec privately counts
      the site calls that match its filter and fires exactly at its
      `at`-th one (every one from `at` on when sticky);
    * optional Poisson-like `rates` (kind -> probability per call) drawn
      from the seeded generator, for soak-style experiments.

    The injector never rolls its counters back: a replayed step sees a
    fault-free world, exactly like a real retry after a transient.
    """

    def __init__(self, schedule: tuple[FaultSpec, ...] | list[FaultSpec] = (),
                 seed: int = 0, rates: dict[str, float] | None = None):
        self.schedule = tuple(schedule)
        self.rates = dict(rates or {})
        for kind, rate in self.rates.items():
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind '{kind}' in rates")
            if not (0.0 <= rate <= 1.0):
                raise ValueError("fault rates must be probabilities")
        self.rng = np.random.default_rng(seed)
        self.calls: dict[str, int] = {}
        self.fired: list[FaultRecord] = []
        self._spec_calls = [0] * len(self.schedule)
        self._spec_done = [False] * len(self.schedule)

    # -- Site API ---------------------------------------------------------------

    def check(self, kind: str, detail: str | None = None) -> None:
        """Called by an instrumented site; raises if a fault is due."""
        if kind not in _EXC:
            raise ValueError(f"'{kind}' is not a raisable fault kind")
        self.calls[kind] = self.calls.get(kind, 0) + 1
        for i, spec in enumerate(self.schedule):
            if spec.kind != kind or self._spec_done[i]:
                continue
            if spec.kind == "gpu" and isinstance(spec.target, str) and detail is not None \
                    and not detail.startswith(spec.target):
                continue
            self._spec_calls[i] += 1
            n = self._spec_calls[i]
            if n == spec.at or (spec.sticky and n > spec.at):
                if not spec.sticky:
                    self._spec_done[i] = True
                self._raise(spec, n, detail)
        rate = self.rates.get(kind, 0.0)
        if rate and self.rng.random() < rate:
            self._raise(FaultSpec(kind, max(self.calls[kind], 1)), self.calls[kind], detail)

    def _raise(self, spec: FaultSpec, occurrence: int, detail: str | None):
        rec = FaultRecord(spec.kind, occurrence, detail, spec.sticky)
        self.fired.append(rec)
        exc = _EXC[spec.kind]
        msg = f"injected {spec.kind} fault at occurrence {occurrence}"
        if detail:
            msg += f" ({detail})"
        if spec.kind == "rank":
            rank = int(spec.target) if spec.target is not None else 0
            raise exc(msg + f": rank {rank} died", rank=rank,
                      occurrence=occurrence, detail=detail, sticky=spec.sticky)
        raise exc(msg, occurrence=occurrence, detail=detail, sticky=spec.sticky)

    # -- Silent data corruption ---------------------------------------------------

    def corrupt_state(self, state, step: int) -> str | None:
        """Apply any ``state`` fault scheduled for 1-based step `step`.

        Mutates the state's arrays in place (NaN poke or energy blow-up)
        and returns a description, or None when nothing was due. The
        corruption is *silent* — detection is the watchdog's job. A
        sticky state fault re-corrupts every time the run passes `at`
        again (i.e. after every rollback), modeling a persistent source
        of corruption that no amount of replay can outrun.
        """
        for i, spec in enumerate(self.schedule):
            if spec.kind != "state" or self._spec_done[i]:
                continue
            if spec.at != step:
                continue
            if not spec.sticky:
                self._spec_done[i] = True
            mode = spec.target or "nan"
            if mode == "nan":
                state.v[0, 0] = np.nan
                desc = "NaN poked into v[0,0]"
            else:
                state.e *= 1e12
                desc = "internal energy blown up by 1e12"
            self.fired.append(FaultRecord("state", step, desc, spec.sticky))
            return desc
        return None

    # -- Introspection -------------------------------------------------------------

    @property
    def faults_fired(self) -> int:
        return len(self.fired)

    def describe(self) -> str:
        if not self.fired:
            return "no faults fired"
        return "; ".join(
            f"{r.kind}@{r.occurrence}" + (f" [{r.detail}]" if r.detail else "")
            for r in self.fired
        )
