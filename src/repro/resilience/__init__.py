"""Resilient execution layer: fault injection, recovery, checkpointed replay.

The paper motivates the hybrid CPU-GPU design with fault tolerance
("Applications are more fault tolerant and runs faster, since the
frequency of checking points can be reduced"). This subsystem makes
that claim exercisable: `FaultInjector` deterministically breaks the
simulated runtime (GPU kernel aborts, PCIe transfer failures, MPI rank
deaths, silent state corruption), `RecoveryPolicy` decides how to
answer (retry with backoff, GPU->CPU fallback, rank exclusion,
rollback), `Watchdog` detects what the hardware can't report, and
`ResilientDriver` runs the solver with checkpointed auto-recovery and
prices the whole exercise in a `RecoveryReport`.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultRecord,
    FaultSpec,
    GPUKernelFault,
    InjectedFault,
    PCIeTransferFault,
    RankFailure,
    StateCorruptionFault,
    parse_fault_specs,
)
from repro.resilience.policy import (
    BackoffPolicy,
    GpuOffloadPricer,
    RecoveryAction,
    RecoveryPolicy,
    ResilienceExhausted,
    StepPricing,
)
from repro.resilience.watchdog import InvariantViolation, Watchdog, WatchdogLimits
from repro.resilience.driver import (
    CheckpointCostModel,
    FaultEvent,
    RecoveryReport,
    ResilientDriver,
    ResilientRunResult,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultRecord",
    "FaultSpec",
    "GPUKernelFault",
    "InjectedFault",
    "PCIeTransferFault",
    "RankFailure",
    "StateCorruptionFault",
    "parse_fault_specs",
    "BackoffPolicy",
    "GpuOffloadPricer",
    "RecoveryAction",
    "RecoveryPolicy",
    "ResilienceExhausted",
    "StepPricing",
    "InvariantViolation",
    "Watchdog",
    "WatchdogLimits",
    "CheckpointCostModel",
    "FaultEvent",
    "RecoveryReport",
    "ResilientDriver",
    "ResilientRunResult",
]
