"""Per-step invariant monitoring for the resilient driver.

The Lagrangian scheme gives us unusually sharp invariants to watch: the
RK2Avg pairing conserves KE + IE to roundoff (the paper's Table 6), the
unknowns must stay finite, and the CFL controller's dt only collapses
when the mesh is tangling. The `Watchdog` checks all three after every
accepted step; a violation raises `InvariantViolation`, which the
`ResilientDriver` answers with rollback-and-replay from the last
checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WatchdogLimits", "InvariantViolation", "Watchdog"]


class InvariantViolation(RuntimeError):
    """A monitored physics invariant failed after a step."""

    def __init__(self, reason: str, step: int | None = None):
        super().__init__(reason)
        self.reason = reason
        self.step = step


@dataclass(frozen=True)
class WatchdogLimits:
    """Thresholds for the monitored invariants.

    energy_drift_rel : allowed |E(t) - E(0)| relative to max(|E(0)|, 1).
        RK2Avg holds ~1e-13; the default leaves three orders of headroom
        for long runs while still catching any genuine blow-up instantly.
    dt_collapse_ratio : dt below this fraction of the initial dt means
        the mesh is collapsing faster than any legitimate compression.
    state_max : magnitude cap on the unknowns (catches pre-NaN blow-up).
    """

    energy_drift_rel: float = 1e-6
    dt_collapse_ratio: float = 1e-8
    state_max: float = 1e12


@dataclass
class Watchdog:
    """Stateful invariant monitor, armed once with the run's references."""

    limits: WatchdogLimits = field(default_factory=WatchdogLimits)
    e0_total: float | None = None
    dt0: float | None = None
    violations: list[InvariantViolation] = field(default_factory=list)
    inspections: int = 0

    def arm(self, e0_total: float, dt0: float) -> None:
        """Record the initial total energy and dt as references."""
        self.e0_total = float(e0_total)
        self.dt0 = float(dt0)

    def _fail(self, reason: str, step: int | None):
        v = InvariantViolation(reason, step)
        self.violations.append(v)
        raise v

    def inspect(self, state, energy_total: float | None = None,
                dt: float | None = None, step: int | None = None) -> None:
        """Check one accepted step; raises `InvariantViolation` on failure."""
        self.inspections += 1
        for name, arr in (("v", state.v), ("e", state.e), ("x", state.x)):
            if not np.isfinite(arr).all():
                self._fail(f"non-finite values in {name}", step)
            if np.abs(arr).max(initial=0.0) > self.limits.state_max:
                self._fail(f"{name} exceeded magnitude cap {self.limits.state_max:g}", step)
        if energy_total is not None and self.e0_total is not None:
            if not np.isfinite(energy_total):
                self._fail("total energy is non-finite", step)
            drift = abs(energy_total - self.e0_total) / max(abs(self.e0_total), 1.0)
            if drift > self.limits.energy_drift_rel:
                self._fail(
                    f"total-energy drift {drift:.3e} exceeds "
                    f"{self.limits.energy_drift_rel:.1e}", step
                )
        if dt is not None and self.dt0:
            if dt < self.limits.dt_collapse_ratio * self.dt0:
                self._fail(
                    f"dt collapsed to {dt:.3e} "
                    f"(< {self.limits.dt_collapse_ratio:g} x initial {self.dt0:.3e})", step
                )
