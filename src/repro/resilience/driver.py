"""Checkpointed auto-recovery driver for the Lagrangian solvers.

`ResilientDriver` wraps a `LagrangianHydroSolver` or a
`DistributedLagrangianSolver` and runs the time loop the way a
production job would: snapshot the state every `checkpoint_every`
accepted steps (in memory, optionally also to disk through the hardened
`repro.io.checkpoint`), watch the physics invariants after every step,
and on a fault apply the `RecoveryPolicy` — retry, GPU->CPU fallback
(via the optional `GpuOffloadPricer`), rank exclusion, or
rollback-and-replay from the last checkpoint.

The run ends with a `RecoveryReport` that prices what resilience cost:
faults seen, retries, fallbacks, steps replayed, modeled checkpoint
time, and the time/energy overhead relative to a fault-free hybrid run
— turning the paper's "the frequency of checking points can be reduced"
claim into a measurable trade-off (see
`benchmarks/bench_resilience_overhead.py`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro._compat import warn_deprecated
from repro.hydro.solver import RunResult
from repro.hydro.state import HydroState
from repro.resilience.faults import FaultInjector, RankFailure
from repro.resilience.policy import GpuOffloadPricer, RecoveryPolicy
from repro.resilience.watchdog import InvariantViolation, Watchdog
from repro.runtime.instrumentation import PhaseTimers

__all__ = [
    "CheckpointCostModel",
    "FaultEvent",
    "RecoveryReport",
    "ResilientRunResult",
    "ResilientDriver",
]


@dataclass(frozen=True)
class CheckpointCostModel:
    """Modeled cost of writing one checkpoint to stable storage.

    The defaults describe a node's share of a parallel filesystem:
    per-checkpoint metadata/sync latency plus a streaming write rate.
    """

    bandwidth_gbs: float = 1.0
    latency_s: float = 5e-3

    def write_time_s(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class FaultEvent:
    """One fault the driver saw, and what it did about it."""

    step: int
    kind: str
    action: str
    detail: str = ""


@dataclass
class RecoveryReport:
    """Structured account of a resilient run.

    `nominal_*` price the same steps fault-free on the hybrid path, so
    `time_overhead` / `energy_overhead` isolate what faults + resilience
    machinery cost on the simulated hardware.
    """

    faults: list[FaultEvent] = field(default_factory=list)
    retries: int = 0
    fallbacks: int = 0
    rollbacks: int = 0
    rank_exclusions: int = 0
    steps_completed: int = 0
    steps_replayed: int = 0
    checkpoints_written: int = 0
    checkpoint_time_s: float = 0.0
    offload_time_s: float = 0.0
    offload_energy_j: float = 0.0
    nominal_time_s: float = 0.0
    nominal_energy_j: float = 0.0
    degraded_final: bool = False
    phase_timings: dict = field(default_factory=dict)

    @property
    def time_overhead(self) -> float:
        """(modeled resilient time / fault-free hybrid time) - 1."""
        if self.nominal_time_s <= 0:
            return 0.0
        return (self.offload_time_s + self.checkpoint_time_s) / self.nominal_time_s - 1.0

    @property
    def energy_overhead(self) -> float:
        if self.nominal_energy_j <= 0:
            return 0.0
        return self.offload_energy_j / self.nominal_energy_j - 1.0

    def summary(self) -> str:
        lines = [
            f"steps {self.steps_completed} (+{self.steps_replayed} replayed), "
            f"checkpoints {self.checkpoints_written}",
            f"faults {len(self.faults)}: retries {self.retries}, "
            f"fallbacks {self.fallbacks}, rollbacks {self.rollbacks}, "
            f"rank exclusions {self.rank_exclusions}",
        ]
        if self.degraded_final:
            lines.append("finished degraded: GPU lost, corner force on the CPU path")
        if self.nominal_time_s > 0:
            lines.append(
                f"modeled overhead: time {self.time_overhead:+.1%}, "
                f"energy {self.energy_overhead:+.1%} vs fault-free hybrid"
            )
        for ev in self.faults:
            lines.append(f"  step {ev.step:5d}  {ev.kind:8s} -> {ev.action}"
                         + (f"  ({ev.detail})" if ev.detail else ""))
        return "\n".join(lines)


@dataclass
class ResilientRunResult:
    """A normal `RunResult` plus the resilience account."""

    result: RunResult
    report: RecoveryReport

    @property
    def state(self) -> HydroState:
        return self.result.state

    @property
    def steps(self) -> int:
        return self.result.steps

    @property
    def reached_t_final(self) -> bool:
        return self.result.reached_t_final


@dataclass
class _Snapshot:
    """In-memory rollback point."""

    state: HydroState
    controller_dt: float
    last_dt_est: float
    steps: int
    n_energy: int
    n_dt: int


class _SerialAdapter:
    """Uniform stepping interface over `LagrangianHydroSolver`."""

    def __init__(self, solver):
        self.solver = solver
        self.controller = solver.controller
        self.inner = solver  # the solver that owns spaces/problem/workload

    @property
    def state(self) -> HydroState:
        return self.solver.state

    def set_state(self, state: HydroState) -> None:
        self.solver.state = state

    @property
    def last_dt_est(self) -> float:
        return getattr(self.solver, "_last_dt_est", 0.0)

    def set_last_dt_est(self, value: float) -> None:
        self.solver._last_dt_est = value

    def initialize(self) -> float:
        # A restored solver carries its controller state — continue the
        # ramp instead of re-initializing (bit-for-bit restart).
        if self.controller.dt > 0 and self.last_dt_est > 0:
            return self.controller.dt
        dt = self.solver.initialize_dt()
        self.set_last_dt_est(dt / self.controller.cfl)
        return dt

    def step(self, dt: float) -> bool:
        return self.solver.step(dt)

    def energies(self):
        return self.solver.energies()


class ResilientDriver:
    """Fault-tolerant execution of a hydro solver.

    Parameters
    ----------
    solver : `LagrangianHydroSolver` or `DistributedLagrangianSolver`.
    injector : optional `FaultInjector`; also attached to the
        distributed solver's communicator so collectives can fail.
    policy, watchdog : recovery policy and invariant monitor (defaults).
    checkpoint_every : accepted steps between rollback snapshots.
    checkpoint_dir : also write (and verify) disk checkpoints through
        `repro.io.checkpoint` at the same cadence.
    offload : optional `GpuOffloadPricer` — prices each step's
        corner-force offload on the simulated GPU and realizes the
        GPU->CPU fallback path of the policy.
    checkpoint_cost : `CheckpointCostModel` for the modeled (simulated
        I/O) cost of each checkpoint in the report.
    tracer : optional enabled `repro.telemetry.Tracer` — the driver
        then owns the root "run" span and emits instant events for
        faults, rollbacks and checkpoints.

    Direct construction is deprecated: prefer
    `repro.api.run(problem, RunConfig(faults=..., checkpoint_every=...,
    offload_device=...))`, which assembles the driver (and its
    telemetry) from the unified config.
    """

    def __init__(
        self,
        solver,
        injector: FaultInjector | None = None,
        policy: RecoveryPolicy | None = None,
        watchdog: Watchdog | None = None,
        checkpoint_every: int = 10,
        checkpoint_dir: str | Path | None = None,
        checkpoint_keep: int = 0,
        offload: GpuOffloadPricer | None = None,
        checkpoint_cost: CheckpointCostModel | None = None,
        timers: PhaseTimers | None = None,
        tracer=None,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        warn_deprecated("ResilientDriver", stacklevel=2)
        self.solver = solver
        self.injector = injector
        self.policy = policy or RecoveryPolicy()
        self.watchdog = watchdog or Watchdog()
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        if checkpoint_keep < 0:
            raise ValueError("checkpoint_keep must be non-negative")
        self.checkpoint_keep = checkpoint_keep
        self.offload = offload
        self.checkpoint_cost = checkpoint_cost or CheckpointCostModel()
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        self.timers = timers or PhaseTimers(tracer=self.tracer)
        self.last_disk_checkpoint: Path | None = None
        # Unwrap the deprecated DistributedLagrangianSolver shim: the
        # adapter always steps the one real solver. Rank-failure
        # handling and collective fault injection route through the
        # distributed backend when the solver carries one.
        real = getattr(solver, "solver", solver)
        self._adapter = _SerialAdapter(real)
        backend = getattr(real, "backend", None)
        self._dist = backend if getattr(backend, "name", "") == "distributed" else None
        if (
            self._dist is not None
            and injector is not None
            and self._dist.comm is not None
            and self._dist.comm.fault_injector is None
        ):
            self._dist.comm.fault_injector = injector

    # -- Checkpointing -----------------------------------------------------------

    def _snapshot(self, ad, steps: int, n_energy: int, n_dt: int) -> _Snapshot:
        return _Snapshot(
            state=ad.state.copy(),
            controller_dt=ad.controller.dt,
            last_dt_est=ad.last_dt_est,
            steps=steps,
            n_energy=n_energy,
            n_dt=n_dt,
        )

    def _restore(self, ad, snap: _Snapshot) -> None:
        ad.set_state(snap.state.copy())
        ad.controller.dt = snap.controller_dt
        ad.set_last_dt_est(snap.last_dt_est)

    def _state_nbytes(self, state: HydroState) -> int:
        return state.v.nbytes + state.e.nbytes + state.x.nbytes + 64

    def _write_disk_checkpoint(self, ad, steps: int) -> None:
        from repro.io.checkpoint import load_checkpoint, save_checkpoint

        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        # Sync the inner solver's controller so the checkpoint restores
        # the live dt ramp (the distributed adapter owns its own).
        ad.inner.controller.dt = ad.controller.dt
        ad.inner._last_dt_est = ad.last_dt_est
        path = save_checkpoint(
            self.checkpoint_dir / f"ckpt_step{steps:06d}.npz", ad.inner, state=ad.state
        )
        load_checkpoint(path)  # verify the write (checksum + integrity)
        self.last_disk_checkpoint = path
        self._prune_disk_checkpoints()

    def _prune_disk_checkpoints(self) -> None:
        """Retention: keep the newest `checkpoint_keep` disk checkpoints.

        Runs only after the newest write has been *verified*, and the
        most recent verified checkpoint (`last_disk_checkpoint`) is
        excluded from deletion unconditionally — retention must never
        leave the run without a restorable snapshot.
        """
        if self.checkpoint_keep < 1 or self.checkpoint_dir is None:
            return
        ckpts = sorted(self.checkpoint_dir.glob("ckpt_step*.npz"))
        keep = set(ckpts[-self.checkpoint_keep:])
        if self.last_disk_checkpoint is not None:
            keep.add(self.last_disk_checkpoint)
        for path in ckpts:
            if path not in keep:
                path.unlink(missing_ok=True)

    # -- Fault handling ----------------------------------------------------------

    def _instant(self, name: str, **meta) -> None:
        """Mark a resilience event on the trace (no-op untraced)."""
        if self.tracer is not None:
            self.tracer.instant(name, category="resilience", **meta)

    def _handle_rank_failure(self, fault: RankFailure, report: RecoveryReport,
                             step: int) -> None:
        if self._dist is None:
            raise fault
        action = self.policy.for_rank_failure(fault, self._dist.nranks)
        self._dist.exclude_rank(action.rank)
        report.rank_exclusions += 1
        self._instant("fault", kind="rank", step=step, rank=action.rank)
        report.faults.append(
            FaultEvent(step, "rank", f"excluded rank {action.rank}",
                       f"{self._dist.nranks} ranks remain")
        )

    # -- The run loop ------------------------------------------------------------

    def run(self, t_final: float | None = None, max_steps: int | None = None) -> ResilientRunResult:
        """Run to t_final under the recovery policy.

        With a tracer attached (and no span already open) the whole
        resilient run becomes the root "run" span; driver phases, the
        solver's step/stage/kernel spans and resilience instants all
        nest inside it.
        """
        tr = self.tracer
        if tr is not None and tr.current is None:
            with tr.span("run", category="run", meta={"resilient": True}):
                return self._run_impl(t_final, max_steps)
        return self._run_impl(t_final, max_steps)

    def _run_impl(self, t_final: float | None, max_steps: int | None) -> ResilientRunResult:
        ad = self._adapter
        report = RecoveryReport()
        problem = ad.inner.problem
        options = ad.inner.options
        t_final = t_final if t_final is not None else problem.default_t_final
        max_steps = max_steps if max_steps is not None else options.max_steps

        with self.timers.measure("initialize"):
            while True:
                try:
                    dt0 = ad.initialize()
                    break
                except RankFailure as fault:
                    self._handle_rank_failure(fault, report, step=0)
            energy_history = [ad.energies()]
        self.watchdog.arm(energy_history[0].total, dt0)
        dt_history: list[float] = []
        steps = 0
        high_water = 0
        snapshot = self._snapshot(ad, steps, len(energy_history), 0)

        while ad.state.t < t_final - 1e-15 and steps < max_steps:
            dt = ad.controller.propose(ad.last_dt_est, ad.state.t, t_final)
            if dt <= 0:
                break
            with self.timers.measure("step"):
                accepted = False
                while not accepted:
                    try:
                        accepted = ad.step(dt)
                    except RankFailure as fault:
                        self._handle_rank_failure(fault, report, step=steps + 1)
                        continue
                    if not accepted:
                        dt = ad.controller.reject()
            steps += 1
            # A hybrid-backend solver tunes in-band under this loop too
            # (the driver owns the march, so it owns the step hook).
            scheduler = getattr(ad.inner, "scheduler", None)
            if scheduler is not None:
                scheduler.on_step()

            if self.injector is not None:
                desc = self.injector.corrupt_state(ad.state, steps)
                if desc is not None:
                    self._instant("fault", kind="state", step=steps, detail=desc)
                    report.faults.append(FaultEvent(steps, "state", "corrupted", desc))

            energy = ad.energies()
            try:
                with self.timers.measure("watchdog"):
                    self.watchdog.inspect(ad.state, energy.total, dt, step=steps)
            except InvariantViolation as viol:
                self.policy.for_violation(report.rollbacks)  # raises when exhausted
                with self.timers.measure("rollback"):
                    replayed = steps - snapshot.steps
                    self._restore(ad, snapshot)
                    steps = snapshot.steps
                    del energy_history[snapshot.n_energy:]
                    del dt_history[snapshot.n_dt:]
                report.rollbacks += 1
                report.steps_replayed += replayed
                self._instant("rollback", step=steps, replayed=replayed,
                              reason=viol.reason)
                report.faults.append(
                    FaultEvent(steps, "watchdog", f"rollback (-{replayed} steps)", viol.reason)
                )
                continue

            energy_history.append(energy)
            dt_history.append(dt)

            if self.offload is not None:
                was_degraded = self.offload.degraded
                with self.timers.measure("offload"):
                    pricing = self.offload.price_step()
                report.retries += pricing.retries
                report.offload_time_s += pricing.time_s
                report.offload_energy_j += pricing.energy_j
                # A degraded device prices every later step on the CPU
                # path; only the step where the fault actually fired is
                # a fallback *event*.
                if pricing.fellback and not was_degraded:
                    report.fallbacks += 1
                    self._instant("fault", kind="gpu", step=steps,
                                  action="cpu-fallback", retries=pricing.retries)
                    report.faults.append(
                        FaultEvent(steps, "gpu", "cpu-fallback",
                                   f"after {pricing.retries} retries")
                    )
                    # Realize the fallback on the live solver: a hybrid
                    # backend swaps to the pure-CPU fused path (same
                    # arithmetic, no device pricing) and its scheduler
                    # stops — the split it was converging no longer
                    # describes the hardware carrying the run.
                    backend = getattr(ad.inner, "backend", None)
                    if backend is not None and backend.name == "hybrid":
                        ad.inner.swap_backend("cpu-fused")
                        self._instant("backend_swap", step=steps,
                                      source="hybrid", target="cpu-fused")
                        report.faults.append(
                            FaultEvent(steps, "gpu", "backend swap",
                                       "hybrid -> cpu-fused, scheduler stopped")
                        )
                    elif (
                        self._dist is not None
                        and self._dist.ranks
                        and self._dist.ranks[0].node.name == "hybrid"
                    ):
                        # Distributed hybrid fleet: the priced offload
                        # models one device, so the sticky fault lands
                        # on rank 0's node — only that rank degrades to
                        # the CPU path; the fleet scheduler stops.
                        self._dist.swap_node("cpu-fused", rank=0)
                        self._instant("backend_swap", step=steps,
                                      source="hybrid", target="cpu-fused",
                                      rank=0)
                        report.faults.append(
                            FaultEvent(steps, "gpu", "backend swap",
                                       "rank 0 hybrid -> cpu-fused, "
                                       "scheduler stopped")
                        )
                elif pricing.retries:
                    report.faults.append(
                        FaultEvent(steps, "gpu", "recovered by retry",
                                   f"{pricing.retries} retries")
                    )
                if steps > high_water:
                    report.nominal_time_s += self.offload.hybrid_step_s
                    report.nominal_energy_j += (
                        self.offload.hybrid_power_w * self.offload.hybrid_step_s
                    )
            high_water = max(high_water, steps)

            if steps % self.checkpoint_every == 0:
                with self.timers.measure("checkpoint"):
                    snapshot = self._snapshot(ad, steps, len(energy_history), len(dt_history))
                    self._instant("checkpoint", step=steps,
                                  to_disk=self.checkpoint_dir is not None)
                    report.checkpoints_written += 1
                    report.checkpoint_time_s += self.checkpoint_cost.write_time_s(
                        self._state_nbytes(ad.state)
                    )
                    if self.checkpoint_dir is not None:
                        self._write_disk_checkpoint(ad, steps)

        scheduler = getattr(ad.inner, "scheduler", None)
        if scheduler is not None:
            # Close any open tuning_period span before the run span does.
            scheduler.finalize()
        if energy_history[-1].t != ad.state.t:
            energy_history.append(ad.energies())
        report.steps_completed = steps
        report.degraded_final = bool(self.offload and self.offload.degraded)
        report.phase_timings = self.timers.to_dict()
        result = RunResult(
            state=ad.state,
            steps=steps,
            energy_history=energy_history,
            dt_history=dt_history,
            workload=ad.inner.workload,
            reached_t_final=ad.state.t >= t_final - 1e-12,
        )
        return ResilientRunResult(result=result, report=report)
