"""Recovery policies: retry-with-backoff, GPU->CPU fallback, rank exclusion.

`RecoveryPolicy` maps a fault to an action; `GpuOffloadPricer` applies
that policy to the per-step corner-force offload, re-pricing a degraded
step on the OpenMP CPU path with the hybrid executor when the simulated
device keeps failing. Physics is never touched here — the same numpy
state marches on either path (the reproduction's CPU and GPU corner
forces are the same batched contraction) — but the time/power ledger
changes, which is exactly the trade-off the paper's fault-tolerance
argument is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.faults import (
    GPUKernelFault,
    InjectedFault,
    PCIeTransferFault,
    RankFailure,
)

__all__ = [
    "BackoffPolicy",
    "RecoveryAction",
    "RecoveryPolicy",
    "StepPricing",
    "GpuOffloadPricer",
    "ResilienceExhausted",
]

# RK2Avg stages per time step (each stage is one corner-force offload).
_STAGES = 2


class ResilienceExhausted(RuntimeError):
    """The policy ran out of recovery options (retries, rollbacks, ranks)."""


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential retry backoff for transient device faults."""

    max_retries: int = 2
    base_delay_s: float = 1e-3
    multiplier: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_s < 0 or self.multiplier < 1.0:
            raise ValueError("invalid backoff parameters")

    def delay_s(self, attempt: int) -> float:
        """Delay before retry number `attempt` (0-based)."""
        return self.base_delay_s * self.multiplier**attempt


@dataclass(frozen=True)
class RecoveryAction:
    """What the policy decided: retry / fallback / exclude-rank / rollback."""

    kind: str
    delay_s: float = 0.0
    rank: int | None = None


class RecoveryPolicy:
    """Maps faults to recovery actions.

    Device faults (GPU kernel, PCIe) are retried `retry.max_retries`
    times with backoff, then answered with GPU->CPU fallback; sticky
    faults skip straight to fallback (the device is gone). Rank failures
    degrade the distributed solver by excluding the dead rank. Watchdog
    violations roll back to the last checkpoint, up to `max_rollbacks`
    times.
    """

    def __init__(
        self,
        retry: BackoffPolicy | None = None,
        allow_fallback: bool = True,
        allow_rank_exclusion: bool = True,
        max_rollbacks: int = 8,
    ):
        self.retry = retry or BackoffPolicy()
        self.allow_fallback = allow_fallback
        self.allow_rank_exclusion = allow_rank_exclusion
        if max_rollbacks < 0:
            raise ValueError("max_rollbacks must be non-negative")
        self.max_rollbacks = max_rollbacks

    def for_device_fault(self, fault: InjectedFault, attempt: int) -> RecoveryAction:
        if not isinstance(fault, (GPUKernelFault, PCIeTransferFault)):
            raise TypeError(f"not a device fault: {fault!r}")
        if not fault.sticky and attempt < self.retry.max_retries:
            return RecoveryAction("retry", delay_s=self.retry.delay_s(attempt))
        if self.allow_fallback:
            return RecoveryAction("fallback")
        raise ResilienceExhausted(
            f"device fault not recoverable (fallback disabled): {fault}"
        )

    def for_rank_failure(self, fault: RankFailure, nranks: int) -> RecoveryAction:
        if self.allow_rank_exclusion and nranks > 1:
            return RecoveryAction("exclude-rank", rank=fault.rank)
        raise ResilienceExhausted(
            f"rank failure not recoverable with {nranks} rank(s): {fault}"
        )

    def for_violation(self, rollbacks_so_far: int) -> RecoveryAction:
        if rollbacks_so_far >= self.max_rollbacks:
            raise ResilienceExhausted(
                f"exceeded max_rollbacks={self.max_rollbacks}; state cannot be repaired"
            )
        return RecoveryAction("rollback")


@dataclass
class StepPricing:
    """Time/energy verdict for one step's corner-force offload."""

    mode: str  # "hybrid" | "cpu-fallback"
    time_s: float
    energy_j: float
    retries: int = 0
    fellback: bool = False
    penalty_s: float = 0.0


class GpuOffloadPricer:
    """Per-step offload pricing with fault recovery.

    Each step nominally ships both RK2Avg stages' corner forces to the
    simulated GPU (kernels through `SimulatedGPU`, state vectors over
    `PCIeModel` — both instrumented fault sites). On an injected fault
    the policy first retries with backoff (the device idles through the
    delay, burning idle power), then falls back to the OpenMP CPU path:
    the step is re-priced at the CPU-only step time and package power of
    the same `HybridExecutor` workload. A sticky fault marks the device
    dead and every later step prices degraded without re-probing.
    """

    def __init__(self, executor, injector=None, policy: RecoveryPolicy | None = None,
                 seed: int = 0):
        from repro.gpu.device import SimulatedGPU
        from repro.gpu.pcie import PCIeModel
        from repro.kernels.registry import corner_force_costs

        if executor.gpu is None:
            raise ValueError("offload pricing requires an executor with a GPU")
        self.executor = executor
        self.policy = policy or RecoveryPolicy()
        self.device = SimulatedGPU(executor.gpu, seed=seed, fault_injector=injector)
        self.pcie = PCIeModel(executor.gpu, fault_injector=injector)
        self.cf_costs = list(corner_force_costs(executor.cfg, executor.implementation))
        self.plan = PCIeModel.state_vectors_plan(
            executor.cfg.kinematic_ndof_estimate,
            executor.cfg.nzones * executor.cfg.ndof_thermo_zone,
            executor.cfg.dim,
        )
        hyb = executor.hybrid()
        cpu = executor.cpu_only()
        self.hybrid_step_s = hyb.step.total_s
        self.hybrid_power_w = hyb.total_power_w
        self.cpu_step_s = cpu.step.total_s
        self.cpu_power_w = cpu.total_power_w
        self.degraded = False

    def _cpu_pricing(self, retries: int, penalty_s: float) -> StepPricing:
        t = self.cpu_step_s + penalty_s
        return StepPricing(
            "cpu-fallback", t, self.cpu_power_w * self.cpu_step_s
            + self.executor.gpu.idle_w * penalty_s,
            retries=retries, fellback=True, penalty_s=penalty_s,
        )

    def price_step(self) -> StepPricing:
        """Price one step's offload, applying the recovery policy."""
        if self.degraded:
            return self._cpu_pricing(retries=0, penalty_s=0.0)
        retries = 0
        attempt = 0
        penalty_s = 0.0
        while True:
            try:
                self.device.run_phase(
                    self.cf_costs * _STAGES, concurrent_clients=self.executor.nmpi
                )
                self.pcie.transfer_time_s(self.plan.total, ncalls=5)
                t = self.hybrid_step_s + penalty_s
                return StepPricing(
                    "hybrid", t, self.hybrid_power_w * self.hybrid_step_s
                    + self.executor.gpu.idle_w * penalty_s,
                    retries=retries, penalty_s=penalty_s,
                )
            except (GPUKernelFault, PCIeTransferFault) as fault:
                action = self.policy.for_device_fault(fault, attempt)
                attempt += 1
                if action.kind == "retry":
                    retries += 1
                    penalty_s += action.delay_s
                    self.device.idle(action.delay_s)
                    continue
                # fallback: re-execute this step on the CPU path; a
                # sticky fault means the device is gone for good.
                if fault.sticky:
                    self.degraded = True
                return self._cpu_pricing(retries, penalty_s)
