"""`repro.service`: fault-tolerant simulation fleet.

A job queue + worker pool over the `repro.api` facade that turns many
concurrent run requests into a managed fleet: bounded admission with
load shedding, per-job deadlines with backoff + deterministic jitter,
per-backend circuit breaking fed by the resilience layer's fault
signals, a crash-safe write-ahead journal with exactly-once recovery,
content-addressed result reuse, and a fleet-wide telemetry rollup.

Quickstart::

    from repro.service import SimulationFleet, FleetConfig

    with SimulationFleet(FleetConfig(workers=2),
                         journal_path="fleet/journal.jsonl") as fleet:
        handles = [fleet.submit("sedov", zones=6, t_final=0.05)
                   for _ in range(8)]
        results = [h.wait() for h in handles]
        print(fleet.rollup())
"""

from repro.service.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerOpenError,
    CircuitBreaker,
)
from repro.service.fleet import FleetConfig, RetryPolicy, SimulationFleet
from repro.service.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    DeadlineExceeded,
    JobHandle,
    JobResult,
    JobSpec,
    state_digest,
)
from repro.service.journal import (
    JobJournal,
    JournalCorruptionError,
    RecoveredState,
    ResultStore,
    recover,
)
from repro.service.queue import AdmissionError, JobQueue, QueueConfig

__all__ = [
    "SimulationFleet",
    "FleetConfig",
    "RetryPolicy",
    "JobSpec",
    "JobResult",
    "JobHandle",
    "JOB_STATES",
    "TERMINAL_STATES",
    "DeadlineExceeded",
    "state_digest",
    "AdmissionError",
    "JobQueue",
    "QueueConfig",
    "CircuitBreaker",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerOpenError",
    "JobJournal",
    "JournalCorruptionError",
    "RecoveredState",
    "ResultStore",
    "recover",
]
