"""Bounded priority queue with admission control and load shedding.

The fleet is only as healthy as what it agrees to take on. `JobQueue`
is a bounded, priority-ordered queue whose `submit` is an *admission
decision*, not a blind append:

* **bounded depth** — beyond `max_depth` the queue refuses work with a
  typed `AdmissionError` carrying a retry-after hint derived from the
  observed service rate (EWMA of job wall time / worker count), so a
  client knows *when* capacity is expected, not just that there is none;
* **priority shedding** — a higher-priority arrival may displace the
  lowest-priority queued job instead of being rejected; the displaced
  job is returned to the fleet, which marks it shed (its handle
  terminates with status "shed" and the journal records it);
* **doomed-work rejection** — under load, a job whose per-attempt
  deadline is below the observed service time is rejected up front:
  accepting it would burn a worker on work that cannot finish in time.

Within a priority level the queue is FIFO (submission order), so equal
work is served fairly.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass

from repro.service.jobs import JobHandle, JobSpec
from repro.errors import ReproError

__all__ = ["AdmissionError", "QueueConfig", "JobQueue"]


class AdmissionError(ReproError, RuntimeError):
    """The queue refused a job; `retry_after_s` hints when to try again."""

    def __init__(self, message: str, retry_after_s: float = 0.0,
                 reason: str = "queue-full"):
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.reason = reason


@dataclass(frozen=True)
class QueueConfig:
    """Admission policy knobs.

    max_depth : queued (not yet running) jobs the fleet will hold.
    shed_lower_priority : on a full queue, let a strictly
        higher-priority arrival displace the lowest-priority queued job
        (which is shed) instead of rejecting the arrival.
    reject_doomed : when the queue is at least half full, reject jobs
        whose per-attempt deadline is below the EWMA service time —
        they would time out anyway.
    default_service_s : service-time prior before any job completes.
    ewma_alpha : weight of the newest observation in the service EWMA.
    """

    max_depth: int = 64
    shed_lower_priority: bool = True
    reject_doomed: bool = True
    default_service_s: float = 0.5
    ewma_alpha: float = 0.3

    def __post_init__(self):
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.default_service_s <= 0:
            raise ValueError("default_service_s must be positive")


class _Entry:
    """Heap node: highest priority first, FIFO within a priority."""

    __slots__ = ("seq", "spec", "handle", "cancelled", "recovered")

    def __init__(self, seq: int, spec: JobSpec, handle: JobHandle,
                 recovered: bool = False):
        self.seq = seq
        self.spec = spec
        self.handle = handle
        self.cancelled = False
        self.recovered = recovered

    @property
    def sort_key(self):
        return (-self.spec.priority, self.seq)

    def __lt__(self, other: "_Entry") -> bool:
        return self.sort_key < other.sort_key


class JobQueue:
    """Thread-safe bounded priority queue (see module docstring)."""

    def __init__(self, config: QueueConfig | None = None, workers: int = 1):
        self.config = config or QueueConfig()
        self.workers = max(workers, 1)
        self._heap: list[_Entry] = []
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._closed = False
        self._ewma_service_s = self.config.default_service_s
        self._observations = 0

    # -- service-rate model --------------------------------------------------

    @property
    def ewma_service_s(self) -> float:
        """EWMA of observed per-job wall time (the admission clock)."""
        return self._ewma_service_s

    def observe_service(self, wall_s: float) -> None:
        """Fold one completed job's wall time into the service EWMA."""
        if wall_s < 0:
            return
        with self._cond:
            a = self.config.ewma_alpha
            self._ewma_service_s = a * wall_s + (1 - a) * self._ewma_service_s
            self._observations += 1

    def estimated_wait_s(self, backlog_extra: int = 0) -> float:
        """Expected queue wait: backlog x service time / workers."""
        depth = len(self._heap) + backlog_extra
        return depth * self._ewma_service_s / self.workers

    # -- admission ----------------------------------------------------------

    def submit(self, spec: JobSpec, handle: JobHandle,
               force: bool = False, recovered: bool = False) -> _Entry | None:
        """Admit a job, or raise `AdmissionError`.

        Returns the *displaced* entry when priority shedding evicted a
        lower-priority job to make room (the caller owns marking it
        shed), else None. `force=True` bypasses admission control —
        used for journal recovery, where the jobs were already admitted
        by a previous incarnation of the fleet and re-rejecting them
        would violate exactly-once.
        """
        with self._cond:
            if self._closed:
                raise AdmissionError(
                    f"job {spec.job_id} rejected: fleet is shutting down",
                    retry_after_s=0.0, reason="closed",
                )
            cfg = self.config
            displaced: _Entry | None = None
            if not force:
                live = [e for e in self._heap if not e.cancelled]
                if (
                    cfg.reject_doomed
                    and spec.deadline_s is not None
                    and len(live) * 2 >= cfg.max_depth
                    and spec.deadline_s < self._ewma_service_s
                ):
                    raise AdmissionError(
                        f"job {spec.job_id} rejected: deadline "
                        f"{spec.deadline_s:.3g}s is below the observed "
                        f"service time {self._ewma_service_s:.3g}s — it "
                        "would time out in queue; retry with a larger "
                        "deadline or after the backlog drains",
                        retry_after_s=self.estimated_wait_s(),
                        reason="doomed-deadline",
                    )
                if len(live) >= cfg.max_depth:
                    victim = max(live) if cfg.shed_lower_priority else None
                    if victim is not None and spec.priority > victim.spec.priority:
                        victim.cancelled = True  # lazily removed from the heap
                        displaced = victim
                    else:
                        raise AdmissionError(
                            f"job {spec.job_id} rejected: queue full "
                            f"({len(live)}/{cfg.max_depth}); retry in "
                            f"~{self.estimated_wait_s():.2f}s",
                            retry_after_s=self.estimated_wait_s(),
                            reason="queue-full",
                        )
            entry = _Entry(next(self._seq), spec, handle, recovered=recovered)
            heapq.heappush(self._heap, entry)
            self._cond.notify()
            return displaced

    # -- consumption --------------------------------------------------------

    def get(self, timeout: float | None = None) -> _Entry | None:
        """Pop the highest-priority entry; None when closed and drained
        (or on timeout). Cancelled entries are skipped and dropped."""
        with self._cond:
            while True:
                while self._heap and self._heap[0].cancelled:
                    heapq.heappop(self._heap)
                if self._heap:
                    return heapq.heappop(self._heap)
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def cancel(self, job_id: str) -> bool:
        """Mark a queued job cancelled; False if not queued (e.g. running)."""
        with self._cond:
            for e in self._heap:
                if e.spec.job_id == job_id and not e.cancelled:
                    e.cancelled = True
                    return True
            return False

    def close(self) -> None:
        """Stop admitting; wake consumers so they can drain and exit."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return sum(1 for e in self._heap if not e.cancelled)
