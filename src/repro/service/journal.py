"""Crash-safe write-ahead job journal + content-addressed result store.

The fleet's durability story, in the same hardening idiom as
`repro.io.checkpoint` and the `TuningCache`:

* `JobJournal` — an append-only JSONL write-ahead log. Every record
  carries a monotonically increasing `seq` and a SHA-256 over its own
  canonical JSON, and every append is flushed (+ fsynced by default)
  before the action it describes proceeds. A crash can tear at most
  the final line, and a torn or bit-flipped line is *detected* on
  replay — skipped with a warning in lenient mode, raised as the typed
  `JournalCorruptionError` in strict mode — never silently trusted.
* `recover` — folds a replayed journal into the fleet's restart state:
  jobs with a `submit` record and no terminal record are pending again
  (a job that was mid-run when the process died re-runs — it never
  completed, so re-running preserves exactly-once), jobs with a
  terminal record are never re-run.
* `ResultStore` — completed results keyed by the job's content key
  (SHA-256 of problem + canonical config + code-version). The final
  state arrays are stored whole (atomic temp + `os.replace`, SHA-256
  inside the archive), so a recovered or repeated job's result is
  *bit-identical* to the original run, verifiably.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.jobs import JobResult, JobSpec
from repro.errors import CorruptionError

__all__ = [
    "JournalCorruptionError",
    "JobJournal",
    "RecoveredState",
    "recover",
    "ResultStore",
]

_HASH_KEY = "sha256"

#: Journal record types. "submit" precedes enqueue (write-ahead), the
#: terminal types are mutually exclusive per job id.
RECORD_TYPES = ("submit", "start", "complete", "fail", "shed", "cancel")
_TERMINAL_TYPES = ("complete", "fail", "shed", "cancel")


class JournalCorruptionError(CorruptionError):
    """A journal line failed to parse or verify (strict mode only)."""


def _record_digest(record: dict) -> str:
    """SHA-256 over the record's canonical JSON, minus the hash field."""
    body = {k: v for k, v in record.items() if k != _HASH_KEY}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True, default=repr).encode()
    ).hexdigest()


class JobJournal:
    """Append-only, self-verifying JSONL write-ahead log."""

    def __init__(self, path: str | Path, strict: bool = False, sync: bool = True):
        self.path = Path(path)
        self.strict = strict
        self.sync = sync
        self._lock = threading.Lock()
        self.recovered_corrupt_lines = 0
        # Continue the sequence from the existing journal (restart).
        self._seq = 0
        if self.path.exists():
            records = self.replay()
            if records:
                self._seq = max(r["seq"] for r in records) + 1

    def append(self, rtype: str, **payload) -> int:
        """Durably append one record; returns its sequence number.

        The write is flushed (and fsynced when `sync`) before
        returning, so the caller may treat the record as stable — this
        is what makes the journal *write-ahead*: the fleet records
        intent (submit) before acting on it (enqueue).
        """
        if rtype not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type '{rtype}'")
        with self._lock:
            record = {"seq": self._seq, "type": rtype, **payload}
            record[_HASH_KEY] = _record_digest(record)
            line = json.dumps(record, sort_keys=True, default=repr)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
                if self.sync:
                    os.fsync(fh.fileno())
            self._seq += 1
            return record["seq"]

    def replay(self) -> list[dict]:
        """Parse + verify every record; see module docstring for the
        lenient (skip + warn) vs strict (raise) corruption contract."""
        if not self.path.exists():
            return []
        records: list[dict] = []
        bad = 0
        for lineno, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
                stored = record.get(_HASH_KEY)
                if stored != _record_digest(record):
                    raise ValueError("record failed its SHA-256 check")
            except (json.JSONDecodeError, ValueError, TypeError) as exc:
                if self.strict:
                    raise JournalCorruptionError(
                        f"journal {self.path} line {lineno} is corrupt: {exc}"
                    ) from exc
                bad += 1
                warnings.warn(
                    f"journal {self.path} line {lineno} is corrupt "
                    f"({exc}); skipping it",
                    stacklevel=2,
                )
                continue
            records.append(record)
        self.recovered_corrupt_lines = bad
        return records


@dataclass
class RecoveredState:
    """What a restarted fleet learns from its journal."""

    #: Submitted jobs with no terminal record, in submission order —
    #: including jobs that were running at the crash (they never
    #: completed; re-running them preserves exactly-once).
    pending: list[JobSpec] = field(default_factory=list)
    #: job_id -> content_key for jobs with a `complete` record; these
    #: are never re-run, their results live in the `ResultStore`.
    completed: dict[str, str] = field(default_factory=dict)
    #: job_ids that had started (a `start` record) but not finished.
    interrupted: list[str] = field(default_factory=list)
    counts: dict = field(default_factory=dict)


def recover(journal: JobJournal) -> RecoveredState:
    """Fold a replayed journal into restart state (see `RecoveredState`)."""
    specs: dict[str, JobSpec] = {}
    order: list[str] = []
    started: set[str] = set()
    terminal: dict[str, str] = {}
    completed: dict[str, str] = {}
    for record in journal.replay():
        rtype = record.get("type")
        job_id = record.get("job_id") or record.get("job", {}).get("job_id")
        if rtype == "submit":
            try:
                spec = JobSpec.from_dict(record["job"])
            except (KeyError, TypeError, ValueError) as exc:
                warnings.warn(
                    f"journal submit record seq={record.get('seq')} does not "
                    f"describe a valid job ({exc}); skipping it",
                    stacklevel=2,
                )
                continue
            specs[spec.job_id] = spec
            order.append(spec.job_id)
        elif rtype == "start" and job_id:
            started.add(job_id)
        elif rtype in _TERMINAL_TYPES and job_id:
            terminal.setdefault(job_id, rtype)  # first terminal wins
            if rtype == "complete":
                completed[job_id] = record.get("content_key", "")
    pending = [
        specs[j] for j in order if j in specs and j not in terminal
    ]
    state = RecoveredState(
        pending=pending,
        completed=completed,
        interrupted=[j for j in order if j in started and j not in terminal],
    )
    state.counts = {
        "submitted": len(order),
        "pending": len(pending),
        "completed": len(completed),
        "interrupted": len(state.interrupted),
        "terminal": len(terminal),
        "corrupt_lines": journal.recovered_corrupt_lines,
    }
    return state


class ResultStore:
    """Content-addressed store of completed results (state included).

    With a `root` directory, results persist as one `.npz` per content
    key with the `repro.io.checkpoint` hardening (atomic temp +
    `os.replace`, SHA-256 inside the archive, typed corruption
    handling). With `root=None` the store is in-memory — same
    interface, no durability (used by journal-less fleets).
    """

    def __init__(self, root: str | Path | None = None, strict: bool = False):
        self.root = Path(root) if root is not None else None
        self.strict = strict
        self._memory: dict[str, tuple[JobResult, object]] = {}
        self._lock = threading.Lock()

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"result_{key}.npz"

    def __contains__(self, key: str) -> bool:
        if self.root is None:
            return key in self._memory
        return self._path(key).exists()

    def put(self, key: str, result: JobResult, state) -> None:
        """Store a completed result under its content key."""
        if self.root is None:
            with self._lock:
                self._memory[key] = (result, state.copy())
            return
        import numpy as np

        from repro.io.checkpoint import payload_digest

        meta = result.to_dict()
        payload = {
            "v": np.asarray(state.v),
            "e": np.asarray(state.e),
            "x": np.asarray(state.x),
            "t": np.asarray(state.t),
            "meta_json": np.asarray(json.dumps(meta, sort_keys=True)),
        }
        payload[_HASH_KEY] = np.asarray(payload_digest(payload))
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_name(f".{path.name}.tmp")
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **payload)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def get(self, key: str) -> tuple[JobResult, object] | None:
        """Load `(result, state)` or None on a miss.

        The stored SHA-256 is verified and the state digest recomputed
        from the loaded arrays, so a served cache hit is provably
        bit-identical to what the original run produced. Corrupt
        archives are a miss (warned) in lenient mode, raised in strict.
        """
        if self.root is None:
            with self._lock:
                hit = self._memory.get(key)
            if hit is None:
                return None
            result, state = hit
            import dataclasses

            return dataclasses.replace(result, cached=True), state.copy()
        path = self._path(key)
        if not path.exists():
            return None
        import zipfile

        import numpy as np

        from repro.hydro.state import HydroState
        from repro.io.checkpoint import payload_digest

        try:
            with np.load(path, allow_pickle=False) as data:
                payload = {k: data[k].copy() for k in data.files}
            stored = str(payload.pop(_HASH_KEY).item())
            if stored != payload_digest(payload):
                raise ValueError("stored SHA-256 does not match the content")
            meta = json.loads(str(payload["meta_json"].item()))
            state = HydroState(
                payload["v"], payload["e"], payload["x"], float(payload["t"])
            )
        except (zipfile.BadZipFile, EOFError, OSError, KeyError,
                ValueError, json.JSONDecodeError) as exc:
            if self.strict:
                raise JournalCorruptionError(
                    f"result archive {path} is corrupt: {exc}"
                ) from exc
            warnings.warn(
                f"result archive {path} is corrupt ({exc}); treating as a "
                "cache miss",
                stacklevel=2,
            )
            return None
        meta["cached"] = True
        return JobResult(**meta), state

    def __len__(self) -> int:
        if self.root is None:
            return len(self._memory)
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("result_*.npz"))
