"""Per-backend circuit breaker: stop sending jobs to a sick device.

A sticky GPU fault degrades *one* run (the `ResilientDriver` swaps
hybrid -> cpu-fused mid-flight, PR 4), but a fleet that keeps admitting
hybrid jobs onto a node whose device keeps dying pays the
retry + mid-run-swap tax on every one of them. The breaker closes that
gap with the classic three-state machine:

* **closed** — jobs flow to the backend; consecutive failures are
  counted, `failure_threshold` of them open the circuit;
* **open** — jobs are rerouted up front (the fleet degrades hybrid
  jobs to cpu-fused before they start, reusing the same
  `swap_backend` arithmetic — physics identical, no device pricing).
  After `cooldown_jobs` rerouted jobs the breaker moves to half-open;
* **half-open** — exactly one probe job is allowed through on the real
  backend. Success closes the circuit (the device recovered); failure
  re-opens it and the cooldown starts over.

The cooldown is counted in *jobs served while open* rather than wall
seconds, which keeps the state machine deterministic under test and
ties recovery probing to actual traffic (a quiet fleet learns nothing
from wall time passing).
"""

from __future__ import annotations
from repro.errors import ReproError

import threading
from dataclasses import dataclass, field

__all__ = ["BreakerConfig", "BreakerOpenError", "CircuitBreaker", "BreakerBoard"]

STATES = ("closed", "open", "half-open")

#: Backend degradation routes: circuit open on the key -> run on the value.
DEGRADE_ROUTES = {"hybrid": "cpu-fused"}


class BreakerOpenError(ReproError, RuntimeError):
    """Raised when a backend is refused and no degrade route exists."""


@dataclass(frozen=True)
class BreakerConfig:
    """failure_threshold consecutive failures open the circuit;
    cooldown_jobs rerouted jobs later, one probe is let through."""

    failure_threshold: int = 3
    cooldown_jobs: int = 2

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_jobs < 1:
            raise ValueError("cooldown_jobs must be >= 1")


@dataclass
class BreakerTransition:
    """One state change, for the fleet trace / rollup."""

    source: str
    target: str
    detail: str = ""


class CircuitBreaker:
    """Three-state breaker for one backend (see module docstring)."""

    def __init__(self, name: str, config: BreakerConfig | None = None):
        self.name = name
        self.config = config or BreakerConfig()
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._denials = 0
        self._probe_inflight = False
        self.transitions: list[BreakerTransition] = []

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _move(self, target: str, detail: str) -> None:
        self.transitions.append(BreakerTransition(self._state, target, detail))
        self._state = target

    def allow(self) -> bool:
        """May the next job run on this backend?

        open: counts the denial; after `cooldown_jobs` denials the
        breaker half-opens. half-open: admits exactly one probe; other
        jobs are denied until the probe reports.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                self._denials += 1
                if self._denials >= self.config.cooldown_jobs:
                    self._move("half-open", f"after {self._denials} degraded jobs")
                    self._denials = 0
                    self._probe_inflight = True
                    return True
                return False
            # half-open: one probe at a time.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        """The job ran on the real backend and finished undegraded."""
        with self._lock:
            if self._state == "half-open":
                self._probe_inflight = False
                self._move("closed", "probe succeeded")
            self._consecutive_failures = 0

    def record_failure(self, detail: str = "") -> None:
        """The backend failed under a job (e.g. sticky GPU fault)."""
        with self._lock:
            if self._state == "half-open":
                self._probe_inflight = False
                self._denials = 0
                self._move("open", detail or "probe failed")
                return
            if self._state == "open":
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.config.failure_threshold:
                self._denials = 0
                self._move(
                    "open",
                    detail
                    or f"{self._consecutive_failures} consecutive failures",
                )

    def describe(self) -> dict:
        with self._lock:
            return {
                "backend": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "transitions": [
                    {"from": t.source, "to": t.target, "detail": t.detail}
                    for t in self.transitions
                ],
            }


@dataclass
class BreakerBoard:
    """Per-backend breakers, created lazily on first use."""

    config: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self):
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, backend: str) -> CircuitBreaker:
        with self._lock:
            if backend not in self._breakers:
                self._breakers[backend] = CircuitBreaker(backend, self.config)
            return self._breakers[backend]

    def route(self, backend: str) -> tuple[str, bool, CircuitBreaker | None]:
        """Admission-time routing decision for one job.

        Returns `(effective_backend, degraded, breaker)`. Backends
        without a degrade route are never broken (nothing to reroute
        to), so their breaker is None and they always pass through.
        """
        if backend not in DEGRADE_ROUTES:
            return backend, False, None
        br = self.breaker(backend)
        if br.allow():
            return backend, False, br
        return DEGRADE_ROUTES[backend], True, br

    def describe(self) -> dict:
        with self._lock:
            return {name: br.describe() for name, br in self._breakers.items()}
