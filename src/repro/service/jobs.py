"""Job model for the simulation fleet: specs, handles, results.

A *job* is one `(problem, RunConfig)` run request flowing through the
`repro.service` fleet. `JobSpec` is the immutable, fully serializable
description (what the write-ahead journal records), `JobHandle` the
client-side future returned by `SimulationFleet.submit` (sync `wait` +
async `poll`), and `JobResult` the terminal outcome — including the
SHA-256 digest of the final hydro state, which is what makes
"recovered result is bit-identical" a checkable claim rather than a
slogan.

Jobs are identified two ways:

* `job_id` — unique per submission; the journal's exactly-once
  accounting is per job id (one terminal record each, ever);
* `content_key` — SHA-256 over (problem, canonical config,
  code-version); two submissions with the same key are the *same
  computation*, so a completed result cached under the key satisfies
  later submissions in O(1) (and satisfies journal recovery after a
  crash without re-running).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from dataclasses import dataclass, field

from repro.config import RunConfig
from repro.errors import ConfigError, ReproError

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "DeadlineExceeded",
    "JobSpec",
    "JobResult",
    "JobHandle",
    "state_digest",
]

JOB_STATES = ("pending", "running", "succeeded", "failed", "shed", "cancelled")

#: States a job never leaves. Exactly one terminal journal record is
#: written per job id.
TERMINAL_STATES = ("succeeded", "failed", "shed", "cancelled")


class DeadlineExceeded(ReproError, RuntimeError):
    """An attempt blew its wall-clock budget (retryable: the budget
    grows by `RetryPolicy.deadline_growth` per attempt)."""


def state_digest(state) -> str:
    """SHA-256 over the hydro state's arrays + time (bit-identity check)."""
    import numpy as np

    h = hashlib.sha256()
    for arr in (state.v, state.e, state.x):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    h.update(repr(float(state.t)).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One immutable run request.

    `deadline_s` is the wall-clock budget of a single attempt; the
    fleet's retry policy multiplies it per retry (deadline extension),
    so a transiently slow job times out, backs off, and still
    completes. `max_attempts` bounds execution attempts (first try
    included).
    """

    problem: str
    config: RunConfig = field(default_factory=RunConfig)
    priority: int = 0
    deadline_s: float | None = None
    max_attempts: int = 3
    job_id: str = ""

    def __post_init__(self):
        if not isinstance(self.config, RunConfig):
            raise TypeError("config must be a RunConfig")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError("deadline_s must be positive")

    def content_key(self) -> str:
        """SHA-256 of (problem, canonical config, code-version).

        Identifies the *computation*: identical keys mean identical
        results, so the fleet's result store answers repeats in O(1)
        and journal recovery can reuse completed work bit-identically.
        A code-version bump invalidates every cached result.
        """
        from repro.version import __version__

        payload = json.dumps(
            {
                "problem": self.problem,
                "config": dataclasses.asdict(self.config),
                "version": __version__,
            },
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> dict:
        """JSON-serializable form (what the journal records)."""
        return {
            "problem": self.problem,
            "config": dataclasses.asdict(self.config),
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "max_attempts": self.max_attempts,
            "job_id": self.job_id,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        return cls(
            problem=d["problem"],
            config=RunConfig(**d["config"]),
            priority=int(d.get("priority", 0)),
            deadline_s=d.get("deadline_s"),
            max_attempts=int(d.get("max_attempts", 3)),
            job_id=d.get("job_id", ""),
        )


@dataclass
class JobResult:
    """Terminal outcome of one job."""

    job_id: str
    status: str
    problem: str = ""
    content_key: str = ""
    steps: int = 0
    t_final: float = 0.0
    energy_initial: float = 0.0
    energy_final: float = 0.0
    state_sha256: str = ""
    wall_s: float = 0.0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    backend: str = ""
    #: The job ran on a degraded backend: either the breaker rerouted
    #: it pre-admission (hybrid circuit open -> cpu-fused) or a sticky
    #: GPU fault swapped the backend mid-run.
    degraded: bool = False
    #: Result served from the content-addressed store without running.
    cached: bool = False
    #: Executed on a warm pooled solver (reused workspace/backend).
    warm: bool = False
    joules: float | None = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "succeeded"

    @property
    def energy_drift(self) -> float:
        return self.energy_final - self.energy_initial

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class JobHandle:
    """Client-side future for one submitted job.

    `poll()` is the async surface (non-blocking status read), `wait()`
    the sync one (blocks until the job reaches a terminal state). The
    fleet finishes the handle exactly once — including for jobs that
    were shed, cancelled, recovered from the journal, or satisfied from
    the result cache.
    """

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._status = "pending"
        self._result: JobResult | None = None
        self._attempts = 0

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    def poll(self) -> str:
        """Current state (non-blocking): one of `JOB_STATES`."""
        with self._lock:
            return self._status

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def result(self) -> JobResult | None:
        """The terminal result, or None while the job is in flight."""
        with self._lock:
            return self._result

    def wait(self, timeout: float | None = None) -> JobResult:
        """Block until terminal; raises TimeoutError if `timeout` expires."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} not finished within {timeout}s "
                f"(status: {self.poll()})"
            )
        assert self._result is not None
        return self._result

    # -- fleet-side transitions (package-internal) --------------------------

    def _mark_running(self, attempt: int) -> None:
        with self._lock:
            self._status = "running"
            self._attempts = attempt

    def _finish(self, result: JobResult) -> None:
        with self._lock:
            if self._result is not None:  # exactly-once: first finish wins
                return
            self._status = result.status
            self._result = result
        self._event.set()
