"""`SimulationFleet`: the fault-tolerant many-job execution pool.

One fleet accepts many concurrent run requests
(`submit(problem, config) -> JobHandle`), executes them on a pool of
workers (threads, or inline with `workers=0` + `process()` for
deterministic drains), and makes every failure mode a first-class
behavior:

* **admission control** — `repro.service.queue.JobQueue`: bounded
  priority queue, typed `AdmissionError` with a retry-after hint,
  priority shedding, doomed-deadline rejection;
* **deadlines + retry** — each attempt has a wall budget
  (`JobSpec.deadline_s`, grown by `RetryPolicy.deadline_growth` per
  retry); failures back off exponentially with *deterministic* jitter
  (hashed from job id + attempt, so replays are reproducible);
* **circuit breaking** — `repro.service.breaker`: after K jobs end
  with a sticky-GPU degradation the hybrid circuit opens and jobs are
  rerouted to cpu-fused up front (same `swap_backend` arithmetic the
  resilience layer uses mid-run), with half-open probing to restore;
* **crash-safe journaling** — every submission is journaled before it
  is enqueued and every terminal state journaled exactly once;
  completed results are stored by content key, so a restarted fleet
  (`journal_path` + `resume=True`) re-runs only what never finished
  and serves what did bit-identically from the store;
* **warm state** — non-resilient jobs run on pooled
  `LagrangianHydroSolver`s (`solver.reset()` between jobs), reusing
  spaces, mass matrices, workspaces, and executor processes; hybrid
  jobs share one device-fingerprinted `TuningCache`, so the first job
  pays tuning and the rest warm-start.

`rollup()` aggregates fleet telemetry (jobs/s, latency percentiles,
joules per metered job, shed/retried/degraded counts); the
`repro.telemetry.FleetManifest` wraps it for export next to the
per-run `RunManifest`.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field, replace

from repro.config import RunConfig
from repro.service.breaker import BreakerBoard, BreakerConfig
from repro.service.jobs import (
    DeadlineExceeded,
    JobHandle,
    JobResult,
    JobSpec,
    state_digest,
)
from repro.service.journal import JobJournal, ResultStore, recover
from repro.service.queue import AdmissionError, JobQueue, QueueConfig

__all__ = ["RetryPolicy", "FleetConfig", "SimulationFleet"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter + deadline growth.

    The jitter is hashed from (job id, attempt): two fleets replaying
    the same journal back off identically, yet distinct jobs retrying
    after a shared incident decorrelate — the fleet-scale version of
    the seeded determinism used everywhere else in this repo.
    """

    base_delay_s: float = 0.002
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.5
    #: Per-retry multiplier on the attempt deadline: a timed-out job
    #: re-enters the pool with a relaxed budget instead of looping on a
    #: budget it already proved too small.
    deadline_growth: float = 2.0

    def __post_init__(self):
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0 or self.deadline_growth < 1.0:
            raise ValueError("multiplier and deadline_growth must be >= 1")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")

    def delay_s(self, job_id: str, attempt: int) -> float:
        base = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
        h = int.from_bytes(
            hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()[:4], "big"
        )
        return base * (1.0 + self.jitter * h / 0xFFFFFFFF)

    def attempt_deadline_s(self, spec: JobSpec, attempt: int) -> float | None:
        if spec.deadline_s is None:
            return None
        return spec.deadline_s * self.deadline_growth**attempt


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet needs beyond its storage paths."""

    workers: int = 2
    queue: QueueConfig = field(default_factory=QueueConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Warm solvers kept per (problem, config) shape; 0 disables reuse.
    warm_pool_size: int = 4
    #: Serve repeated (problem, config, code-version) submissions from
    #: the result store in O(1) instead of re-running.
    reuse_results: bool = True

    def __post_init__(self):
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.warm_pool_size < 0:
            raise ValueError("warm_pool_size must be non-negative")


def _warm_key(spec: JobSpec) -> tuple:
    """Solver-shape key: jobs sharing it can share a pooled solver.

    The (mesh, workers) part of the key is what keeps a persistent
    worker pool alive across jobs — a pooled cpu-parallel solver carries
    its forked `ZoneParallelExecutor`, so the next job with the same
    fingerprint dispatches into already-warm workers. The rank fields do
    the same for distributed solvers (partition + communicator + plan).
    """
    cfg = spec.config
    return (
        spec.problem, cfg.dim, cfg.order, cfg.zones, cfg.integrator,
        cfg.quad_points_1d, cfg.cfl, cfg.pcg_tol, cfg.pcg_maxiter,
        cfg.resolved_backend, cfg.workers, cfg.hybrid_device,
        cfg.tuning_cache, cfg.tune_period_steps, cfg.energy_every,
        cfg.record_dt_history,
        cfg.ranks, cfg.overlap, cfg.rank_step, cfg.rank_schedule,
    )


class _WarmPool:
    """Bounded cache of reusable solvers keyed by problem/config shape.

    Pooled solvers share the fleet's arena: a solver evicted from the
    pool hands its workspace leases back (`release_workspaces`), so the
    next solver built for a *different* mesh size re-leases the same
    blocks from the free lists instead of allocating — zero-allocation
    discipline survives both `solver.reset()` reuse and shape churn.
    """

    def __init__(self, size: int, arena=None):
        self.size = size
        self.arena = arena
        self._lock = threading.Lock()
        self._pool: dict[tuple, list] = {}
        self._count = 0

    def acquire(self, key: tuple):
        with self._lock:
            stack = self._pool.get(key)
            if stack:
                self._count -= 1
                return stack.pop()
            return None

    def _retire(self, solver) -> None:
        solver.close()
        release = getattr(solver, "release_workspaces", None)
        if release is not None:
            release()

    def release(self, key: tuple, solver) -> None:
        with self._lock:
            if self._count < self.size:
                self._pool.setdefault(key, []).append(solver)
                self._count += 1
                return
        self._retire(solver)

    def close(self) -> None:
        with self._lock:
            for stack in self._pool.values():
                for solver in stack:
                    self._retire(solver)
            self._pool.clear()
            self._count = 0


def _tuning_info(scheduler_or_report) -> dict | None:
    """Compact campaign identity from a scheduler (or its report)."""
    report = getattr(scheduler_or_report, "report", scheduler_or_report)
    if report is None:
        return None
    return {
        "objective": report.objective,
        "strategy": report.strategy,
        "evaluations": report.evaluations,
        "warm_started": report.warm_started,
    }


@dataclass
class _Outcome:
    """What one successful execution attempt produced."""

    steps: int
    t: float
    energy_initial: float
    energy_final: float
    state: object
    backend: str
    warm: bool = False
    hybrid_failed: bool = False
    joules: float | None = None
    #: in-band tuning campaign identity (objective/strategy/evaluations/
    #: warm_started), when the job ran the hybrid scheduler.
    tuning: dict | None = None


class SimulationFleet:
    """Fault-tolerant job fleet over `repro.api` (see module docstring).

    Parameters
    ----------
    config : `FleetConfig` (workers, queue, breaker, retry policies).
    journal_path : write-ahead journal location; None = no durability.
    results_dir : result-store directory; defaults to
        `<journal dir>/results` when journaling, else in-memory.
    tuning_cache : shared `TuningCache` JSON path injected into every
        hybrid job that doesn't name its own — the fleet's warm tuning
        state, preserved across retries and restarts.
    resume : replay the journal on construction, re-admitting pending
        jobs and serving completed ones from the result store.
    start : launch the worker threads (ignored when `workers=0`; call
        `process()` to drain inline).
    tracer : optional `repro.telemetry.Tracer` — fleet lifecycle events
        (admission, shed, degradation, breaker transitions, recovery)
        become instant events on it; they are always recorded in
        `self.events` regardless.
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        journal_path=None,
        results_dir=None,
        tuning_cache=None,
        resume: bool = True,
        start: bool = True,
        tracer=None,
    ):
        from pathlib import Path

        self.config = config or FleetConfig()
        self.journal = (
            JobJournal(journal_path) if journal_path is not None else None
        )
        if results_dir is None and journal_path is not None:
            results_dir = Path(journal_path).parent / "results"
        self.results = ResultStore(results_dir)
        self.tuning_cache = tuning_cache
        self.tracer = tracer if (tracer is None or tracer.enabled) else None
        self.queue = JobQueue(self.config.queue, workers=max(self.config.workers, 1))
        self.breakers = BreakerBoard(self.config.breaker)
        self.events: list[dict] = []
        self.handles: dict[str, JobHandle] = {}
        self.recovered: list[JobHandle] = []

        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._inflight = 0
        self._idle = threading.Condition(self._lock)
        self._closed = False
        self._killed = False
        from repro.runtime.arena import Arena

        self._arena = Arena(name="fleet")
        self._warm = _WarmPool(self.config.warm_pool_size, arena=self._arena)
        self._stats = {
            "submitted": 0, "completed": 0, "failed": 0, "shed": 0,
            "cancelled": 0, "cached": 0, "degraded": 0, "retries": 0,
            "timeouts": 0, "warm_hits": 0, "recovered": 0,
            "tuning_campaigns": 0, "tuning_warm_starts": 0,
        }
        self._latencies: list[float] = []
        self._joules: list[float] = []
        self._tuning_last: dict | None = None
        self._first_activity: float | None = None
        self._last_activity: float | None = None
        self._threads: list[threading.Thread] = []

        if resume and self.journal is not None:
            self._recover()
        if start and self.config.workers > 0:
            self.start()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Launch the worker threads (idempotent)."""
        if self._threads or self.config.workers == 0:
            return
        for i in range(self.config.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"fleet-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def __enter__(self) -> "SimulationFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def process(self, limit: int | None = None) -> int:
        """Drain the queue inline on the calling thread (workers=0 mode).

        Executes up to `limit` jobs (all queued jobs when None) in
        strict priority order and returns the count executed. This is
        the deterministic path: no thread interleaving, so tests and
        the `repro serve` CLI get reproducible schedules.
        """
        done = 0
        while limit is None or done < limit:
            entry = self.queue.get(timeout=0.0)
            if entry is None:
                break
            self._run_entry(entry)
            done += 1
        return done

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting and wait for queued + running jobs to finish."""
        self.queue.close()
        if self.config.workers == 0:
            self.process()
            return True
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while len(self.queue) > 0 or self._inflight > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining if remaining is not None else 0.5)
        return True

    def shutdown(self, wait: bool = True, timeout: float | None = None) -> None:
        """Graceful stop: drain (when `wait`), stop workers, release
        warm solvers. Safe to call twice."""
        if self._closed:
            return
        if wait:
            self.drain(timeout=timeout)
        self._closed = True
        self.queue.close()
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads.clear()
        self._warm.close()
        self._event("fleet_shutdown", drained=wait)

    def kill(self) -> None:
        """Hard stop *without* drain — the test double for a crash.

        Queued jobs stay pending in the journal (their handles never
        finish); a new fleet constructed on the same `journal_path`
        recovers them. Workers finish their in-flight job (threads
        cannot be preempted) and exit.
        """
        self._killed = True
        self._closed = True
        self.queue.close()
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads.clear()
        self._warm.close()

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        problem: str,
        config: RunConfig | None = None,
        *,
        priority: int = 0,
        deadline_s: float | None = None,
        max_attempts: int = 3,
        job_id: str | None = None,
        **overrides,
    ) -> JobHandle:
        """Queue one run; returns its `JobHandle` (wait/poll surface).

        Raises `AdmissionError` (typed, with `retry_after_s`) when the
        fleet refuses the work, and `ValueError` for requests that can
        never run (unknown problem, invalid config).
        """
        from repro.api import PROBLEM_NAMES

        if problem not in PROBLEM_NAMES:
            raise ValueError(
                f"unknown problem '{problem}' (choose from {PROBLEM_NAMES})"
            )
        cfg = config or RunConfig()
        if overrides:
            cfg = cfg.replace(**overrides)
        if self.tuning_cache and cfg.resolved_backend == "hybrid" \
                and not cfg.tuning_cache:
            cfg = cfg.replace(tuning_cache=str(self.tuning_cache))
        spec = JobSpec(
            problem=problem,
            config=cfg,
            priority=priority,
            deadline_s=deadline_s,
            max_attempts=max_attempts,
            job_id=job_id or f"job-{next(self._seq):04d}-{uuid.uuid4().hex[:6]}",
        )
        handle = JobHandle(spec)
        with self._lock:
            if spec.job_id in self.handles:
                raise ValueError(f"duplicate job_id '{spec.job_id}'")
            self.handles[spec.job_id] = handle
            self._stats["submitted"] += 1

        # O(1) repeat: an identical computation already completed.
        if self.config.reuse_results:
            hit = self.results.get(spec.content_key())
            if hit is not None:
                result, state = hit
                result = replace(
                    result, job_id=spec.job_id, cached=True, wall_s=0.0,
                    status="succeeded",
                )
                self._journal("submit", job=spec.to_dict())
                self._journal(
                    "complete", job_id=spec.job_id,
                    content_key=spec.content_key(),
                    state_sha256=result.state_sha256, cached=True,
                )
                with self._lock:
                    self._stats["cached"] += 1
                    self._stats["completed"] += 1
                self._event("job_cached", job_id=spec.job_id)
                handle._finish(result)
                return handle

        # Write-ahead: record the admission before acting on it.
        self._journal("submit", job=spec.to_dict())
        try:
            displaced = self.queue.submit(spec, handle)
        except AdmissionError as err:
            self._finish_shed(handle, reason=err.reason)
            raise
        if displaced is not None:
            self._finish_shed(
                displaced.handle,
                reason=f"displaced by higher-priority {spec.job_id}",
            )
        self._event("job_admitted", job_id=spec.job_id, priority=priority)
        return handle

    def cancel(self, handle: JobHandle) -> bool:
        """Cancel a still-queued job; False once it is running/terminal."""
        if not self.queue.cancel(handle.job_id):
            return False
        self._journal("cancel", job_id=handle.job_id)
        with self._lock:
            self._stats["cancelled"] += 1
        handle._finish(JobResult(job_id=handle.job_id, status="cancelled",
                                 problem=handle.spec.problem))
        self._event("job_cancelled", job_id=handle.job_id)
        return True

    def wait_all(self, timeout: float | None = None) -> list[JobResult]:
        """Wait for every submitted job; returns their results."""
        deadline = None if timeout is None else time.monotonic() + timeout
        results = []
        for handle in list(self.handles.values()):
            remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
            results.append(handle.wait(remaining))
        return results

    # -- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        state = recover(self.journal)
        for spec in state.pending:
            handle = JobHandle(spec)
            self.handles[spec.job_id] = handle
            self.recovered.append(handle)
            with self._lock:
                self._stats["recovered"] += 1
                self._stats["submitted"] += 1
            key = spec.content_key()
            hit = self.results.get(key) if self.config.reuse_results else None
            if hit is not None:
                # The same computation completed before the crash under
                # another job id — serve it bit-identically, don't re-run.
                result, _state = hit
                result = replace(result, job_id=spec.job_id, cached=True,
                                 status="succeeded", wall_s=0.0)
                self._journal("complete", job_id=spec.job_id, content_key=key,
                              state_sha256=result.state_sha256, cached=True)
                with self._lock:
                    self._stats["cached"] += 1
                    self._stats["completed"] += 1
                handle._finish(result)
                self._event("job_recovered_cached", job_id=spec.job_id)
                continue
            self.queue.submit(spec, handle, force=True, recovered=True)
            self._event("job_recovered", job_id=spec.job_id,
                        interrupted=spec.job_id in state.interrupted)
        if state.counts.get("submitted"):
            self._event("fleet_recovered", **state.counts)

    # -- execution ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            entry = self.queue.get(timeout=0.25)
            if entry is None:
                if self.queue.closed or self._closed:
                    return
                continue
            if self._killed:
                return
            self._run_entry(entry)

    def _run_entry(self, entry) -> None:
        spec, handle = entry.spec, entry.handle
        with self._lock:
            self._inflight += 1
            now = time.monotonic()
            self._first_activity = self._first_activity or now
        try:
            self._execute(spec, handle)
        finally:
            with self._idle:
                self._inflight -= 1
                self._last_activity = time.monotonic()
                self._idle.notify_all()

    def _execute(self, spec: JobSpec, handle: JobHandle) -> None:
        # A queued duplicate whose twin completed while it waited is
        # served from the store — same computation, same bits.
        if self.config.reuse_results:
            hit = self.results.get(spec.content_key())
            if hit is not None:
                result, _state = hit
                result = replace(result, job_id=spec.job_id, cached=True,
                                 status="succeeded", wall_s=0.0)
                self._journal("complete", job_id=spec.job_id,
                              content_key=spec.content_key(),
                              state_sha256=result.state_sha256, cached=True)
                with self._lock:
                    self._stats["cached"] += 1
                    self._stats["completed"] += 1
                handle._finish(result)
                self._event("job_cached", job_id=spec.job_id)
                return
        retry = self.config.retry
        requested = spec.config.resolved_backend
        effective, degraded, breaker = self.breakers.route(requested)
        cfg = spec.config
        if degraded:
            cfg = cfg.replace(backend=effective, workers=0, offload_device=None)
            with self._lock:
                self._stats["degraded"] += 1
            self._event("job_degraded", job_id=spec.job_id,
                        source=requested, target=effective, reason="circuit-open")
        started = time.monotonic()
        retries = timeouts = 0
        last_error = ""
        for attempt in range(spec.max_attempts):
            self._journal("start", job_id=spec.job_id, attempt=attempt)
            handle._mark_running(attempt)
            budget = retry.attempt_deadline_s(spec, attempt)
            t0 = time.perf_counter()
            try:
                outcome = self._run_attempt(spec, cfg)
                wall = time.perf_counter() - t0
                if budget is not None and wall > budget:
                    raise DeadlineExceeded(
                        f"attempt {attempt} took {wall:.3f}s against a "
                        f"{budget:.3f}s deadline"
                    )
            except DeadlineExceeded as exc:
                timeouts += 1
                with self._lock:
                    self._stats["timeouts"] += 1
                last_error = str(exc)
                self._event("job_timeout", job_id=spec.job_id, attempt=attempt)
            except Exception as exc:  # noqa: BLE001 — every failure retries
                last_error = f"{type(exc).__name__}: {exc}"
                self._event("job_attempt_failed", job_id=spec.job_id,
                            attempt=attempt, error=last_error)
            else:
                self._finish_success(
                    spec, handle, outcome, breaker, degraded,
                    attempts=attempt + 1, retries=retries, timeouts=timeouts,
                    wall_s=time.monotonic() - started,
                )
                return
            if attempt + 1 < spec.max_attempts:
                retries += 1
                with self._lock:
                    self._stats["retries"] += 1
                delay = retry.delay_s(spec.job_id, attempt)
                self._event("job_retry", job_id=spec.job_id,
                            attempt=attempt + 1, delay_s=round(delay, 6))
                time.sleep(delay)
        # Out of attempts.
        if breaker is not None and not degraded:
            breaker.record_failure(f"job {spec.job_id} exhausted its attempts")
            self._breaker_events(breaker)
        self._journal("fail", job_id=spec.job_id, error=last_error,
                      attempts=spec.max_attempts)
        with self._lock:
            self._stats["failed"] += 1
        handle._finish(JobResult(
            job_id=spec.job_id, status="failed", problem=spec.problem,
            attempts=spec.max_attempts, retries=retries, timeouts=timeouts,
            backend=cfg.resolved_backend, degraded=degraded,
            wall_s=time.monotonic() - started, error=last_error,
        ))
        self._event("job_failed", job_id=spec.job_id, error=last_error)

    def _run_attempt(self, spec: JobSpec, cfg: RunConfig) -> _Outcome:
        """One execution attempt: warm pooled solver when eligible,
        the full `repro.api.run` composition otherwise."""
        # Distributed jobs are warm-poolable too: `solver.reset()`
        # rewinds the backend (initial partition, fresh comm accounting),
        # so a pooled vectorized-rank solver skips partition/communicator
        # construction on every repeat job.
        warm_ok = (
            self.config.warm_pool_size > 0
            and not cfg.resilient
            and not cfg.telemetry_enabled
            and not (cfg.restore or cfg.vtk or cfg.checkpoint)
        )
        if warm_ok:
            return self._run_warm(spec, cfg)
        return self._run_cold(spec, cfg)

    def _run_warm(self, spec: JobSpec, cfg: RunConfig) -> _Outcome:
        from repro.api import make_problem
        from repro.hydro.solver import LagrangianHydroSolver

        key = _warm_key(replace(spec, config=cfg))
        solver = self._warm.acquire(key)
        warm = solver is not None
        if warm:
            solver.reset()
            with self._lock:
                self._stats["warm_hits"] += 1
        else:
            solver = LagrangianHydroSolver(
                make_problem(spec.problem, cfg), cfg, arena=self._arena
            )
        try:
            result = solver.run(t_final=cfg.t_final)
        except Exception:
            # A solver that threw mid-march is not safely reusable, but
            # its workspace blocks are — hand them back to the arena.
            self._warm._retire(solver)
            raise
        outcome = _Outcome(
            steps=result.steps,
            t=float(result.state.t),
            energy_initial=float(result.energy_history[0].total),
            energy_final=float(result.energy_history[-1].total),
            state=result.state,
            backend=cfg.resolved_backend,
            warm=warm,
            tuning=_tuning_info(getattr(solver, "scheduler", None)),
        )
        self._warm.release(key, solver)
        return outcome

    def _run_cold(self, spec: JobSpec, cfg: RunConfig) -> _Outcome:
        from repro.api import run as api_run

        report = api_run(spec.problem, cfg)
        recovery = report.recovery
        joules = None
        if report.manifest.energy is not None:
            joules = report.manifest.energy.get(
                "total_j", report.manifest.energy.get("attributed_j")
            )
        return _Outcome(
            steps=report.steps,
            t=float(report.state.t),
            energy_initial=float(report.result.energy_history[0].total),
            energy_final=float(report.result.energy_history[-1].total),
            state=report.state,
            backend=cfg.resolved_backend,
            hybrid_failed=bool(recovery is not None and recovery.degraded_final),
            joules=joules,
            tuning=_tuning_info(report.scheduler),
        )

    def _finish_success(self, spec, handle, outcome: _Outcome, breaker,
                        degraded: bool, attempts: int, retries: int,
                        timeouts: int, wall_s: float) -> None:
        if breaker is not None and not degraded:
            # The job ran on the real (possibly probing) backend: its
            # outcome is the breaker's signal.
            if outcome.hybrid_failed:
                breaker.record_failure("sticky GPU fault degraded the run")
            else:
                breaker.record_success()
            self._breaker_events(breaker)
        key = spec.content_key()
        result = JobResult(
            job_id=spec.job_id, status="succeeded", problem=spec.problem,
            content_key=key, steps=outcome.steps, t_final=outcome.t,
            energy_initial=outcome.energy_initial,
            energy_final=outcome.energy_final,
            state_sha256=state_digest(outcome.state),
            wall_s=wall_s, attempts=attempts, retries=retries,
            timeouts=timeouts, backend=outcome.backend,
            degraded=degraded or outcome.hybrid_failed,
            warm=outcome.warm, joules=outcome.joules,
        )
        self.results.put(key, result, outcome.state)
        self._journal("complete", job_id=spec.job_id, content_key=key,
                      state_sha256=result.state_sha256, steps=result.steps)
        with self._lock:
            self._stats["completed"] += 1
            self._latencies.append(wall_s)
            if outcome.joules is not None:
                self._joules.append(outcome.joules)
            if outcome.tuning is not None:
                if outcome.tuning.get("warm_started"):
                    self._stats["tuning_warm_starts"] += 1
                else:
                    self._stats["tuning_campaigns"] += 1
                self._tuning_last = dict(outcome.tuning)
        self.queue.observe_service(wall_s)
        handle._finish(result)
        self._event("job_completed", job_id=spec.job_id, steps=result.steps,
                    degraded=result.degraded, warm=result.warm)

    def _finish_shed(self, handle: JobHandle, reason: str) -> None:
        self._journal("shed", job_id=handle.job_id, reason=reason)
        with self._lock:
            self._stats["shed"] += 1
        handle._finish(JobResult(
            job_id=handle.job_id, status="shed",
            problem=handle.spec.problem, error=reason,
        ))
        self._event("job_shed", job_id=handle.job_id, reason=reason)

    # -- bookkeeping --------------------------------------------------------

    def _journal(self, rtype: str, **payload) -> None:
        if self.journal is not None:
            self.journal.append(rtype, **payload)

    def _event(self, name: str, **meta) -> None:
        self.events.append({"event": name, **meta})
        if self.tracer is not None:
            self.tracer.instant(name, category="service", **meta)

    def _breaker_events(self, breaker) -> None:
        """Mirror new breaker transitions into the fleet event stream."""
        seen = sum(
            1 for e in self.events
            if e["event"] == "breaker_transition" and e["backend"] == breaker.name
        )
        for t in breaker.transitions[seen:]:
            self._event("breaker_transition", backend=breaker.name,
                        source=t.source, target=t.target, detail=t.detail)

    # -- telemetry rollup ---------------------------------------------------

    def rollup(self) -> dict:
        """Fleet-wide telemetry: jobs/s, latency percentiles, joules per
        metered job, shed/retried/degraded counts, breaker states."""

        def pct(sorted_vals, q):
            if not sorted_vals:
                return 0.0
            idx = min(int(q * len(sorted_vals)), len(sorted_vals) - 1)
            return sorted_vals[idx]

        with self._lock:
            stats = dict(self._stats)
            lat = sorted(self._latencies)
            joules = list(self._joules)
            tuning_last = dict(self._tuning_last) if self._tuning_last else None
            span = (
                (self._last_activity - self._first_activity)
                if self._first_activity is not None
                and self._last_activity is not None
                else 0.0
            )
        executed = len(lat)
        return {
            "jobs": stats,
            "throughput_jobs_per_s": executed / span if span > 0 else 0.0,
            "latency_s": {
                "p50": pct(lat, 0.50),
                "p90": pct(lat, 0.90),
                "p99": pct(lat, 0.99),
                "mean": sum(lat) / executed if executed else 0.0,
                "max": lat[-1] if lat else 0.0,
            },
            "energy": {
                "metered_jobs": len(joules),
                "joules_total": sum(joules),
                "joules_per_job": sum(joules) / len(joules) if joules else 0.0,
            },
            "tuning": {
                "campaigns": stats.get("tuning_campaigns", 0),
                "warm_starts": stats.get("tuning_warm_starts", 0),
                "last": tuning_last,
            },
            "breakers": self.breakers.describe(),
            "queue": {
                "depth": len(self.queue),
                "max_depth": self.config.queue.max_depth,
                "ewma_service_s": self.queue.ewma_service_s,
            },
            "arena": self._arena.stats(),
            "results_cached": len(self.results),
        }

    def write_manifest(self, path) -> "object":
        """Export the rollup as a `repro.telemetry.FleetManifest` JSON."""
        from repro.telemetry import FleetManifest

        manifest = FleetManifest.from_rollup(self.rollup())
        manifest.write(path)
        return manifest
