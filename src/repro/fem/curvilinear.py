"""Curvilinear mesh transformations and generators.

BLAST supports "2D (triangles, quads) and 3D (tets, hexes) unstructured
curvilinear meshes". This module provides the standard smooth maps used
to curve Cartesian generator meshes (twists, sinusoidal perturbations)
plus polar generators (annulus/disk sectors) — all composable with
`Mesh.transform`. Each map documents its Jacobian behaviour so tests
can assert validity.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh

__all__ = [
    "twist_2d",
    "sinusoid",
    "stretch",
    "annulus_mesh_2d",
    "apply_to_space",
    "validate_positive_jacobians",
]


def twist_2d(amplitude: float = 0.1):
    """Rotation by an angle growing with radius about the domain centre.

    Keeps det J = 1 pointwise (a pure rotation field composed with the
    identity radial map) for moderate amplitudes.
    """

    def fn(verts: np.ndarray) -> np.ndarray:
        if verts.shape[1] != 2:
            raise ValueError("twist_2d applies to 2D meshes")
        centre = 0.5 * (verts.min(axis=0) + verts.max(axis=0))
        rel = verts - centre
        r = np.linalg.norm(rel, axis=1)
        theta = amplitude * r
        c, s = np.cos(theta), np.sin(theta)
        out = np.empty_like(verts)
        out[:, 0] = centre[0] + c * rel[:, 0] - s * rel[:, 1]
        out[:, 1] = centre[1] + s * rel[:, 0] + c * rel[:, 1]
        return out

    return fn


def sinusoid(amplitude: float = 0.05, waves: int = 1):
    """Displace each coordinate by a sine of the others.

    The classic 'wavy' mesh for exercising curved Jacobians; valid
    (det J > 0) while amplitude * waves * pi < ~0.5 on a unit box.
    """

    def fn(verts: np.ndarray) -> np.ndarray:
        out = verts.copy()
        dim = verts.shape[1]
        k = waves * np.pi
        for d in range(dim):
            other = verts[:, (d + 1) % dim]
            out[:, d] += amplitude * np.sin(k * other)
        return out

    return fn


def stretch(factors) -> callable:
    """Anisotropic axis scaling."""
    factors = np.asarray(factors, dtype=np.float64)
    if np.any(factors <= 0):
        raise ValueError("stretch factors must be positive")

    def fn(verts: np.ndarray) -> np.ndarray:
        if verts.shape[1] != factors.size:
            raise ValueError("factor count must match mesh dimension")
        return verts * factors

    return fn


def annulus_mesh_2d(
    nr: int,
    ntheta: int,
    r_inner: float = 0.5,
    r_outer: float = 1.0,
    angle: float = np.pi / 2,
) -> Mesh:
    """Polar quad mesh of an annulus sector.

    Built by mapping a Cartesian (nr x ntheta) grid through
    (r, theta) -> (r cos theta, r sin theta); zones are genuinely
    curved once equipped with an order >= 2 geometry.
    """
    if nr < 1 or ntheta < 1:
        raise ValueError("need at least one zone per direction")
    if not (0 < r_inner < r_outer):
        raise ValueError("need 0 < r_inner < r_outer")
    if not (0 < angle <= 2 * np.pi):
        raise ValueError("angle must be in (0, 2*pi]")
    from repro.fem.mesh import cartesian_mesh_2d

    base = cartesian_mesh_2d(nr, ntheta, extent=((r_inner, r_outer), (0.0, angle)))

    def polar(verts: np.ndarray) -> np.ndarray:
        r, theta = verts[:, 0], verts[:, 1]
        return np.column_stack([r * np.cos(theta), r * np.sin(theta)])

    curved = base.transform(polar)
    # The polar image is no longer a lexicographic Cartesian grid.
    curved.grid_shape = None
    curved.extent = None
    return curved


def apply_to_space(space, fn) -> None:
    """Curve the *high-order geometry* of an H1 space in place.

    `Mesh.transform` moves only the vertices: high-order nodes are then
    placed by the multilinear map, so edges stay straight. Mapping the
    space's node coordinates directly gives genuinely curved
    (isoparametric) zones — e.g. polar maps become spectrally accurate
    instead of polygonal. Raises if the curved geometry tangles.
    """
    new_coords = np.asarray(fn(space.node_coords.copy()), dtype=np.float64)
    if new_coords.shape != space.node_coords.shape:
        raise ValueError("transform must preserve the node array shape")
    from repro.fem.geometry import GeometryEvaluator
    from repro.fem.quadrature import tensor_quadrature

    quad = tensor_quadrature(space.dim, max(2 * space.order, 2))
    geo = GeometryEvaluator(space, quad).evaluate(new_coords)
    if not geo.check_valid():
        raise ValueError("transform tangles the high-order geometry")
    space.node_coords = new_coords


def validate_positive_jacobians(mesh: Mesh, order: int = 2, quad_points: int | None = None) -> bool:
    """Check the order-`order` geometry of `mesh` is untangled."""
    from repro.fem.geometry import GeometryEvaluator
    from repro.fem.quadrature import tensor_quadrature
    from repro.fem.spaces import H1Space

    space = H1Space(mesh, order)
    quad = tensor_quadrature(mesh.dim, quad_points or 2 * order)
    geo = GeometryEvaluator(space, quad).evaluate(space.node_coords)
    return geo.check_valid()
