"""Tensor-product quadrature rules on the reference zone [0, 1]^dim."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fem.polynomials import gauss_legendre

__all__ = ["QuadratureRule", "tensor_quadrature"]


@dataclass(frozen=True)
class QuadratureRule:
    """A quadrature rule on the reference zone [0,1]^dim.

    Attributes
    ----------
    points : (nqp, dim) array of quadrature point coordinates q_k.
    weights : (nqp,) array of weights alpha_k.
    npts_1d : number of points per dimension (tensor-product structure).
    """

    points: np.ndarray
    weights: np.ndarray
    npts_1d: int
    points_1d: np.ndarray = field(repr=False, default=None)
    weights_1d: np.ndarray = field(repr=False, default=None)

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    @property
    def nqp(self) -> int:
        return self.points.shape[0]

    def __post_init__(self):
        if self.points.ndim != 2:
            raise ValueError("points must be (nqp, dim)")
        if self.weights.shape != (self.points.shape[0],):
            raise ValueError("weights must be (nqp,)")

    @property
    def is_tensor(self) -> bool:
        """True when the rule carries its 1D factor axes (sum-factorizable)."""
        return self.points_1d is not None and self.weights_1d is not None

    def axes_1d(self) -> tuple[np.ndarray, np.ndarray]:
        """The 1D (points, weights) factors; sum-factorization needs these."""
        if not self.is_tensor:
            raise ValueError(
                "quadrature rule has no 1D tensor axes; build it with "
                "tensor_quadrature() to use the sum-factorization path"
            )
        return self.points_1d, self.weights_1d


def tensor_quadrature(dim: int, npts_1d: int) -> QuadratureRule:
    """Gauss-Legendre tensor rule with `npts_1d` points per dimension.

    Point ordering is lexicographic with the *first* coordinate fastest,
    matching the dof ordering of the tensor-product bases so the
    tabulation matrices line up without index gymnastics.
    """
    if dim not in (1, 2, 3):
        raise ValueError("dim must be 1, 2 or 3")
    x1, w1 = gauss_legendre(npts_1d)
    if dim == 1:
        pts = x1[:, None]
        wts = w1
    elif dim == 2:
        X, Y = np.meshgrid(x1, x1, indexing="ij")
        # first coordinate fastest: iterate y outer, x inner
        pts = np.column_stack([X.T.ravel(), Y.T.ravel()])
        WX, WY = np.meshgrid(w1, w1, indexing="ij")
        wts = (WX * WY).T.ravel()
    else:
        X, Y, Z = np.meshgrid(x1, x1, x1, indexing="ij")
        pts = np.column_stack(
            [X.transpose(2, 1, 0).ravel(), Y.transpose(2, 1, 0).ravel(), Z.transpose(2, 1, 0).ravel()]
        )
        WX, WY, WZ = np.meshgrid(w1, w1, w1, indexing="ij")
        wts = (WX * WY * WZ).transpose(2, 1, 0).ravel()
    return QuadratureRule(points=pts, weights=wts, npts_1d=npts_1d, points_1d=x1, weights_1d=w1)
