"""Uniform mesh refinement (h-refinement).

The paper's weak-scaling study refines the mesh one level per 8x node
increase ("one refinement level will make the domain size 8x bigger",
Section 4.3); BLAST delegates this to MFEM at initialization (step 2).
`refine_uniform` splits every quad into 4 / every hex into 8 children,
deduplicating the shared new vertices, and can be applied repeatedly.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh

__all__ = ["refine_uniform", "refinement_levels_for_nodes"]


def _dedup_vertices(verts: np.ndarray, tol: float) -> tuple[np.ndarray, np.ndarray]:
    """Merge coincident vertices; returns (unique_verts, index_map)."""
    keys = np.round(verts / tol).astype(np.int64)
    uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
    out = np.zeros((uniq.shape[0], verts.shape[1]))
    out[inverse] = verts
    return out, inverse


def refine_uniform(mesh: Mesh, levels: int = 1) -> Mesh:
    """Refine every zone into 2^dim children, `levels` times."""
    if levels < 0:
        raise ValueError("levels must be non-negative")
    out = mesh
    for _ in range(levels):
        out = _refine_once(out)
    return out


def _refine_once(mesh: Mesh) -> Mesh:
    dim = mesh.dim
    zc = mesh.zone_vertex_coords()  # (nz, 2^dim, dim)
    # Children are the multilinear images of the 2^dim sub-cubes of the
    # reference element: evaluate the corner lattice at half-steps.
    if dim == 2:
        # Reference corner coordinates of each of the 4 children.
        child_corners = []
        for cy in (0.0, 0.5):
            for cx in (0.0, 0.5):
                corners = [(cx, cy), (cx + 0.5, cy), (cx, cy + 0.5), (cx + 0.5, cy + 0.5)]
                child_corners.append(corners)
        nchild, ncorn = 4, 4

        def shape(pt):
            x, y = pt
            return np.array([(1 - x) * (1 - y), x * (1 - y), (1 - x) * y, x * y])

    elif dim == 3:
        child_corners = []
        for cz in (0.0, 0.5):
            for cy in (0.0, 0.5):
                for cx in (0.0, 0.5):
                    corners = [
                        (cx + dx, cy + dy, cz + dz)
                        for dz in (0.0, 0.5)
                        for dy in (0.0, 0.5)
                        for dx in (0.0, 0.5)
                    ]
                    child_corners.append(corners)
        nchild, ncorn = 8, 8

        def shape(pt):
            x, y, z = pt
            return np.array([
                (1 - x) * (1 - y) * (1 - z), x * (1 - y) * (1 - z),
                (1 - x) * y * (1 - z), x * y * (1 - z),
                (1 - x) * (1 - y) * z, x * (1 - y) * z,
                (1 - x) * y * z, x * y * z,
            ])
    else:
        raise ValueError("refinement supports 2D and 3D meshes")

    # Basis weights of every child corner: (nchild*ncorn, 2^dim).
    weights = np.array([shape(pt) for corners in child_corners for pt in corners])
    new_verts = np.einsum("cw,zwd->zcd", weights, zc).reshape(-1, dim)
    tol = mesh.min_edge_length() * 1e-6
    uniq, index = _dedup_vertices(new_verts, tol)
    zones = index.reshape(mesh.nzones * nchild, ncorn)
    attrs = np.repeat(mesh.zone_attributes, nchild)
    # Children are grouped per parent, so the refined zone ordering is
    # no longer globally lexicographic: drop grid_shape rather than lie
    # to the Cartesian partitioner.
    return Mesh(uniq, zones, attrs, grid_shape=None, extent=mesh.extent)


def refinement_levels_for_nodes(base_nodes: int, target_nodes: int, dim: int = 3) -> int:
    """Levels needed to grow the domain `target/base`-fold (8x per level
    in 3D) — the paper's weak-scaling bookkeeping."""
    if base_nodes < 1 or target_nodes < base_nodes:
        raise ValueError("need target_nodes >= base_nodes >= 1")
    factor = 2**dim
    levels = 0
    n = base_nodes
    while n < target_nodes:
        n *= factor
        levels += 1
    if n != target_nodes:
        raise ValueError(
            f"{target_nodes} is not {base_nodes} x {factor}^k for any integer k"
        )
    return levels
