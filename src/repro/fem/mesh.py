"""Quad/hex meshes for the Lagrangian hydro solver.

BLAST runs on 2D quad and 3D hex (possibly curvilinear) meshes. A `Mesh`
here is the *topology*: vertices and zone connectivity in lexicographic
vertex order. High-order (curved) geometry lives in the H1 space node
coordinates, which move with the fluid; the mesh connectivity is fixed
for the lifetime of a Lagrangian run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["Mesh", "cartesian_mesh_2d", "cartesian_mesh_3d"]


@dataclass
class Mesh:
    """Unstructured quad (2D) or hex (3D) mesh.

    Attributes
    ----------
    verts : (nverts, dim) vertex coordinates.
    zones : (nzones, 2**dim) vertex ids per zone, lexicographic order
        with the x index fastest: 2D (v00, v10, v01, v11); 3D appends the
        z layers (v000, v100, v010, v110, v001, ...).
    zone_attributes : (nzones,) integer material/region tags.
    grid_shape : for generator meshes, the (nx[, ny[, nz]]) zone counts;
        None for genuinely unstructured input.
    """

    verts: np.ndarray
    zones: np.ndarray
    zone_attributes: np.ndarray = None
    grid_shape: tuple[int, ...] | None = None
    extent: tuple[tuple[float, float], ...] | None = field(default=None)

    def __post_init__(self):
        self.verts = np.asarray(self.verts, dtype=np.float64)
        self.zones = np.asarray(self.zones, dtype=np.int64)
        if self.verts.ndim != 2 or self.verts.shape[1] not in (1, 2, 3):
            raise ValueError("verts must be (nverts, dim), dim in {1,2,3}")
        dim = self.verts.shape[1]
        if self.zones.ndim != 2 or self.zones.shape[1] != 2**dim:
            raise ValueError(f"zones must be (nzones, {2**dim}) for dim={dim}")
        if self.zones.size and (self.zones.min() < 0 or self.zones.max() >= self.verts.shape[0]):
            raise ValueError("zone vertex index out of range")
        if self.zone_attributes is None:
            self.zone_attributes = np.zeros(self.zones.shape[0], dtype=np.int64)
        else:
            self.zone_attributes = np.asarray(self.zone_attributes, dtype=np.int64)
            if self.zone_attributes.shape != (self.zones.shape[0],):
                raise ValueError("zone_attributes must be (nzones,)")

    @property
    def dim(self) -> int:
        return self.verts.shape[1]

    @property
    def nverts(self) -> int:
        return self.verts.shape[0]

    @property
    def nzones(self) -> int:
        return self.zones.shape[0]

    def zone_vertex_coords(self) -> np.ndarray:
        """(nzones, 2**dim, dim) coordinates of each zone's vertices."""
        return self.verts[self.zones]

    def min_edge_length(self) -> float:
        """Shortest vertex-to-vertex edge (sets geometric hash tolerance)."""
        zc = self.zone_vertex_coords()
        dim = self.dim
        best = np.inf
        # Edges of the reference square/cube in lexicographic vertex order.
        if dim == 1:
            pairs = [(0, 1)]
        elif dim == 2:
            pairs = [(0, 1), (2, 3), (0, 2), (1, 3)]
        else:
            pairs = [
                (0, 1), (2, 3), (4, 5), (6, 7),
                (0, 2), (1, 3), (4, 6), (5, 7),
                (0, 4), (1, 5), (2, 6), (3, 7),
            ]
        for a, b in pairs:
            d = np.linalg.norm(zc[:, a] - zc[:, b], axis=1)
            m = d.min() if d.size else np.inf
            best = min(best, float(m))
        return best

    def transform(self, fn: Callable[[np.ndarray], np.ndarray]) -> "Mesh":
        """Return a copy with vertices mapped through `fn` (curving etc.)."""
        new_verts = np.asarray(fn(self.verts.copy()), dtype=np.float64)
        if new_verts.shape != self.verts.shape:
            raise ValueError("transform must preserve vertex array shape")
        return Mesh(new_verts, self.zones.copy(), self.zone_attributes.copy(), self.grid_shape, self.extent)

    def boundary_vertices(self, tol_scale: float = 1e-9) -> np.ndarray:
        """Vertex ids on the bounding box faces (generator meshes only)."""
        lo = self.verts.min(axis=0)
        hi = self.verts.max(axis=0)
        tol = tol_scale * max(np.max(hi - lo), 1.0)
        on = np.zeros(self.nverts, dtype=bool)
        for d in range(self.dim):
            on |= np.abs(self.verts[:, d] - lo[d]) < tol
            on |= np.abs(self.verts[:, d] - hi[d]) < tol
        return np.flatnonzero(on)


def _structured_zones(dims: tuple[int, ...]) -> np.ndarray:
    """Zone connectivity of a structured vertex grid (x index fastest)."""
    if len(dims) == 2:
        nx, ny = dims
        vx = nx + 1
        i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
        i = i.T.ravel()
        j = j.T.ravel()
        v00 = i + vx * j
        return np.column_stack([v00, v00 + 1, v00 + vx, v00 + vx + 1])
    nx, ny, nz = dims
    vx, vy = nx + 1, ny + 1
    i, j, k = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    t = (2, 1, 0)
    i = i.transpose(t).ravel()
    j = j.transpose(t).ravel()
    k = k.transpose(t).ravel()
    v0 = i + vx * (j + vy * k)
    dzy = vx * vy
    return np.column_stack(
        [v0, v0 + 1, v0 + vx, v0 + vx + 1, v0 + dzy, v0 + dzy + 1, v0 + dzy + vx, v0 + dzy + vx + 1]
    )


def cartesian_mesh_2d(
    nx: int,
    ny: int,
    extent: tuple[tuple[float, float], tuple[float, float]] = ((0.0, 1.0), (0.0, 1.0)),
) -> Mesh:
    """Uniform nx-by-ny quad mesh over a rectangle."""
    if nx < 1 or ny < 1:
        raise ValueError("need at least one zone per direction")
    (x0, x1), (y0, y1) = extent
    xs = np.linspace(x0, x1, nx + 1)
    ys = np.linspace(y0, y1, ny + 1)
    X, Y = np.meshgrid(xs, ys, indexing="ij")
    verts = np.column_stack([X.T.ravel(), Y.T.ravel()])
    zones = _structured_zones((nx, ny))
    return Mesh(verts, zones, grid_shape=(nx, ny), extent=extent)


def cartesian_mesh_3d(
    nx: int,
    ny: int,
    nz: int,
    extent: tuple[tuple[float, float], ...] = ((0.0, 1.0), (0.0, 1.0), (0.0, 1.0)),
) -> Mesh:
    """Uniform nx-by-ny-by-nz hex mesh over a box."""
    if min(nx, ny, nz) < 1:
        raise ValueError("need at least one zone per direction")
    (x0, x1), (y0, y1), (z0, z1) = extent
    xs = np.linspace(x0, x1, nx + 1)
    ys = np.linspace(y0, y1, ny + 1)
    zs = np.linspace(z0, z1, nz + 1)
    X, Y, Z = np.meshgrid(xs, ys, zs, indexing="ij")
    t = (2, 1, 0)
    verts = np.column_stack([X.transpose(t).ravel(), Y.transpose(t).ravel(), Z.transpose(t).ravel()])
    zones = _structured_zones((nx, ny, nz))
    return Mesh(verts, zones, grid_shape=(nx, ny, nz), extent=extent)
