"""Tensor-product Qk reference elements on [0, 1]^dim.

A `ReferenceElement` provides the basis-function and basis-gradient
tables that BLAST precomputes once per run: the thermodynamic table
``B[j, k] = phi_j(q_k)`` of equation (6) and the kinematic gradient table
``gradW[k, i, :] = grad w_i(q_k)`` that enters A_z in equation (5).
"""

from __future__ import annotations

import numpy as np

from repro.fem.polynomials import LagrangeBasis1D
from repro.fem.quadrature import QuadratureRule

__all__ = ["ReferenceElement"]


class ReferenceElement:
    """Qk Lagrange element on the unit segment/square/cube.

    Degrees of freedom sit on a tensor grid of Gauss-Lobatto points (a
    single midpoint node for Q0) ordered lexicographically with the first
    coordinate fastest.
    """

    def __init__(self, dim: int, order: int):
        if dim not in (1, 2, 3):
            raise ValueError("dim must be 1, 2, or 3")
        if order < 0:
            raise ValueError("order must be >= 0")
        self.dim = dim
        self.order = order
        self.basis_1d = LagrangeBasis1D.lobatto(order)
        self.ndof_1d = self.basis_1d.n
        self.ndof = self.ndof_1d**dim

    @property
    def dof_coords(self) -> np.ndarray:
        """(ndof, dim) reference coordinates of the dof nodes."""
        n1 = self.basis_1d.nodes
        if self.dim == 1:
            return n1[:, None]
        if self.dim == 2:
            X, Y = np.meshgrid(n1, n1, indexing="ij")
            return np.column_stack([X.T.ravel(), Y.T.ravel()])
        X, Y, Z = np.meshgrid(n1, n1, n1, indexing="ij")
        t = (2, 1, 0)
        return np.column_stack(
            [X.transpose(t).ravel(), Y.transpose(t).ravel(), Z.transpose(t).ravel()]
        )

    def _split_1d(self, points: np.ndarray) -> list[np.ndarray]:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dim:
            raise ValueError(f"points must be (npts, {self.dim})")
        return [points[:, d] for d in range(self.dim)]

    def tabulate(self, points: np.ndarray) -> np.ndarray:
        """Basis values at `points`; returns (npts, ndof).

        ``tabulate(q)[k, j] = phi_j(q_k)`` — the transpose of the paper's
        B matrix, which `tabulate_B` returns directly.
        """
        coords = self._split_1d(points)
        vals = [self.basis_1d.eval(c) for c in coords]  # each (npts, n1)
        if self.dim == 1:
            return vals[0]
        if self.dim == 2:
            # dof = i + n1*j, first coordinate fastest
            return np.einsum("pi,pj->pji", vals[0], vals[1]).reshape(
                points.shape[0] if points.ndim == 2 else -1, self.ndof
            )
        out = np.einsum("pi,pj,pk->pkji", vals[0], vals[1], vals[2])
        return out.reshape(-1, self.ndof)

    def tabulate_grad(self, points: np.ndarray) -> np.ndarray:
        """Basis gradients at `points`; returns (npts, ndof, dim)."""
        coords = self._split_1d(points)
        vals = [self.basis_1d.eval(c) for c in coords]
        ders = [self.basis_1d.eval_deriv(c) for c in coords]
        npts = coords[0].size
        out = np.empty((npts, self.ndof, self.dim))
        if self.dim == 1:
            out[:, :, 0] = ders[0]
            return out
        if self.dim == 2:
            out[:, :, 0] = np.einsum("pi,pj->pji", ders[0], vals[1]).reshape(npts, -1)
            out[:, :, 1] = np.einsum("pi,pj->pji", vals[0], ders[1]).reshape(npts, -1)
            return out
        out[:, :, 0] = np.einsum("pi,pj,pk->pkji", ders[0], vals[1], vals[2]).reshape(npts, -1)
        out[:, :, 1] = np.einsum("pi,pj,pk->pkji", vals[0], ders[1], vals[2]).reshape(npts, -1)
        out[:, :, 2] = np.einsum("pi,pj,pk->pkji", vals[0], vals[1], ders[2]).reshape(npts, -1)
        return out

    # -- Paper-facing tables ------------------------------------------------

    def tabulate_B(self, quad: QuadratureRule) -> np.ndarray:
        """The constant matrix B of eq. (6): (ndof, nqp), B[j,k]=phi_j(q_k)."""
        return np.ascontiguousarray(self.tabulate(quad.points).T)

    def tabulate_gradW(self, quad: QuadratureRule) -> np.ndarray:
        """Kinematic gradient table of eq. (5): (nqp, ndof, dim)."""
        return self.tabulate_grad(quad.points)

    # -- Sum-factorization tables -------------------------------------------
    #
    # Because both the dof grid and the tensor quadrature order points
    # lexicographically with the first coordinate fastest, the full tables
    # above factor exactly into Kronecker products of these two small 1D
    # matrices — the O(order^{d+1}) contraction path in `fem.sumfact`
    # needs nothing else.

    def tabulate_B_1d(self, quad: QuadratureRule) -> np.ndarray:
        """1D basis table B1[p, i] = phi_i(x_p): (npts_1d, ndof_1d)."""
        x1, _ = quad.axes_1d()
        return np.ascontiguousarray(self.basis_1d.eval(x1))

    def tabulate_G_1d(self, quad: QuadratureRule) -> np.ndarray:
        """1D derivative table G1[p, i] = phi_i'(x_p): (npts_1d, ndof_1d)."""
        x1, _ = quad.axes_1d()
        return np.ascontiguousarray(self.basis_1d.eval_deriv(x1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReferenceElement(dim={self.dim}, order={self.order}, ndof={self.ndof})"
