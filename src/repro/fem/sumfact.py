"""Sum-factorized (tensor-product) basis contractions.

The dense tables of `ReferenceElement.tabulate_B`/`tabulate_gradW` make
every basis application cost O(nqp * ndof) = O(order^{2d}) per zone. On
tensor-product elements those tables are exact Kronecker products of the
two small 1D matrices `B1[p, i] = phi_i(x_p)` and `G1[p, i] =
phi_i'(x_p)`, so the same applications factor into `dim` passes of 1D
contractions costing O(order^{d+1}) — the matrix-free reorganization of
the MFEM/Umpire/RAJA follow-on to the paper (PAPERS.md, arxiv
2112.07075). This module provides that contraction layer
(`apply_B`/`apply_B_T`/`apply_G`/`apply_G_T`) plus the flop-count model
that prices the dense-vs-sumfact crossover for the autotuner and the
hot-path bench.

Index conventions (matching `ReferenceElement` and `tensor_quadrature`):
dofs and quadrature points are both lexicographic with the *first*
coordinate fastest, so `U.reshape(nz, n1, n1)` has axes [z, i1, i0] and
`W.reshape(nz, q1, q1)` has axes [z, p1, p0] — the 1D contractions line
up without permutations.
"""

from __future__ import annotations

import numpy as np

from repro.fem.quadrature import QuadratureRule
from repro.fem.reference_element import ReferenceElement

__all__ = [
    "SumFactorizedOperators",
    "contraction_work",
    "modeled_work_dense",
    "modeled_work_sumfact",
    "sumfact_host_factor",
]


class SumFactorizedOperators:
    """1D-factorized basis/derivative applications for one element/rule.

    All methods take zone-batched dof or qp arrays and an optional
    preallocated ``out`` (a workspace buffer on the hot path); einsum
    intermediates are transient and small — O(n1^{dim-m} q1^m).
    """

    def __init__(self, element: ReferenceElement, quad: QuadratureRule):
        if quad.dim != element.dim:
            raise ValueError("element and quadrature dimensions differ")
        self.dim = element.dim
        self.n1 = element.ndof_1d
        self.q1 = int(quad.npts_1d)
        self.ndof = element.ndof
        self.nqp = quad.nqp
        self.B1 = element.tabulate_B_1d(quad)  # (q1, n1)
        self.G1 = element.tabulate_G_1d(quad)  # (q1, n1)

    # -- shape helpers ------------------------------------------------------

    def _dofs(self, U: np.ndarray) -> np.ndarray:
        nz = U.shape[0]
        return U.reshape((nz,) + (self.n1,) * self.dim)

    def _qps(self, W: np.ndarray) -> np.ndarray:
        nz = W.shape[0]
        return W.reshape((nz,) + (self.q1,) * self.dim)

    def _tables(self, deriv_axis: int | None) -> list[np.ndarray]:
        """Per-axis 1D table, G1 on `deriv_axis` (axis 0 = first coord)."""
        return [self.G1 if d == deriv_axis else self.B1 for d in range(self.dim)]

    # -- forward: dofs -> quadrature points ---------------------------------

    def _forward(self, U: np.ndarray, tables: list[np.ndarray]) -> np.ndarray:
        """Contract each dof axis against its (q1, n1) table."""
        t = self._dofs(U)
        if self.dim == 1:
            return np.einsum("pa,za->zp", tables[0], t)
        if self.dim == 2:
            t = np.einsum("pa,zba->zbp", tables[0], t)
            return np.einsum("qb,zbp->zqp", tables[1], t)
        t = np.einsum("pa,zcba->zcbp", tables[0], t)
        t = np.einsum("qb,zcbp->zcqp", tables[1], t)
        return np.einsum("rc,zcqp->zrqp", tables[2], t)

    def _backward(self, W: np.ndarray, tables: list[np.ndarray]) -> np.ndarray:
        """Transpose contraction: quadrature points -> dofs."""
        t = self._qps(W)
        if self.dim == 1:
            return np.einsum("pa,zp->za", tables[0], t)
        if self.dim == 2:
            t = np.einsum("qb,zqp->zbp", tables[1], t)
            return np.einsum("pa,zbp->zba", tables[0], t)
        t = np.einsum("rc,zrqp->zcqp", tables[2], t)
        t = np.einsum("qb,zcqp->zcbp", tables[1], t)
        return np.einsum("pa,zcbp->zcba", tables[0], t)

    # -- public contraction layer -------------------------------------------

    def apply_B(self, U: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Basis values at qps: (nz, ndof) -> (nz, nqp)."""
        res = self._forward(U, self._tables(None))
        nz = U.shape[0]
        if out is None:
            return res.reshape(nz, self.nqp)
        out[...] = res.reshape(nz, self.nqp)
        return out

    def apply_B_T(self, W: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Transpose interpolation: (nz, nqp) -> (nz, ndof)."""
        res = self._backward(W, self._tables(None))
        nz = W.shape[0]
        if out is None:
            return res.reshape(nz, self.ndof)
        out[...] = res.reshape(nz, self.ndof)
        return out

    def apply_G(self, U: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Reference gradients at qps: (nz, ndof) -> (nz, nqp, dim)."""
        nz = U.shape[0]
        if out is None:
            out = np.empty((nz, self.nqp, self.dim))
        for d in range(self.dim):
            out[:, :, d] = self._forward(U, self._tables(d)).reshape(nz, self.nqp)
        return out

    def apply_G_T(self, S: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Transpose gradient: (nz, nqp, dim) -> (nz, ndof), summed over dim."""
        nz = S.shape[0]
        if out is None:
            out = np.empty((nz, self.ndof))
        acc = self._backward(S[:, :, 0], self._tables(0)).reshape(nz, self.ndof)
        for d in range(1, self.dim):
            acc += self._backward(S[:, :, d], self._tables(d)).reshape(nz, self.ndof)
        out[...] = acc
        return out


# -- Work model -------------------------------------------------------------
#
# Both routes run the same five basis-contraction stages per corner-force
# evaluation: geometry Jacobian (dim coordinate components x dim derivative
# directions), reference velocity gradient (same), L2 energy interpolation,
# force-times-one application, and force-transpose-times-v reduction. The
# dense route prices each at full-table cost nqp*ndof; the factorized route
# at the 1D chain cost, plus a per-pass streaming overhead (each 1D pass
# re-touches an O(q1^dim) intermediate, which the single fused dense einsum
# never materializes). PASS_STREAM_COST calibrates that overhead; with 2.0
# the model reproduces the empirically expected picture — fused dense wins
# at Q2, sum-factorization wins from Q3 on and by ~2x at Q4 (the crossover
# table lives in DESIGN.md section 16 and BENCH_hotpath.json).

PASS_STREAM_COST = 2.0


def contraction_work(n1: int, q1: int, dim: int) -> int:
    """Multiply-adds for one d-dimensional 1D-contraction chain."""
    return sum(n1 ** (dim - m + 1) * q1**m for m in range(1, dim + 1))


def _cfg_dims(fe_cfg) -> tuple[int, int, int, int]:
    dim = int(fe_cfg.dim)
    order = int(fe_cfg.order)
    nzones = int(fe_cfg.nzones)
    q1 = int(getattr(fe_cfg, "quad_points_1d", 0) or 2 * order)
    return dim, order, nzones, q1


def modeled_work_dense(fe_cfg) -> float:
    """Modeled multiply-adds per corner-force eval, dense-table route."""
    dim, order, nzones, q1 = _cfg_dims(fe_cfg)
    nqp = q1**dim
    ndof_h1 = (order + 1) ** dim
    ndof_l2 = max(order, 1) ** dim
    per_zone = 3 * nqp * ndof_h1 * dim**2 + 2 * nqp * ndof_l2
    return float(nzones * per_zone)


def modeled_work_sumfact(fe_cfg) -> float:
    """Modeled multiply-adds per corner-force eval, sum-factorized route."""
    dim, order, nzones, q1 = _cfg_dims(fe_cfg)
    nqp = q1**dim
    a_h1 = contraction_work(order + 1, q1, dim)
    a_l2 = contraction_work(max(order, 1), q1, dim)
    flops = 3 * dim**2 * a_h1 + 2 * a_l2
    passes = 3 * dim**2 * dim + 2 * dim
    per_zone = flops + PASS_STREAM_COST * passes * nqp
    return float(nzones * per_zone)


def sumfact_host_factor(fe_cfg) -> float:
    """Host-time multiplier of the sumfact route relative to fused dense.

    > 1 below the crossover order (sumfact loses), < 1 above it. Clamped
    so a degenerate config cannot blow up the tuner's pricing model.
    """
    dense = modeled_work_dense(fe_cfg)
    sumfact = modeled_work_sumfact(fe_cfg)
    if dense <= 0:
        return 1.0
    return float(min(4.0, max(0.1, sumfact / dense)))
