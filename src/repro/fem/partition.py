"""Domain partitioning for the (simulated) MPI layer.

BLAST delegates domain splitting to MFEM at initialization (step 2 of
the algorithm); each MPI task owns a contiguous set of zones. We provide
two partitioners: a Cartesian block splitter for generator meshes (what
the paper's structured test problems use) and a recursive coordinate
bisection (RCB) partitioner for general zone clouds, plus helpers to
validate a partition's balance and connectivity.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh

__all__ = [
    "partition_cartesian",
    "partition_rcb",
    "partition_balance",
    "zone_adjacency",
]


def partition_cartesian(mesh: Mesh, parts_per_dim: tuple[int, ...]) -> np.ndarray:
    """Block partition of a generator mesh into a grid of subdomains.

    Returns (nzones,) rank ids. Requires `mesh.grid_shape`.
    """
    if mesh.grid_shape is None:
        raise ValueError("cartesian partition requires a generator mesh with grid_shape")
    dims = mesh.grid_shape
    if len(parts_per_dim) != len(dims):
        raise ValueError("parts_per_dim must match mesh dimensionality")
    for n, p in zip(dims, parts_per_dim):
        if p < 1 or p > n:
            raise ValueError(f"cannot split {n} zones into {p} parts")
    # Zone (i, j, k) index from the lexicographic zone id (x fastest).
    idx = np.arange(mesh.nzones)
    coords = []
    for n in dims:
        coords.append(idx % n)
        idx //= n
    rank = np.zeros(mesh.nzones, dtype=np.int64)
    stride = 1
    for c, n, p in zip(coords, dims, parts_per_dim):
        # Balanced 1D block split: first (n % p) blocks get one extra.
        block = (c * p) // n
        rank += block * stride
        stride *= p
    return rank


def partition_rcb(centroids: np.ndarray, nparts: int) -> np.ndarray:
    """Recursive coordinate bisection over zone centroids.

    Splits the widest coordinate direction at the weighted median, giving
    each side a zone count proportional to its share of parts. Handles
    any nparts >= 1 (not just powers of two).
    """
    centroids = np.asarray(centroids, dtype=np.float64)
    if centroids.ndim != 2:
        raise ValueError("centroids must be (nzones, dim)")
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    n = centroids.shape[0]
    if nparts > n:
        raise ValueError("more parts than zones")
    rank = np.zeros(n, dtype=np.int64)

    def recurse(ids: np.ndarray, parts: int, base: int) -> None:
        if parts == 1:
            rank[ids] = base
            return
        pts = centroids[ids]
        spans = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(spans))
        left_parts = parts // 2
        right_parts = parts - left_parts
        ncut = (ids.size * left_parts) // parts
        order = np.argsort(pts[:, axis], kind="stable")
        recurse(ids[order[:ncut]], left_parts, base)
        recurse(ids[order[ncut:]], right_parts, base + left_parts)

    recurse(np.arange(n), nparts, 0)
    return rank


def partition_balance(rank: np.ndarray, nparts: int | None = None) -> float:
    """Load imbalance factor: max part size over mean part size (>= 1)."""
    rank = np.asarray(rank)
    if nparts is None:
        nparts = int(rank.max()) + 1 if rank.size else 0
    counts = np.bincount(rank, minlength=nparts)
    if nparts == 0 or counts.sum() == 0:
        return 1.0
    return float(counts.max() / (counts.sum() / nparts))


def zone_adjacency(mesh: Mesh) -> list[tuple[int, int]]:
    """Zone pairs sharing at least one vertex (communication graph edges)."""
    from collections import defaultdict

    by_vertex: dict[int, list[int]] = defaultdict(list)
    for z, vs in enumerate(mesh.zones):
        for v in vs:
            by_vertex[int(v)].append(z)
    edges = set()
    for zs in by_vertex.values():
        for i in range(len(zs)):
            for j in range(i + 1, len(zs)):
                edges.add((zs[i], zs[j]) if zs[i] < zs[j] else (zs[j], zs[i]))
    return sorted(edges)
