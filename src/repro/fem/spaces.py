"""Finite element spaces: continuous H1 (kinematic) and discontinuous L2
(thermodynamic).

A Qk-Qk-1 BLAST method pairs a continuous order-k kinematic space (for
velocity and positions) with a discontinuous order-(k-1) thermodynamic
space (for specific internal energy). The H1 numbering identifies shared
dofs between zones geometrically: local dof positions from the bi/tri-
linear vertex map are quantized to a mesh-scaled lattice and unified by
hashing — exact for the generator meshes used here, and verified by a
continuity self-check at construction.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh
from repro.fem.reference_element import ReferenceElement

__all__ = ["H1Space", "L2Space"]


def _bilinear_map(zone_verts: np.ndarray, ref_pts: np.ndarray) -> np.ndarray:
    """Map reference points through the multilinear vertex map.

    zone_verts: (nz, 2**dim, dim); ref_pts: (npts, dim).
    Returns (nz, npts, dim).
    """
    dim = zone_verts.shape[2]
    x = ref_pts[:, 0]
    if dim == 1:
        w = np.stack([1 - x, x], axis=1)
    elif dim == 2:
        y = ref_pts[:, 1]
        w = np.stack([(1 - x) * (1 - y), x * (1 - y), (1 - x) * y, x * y], axis=1)
    else:
        y = ref_pts[:, 1]
        z = ref_pts[:, 2]
        w = np.stack(
            [
                (1 - x) * (1 - y) * (1 - z),
                x * (1 - y) * (1 - z),
                (1 - x) * y * (1 - z),
                x * y * (1 - z),
                (1 - x) * (1 - y) * z,
                x * (1 - y) * z,
                (1 - x) * y * z,
                x * y * z,
            ],
            axis=1,
        )
    return np.einsum("pv,zvd->zpd", w, zone_verts)


class H1Space:
    """Continuous Lagrange space of order k >= 1 on a quad/hex mesh.

    Attributes
    ----------
    ldof : (nzones, ndof_per_zone) local-to-global dof map.
    node_coords : (ndof, dim) initial coordinates of the dof nodes (the
        `x` unknown of the equation of motion starts here).
    """

    def __init__(self, mesh: Mesh, order: int):
        if order < 1:
            raise ValueError("H1 space needs order >= 1")
        self.mesh = mesh
        self.order = order
        self.element = ReferenceElement(mesh.dim, order)
        zone_verts = mesh.zone_vertex_coords()
        ref_coords = self.element.dof_coords
        phys = _bilinear_map(zone_verts, ref_coords)  # (nz, ndz, dim)
        # Quantize positions on a lattice much finer than any edge.
        h = mesh.min_edge_length()
        if not np.isfinite(h) or h <= 0:
            raise ValueError("mesh has degenerate edges")
        quant = h / max(order, 1) * 1e-6
        keys = np.round(phys / quant).astype(np.int64)
        flat = keys.reshape(-1, mesh.dim)
        uniq, inverse = np.unique(flat, axis=0, return_inverse=True)
        self.ldof = inverse.reshape(mesh.nzones, self.element.ndof).astype(np.int64)
        self.ndof = uniq.shape[0]
        coords = np.zeros((self.ndof, mesh.dim))
        coords[self.ldof.reshape(-1)] = phys.reshape(-1, mesh.dim)
        self.node_coords = coords
        self._continuity_check(phys)

    def _continuity_check(self, phys: np.ndarray) -> None:
        """Verify unified dofs agree geometrically to tight tolerance."""
        gathered = self.node_coords[self.ldof]
        err = np.abs(gathered - phys).max()
        scale = max(1.0, np.abs(phys).max())
        if err > 1e-8 * scale:
            raise RuntimeError(
                f"H1 dof unification failed (max mismatch {err:.3e}); "
                "mesh may contain coincident but topologically distinct nodes"
            )

    @property
    def ndof_per_zone(self) -> int:
        return self.element.ndof

    @property
    def dim(self) -> int:
        return self.mesh.dim

    @property
    def nvdof(self) -> int:
        """Number of *vector* dofs (each node carries `dim` components)."""
        return self.ndof * self.dim

    def gather(self, field: np.ndarray) -> np.ndarray:
        """Zone-local view of a global field.

        (ndof,) -> (nz, ndz); (ndof, dim) -> (nz, ndz, dim).
        """
        field = np.asarray(field)
        if field.shape[0] != self.ndof:
            raise ValueError("field leading dimension must equal ndof")
        return field[self.ldof]

    def sumfact_operators(self, quad):
        """Factorized basis applications for this space at a tensor rule."""
        from repro.fem.sumfact import SumFactorizedOperators

        return SumFactorizedOperators(self.element, quad)

    def scatter_add(self, zvals: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Sum zone-local contributions into a global field.

        (nz, ndz[, dim]) -> (ndof[, dim]). `out` (zeroed here) lets the
        hot path accumulate into a workspace buffer.
        """
        zvals = np.asarray(zvals, dtype=np.float64)
        if zvals.shape[:2] != (self.mesh.nzones, self.ndof_per_zone):
            raise ValueError("zvals must be (nzones, ndof_per_zone, ...)")
        if out is None:
            out = np.zeros((self.ndof,) + zvals.shape[2:])
        else:
            if out.shape != (self.ndof,) + zvals.shape[2:]:
                raise ValueError("out has the wrong shape for this scatter")
            out[...] = 0.0
        np.add.at(out, self.ldof.reshape(-1), zvals.reshape((-1,) + zvals.shape[2:]))
        return out

    def boundary_dofs(self, tol_scale: float = 1e-9) -> np.ndarray:
        """Dof ids on the bounding box of the initial configuration."""
        lo = self.node_coords.min(axis=0)
        hi = self.node_coords.max(axis=0)
        tol = tol_scale * max(float(np.max(hi - lo)), 1.0)
        on = np.zeros(self.ndof, dtype=bool)
        for d in range(self.dim):
            on |= np.abs(self.node_coords[:, d] - lo[d]) < tol
            on |= np.abs(self.node_coords[:, d] - hi[d]) < tol
        return np.flatnonzero(on)

    def boundary_dofs_on_plane(self, axis: int, value: float, tol: float = 1e-9) -> np.ndarray:
        """Dof ids lying on the plane coords[axis] == value (initially)."""
        return np.flatnonzero(np.abs(self.node_coords[:, axis] - value) < tol)


class L2Space:
    """Discontinuous Lagrange space of order k >= 0 (zone-local dofs)."""

    def __init__(self, mesh: Mesh, order: int):
        if order < 0:
            raise ValueError("L2 space needs order >= 0")
        self.mesh = mesh
        self.order = order
        self.element = ReferenceElement(mesh.dim, order)
        nz = mesh.nzones
        self.ndof = nz * self.element.ndof
        self.ldof = np.arange(self.ndof, dtype=np.int64).reshape(nz, self.element.ndof)

    @property
    def ndof_per_zone(self) -> int:
        return self.element.ndof

    @property
    def dim(self) -> int:
        return self.mesh.dim

    def gather(self, field: np.ndarray) -> np.ndarray:
        field = np.asarray(field)
        if field.shape[0] != self.ndof:
            raise ValueError("field leading dimension must equal ndof")
        return field.reshape((self.mesh.nzones, self.element.ndof) + field.shape[1:])

    def scatter(self, zvals: np.ndarray) -> np.ndarray:
        zvals = np.asarray(zvals, dtype=np.float64)
        if zvals.shape[:2] != (self.mesh.nzones, self.element.ndof):
            raise ValueError("zvals must be (nzones, ndof_per_zone, ...)")
        return zvals.reshape((self.ndof,) + zvals.shape[2:])

    def interpolate(self, fn, node_coords_per_zone: np.ndarray) -> np.ndarray:
        """Nodal interpolation of fn(x) given (nz, ndz, dim) node coords."""
        vals = fn(node_coords_per_zone.reshape(-1, self.mesh.dim))
        return np.asarray(vals, dtype=np.float64).reshape(self.ndof)

    def sumfact_operators(self, quad):
        """Factorized basis applications for this space at a tensor rule."""
        from repro.fem.sumfact import SumFactorizedOperators

        return SumFactorizedOperators(self.element, quad)
