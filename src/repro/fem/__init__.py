"""Finite element substrate.

Implements the discretization machinery BLAST builds on: 1D polynomial
bases and quadrature, tensor-product reference elements (the Qk family),
curvilinear quad/hex meshes, continuous (H1, kinematic) and discontinuous
(L2, thermodynamic) finite element spaces, batched geometry evaluation
(Jacobians and friends at quadrature points) and mass-matrix assembly.
"""

from repro.fem.polynomials import (
    LagrangeBasis1D,
    gauss_legendre,
    gauss_lobatto_points,
    legendre,
)
from repro.fem.quadrature import QuadratureRule, tensor_quadrature
from repro.fem.reference_element import ReferenceElement
from repro.fem.mesh import Mesh, cartesian_mesh_2d, cartesian_mesh_3d
from repro.fem.spaces import H1Space, L2Space
from repro.fem.geometry import GeometryEvaluator
from repro.fem.assembly import (
    assemble_kinematic_mass,
    assemble_thermodynamic_mass,
)
from repro.fem.partition import partition_cartesian, partition_rcb
from repro.fem.refinement import refine_uniform
from repro.fem import curvilinear

__all__ = [
    "LagrangeBasis1D",
    "gauss_legendre",
    "gauss_lobatto_points",
    "legendre",
    "QuadratureRule",
    "tensor_quadrature",
    "ReferenceElement",
    "Mesh",
    "cartesian_mesh_2d",
    "cartesian_mesh_3d",
    "H1Space",
    "L2Space",
    "GeometryEvaluator",
    "assemble_kinematic_mass",
    "assemble_thermodynamic_mass",
    "partition_cartesian",
    "partition_rcb",
    "refine_uniform",
    "curvilinear",
]
