"""Mass matrix assembly.

Assembles the two (time-constant) mass matrices of the semi-discrete
scheme:

* the kinematic mass matrix M_V — density-weighted inner products of the
  *continuous* kinematic basis: global, symmetric, sparse (CSR), solved
  with PCG every step;
* the thermodynamic mass matrix M_E — density-weighted inner products of
  the *discontinuous* thermodynamic basis: symmetric block diagonal, one
  dense block per zone, inverted once at initialization.

Both use the initial density and initial geometry: in the Lagrangian
frame strong mass conservation (rho |J| = rho0 |J0| pointwise) makes
them constant in time.
"""

from __future__ import annotations

import numpy as np

from repro.fem.geometry import GeometryAtPoints
from repro.fem.quadrature import QuadratureRule
from repro.fem.spaces import H1Space, L2Space
from repro.linalg.blockdiag import BlockDiagonalMatrix
from repro.linalg.csr import CSRMatrix

__all__ = [
    "zone_mass_blocks",
    "zone_mass_blocks_sumfact",
    "assemble_kinematic_mass",
    "assemble_thermodynamic_mass",
    "lump_mass",
]


def zone_mass_blocks(
    basis_at_qp: np.ndarray,
    quad: QuadratureRule,
    rho_qp: np.ndarray,
    detJ_qp: np.ndarray,
) -> np.ndarray:
    """Local mass blocks M_z[i,j] = sum_k a_k rho_zk |J_zk| b_i(q_k) b_j(q_k).

    basis_at_qp: (nqp, ndz); rho_qp, detJ_qp: (nz, nqp). Returns
    (nz, ndz, ndz), symmetric by construction.
    """
    w = quad.weights[None, :] * rho_qp * detJ_qp  # (nz, nqp)
    return np.einsum("zk,ki,kj->zij", w, basis_at_qp, basis_at_qp, optimize=True)


def zone_mass_blocks_sumfact(
    element,
    quad: QuadratureRule,
    rho_qp: np.ndarray,
    detJ_qp: np.ndarray,
) -> np.ndarray:
    """`zone_mass_blocks` via 1D tensor-product contractions.

    Same blocks to roundoff, but assembled through the factorized chain
    (the einsum path optimizer contracts one quadrature axis at a time
    against the small (q1, n1) table), so the cost is O(order^{d+2}) per
    zone instead of the dense O(order^{3d}).
    """
    b1 = element.tabulate_B_1d(quad)  # (q1, n1)
    dim = element.dim
    nz = rho_qp.shape[0]
    q1 = int(quad.npts_1d)
    w = (quad.weights[None, :] * rho_qp * detJ_qp).reshape((nz,) + (q1,) * dim)
    if dim == 1:
        blocks = np.einsum("zp,pa,pd->zad", w, b1, b1, optimize=True)
    elif dim == 2:
        # output axes [z, i1, i0, j1, j0]; dof = i0 + n1*i1 (first fastest)
        blocks = np.einsum("zqp,pa,qb,pd,qe->zbaed", w, b1, b1, b1, b1, optimize=True)
    else:
        blocks = np.einsum(
            "zrqp,pa,qb,rc,pd,qe,rf->zcbafed", w, b1, b1, b1, b1, b1, b1, optimize=True
        )
    ndz = element.ndof
    return np.ascontiguousarray(blocks.reshape(nz, ndz, ndz))


def assemble_kinematic_mass(
    space: H1Space,
    quad: QuadratureRule,
    rho_qp: np.ndarray,
    geometry: GeometryAtPoints,
    prune_tol: float = 0.0,
    sumfact: bool = False,
) -> CSRMatrix:
    """Global sparse kinematic mass matrix (scalar form, one component).

    The velocity unknown has `dim` components sharing the same scalar
    mass matrix; the momentum solve applies it per component. With
    `sumfact=True` the local blocks come from the tensor-product chain.
    """
    if sumfact:
        blocks = zone_mass_blocks_sumfact(space.element, quad, rho_qp, geometry.det)
    else:
        basis = space.element.tabulate(quad.points)  # (nqp, ndz)
        blocks = zone_mass_blocks(basis, quad, rho_qp, geometry.det)
    ndz = space.ndof_per_zone
    rows = np.repeat(space.ldof, ndz, axis=1).ravel()
    cols = np.tile(space.ldof, (1, ndz)).ravel()
    return CSRMatrix.from_coo(rows, cols, blocks.ravel(), (space.ndof, space.ndof), prune_tol=prune_tol)


def assemble_thermodynamic_mass(
    space: L2Space,
    quad: QuadratureRule,
    rho_qp: np.ndarray,
    geometry: GeometryAtPoints,
    sumfact: bool = False,
) -> BlockDiagonalMatrix:
    """Block-diagonal thermodynamic mass matrix with lazily-invertible blocks."""
    if sumfact:
        blocks = zone_mass_blocks_sumfact(space.element, quad, rho_qp, geometry.det)
    else:
        basis = space.element.tabulate(quad.points)  # (nqp, ndz)
        blocks = zone_mass_blocks(basis, quad, rho_qp, geometry.det)
    m = BlockDiagonalMatrix(blocks)
    m.precompute_inverse()
    return m


def lump_mass(matrix: CSRMatrix) -> np.ndarray:
    """Row-sum lumping (used for viscosity length scales / diagnostics)."""
    return matrix.matvec(np.ones(matrix.ncols))
