"""1D polynomial machinery: Legendre polynomials, Gauss quadrature and
Lagrange interpolation bases.

Everything here is exact double-precision numerics built from Newton
iterations on Legendre polynomials; no table lookups, so arbitrary orders
(the paper exercises Q1 through Q8) are supported.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "legendre",
    "legendre_deriv",
    "gauss_legendre",
    "gauss_lobatto_points",
    "equispaced_points",
    "LagrangeBasis1D",
]


def legendre(n: int, x: np.ndarray) -> np.ndarray:
    """Evaluate the Legendre polynomial P_n on [-1, 1].

    Uses the three-term recurrence; `x` may be any array shape.
    """
    x = np.asarray(x, dtype=np.float64)
    if n == 0:
        return np.ones_like(x)
    if n == 1:
        return x.copy()
    p_prev = np.ones_like(x)
    p = x.copy()
    for k in range(1, n):
        p_next = ((2 * k + 1) * x * p - k * p_prev) / (k + 1)
        p_prev, p = p, p_next
    return p


def legendre_deriv(n: int, x: np.ndarray) -> np.ndarray:
    """Evaluate d/dx P_n on [-1, 1] via the derivative recurrence."""
    x = np.asarray(x, dtype=np.float64)
    if n == 0:
        return np.zeros_like(x)
    pn = legendre(n, x)
    pn1 = legendre(n - 1, x)
    denom = x * x - 1.0
    # Guard the endpoints where the standard formula is 0/0; use the known
    # endpoint values P'_n(+-1) = (+-1)^(n-1) n (n+1) / 2.
    safe = np.abs(denom) > 1e-14
    out = np.empty_like(x)
    out[safe] = n * (x[safe] * pn[safe] - pn1[safe]) / denom[safe]
    endpoint = n * (n + 1) / 2.0
    out[~safe] = np.where(x[~safe] > 0, endpoint, endpoint * (-1.0) ** (n - 1))
    return out


def gauss_legendre(npts: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Legendre points and weights on [0, 1].

    The reference zone in BLAST is the unit cube, so rules are mapped from
    [-1, 1] to [0, 1]. Nodes are found by Newton iteration from the
    Chebyshev initial guess; accuracy is at roundoff for npts <= 64.
    """
    if npts < 1:
        raise ValueError("quadrature rule needs at least one point")
    k = np.arange(npts)
    x = -np.cos(np.pi * (k + 0.75) / (npts + 0.5))
    for _ in range(100):
        p = legendre(npts, x)
        dp = legendre_deriv(npts, x)
        dx = p / dp
        x -= dx
        if np.max(np.abs(dx)) < 1e-15:
            break
    dp = legendre_deriv(npts, x)
    w = 2.0 / ((1.0 - x * x) * dp * dp)
    # map [-1,1] -> [0,1]
    return 0.5 * (x + 1.0), 0.5 * w


def gauss_lobatto_points(npts: int) -> np.ndarray:
    """Gauss-Lobatto-Legendre points on [0, 1] (endpoints included).

    These are the interpolation nodes of the kinematic/thermodynamic
    Lagrange bases: well-conditioned at high order, and they make the
    element vertices/edges explicit degrees of freedom so continuity
    of the H1 space is a pure index-matching problem.
    """
    if npts < 2:
        if npts == 1:
            return np.array([0.5])
        raise ValueError("need at least 1 point")
    if npts == 2:
        return np.array([0.0, 1.0])
    n = npts - 1
    # Interior nodes are roots of P'_n; initial guess: Chebyshev-Lobatto.
    x = -np.cos(np.pi * np.arange(1, n) / n)
    for _ in range(100):
        # Newton on P'_n using P''_n from the ODE:
        # (1-x^2) P''_n = 2x P'_n - n(n+1) P_n
        dp = legendre_deriv(n, x)
        p = legendre(n, x)
        d2p = (2.0 * x * dp - n * (n + 1) * p) / (1.0 - x * x)
        dx = dp / d2p
        x -= dx
        if np.max(np.abs(dx)) < 1e-15:
            break
    pts = np.concatenate(([-1.0], x, [1.0]))
    return 0.5 * (pts + 1.0)


def equispaced_points(npts: int) -> np.ndarray:
    """Equispaced nodes on [0, 1] (used for low-order geometry nodes)."""
    if npts == 1:
        return np.array([0.5])
    return np.linspace(0.0, 1.0, npts)


class LagrangeBasis1D:
    """Lagrange interpolation basis on a given 1D node set in [0, 1].

    Evaluation uses the barycentric form, which is numerically stable for
    the Gauss-Lobatto node sets used here up to very high order.
    """

    def __init__(self, nodes: np.ndarray):
        nodes = np.asarray(nodes, dtype=np.float64)
        if nodes.ndim != 1 or nodes.size < 1:
            raise ValueError("nodes must be a non-empty 1D array")
        if nodes.size > 1 and np.any(np.diff(nodes) <= 0):
            raise ValueError("nodes must be strictly increasing")
        self.nodes = nodes
        self.n = nodes.size
        # Barycentric weights w_j = 1 / prod_{m != j} (x_j - x_m)
        diff = nodes[:, None] - nodes[None, :]
        np.fill_diagonal(diff, 1.0)
        self.bary_weights = 1.0 / np.prod(diff, axis=1)

    @classmethod
    def lobatto(cls, order: int) -> "LagrangeBasis1D":
        """Basis of polynomial order `order` on Gauss-Lobatto nodes."""
        if order == 0:
            return cls(np.array([0.5]))
        return cls(gauss_lobatto_points(order + 1))

    def eval(self, x: np.ndarray) -> np.ndarray:
        """Evaluate all basis functions; returns shape (len(x), n)."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        if self.n == 1:
            return np.ones((x.size, 1))
        d = x[:, None] - self.nodes[None, :]
        exact = np.abs(d) < 1e-14
        on_node = exact.any(axis=1)
        d_safe = np.where(exact, 1.0, d)
        terms = self.bary_weights[None, :] / d_safe
        vals = terms / terms.sum(axis=1, keepdims=True)
        if on_node.any():
            vals[on_node] = exact[on_node].astype(np.float64)
        return vals

    def eval_deriv(self, x: np.ndarray) -> np.ndarray:
        """Evaluate all basis derivatives; returns shape (len(x), n).

        Built from the differentiation matrix applied to the (exact)
        interpolation identity: l'_j(x) = sum_i D[i, j] l_i(x) where D is
        the nodal differentiation matrix. This keeps endpoint evaluation
        exact, which geometry Jacobians rely on.
        """
        D = self.diff_matrix()
        # l'_j(x) = sum over node index i of l_i(x) * l'_j(nodes[i])
        return self.eval(x) @ D

    def diff_matrix(self) -> np.ndarray:
        """Nodal differentiation matrix D[i, j] = l'_j(nodes[i])."""
        if self.n == 1:
            return np.zeros((1, 1))
        x = self.nodes
        w = self.bary_weights
        D = np.empty((self.n, self.n))
        for i in range(self.n):
            for j in range(self.n):
                if i != j:
                    D[i, j] = (w[j] / w[i]) / (x[i] - x[j])
        np.fill_diagonal(D, 0.0)
        np.fill_diagonal(D, -D.sum(axis=1))
        return D

    def interpolate(self, fvals: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Interpolate nodal values `fvals` (last axis n) at points `x`."""
        return self.eval(x) @ np.asarray(fvals)
