"""Batched geometry evaluation at quadrature points.

Evaluates, for every zone z and quadrature point q_k, the Jacobian
J_z(q_k) of the (moving, curvilinear) parametric map, its determinant
|J_z| ("local volume" in the paper) and adjugate. These are exactly the
quantities kernels 1 and 3 produce on the GPU; here they are plain
batched einsum contractions over the precomputed reference gradient
tables.
"""

from __future__ import annotations

import numpy as np

from repro.fem.quadrature import QuadratureRule
from repro.fem.spaces import H1Space
from repro.linalg.smallmat import batched_adjugate, batched_det

__all__ = ["GeometryEvaluator", "GeometryAtPoints"]


class GeometryAtPoints:
    """Per-zone, per-point geometric data.

    Attributes (all batched over (nzones, nqp, ...)):
      jac      : Jacobians (dim, dim), jac[d, e] = d x_d / d X_e
      det      : |J| determinants
      adj      : adjugates, adj @ J = det * I
    """

    def __init__(self, jac: np.ndarray):
        self.jac = jac
        self.det = batched_det(jac)
        self.adj = batched_adjugate(jac)

    @property
    def inv(self) -> np.ndarray:
        """Inverse Jacobians (lazy; adj/det is used on the hot path)."""
        return self.adj / self.det[..., None, None]

    def check_valid(self) -> bool:
        """True when every point has positive volume (untangled mesh)."""
        return bool(np.all(self.det > 0.0))


class GeometryEvaluator:
    """Evaluates Jacobians of the H1 position field at fixed points.

    The reference gradient table is tabulated once per (space, rule)
    pair — the time-constant part — while `evaluate(x)` is called every
    stage with the current node positions.
    """

    def __init__(self, space: H1Space, quad: QuadratureRule):
        if quad.dim != space.dim:
            raise ValueError("quadrature/space dimension mismatch")
        self.space = space
        self.quad = quad
        # (nqp, ndz, dim)
        self.grad_table = space.element.tabulate_grad(quad.points)

    def evaluate(self, node_coords: np.ndarray) -> GeometryAtPoints:
        """Geometry from global H1 node coordinates (ndof, dim)."""
        xz = self.space.gather(node_coords)  # (nz, ndz, dim)
        return self.evaluate_local(xz)

    def evaluate_local(self, xz: np.ndarray) -> GeometryAtPoints:
        """Geometry from zone-local coordinates (nz, ndz, dim)."""
        xz = np.asarray(xz, dtype=np.float64)
        if xz.ndim != 3 or xz.shape[1] != self.space.ndof_per_zone:
            raise ValueError("xz must be (nzones_local, ndof_per_zone, dim)")
        # J[z,k,d,e] = sum_i x[z,i,d] * dW_i/dX_e (q_k)
        jac = np.einsum("zid,kie->zkde", xz, self.grad_table, optimize=True)
        return GeometryAtPoints(jac)

    def physical_points(self, node_coords: np.ndarray) -> np.ndarray:
        """Quadrature point positions in physical space (nz, nqp, dim)."""
        vals = self.space.element.tabulate(self.quad.points)  # (nqp, ndz)
        xz = self.space.gather(node_coords)
        return np.einsum("ki,zid->zkd", vals, xz)

    def zone_volumes(self, node_coords: np.ndarray) -> np.ndarray:
        """Quadrature-exact volume of each zone."""
        geo = self.evaluate(node_coords)
        return np.einsum("k,zk->z", self.quad.weights, geo.det)
