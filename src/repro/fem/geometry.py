"""Batched geometry evaluation at quadrature points.

Evaluates, for every zone z and quadrature point q_k, the Jacobian
J_z(q_k) of the (moving, curvilinear) parametric map, its determinant
|J_z| ("local volume" in the paper) and adjugate. These are exactly the
quantities kernels 1 and 3 produce on the GPU; here they are plain
batched einsum contractions over the precomputed reference gradient
tables.

Hot-path support: `evaluate_local` accepts preallocated output buffers
(`jac_out`/`det_out`/`adj_out`) so the corner-force engine can evaluate
geometry with zero steady-state allocations, and `GeometryAtPoints`
instances can be frozen (read-only views) once they enter the engine's
per-stage cache — any consumer that tries to scribble on cached geometry
gets a loud ValueError instead of silently corrupting every other
consumer of the same stage.
"""

from __future__ import annotations

import numpy as np

from repro.fem.quadrature import QuadratureRule
from repro.fem.spaces import H1Space
from repro.linalg.smallmat import batched_adjugate, batched_det

__all__ = ["GeometryEvaluator", "GeometryAtPoints"]


class GeometryAtPoints:
    """Per-zone, per-point geometric data.

    Attributes (all batched over (nzones, nqp, ...)):
      jac      : Jacobians (dim, dim), jac[d, e] = d x_d / d X_e
      det      : |J| determinants
      adj      : adjugates, adj @ J = det * I

    `det`/`adj` may be passed precomputed (hot path writing into
    workspace buffers); when omitted they are derived from `jac` here.
    """

    def __init__(
        self,
        jac: np.ndarray,
        det: np.ndarray | None = None,
        adj: np.ndarray | None = None,
    ):
        self.jac = jac
        self.det = batched_det(jac) if det is None else det
        self.adj = batched_adjugate(jac) if adj is None else adj
        self._inv: np.ndarray | None = None

    @property
    def inv(self) -> np.ndarray:
        """Inverse Jacobians (lazy; adj/det is used on the hot path)."""
        if self._inv is None:
            self._inv = self.adj / self.det[..., None, None]
        return self._inv

    def set_inv(self, inv: np.ndarray) -> None:
        """Attach a precomputed inverse (hot path reuses one division)."""
        self._inv = inv

    def freeze(self) -> "GeometryAtPoints":
        """Mark every array read-only (guards the engine's geometry cache)."""
        for arr in (self.jac, self.det, self.adj, self._inv):
            if arr is not None:
                arr.setflags(write=False)
        return self

    def check_valid(self) -> bool:
        """True when every point has positive volume (untangled mesh)."""
        return bool(np.all(self.det > 0.0))


class GeometryEvaluator:
    """Evaluates Jacobians of the H1 position field at fixed points.

    The reference gradient table is tabulated once per (space, rule)
    pair — the time-constant part — while `evaluate(x)` is called every
    stage with the current node positions.
    """

    def __init__(self, space: H1Space, quad: QuadratureRule):
        if quad.dim != space.dim:
            raise ValueError("quadrature/space dimension mismatch")
        self.space = space
        self.quad = quad
        # (nqp, ndz, dim)
        self.grad_table = space.element.tabulate_grad(quad.points)

    def evaluate(self, node_coords: np.ndarray) -> GeometryAtPoints:
        """Geometry from global H1 node coordinates (ndof, dim)."""
        xz = self.space.gather(node_coords)  # (nz, ndz, dim)
        return self.evaluate_local(xz)

    def evaluate_local(
        self,
        xz: np.ndarray,
        jac_out: np.ndarray | None = None,
        det_out: np.ndarray | None = None,
        adj_out: np.ndarray | None = None,
    ) -> GeometryAtPoints:
        """Geometry from zone-local coordinates (nz, ndz, dim).

        The `*_out` buffers (hot path) must have the batched shapes
        (nz, nqp, dim, dim) / (nz, nqp); results are bitwise identical
        with and without them.
        """
        xz = np.asarray(xz, dtype=np.float64)
        if xz.ndim != 3 or xz.shape[1] != self.space.ndof_per_zone:
            raise ValueError("xz must be (nzones_local, ndof_per_zone, dim)")
        # J[z,k,d,e] = sum_i x[z,i,d] * dW_i/dX_e (q_k)
        if jac_out is None:
            jac = np.einsum("zid,kie->zkde", xz, self.grad_table, optimize=True)
        else:
            np.einsum("zid,kie->zkde", xz, self.grad_table, out=jac_out, optimize=True)
            jac = jac_out
        det = batched_det(jac, out=det_out)
        adj = batched_adjugate(jac, out=adj_out)
        return GeometryAtPoints(jac, det=det, adj=adj)

    def physical_points(self, node_coords: np.ndarray) -> np.ndarray:
        """Quadrature point positions in physical space (nz, nqp, dim)."""
        vals = self.space.element.tabulate(self.quad.points)  # (nqp, ndz)
        xz = self.space.gather(node_coords)
        return np.einsum("ki,zid->zkd", vals, xz, optimize=True)

    def zone_volumes(self, node_coords: np.ndarray) -> np.ndarray:
        """Quadrature-exact volume of each zone."""
        geo = self.evaluate(node_coords)
        return np.einsum("k,zk->z", self.quad.weights, geo.det, optimize=True)
