"""Machine descriptions for the scaling experiments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.specs import CPUSpec, get_cpu
from repro.gpu.specs import GPUSpec, get_gpu
from repro.runtime.mpi_sim import CommCostModel

__all__ = ["MachineSpec", "TITAN", "SHANNON"]


@dataclass(frozen=True)
class MachineSpec:
    """A cluster: nodes of (CPU packages + GPUs) on an interconnect."""

    name: str
    max_nodes: int
    cpu: CPUSpec
    cpu_packages_per_node: int
    gpu: GPUSpec | None
    gpus_per_node: int
    comm: CommCostModel

    def node_count_valid(self, nodes: int) -> bool:
        return 1 <= nodes <= self.max_nodes


# ORNL Titan: 16-core AMD Opteron 6274 + one K20m per node, Gemini
# 3D-torus interconnect. The communication constants were fitted once
# to the paper's two published endpoints (5 cycles: 0.85 s at 8 nodes,
# 1.83 s at 4096 nodes) and reproduce the whole log-shaped curve.
TITAN = MachineSpec(
    name="Titan",
    max_nodes=18688,
    cpu=get_cpu("OPTERON-6274"),
    cpu_packages_per_node=1,
    gpu=get_gpu("K20m"),
    gpus_per_node=1,
    comm=CommCostModel(alpha_s=8e-6, beta_s_per_byte=1.0 / 3.2e9),
)

# SNL Shannon: dual E5-2670 + dual K20m per node, InfiniBand FDR.
SHANNON = MachineSpec(
    name="Shannon",
    max_nodes=30,
    cpu=get_cpu("E5-2670"),
    cpu_packages_per_node=2,
    gpu=get_gpu("K20m"),
    gpus_per_node=2,
    comm=CommCostModel(alpha_s=2e-6, beta_s_per_byte=1.0 / 6e9),
)
