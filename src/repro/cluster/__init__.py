"""Cluster-scale machine models and scaling simulators.

Models ORNL Titan (weak scaling to 4096 nodes, Figure 12) and SNL
Shannon (strong scaling, Figure 13): per-node compute from the
CPU/GPU substrate plus an alpha-beta-log(P) interconnect model whose
limiting term — the global min-dt reduction and MFEM's group exchanges
— matches the paper's stated bottleneck.
"""

from repro.cluster.machines import MachineSpec, TITAN, SHANNON
from repro.cluster.scaling import (
    ScalingPoint,
    weak_scaling,
    strong_scaling,
)

__all__ = [
    "MachineSpec",
    "TITAN",
    "SHANNON",
    "ScalingPoint",
    "weak_scaling",
    "strong_scaling",
]
