"""Weak and strong scaling simulators (Figures 12-13).

Weak scaling follows the paper's Titan setup: 512 zones per node, 8x
more nodes per refinement level, time reported for 5 cycles. "The
limiting factor is the MPI global reduction to find the minimum time
step after corner force computation and MPI communication in MFEM" —
modelled as a per-cycle synchronization term growing with log2(nodes)
(tree reductions, amplified by system noise and group setup), whose
coefficient is fitted once to the paper's two published endpoints
(0.85 s at 8 nodes, 1.83 s at 4096; the interior of the curve is then
a prediction).

Strong scaling (Shannon) divides a fixed domain across nodes until the
per-node compute no longer dominates the communication floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machines import MachineSpec
from repro.kernels.config import FEConfig
from repro.runtime.hybrid import HybridExecutor

__all__ = ["ScalingPoint", "weak_scaling", "strong_scaling",
           "TITAN_SYNC_AMPLIFICATION_S", "TITAN_NODE_CYCLE_S"]

# Fitted to the paper's Figure 12 endpoints (per cycle, per log2(P)).
TITAN_SYNC_AMPLIFICATION_S = 0.0218
# Per-node, per-cycle compute+local time on Titan at 512 zones/node,
# from the same fit (t(P) = base + amp * log2(P)).
TITAN_NODE_CYCLE_S = 0.1046


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve."""

    nodes: int
    time_s: float
    efficiency: float  # weak: t(base)/t(P); strong: speedup/(P/P0)


def _node_step_time(
    machine: MachineSpec, zones_per_node: int, order: int, pcg_iterations: float
) -> float:
    """Hybrid per-step time of one node's share of the domain."""
    cfg = FEConfig(dim=3, order=order, nzones=zones_per_node)
    ex = HybridExecutor(
        cfg,
        machine.cpu,
        machine.gpu,
        nmpi=machine.cpu.cores * machine.cpu_packages_per_node,
        packages=machine.cpu_packages_per_node,
        pcg_iterations=pcg_iterations,
    )
    return ex.hybrid().step.total_s


def weak_scaling(
    machine: MachineSpec,
    node_counts: list[int],
    zones_per_node: int = 512,
    order: int = 2,
    cycles: int = 5,
    pcg_iterations: float = 30.0,
    node_cycle_s: float | None = None,
    sync_amplification_s: float | None = None,
) -> list[ScalingPoint]:
    """Fixed work per node; time grows only through synchronization.

    `node_cycle_s` / `sync_amplification_s` default to the Titan-fitted
    constants when the machine is Titan-like, otherwise to the modelled
    per-node time and the pure alpha-beta reduction cost.
    """
    if not node_counts:
        raise ValueError("need at least one node count")
    if any(not machine.node_count_valid(n) for n in node_counts):
        raise ValueError(f"node count out of range for {machine.name}")
    if node_cycle_s is None:
        node_cycle_s = _node_step_time(machine, zones_per_node, order, pcg_iterations)
    if sync_amplification_s is None:
        sync_amplification_s = TITAN_SYNC_AMPLIFICATION_S if machine.name == "Titan" else 0.0
    pts = []
    base_time = None
    for nodes in sorted(node_counts):
        ranks = nodes  # one GPU-driving task per node at scale
        t_reduce = machine.comm.allreduce_time(ranks, 8.0)
        t_sync = sync_amplification_s * np.log2(max(ranks, 2))
        t_cycle = node_cycle_s + t_reduce + t_sync
        total = cycles * t_cycle
        if base_time is None:
            base_time = total
        pts.append(ScalingPoint(nodes, total, base_time / total))
    return pts


def strong_scaling(
    machine: MachineSpec,
    total_zones: int,
    node_counts: list[int],
    order: int = 2,
    cycles: int = 1,
    pcg_iterations: float = 30.0,
    node_cycle_fn=None,
    sync_amplification_s: float = 0.0,
) -> list[ScalingPoint]:
    """Fixed total domain divided across nodes.

    `node_cycle_fn(zones_local) -> seconds` overrides the hybrid
    hardware model for the per-node compute time — the functional
    scaling bench passes its *measured* per-zone step cost here so the
    analytic curve and the measured one share a compute baseline and
    differ only in the communication terms. `sync_amplification_s` adds
    the same log2(P) synchronization-noise term `weak_scaling` models
    (fitted per machine; 0 keeps the historical pure alpha-beta curve).
    """
    if not node_counts:
        raise ValueError("need at least one node count")
    if any(not machine.node_count_valid(n) for n in node_counts):
        raise ValueError(f"node count out of range for {machine.name}")
    if total_zones < max(node_counts):
        raise ValueError("fewer zones than nodes")
    pts = []
    base = None
    for nodes in sorted(node_counts):
        local = max(1, total_zones // nodes)
        if node_cycle_fn is not None:
            t_comp = float(node_cycle_fn(local))
        else:
            t_comp = _node_step_time(machine, local, order, pcg_iterations)
        # Surface exchange: interface dofs of a cubic subdomain.
        side = local ** (1.0 / 3.0)
        interface_dofs = 6.0 * (order * side + 1) ** 2
        t_comm = machine.comm.allreduce_time(nodes, 8.0)
        t_comm += machine.comm.neighbor_exchange_time(8.0 * 3 * interface_dofs, 6)
        t_comm += sync_amplification_s * np.log2(max(nodes, 2))
        t = cycles * (t_comp + t_comm)
        if base is None:
            base = (nodes, t)
        ideal = base[1] * base[0] / nodes
        pts.append(ScalingPoint(nodes, t, ideal / t))
    return pts
