"""`repro.api` — the one-call facade over the whole stack.

Four PRs of growth produced a solver, a distributed solver, a
zone-parallel executor, a resilience driver and a telemetry subsystem,
each with its own constructor dance. This module composes all of them
from a single frozen `RunConfig`:

    from repro.api import RunConfig, run

    report = run("sedov", RunConfig(zones=8, t_final=0.2))
    print(report.manifest.summary())

`run` picks the serial or distributed solver (`ranks`) and the
execution backend (`backend="cpu-serial" | "cpu-fused" |
"cpu-parallel" | "hybrid"`; the deprecated `engine` / `workers`
spellings still resolve), runs the in-band tuning scheduler for hybrid
runs, wraps the run in the `ResilientDriver` when resilience knobs are set
(`faults` / `checkpoint_every` / `offload_device`), attaches the
telemetry tracer + counter sampler when asked (`telemetry` /
`trace_path` / `metrics_path`), handles checkpoint restore and VTK /
checkpoint output, and returns everything as one `RunReport`.

With telemetry disabled the facade is pure plumbing: it builds exactly
the objects the manual wiring would and the physics is bit-for-bit
identical (tests assert this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import RunConfig, _internal_construction

__all__ = ["RunConfig", "RunReport", "make_problem", "run"]

PROBLEM_NAMES = ("sedov", "triple-pt", "taylor-green", "noh", "saltzman", "sod")


def make_problem(name: str, config: RunConfig | None = None):
    """Build a benchmark problem by CLI name from a `RunConfig`.

    Uses the config's `dim` / `order` / `zones` fields with each
    problem's conventional aspect handling (the same mapping the CLI
    has always used).
    """
    cfg = config or RunConfig()
    from repro.problems import (
        NohProblem,
        SaltzmanProblem,
        SedovProblem,
        SodProblem,
        TaylorGreenProblem,
        TriplePointProblem,
    )

    if name == "sedov":
        return SedovProblem(dim=cfg.dim, order=cfg.order, zones_per_dim=cfg.zones)
    if name == "noh":
        return NohProblem(dim=cfg.dim, order=cfg.order, zones_per_dim=cfg.zones)
    if name == "triple-pt":
        return TriplePointProblem(order=cfg.order, nx=cfg.zones * 2, ny=cfg.zones)
    if name == "taylor-green":
        return TaylorGreenProblem(order=cfg.order, zones_per_dim=cfg.zones)
    if name == "saltzman":
        return SaltzmanProblem(order=cfg.order, nx=cfg.zones * 2,
                               ny=max(cfg.zones // 4, 2))
    if name == "sod":
        return SodProblem(order=cfg.order, nx=cfg.zones * 5, ny=1)
    raise ValueError(f"unknown problem '{name}' (choose from {PROBLEM_NAMES})")


@dataclass
class RunReport:
    """Everything one `repro.api.run` produced.

    `result` is the plain `RunResult` (physics), `manifest` the
    machine-readable `RunManifest` summary, `solver` the (serial) solver
    for follow-up diagnostics (density profiles, energies), `recovery`
    the `RecoveryReport` when the run was resilient, `tracer`/`sampler`
    the telemetry pair when it was traced, `mpi_traffic` the simulated
    communicator totals when it was distributed.
    """

    problem: object
    config: RunConfig
    result: object
    manifest: object
    solver: object = field(repr=False, default=None)
    recovery: object = None
    tracer: object = field(repr=False, default=None)
    sampler: object = field(repr=False, default=None)
    mpi_traffic: object = None
    vtk_path: object = None
    checkpoint_path: object = None
    executor_workers: int | None = None
    #: `repro.sched.SchedulerReport` when the run scheduled in-band
    #: (backend="hybrid"), else None.
    scheduler: object = None

    # -- convenience views over the result -------------------------------------

    @property
    def state(self):
        return self.result.state

    @property
    def steps(self) -> int:
        return self.result.steps

    @property
    def reached_t_final(self) -> bool:
        return self.result.reached_t_final

    @property
    def energy_change(self) -> float:
        return self.result.energy_change

    @property
    def phase_timings(self) -> dict:
        return dict(self.manifest.phases)

    def summary(self) -> str:
        return self.manifest.summary()


def _build_telemetry(cfg: RunConfig):
    """The tracer + sampler pair for a telemetry-enabled config."""
    from repro.telemetry import CounterSampler, Tracer

    tracer = Tracer()
    sampler = CounterSampler(
        cpu=cfg.telemetry_cpu,
        gpu=cfg.telemetry_gpu,
        period_s=cfg.sample_period_s,
    )
    tracer.add_listener(sampler)
    return tracer, sampler


def _build_resilience(cfg: RunConfig, solver, inner, tracer):
    """Assemble the `ResilientDriver` stack from the config."""
    from repro.resilience import (
        FaultInjector,
        GpuOffloadPricer,
        ResilientDriver,
        parse_fault_specs,
    )

    injector = None
    if cfg.faults:
        injector = FaultInjector(parse_fault_specs(cfg.faults), seed=cfg.fault_seed)
    offload = None
    # A hybrid-backend run is already a (priced) GPU offload: resilience
    # then prices faults on the same device without needing the
    # deprecated offload_device spelling.
    offload_device = cfg.offload_device or (
        cfg.hybrid_device if cfg.resolved_backend == "hybrid" else None
    )
    if offload_device:
        from repro.cpu import get_cpu
        from repro.gpu import get_gpu
        from repro.kernels import FEConfig
        from repro.runtime.hybrid import HybridExecutor

        fe_cfg = FEConfig.from_solver(inner)
        executor = HybridExecutor(
            fe_cfg, get_cpu(cfg.telemetry_cpu), get_gpu(offload_device),
            nmpi=max(cfg.ranks, 1),
        )
        offload = GpuOffloadPricer(executor, injector=injector)
    with _internal_construction():
        return ResilientDriver(
            solver,
            injector=injector,
            checkpoint_every=cfg.checkpoint_every or 25,
            checkpoint_dir=cfg.checkpoint_dir,
            checkpoint_keep=cfg.checkpoint_keep,
            offload=offload,
            tracer=tracer,
        )


def run(problem, config: RunConfig | None = None, **overrides) -> RunReport:
    """Run one problem end to end from a single `RunConfig`.

    Parameters
    ----------
    problem : a problem object, or one of the CLI names
        ("sedov", "noh", "triple-pt", "taylor-green", "saltzman", "sod")
        to be built via `make_problem` from the config's mesh fields.
    config : the `RunConfig`; defaults to `RunConfig()`.
    **overrides : field overrides applied on top of `config`
        (`run("sedov", t_final=0.1)` is `config.replace(t_final=0.1)`).
    """
    cfg = (config or RunConfig()).replace(**overrides) if overrides else (config or RunConfig())
    if isinstance(problem, str):
        problem = make_problem(problem, cfg)

    tracer = sampler = None
    if cfg.telemetry_enabled:
        tracer, sampler = _build_telemetry(cfg)

    from repro.hydro.solver import LagrangianHydroSolver

    options = cfg.to_solver_options()
    # `ranks` composes with every backend: the solver wraps the resolved
    # node backend in the distributed backend when options.ranks > 0,
    # and the time loop / telemetry / resilience paths are the standard
    # ones in all cases.
    solver = LagrangianHydroSolver(problem, options, tracer=tracer)
    inner = solver

    if cfg.restore:
        from repro.io import restore_solver

        restore_solver(cfg.restore, inner)

    recovery = None
    try:
        if cfg.resilient:
            driver = _build_resilience(cfg, solver, inner, tracer)
            rres = driver.run(t_final=cfg.t_final)
            result = rres.result
            recovery = rres.report
            phase_timings = driver.timers.to_dict()
        else:
            result = solver.run(t_final=cfg.t_final)
            phase_timings = inner.timers.to_dict()

        comm = getattr(solver.backend, "comm", None)
        mpi_traffic = comm.traffic if comm is not None else None
        executor_workers = (
            inner.executor.workers if getattr(inner, "executor", None) else None
        )
        # Persistent-pool amortization stats (dispatches, mean wake-up
        # latency) and any elastic-rank transitions, for the manifest.
        executor_stats = (
            inner.executor.stats()
            if getattr(inner, "executor", None) is not None
            and hasattr(inner.executor, "stats")
            else None
        )
        rank_history = list(getattr(solver.backend, "rank_history", []) or [])
        scheduler_report = (
            inner.scheduler.report
            if getattr(inner, "scheduler", None) is not None
            else None
        )

        vtk_path = checkpoint_path = None
        if cfg.vtk:
            from repro.io import write_vtk

            inner.state = result.state
            vtk_path = write_vtk(cfg.vtk, inner, state=result.state)
        if cfg.checkpoint:
            from repro.io import save_checkpoint

            inner.state = result.state
            checkpoint_path = save_checkpoint(cfg.checkpoint, inner, state=result.state)
    finally:
        inner.close()

    if tracer is not None:
        tracer.finish()
        if cfg.trace_path:
            from repro.telemetry import write_chrome_trace

            write_chrome_trace(cfg.trace_path, tracer, sampler)
        if cfg.metrics_path:
            from repro.telemetry import write_jsonl

            write_jsonl(cfg.metrics_path, tracer, sampler)

    from repro.telemetry import RunManifest

    solver_info = {
        "phase_timings": phase_timings,
        # The resolved (ranks, backend, workers) execution triple — what
        # actually ran, after the legacy spellings resolved.
        "execution": cfg.resolved_execution,
    }
    if scheduler_report is not None:
        # The in-band campaign's identity: what it minimized, how it
        # searched, and how much of the space it actually priced.
        solver_info["tuning"] = {
            "objective": scheduler_report.objective,
            "strategy": scheduler_report.strategy,
            "evaluations": scheduler_report.evaluations,
            "feasible_points": scheduler_report.feasible_points,
            "warm_started": scheduler_report.warm_started,
            "converged": scheduler_report.converged,
        }
    if executor_stats is not None:
        solver_info["worker_pool"] = executor_stats
    if mpi_traffic is not None:
        solver_info["mpi_traffic"] = {
            "messages": mpi_traffic.messages,
            "bytes": mpi_traffic.bytes,
            "reductions": mpi_traffic.reductions,
            "per_rank": mpi_traffic.per_rank_dict(),
        }
    if rank_history:
        solver_info["rank_history"] = rank_history
    arena = getattr(inner, "arena", None)
    if arena is not None:
        # Workspace pool accounting: lease/release counters plus the
        # high-water footprint the run actually touched.
        solver_info["arena"] = arena.stats()
    manifest = RunManifest.from_run(
        problem, cfg, result,
        recovery=recovery, tracer=tracer, sampler=sampler,
        solver_info=solver_info,
    )
    return RunReport(
        problem=problem,
        config=cfg,
        result=result,
        manifest=manifest,
        solver=inner,
        recovery=recovery,
        tracer=tracer,
        sampler=sampler,
        mpi_traffic=mpi_traffic,
        vtk_path=vtk_path,
        checkpoint_path=checkpoint_path,
        executor_workers=executor_workers,
        scheduler=scheduler_report,
    )
