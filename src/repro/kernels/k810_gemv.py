"""Kernels 8 and 10: batched DGEMV.

Kernel 8 computes -F.1 (each thread block contracts its zone's Fz
against the ones vector and contributes a slice of the momentum RHS);
kernel 10 computes F^T v for the energy equation. CUBLAS has no batched
DGEMV, so the paper's comparison baseline is cublasDgemv in one stream
per zone — 90x slower than the custom kernel (Table 4).

These kernels stream each Fz exactly once, so they sit on the DRAM
roofline: 2 flops per 8-byte element read gives bandwidth/4 Gflop/s
peak (35.5 on C2050 for the Table 4 shape); the custom kernel reaches
about half of that ("achieving 50% of theoretical peak").
"""

from __future__ import annotations

import numpy as np

from repro.gpu.execution import KernelCost
from repro.gpu.specs import GPUSpec
from repro.kernels.config import FEConfig

__all__ = [
    "batched_dgemv_cost",
    "kernel8_cost",
    "kernel10_cost",
    "batched_dgemv_roofline_gflops",
    "run_kernel8",
    "run_kernel10",
]


def batched_dgemv_roofline_gflops(spec: GPUSpec, m: int, n: int) -> float:
    """Theoretical peak of batched m x n DGEMV (matrix read once)."""
    if min(m, n) < 1:
        raise ValueError("sizes must be positive")
    # 2mn flops over 8(mn + m + n) bytes.
    intensity = 2.0 * m * n / (8.0 * (m * n + m + n))
    return spec.mem_bandwidth_gbs * intensity


def batched_dgemv_cost(batches: int, m: int, n: int, transpose: bool = False) -> KernelCost:
    """The custom one-block-per-zone batched DGEMV."""
    if min(batches, m, n) < 1:
        raise ValueError("sizes must be positive")
    flops = 2.0 * batches * m * n
    dram = 8.0 * batches * (m * n + m + n)
    name = "kernel_dgemvt" if transpose else "kernel_loop_zones_dv_dt"
    return KernelCost(
        name=name,
        flops=flops,
        dram_bytes=dram,
        shared_bytes=8.0 * batches * (m if transpose else n) * 4,
        threads_per_block=128,
        blocks=batches,
        regs_per_thread=24,
        shared_per_block=8 * (n if not transpose else m) + 1024,
        compute_efficiency=0.5,
        # ~50% of the DRAM roofline: reduction overheads and partial
        # coalescing on the row-major matrix slices.
        dram_efficiency=0.58,
    )


def kernel8_cost(cfg: FEConfig) -> KernelCost:
    """-F.1 over all zones: batches of (N*dim) x P GEMV."""
    return batched_dgemv_cost(cfg.nzones, cfg.vector_rows, cfg.ndof_thermo_zone)


def kernel10_cost(cfg: FEConfig) -> KernelCost:
    """F^T v over all zones (transposed batched GEMV)."""
    return batched_dgemv_cost(
        cfg.nzones, cfg.vector_rows, cfg.ndof_thermo_zone, transpose=True
    )


def run_kernel8(engine, Fz: np.ndarray) -> np.ndarray:
    """Functional -F.1 (per-zone contributions)."""
    return engine.force_times_one(Fz)


def run_kernel10(engine, Fz: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Functional F^T v (flat thermodynamic layout)."""
    return engine.force_transpose_times_v(Fz, v)
