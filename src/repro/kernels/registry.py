"""Kernel registry and whole-pass cost pipelines.

Assembles the per-kernel cost descriptors into the two corner-force
pipelines the paper compares in Figure 6:

* base      — kernel_loop_quadrature_point + kernels 7, 8, 10
* optimized — kernels 1-6 (registers, shared memory, tuned) + 7 (v3)
              + 8, 10

plus the PCG (kernel 9) and energy SpMV (kernel 11) mixes.
"""

from __future__ import annotations

from repro.gpu.execution import KernelCost
from repro.kernels.base import KERNEL_TABLE, KernelSpec
from repro.kernels.base_quadloop import base_quadloop_cost
from repro.kernels.config import FEConfig
from repro.kernels.k11_spmv import kernel11_cost
from repro.kernels.k12_pointwise import kernel1_cost, kernel2_cost
from repro.kernels.k34_custom_gemm import kernel3_cost, kernel4_cost
from repro.kernels.k56_dgemm_batched import kernel5_cost, kernel6_cost
from repro.kernels.k7_force import kernel7_cost
from repro.kernels.k810_gemv import kernel10_cost, kernel8_cost
from repro.kernels.k9_pcg import pcg_step_costs

__all__ = [
    "all_kernels",
    "get_kernel",
    "kernel_span_labels",
    "corner_force_costs",
    "full_step_costs",
]


def all_kernels() -> tuple[KernelSpec, ...]:
    """The Table 2 inventory."""
    return KERNEL_TABLE


def get_kernel(number: int) -> KernelSpec:
    """Look up one kernel's Table 2 row by its number (1-11)."""
    for spec in KERNEL_TABLE:
        if spec.number == number:
            return spec
    raise KeyError(f"no kernel number {number} in Table 2")


def kernel_span_labels() -> dict[int, str]:
    """Table 2 number -> telemetry span name, for trace consumers.

    The live tracer (`repro.telemetry`) names kernel-category spans
    after Table 2 rows; this mapping lets analysis code join trace
    spans back onto the cost-model inventory without string guessing.
    """
    return {spec.number: spec.span_label for spec in KERNEL_TABLE}


def corner_force_costs(
    cfg: FEConfig,
    implementation: str = "optimized",
    matrices_per_block: int | None = None,
    block_cols: int | None = None,
) -> list[KernelCost]:
    """Kernel mix of one corner-force evaluation.

    implementation: 'optimized' (the redesign, tuned versions) or
    'base' (the monolithic quadrature-point loop; kernels 7/8/10 at
    their naive versions). Tuning parameters default to the largest
    feasible values for the FE order — what the autotuner converges to.
    """
    from repro.kernels.k34_custom_gemm import feasible_matrices_per_block
    from repro.kernels.k7_force import feasible_block_cols

    if matrices_per_block is None:
        matrices_per_block = feasible_matrices_per_block(cfg)
    if block_cols is None:
        block_cols = feasible_block_cols(cfg)
    if implementation == "base":
        return [
            base_quadloop_cost(cfg),
            kernel7_cost(cfg, version="v1"),
            kernel8_cost(cfg),
            kernel10_cost(cfg),
        ]
    if implementation == "optimized":
        return [
            kernel1_cost(cfg, version="register"),
            kernel2_cost(cfg, version="register"),
            kernel3_cost(cfg, version="v3", matrices_per_block=matrices_per_block),
            kernel4_cost(cfg, version="v3", matrices_per_block=matrices_per_block),
            # Kernel 5 is called twice per step (Figure 6 note).
            kernel5_cost(cfg, version="tuned", matrices_per_block=matrices_per_block),
            kernel5_cost(cfg, version="tuned", matrices_per_block=matrices_per_block),
            kernel6_cost(cfg, version="tuned", matrices_per_block=matrices_per_block),
            kernel7_cost(cfg, version="v3", block_cols=block_cols),
            kernel8_cost(cfg),
            kernel10_cost(cfg),
        ]
    raise ValueError(f"unknown implementation '{implementation}' (base|optimized)")


def full_step_costs(
    cfg: FEConfig,
    pcg_iterations: float,
    implementation: str = "optimized",
    mass_nnz: float | None = None,
    stages: int = 2,
    use_cuda_pcg: bool = True,
) -> list[KernelCost]:
    """Kernel mix of one full RK2 time step on the GPU.

    Each stage evaluates corner forces and the energy SpMV; the
    momentum PCG (kernel 9) runs per stage per velocity component when
    `use_cuda_pcg` (single-MPI configuration).
    """
    if stages < 1:
        raise ValueError("stages must be >= 1")
    costs: list[KernelCost] = []
    for _ in range(stages):
        costs.extend(corner_force_costs(cfg, implementation))
        if use_cuda_pcg:
            costs.extend(
                pcg_step_costs(cfg, pcg_iterations, mass_nnz=mass_nnz, solves=cfg.dim)
            )
        costs.append(kernel11_cost(cfg))
    return costs
