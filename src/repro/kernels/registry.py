"""Kernel registry and whole-pass cost pipelines.

Assembles the per-kernel cost descriptors into the two corner-force
pipelines the paper compares in Figure 6:

* base      — kernel_loop_quadrature_point + kernels 7, 8, 10
* optimized — kernels 1-6 (registers, shared memory, tuned) + 7 (v3)
              + 8, 10

plus the PCG (kernel 9) and energy SpMV (kernel 11) mixes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.execution import KernelCost
from repro.kernels.base import KERNEL_TABLE, KernelSpec
from repro.kernels.base_quadloop import base_quadloop_cost
from repro.kernels.config import FEConfig
from repro.kernels.k11_spmv import kernel11_cost
from repro.kernels.k12_pointwise import kernel1_cost, kernel2_cost
from repro.kernels.k34_custom_gemm import kernel3_cost, kernel4_cost
from repro.kernels.k56_dgemm_batched import kernel5_cost, kernel6_cost
from repro.kernels.k7_force import kernel7_cost
from repro.kernels.k810_gemv import kernel10_cost, kernel8_cost
from repro.kernels.k9_pcg import pcg_step_costs

__all__ = [
    "all_kernels",
    "get_kernel",
    "kernel_span_labels",
    "KernelSelection",
    "corner_force_costs",
    "full_step_costs",
]


@dataclass(frozen=True)
class KernelSelection:
    """Tuned kernel-version parameters for one FE configuration.

    This is the object an autotuning campaign (offline `repro tune
    campaign` or the in-band `repro.sched.OnlineScheduler`) produces and
    the cost pipelines consume: the per-kernel tile/block parameters the
    Section 3.2.1 sampling periods converge to. `None` fields fall back
    to the feasibility-derived defaults in `corner_force_costs`.
    """

    #: kernels 3/4 (custom shared-memory GEMM) matrices per thread block
    gemm_matrices_per_block: int | None = None
    #: kernels 5/6 (batched dgemm) matrices per thread block
    batched_matrices_per_block: int | None = None
    #: kernel 7 (corner-force assembly) column tile width
    block_cols: int | None = None

    @classmethod
    def from_winners(cls, winners: dict) -> "KernelSelection":
        """Build a selection from a campaign's winner map.

        `winners` maps campaign names to parameter dicts, e.g.
        ``{"kernel3": {"matrices_per_block": 8}, "kernel5": {...},
        "kernel7": {"block_cols": 16}}`` — the shape both the CLI
        campaigns and the scheduler's `TuningCache` entries use.
        """

        def param(kernel: str, name: str) -> int | None:
            entry = winners.get(kernel)
            if not isinstance(entry, dict):
                return None
            value = entry.get(name)
            return int(value) if value is not None else None

        return cls(
            gemm_matrices_per_block=param("kernel3", "matrices_per_block"),
            batched_matrices_per_block=param("kernel5", "matrices_per_block"),
            block_cols=param("kernel7", "block_cols"),
        )


def all_kernels() -> tuple[KernelSpec, ...]:
    """The Table 2 inventory."""
    return KERNEL_TABLE


def get_kernel(number: int) -> KernelSpec:
    """Look up one kernel's Table 2 row by its number (1-11)."""
    for spec in KERNEL_TABLE:
        if spec.number == number:
            return spec
    raise KeyError(f"no kernel number {number} in Table 2")


def kernel_span_labels() -> dict[int, str]:
    """Table 2 number -> telemetry span name, for trace consumers.

    The live tracer (`repro.telemetry`) names kernel-category spans
    after Table 2 rows; this mapping lets analysis code join trace
    spans back onto the cost-model inventory without string guessing.
    """
    return {spec.number: spec.span_label for spec in KERNEL_TABLE}


def corner_force_costs(
    cfg: FEConfig,
    implementation: str = "optimized",
    matrices_per_block: int | None = None,
    block_cols: int | None = None,
    selection: KernelSelection | None = None,
) -> list[KernelCost]:
    """Kernel mix of one corner-force evaluation.

    implementation: 'optimized' (the redesign, tuned versions) or
    'base' (the monolithic quadrature-point loop; kernels 7/8/10 at
    their naive versions). Tuning parameters default to the largest
    feasible values for the FE order — what the autotuner converges to.
    A `KernelSelection` (per-kernel-group tuned parameters from a
    campaign) takes precedence over the flat `matrices_per_block` /
    `block_cols` arguments, which remain for callers that tune one
    shared value.
    """
    from repro.kernels.k34_custom_gemm import feasible_matrices_per_block
    from repro.kernels.k7_force import feasible_block_cols

    gemm_mpb = batched_mpb = matrices_per_block
    if selection is not None:
        if selection.gemm_matrices_per_block is not None:
            gemm_mpb = selection.gemm_matrices_per_block
        if selection.batched_matrices_per_block is not None:
            batched_mpb = selection.batched_matrices_per_block
        if selection.block_cols is not None:
            block_cols = selection.block_cols
    if gemm_mpb is None:
        gemm_mpb = feasible_matrices_per_block(cfg)
    if batched_mpb is None:
        batched_mpb = feasible_matrices_per_block(cfg)
    if block_cols is None:
        block_cols = feasible_block_cols(cfg)
    if implementation == "base":
        return [
            base_quadloop_cost(cfg),
            kernel7_cost(cfg, version="v1"),
            kernel8_cost(cfg),
            kernel10_cost(cfg),
        ]
    if implementation == "optimized":
        return [
            kernel1_cost(cfg, version="register"),
            kernel2_cost(cfg, version="register"),
            kernel3_cost(cfg, version="v3", matrices_per_block=gemm_mpb),
            kernel4_cost(cfg, version="v3", matrices_per_block=gemm_mpb),
            # Kernel 5 is called twice per step (Figure 6 note).
            kernel5_cost(cfg, version="tuned", matrices_per_block=batched_mpb),
            kernel5_cost(cfg, version="tuned", matrices_per_block=batched_mpb),
            kernel6_cost(cfg, version="tuned", matrices_per_block=batched_mpb),
            kernel7_cost(cfg, version="v3", block_cols=block_cols),
            kernel8_cost(cfg),
            kernel10_cost(cfg),
        ]
    raise ValueError(f"unknown implementation '{implementation}' (base|optimized)")


def full_step_costs(
    cfg: FEConfig,
    pcg_iterations: float,
    implementation: str = "optimized",
    mass_nnz: float | None = None,
    stages: int = 2,
    use_cuda_pcg: bool = True,
) -> list[KernelCost]:
    """Kernel mix of one full RK2 time step on the GPU.

    Each stage evaluates corner forces and the energy SpMV; the
    momentum PCG (kernel 9) runs per stage per velocity component when
    `use_cuda_pcg` (single-MPI configuration).
    """
    if stages < 1:
        raise ValueError("stages must be >= 1")
    costs: list[KernelCost] = []
    for _ in range(stages):
        costs.extend(corner_force_costs(cfg, implementation))
        if use_cuda_pcg:
            costs.extend(
                pcg_step_costs(cfg, pcg_iterations, mass_nnz=mass_nnz, solves=cfg.dim)
            )
        costs.append(kernel11_cost(cfg))
    return costs
