"""Kernels 5-6: batched DGEMM of DIM x DIM matrices.

The auxiliary products multiplying Jacobians, basis-gradient slices and
stress tensors together (Section 3.1.1). All matrices are DIM x DIM, so
the arithmetic intensity is fixed at 2*DIM/3 flops per element moved —
which caps the achievable rate at bandwidth * 2*DIM/24 Gflop/s (35 and
52 on K20 for DIM 2 and 3; the paper's Section 3.2 derivation).

Versions:
* `v1`     — one matrix per thread block: the paper's "unaligned memory
             access problem in the case of one thread block reading one
             matrix size of 4 or 9".
* `tuned`  — `matrices_per_block` matrices per block (autotuned; 32 is
             the paper's winner, 98.3% occupancy, ~60% of the batched
             roofline).
* `cublas` — cublasDgemmBatched (1.3 Gflop/s on these shapes).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.execution import KernelCost
from repro.gpu.specs import GPUSpec
from repro.kernels.config import FEConfig
from repro.kernels.cublas import cublas_dgemm_batched_cost
from repro.linalg.batched import batched_gemm, batched_gemm_nt

__all__ = [
    "batched_dgemm_cost",
    "kernel5_cost",
    "kernel6_cost",
    "batched_dgemm_roofline_gflops",
    "run_kernel5",
    "run_kernel6",
]


def batched_dgemm_roofline_gflops(spec: GPUSpec, dim: int) -> float:
    """Theoretical peak of DIM x DIM batched DGEMM on `spec`.

    bandwidth / 8 doubles per second, times 2*DIM/3 flops per element —
    the paper's 35 / 52 Gflop/s for K20.
    """
    if dim not in (2, 3):
        raise ValueError("dim must be 2 or 3")
    return spec.mem_bandwidth_gbs / 8.0 * (2.0 * dim / 3.0)


def batched_dgemm_cost(
    batches: int,
    dim: int,
    version: str = "tuned",
    matrices_per_block: int = 32,
    transpose_b: bool = False,
) -> KernelCost:
    """Cost of `batches` DIM x DIM GEMMs under the chosen version."""
    if batches < 1:
        raise ValueError("batches must be >= 1")
    if dim not in (2, 3):
        raise ValueError("dim must be 2 or 3")
    if matrices_per_block < 1:
        raise ValueError("matrices_per_block must be >= 1")
    tag = "NT" if transpose_b else "NN"
    flops = 2.0 * batches * dim**3
    io_bytes = 8.0 * batches * 3 * dim * dim
    if version == "cublas":
        return cublas_dgemm_batched_cost(batches, dim, dim, dim)
    if version == "v1":
        # One matrix per block: a 4- or 9-element read per block cannot
        # coalesce; most of each 128-byte transaction is wasted.
        return KernelCost(
            name=f"kernel_{tag}_dgemmBatched[v1]",
            flops=flops,
            dram_bytes=io_bytes,
            threads_per_block=dim * dim,
            blocks=batches,
            regs_per_thread=24,
            shared_per_block=3 * dim * dim * 8,
            compute_efficiency=0.3,
            dram_efficiency=0.12,
            latency_bound_factor=1.3,
        )
    if version == "tuned":
        m = matrices_per_block
        # 1D thread layout for coalesced loads, 2D for the multiply;
        # m matrices share one block.
        threads = min(1024, max(32, m * dim * dim))
        return KernelCost(
            name=f"kernel_{tag}_dgemmBatched[tuned,m={m}]",
            flops=flops,
            dram_bytes=io_bytes,
            shared_bytes=flops * 8.0,
            threads_per_block=threads,
            blocks=max(1, batches // m),
            regs_per_thread=24,
            shared_per_block=m * 3 * dim * dim * 8,
            compute_efficiency=0.6,
            dram_efficiency=0.62,
        )
    raise ValueError(f"unknown version '{version}' (v1|tuned|cublas)")


def kernel5_cost(cfg: FEConfig, version: str = "tuned", matrices_per_block: int = 32) -> KernelCost:
    """NN-variant over all quadrature points (called twice per step)."""
    return batched_dgemm_cost(cfg.npoints, cfg.dim, version, matrices_per_block, transpose_b=False)


def kernel6_cost(cfg: FEConfig, version: str = "tuned", matrices_per_block: int = 32) -> KernelCost:
    """NT-variant over all quadrature points."""
    return batched_dgemm_cost(cfg.npoints, cfg.dim, version, matrices_per_block, transpose_b=True)


def run_kernel5(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Functional NN batched DGEMM."""
    return batched_gemm(a, b)


def run_kernel6(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Functional NT batched DGEMM."""
    return batched_gemm_nt(a, b)
