"""Vendor-library baseline performance models.

The paper compares its custom kernels against CUBLAS:

* `cublasDgemmBatched` on DIM x DIM batches "has exactly the same
  purpose but only achieves 1.3 Gflop/s" (Section 3.2) — tuned for
  large matrices, it cannot keep the device busy on 2x2/3x3 batches;
* batched DGEMV emulated by `cublasDgemv` in one stream per zone, "as
  recommended in the User Guide", reaches 0.2 Gflop/s against the
  custom kernel's 18 (Table 4) — per-call launch latency dominates.

These are *measured-baseline* models: the paper reports the numbers and
we encode the mechanism (launch-bound throughput) that produces them.
"""

from __future__ import annotations

from repro.gpu.execution import KERNEL_LAUNCH_OVERHEAD_S, KernelCost
from repro.gpu.specs import GPUSpec

__all__ = [
    "cublas_dgemm_batched_cost",
    "streamed_cublas_dgemv_time_s",
    "streamed_cublas_dgemv_gflops",
    "CUBLAS_SMALL_BATCH_GFLOPS",
    "CUBLAS_STREAM_OVERHEAD_S",
]

# Measured throughput of cublasDgemmBatched on DIM x DIM batches (paper
# Section 3.2). The routine's fixed blocking wastes nearly the whole
# thread block on such tiny operands.
CUBLAS_SMALL_BATCH_GFLOPS = 1.3

# Per-stream submission + synchronization cost of the streamed
# cublasDgemv pattern (driver work per call dominates tiny GEMVs).
CUBLAS_STREAM_OVERHEAD_S = 1.5e-6


def cublas_dgemm_batched_cost(batches: int, m: int, n: int, k: int) -> KernelCost:
    """Cost descriptor of cublasDgemmBatched on `batches` m x n x k GEMMs.

    Small operands (max dim < 16) pin the routine at its measured
    small-batch throughput by inflating the latency factor; large
    operands run near the library's usual efficiency.
    """
    if min(batches, m, n, k) < 1:
        raise ValueError("all sizes must be positive")
    flops = 2.0 * batches * m * n * k
    bytes_io = 8.0 * batches * (m * k + k * n + m * n)
    if max(m, n, k) < 16 or (m * n * k) <= 4096:
        # Launch-config mismatch: one block per tiny matrix, almost all
        # threads idle. Model as severely latency bound.
        return KernelCost(
            name="cublasDgemmBatched",
            flops=flops,
            dram_bytes=bytes_io,
            threads_per_block=256,
            blocks=batches,
            regs_per_thread=64,
            shared_per_block=16 * 1024,
            compute_efficiency=0.0015,  # ~1.3 Gflop/s on K20-class peaks
            dram_efficiency=0.25,
        )
    if max(m, n, k) < 128:
        # Mid-size operands (e.g. kernel 7's 81 x 8 x 64 zones): the
        # library's large-matrix blocking keeps most threads idle.
        return KernelCost(
            name="cublasDgemmBatched",
            flops=flops,
            dram_bytes=bytes_io,
            threads_per_block=256,
            blocks=batches,
            regs_per_thread=64,
            shared_per_block=24 * 1024,
            compute_efficiency=0.03,
            dram_efficiency=0.5,
        )
    return KernelCost(
        name="cublasDgemmBatched",
        flops=flops,
        dram_bytes=bytes_io,
        threads_per_block=256,
        blocks=batches,
        regs_per_thread=64,
        shared_per_block=24 * 1024,
        compute_efficiency=0.55,
        dram_efficiency=0.8,
    )


def streamed_cublas_dgemv_time_s(spec: GPUSpec, batches: int, m: int, n: int) -> float:
    """Wall time of `batches` cublasDgemv calls in `batches` streams.

    Each call pays the launch + stream submission overhead; the GEMV
    itself is tiny. Concurrency across streams is poor for such small
    grids (one block each), so calls effectively serialize on the
    front-end.
    """
    if min(batches, m, n) < 1:
        raise ValueError("all sizes must be positive")
    per_call_compute = 2.0 * m * n / (spec.peak_dp_gflops * 1e9 * 0.01)
    per_call = KERNEL_LAUNCH_OVERHEAD_S + CUBLAS_STREAM_OVERHEAD_S + per_call_compute
    return batches * per_call


def streamed_cublas_dgemv_gflops(spec: GPUSpec, batches: int, m: int, n: int) -> float:
    """Achieved Gflop/s of the streamed pattern (Table 4's 0.2)."""
    t = streamed_cublas_dgemv_time_s(spec, batches, m, n)
    return 2.0 * batches * m * n / t / 1e9
