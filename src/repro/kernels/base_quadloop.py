"""The base implementation: kernel_loop_quadrature_point.

Before the redesign, a single monolithic kernel unrolled the whole A_z
assembly — geometry, EOS, stress, contraction — looping over quadrature
points inside one kernel (the left panel of Figure 6). Faster than the
six-core Westmere it replaced, "yet, it is still inefficient and
dominated most of the GPU time": the fused per-thread workspace spills
registers into local memory and the fused loop prevents any shared-
memory staging of the operand tables.

The cost model charges the same useful flops as kernels 1-6 combined,
plus the spill traffic and latency penalties that made the paper
replace it.
"""

from __future__ import annotations

from repro.gpu.execution import KernelCost
from repro.kernels.base import FLOPS_PER_POINT
from repro.kernels.config import FEConfig

__all__ = ["base_quadloop_cost"]

# The fused kernel's per-thread state: geometry workspace + basis slices.
_SPILL_DOUBLES = {2: 40, 3: 90}
_SPILL_TOUCHES = 10


def base_quadloop_cost(cfg: FEConfig) -> KernelCost:
    """Cost of the monolithic kernel replacing kernels 1-6."""
    d, N, Q, Z = cfg.dim, cfg.ndof_kin_zone, cfg.nqp, cfg.nzones
    pointwise = sum(FLOPS_PER_POINT[d])
    gemm_like = 2.0 * 2.0 * N * d * d + 4.0 * d**3  # grad v/J + stress apply
    flops = Z * Q * (pointwise + gemm_like)
    # Operand tables stream from global memory once per point (no
    # staging), plus register-spill local-memory traffic.
    table_bytes = 8.0 * Z * Q * (N * d + 3 * d * d)
    spill_bytes = 8.0 * Z * Q * _SPILL_DOUBLES[d] * _SPILL_TOUCHES
    return KernelCost(
        name="kernel_loop_quadrature_point[base]",
        flops=flops,
        dram_bytes=table_bytes + spill_bytes,
        l2_bytes=spill_bytes,
        threads_per_block=128,
        blocks=max(1, Z),
        regs_per_thread=63,  # maxed out, the rest spills
        shared_per_block=0,
        compute_efficiency=0.04,
        dram_efficiency=0.3,
        latency_bound_factor=1.8,
    )
