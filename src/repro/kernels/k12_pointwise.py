"""Kernels 1-2: per-quadrature-point scalar math.

Kernel 1 (kernel_CalcAjugate_det) computes the adjugate, determinant
and SVD of each point's DIM x DIM Jacobian; kernel 2 (kernel_loop_grad_v)
evaluates the EOS and assembles the total stress via the symmetrized-
velocity-gradient eigendecomposition. One thread per quadrature point;
each thread owns a DIM x DIM workspace plus scalars.

The paper's Figure 4 story lives in the two versions:

* `local` — the base implementation. The per-thread workspace spills
  to *local memory* (which physically resides in device memory): every
  workspace access becomes DRAM traffic and the kernel turns memory/
  latency bound.
* `register` — the separated, register-resident version. On Kepler
  (double the registers per SMX) the workspace fits in registers and
  the kernel runs at its scalar-compute roof — "kernel 2 achieved a 4x
  speedup".
"""

from __future__ import annotations

import numpy as np

from repro.fem.geometry import GeometryAtPoints
from repro.gpu.execution import KernelCost
from repro.kernels.base import FLOPS_PER_POINT
from repro.kernels.config import FEConfig
from repro.linalg.svd_small import batched_singular_values

__all__ = [
    "kernel1_cost",
    "kernel2_cost",
    "run_kernel1",
    "run_kernel2",
]

# Workspace doubles per thread (J, adj, scratch for SVD/eigen in kernel
# 1; eigenvectors + viscosity directions in kernel 2, which is larger).
_WORKSPACE_DOUBLES = {2: 16, 3: 40}
_WORKSPACE_DOUBLES_K2 = {2: 24, 3: 60}
# Each workspace double is touched this many times over the point math;
# in the `local` version every touch is a local-memory (DRAM) access.
_WORKSPACE_TOUCHES = 6
# Kernel 1's smaller workspace partially survives in registers even in
# the base build; kernel 2's eigen/viscosity scratch thrashes fully.
_SPILL_TOUCH_FRACTION = {"kernel_CalcAjugate_det": 0.5, "kernel_loop_grad_v": 1.0}
# Scalar instruction mix reaches only a small slice of the FMA peak.
_SCALAR_COMPUTE_EFF = {2: 0.035, 3: 0.045}


def _pointwise_cost(
    name: str,
    cfg: FEConfig,
    flops_per_point: float,
    io_doubles_per_point: float,
    version: str,
    workspace_doubles: int,
) -> KernelCost:
    if version not in ("local", "register"):
        raise ValueError(f"unknown version '{version}' (local|register)")
    npts = cfg.npoints
    flops = flops_per_point * npts
    dram = 8.0 * io_doubles_per_point * npts
    threads = 256
    if version == "local":
        touches = _WORKSPACE_TOUCHES * _SPILL_TOUCH_FRACTION.get(name, 1.0)
        spill = 8.0 * workspace_doubles * touches * npts
        return KernelCost(
            name=f"{name}[local]",
            flops=flops,
            dram_bytes=dram + spill,
            l2_bytes=spill,  # spills bounce through L2 first
            threads_per_block=threads,
            blocks=max(1, npts // threads),
            regs_per_thread=30,
            compute_efficiency=_SCALAR_COMPUTE_EFF[cfg.dim],
            dram_efficiency=0.45,  # scattered per-thread local slots
            latency_bound_factor=2.5,
        )
    return KernelCost(
        name=f"{name}[register]",
        flops=flops,
        dram_bytes=dram,
        l2_bytes=dram,
        threads_per_block=threads,
        blocks=max(1, npts // threads),
        regs_per_thread=32 + workspace_doubles,
        compute_efficiency=_SCALAR_COMPUTE_EFF[cfg.dim],
        dram_efficiency=0.85,
    )


def kernel1_cost(cfg: FEConfig, version: str = "register") -> KernelCost:
    """kernel_CalcAjugate_det: J -> (adj J, |J|, singular values)."""
    d = cfg.dim
    io = 2 * d * d + 1 + d  # read J, write adj + det + singular values
    return _pointwise_cost(
        "kernel_CalcAjugate_det", cfg, FLOPS_PER_POINT[d][0], io, version,
        _WORKSPACE_DOUBLES[d],
    )


def kernel2_cost(cfg: FEConfig, version: str = "register") -> KernelCost:
    """kernel_loop_grad_v: (grad v, rho, e) -> sigma_hat via EoS + eigen."""
    d = cfg.dim
    io = 2 * d * d + 8  # read grad v + thermo scalars, write sigma + cs/mu
    return _pointwise_cost(
        "kernel_loop_grad_v", cfg, FLOPS_PER_POINT[d][1], io, version,
        _WORKSPACE_DOUBLES_K2[d],
    )


# -- Functional implementations -------------------------------------------------


def run_kernel1(engine, x: np.ndarray) -> tuple[GeometryAtPoints, np.ndarray]:
    """Geometry pass: adjugates/determinants plus SVD length scales."""
    geo = engine.point_geometry(x)
    svals = batched_singular_values(geo.jac)
    return geo, svals


def run_kernel2(engine, state, geo: GeometryAtPoints):
    """Stress pass: EOS + artificial viscosity -> PointData."""
    return engine.point_stress(state, geo)
