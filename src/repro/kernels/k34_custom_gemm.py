"""Kernels 3-4: custom batched GEMMs with shared-A reuse.

Kernel 3 (kernel_PzVz_Phi_F) evaluates the reference velocity gradient
and Jacobian at every quadrature point: per zone, the (ndof x dim) dof
matrices of v and x are contracted against the per-point basis-gradient
tables. In the paper's Table 3 terms: num A = zones (the dof matrices),
num B = points (the shared gradient tables), num C = zones * points.

Kernel 4 (kernel_Phi_sigma_hat_z) applies the stress: per point,
DIM x DIM products sigma . adj(J) contracted into the basis gradients
(num A = zones * points).

The three versions trace the paper's optimization narrative
(Section 3.2 and Figure 7):

* v1 — A via shared memory, B via *texture* cache: B misses cost L2/DRAM
  round trips and the DRAM path is half-efficient.
* v2 — both operands staged through shared memory; faster, but one A
  per thread block limits occupancy.
* v3 — autotuned: `matrices_per_block` A tiles share one thread block,
  amortizing the B loads and raising occupancy until shared memory
  overfills (the Figure 5 tuning curve; 32 is the paper's winner with
  98.3% occupancy).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.execution import KernelCost
from repro.kernels.config import FEConfig

__all__ = [
    "kernel3_cost",
    "kernel4_cost",
    "feasible_matrices_per_block",
    "run_kernel3",
    "run_kernel4",
]

_SHARED_LIMIT_BYTES = 48 * 1024


def feasible_matrices_per_block(cfg: FEConfig, limit: int = 32) -> int:
    """Largest power-of-two matrices-per-block that fits shared memory.

    This is the constraint-elimination step of the paper's autotuner
    ("artificial values, like those exceeding the shared memory, will
    be eliminated"): high orders have larger zone tiles, so the feasible
    batch shrinks (Q4's 375-row tiles fit far fewer than Q2's 81).
    """
    a_tile = cfg.ndof_kin_zone * cfg.dim * 8
    m = 1
    while m * 2 <= limit and (m * 2 + 1) * a_tile <= _SHARED_LIMIT_BYTES and 32 * m * 2 <= 1024:
        m *= 2
    return m


def kernel3_cost(
    cfg: FEConfig, version: str = "v3", matrices_per_block: int = 32
) -> KernelCost:
    """Batched (dim x N) x (N x dim) products for grad v and J.

    `matrices_per_block` is the autotuning parameter (number of zone
    dof-matrices resident per thread block).
    """
    if matrices_per_block < 1:
        raise ValueError("matrices_per_block must be >= 1")
    d, N, Q, Z = cfg.dim, cfg.ndof_kin_zone, cfg.nqp, cfg.nzones
    # Two fields (v and x), each 2*N*d^2 flops per point.
    flops = 2.0 * Z * Q * 2.0 * N * d * d
    a_bytes = 2.0 * Z * N * d * 8.0          # dof matrices, read once
    b_bytes = Q * N * d * 8.0                # shared gradient tables
    c_bytes = 2.0 * Z * Q * d * d * 8.0      # outputs
    a_tile = N * d * 8                       # one field's tile per zone
    if version == "v1":
        # B through the texture cache: every MAC's B operand is an
        # L2-backed texture fetch ("reading B via cached texture memory
        # is still not as fast as shared memory"), so half the operand
        # traffic rides the (slower) L2 instead of shared memory.
        return KernelCost(
            name="kernel_PzVz_Phi_F[v1]",
            flops=flops,
            dram_bytes=a_bytes + c_bytes + 0.3 * Z * b_bytes,
            l2_bytes=0.5 * flops * 8.0,  # per-MAC texture fetches
            shared_bytes=flops * 8.0,  # A operand via shared
            threads_per_block=128,
            blocks=max(1, Z),
            regs_per_thread=40,
            shared_per_block=2 * a_tile,
            compute_efficiency=0.55,
            dram_efficiency=0.5,
        )
    if version == "v2":
        return KernelCost(
            name="kernel_PzVz_Phi_F[v2]",
            flops=flops,
            dram_bytes=a_bytes + b_bytes + c_bytes,
            l2_bytes=Z * b_bytes,  # B staged per block, one zone each
            shared_bytes=2.0 * flops * 8.0,  # both operands per MAC
            threads_per_block=128,
            blocks=max(1, Z),
            regs_per_thread=40,
            shared_per_block=2 * a_tile + a_tile,
            compute_efficiency=0.7,
            dram_efficiency=0.85,
        )
    if version == "v3":
        m = matrices_per_block
        threads = min(32 * m, 1024)
        # One field staged at a time keeps the tile small; m A-tiles
        # share each block and amortize the B reloads.
        shared = m * a_tile + a_tile
        nblocks = max(1, -(-Z // m))
        return KernelCost(
            name=f"kernel_PzVz_Phi_F[v3,m={m}]",
            flops=flops,
            dram_bytes=a_bytes + b_bytes + c_bytes,
            l2_bytes=nblocks * b_bytes,  # B reloaded once per block
            # Register-tiled inner loop, plus staging the reloaded B
            # tables into shared memory once per block.
            shared_bytes=0.4 * flops * 8.0 + 2.0 * nblocks * b_bytes,
            threads_per_block=threads,
            blocks=nblocks,
            regs_per_thread=32,
            shared_per_block=shared,
            compute_efficiency=0.85,
            dram_efficiency=0.9,
        )
    raise ValueError(f"unknown version '{version}' (v1|v2|v3)")


def kernel4_cost(
    cfg: FEConfig, version: str = "v3", matrices_per_block: int = 32
) -> KernelCost:
    """Per-point DIM x DIM stress application (sigma . adj J)."""
    if matrices_per_block < 1:
        raise ValueError("matrices_per_block must be >= 1")
    d, Q, Z = cfg.dim, cfg.nqp, cfg.nzones
    batches = Z * Q
    flops = 2.0 * batches * 2.0 * d**3  # two d x d products per point
    io_bytes = batches * 3.0 * d * d * 8.0
    if version == "v1":
        return KernelCost(
            name="kernel_Phi_sigma_hat_z[v1]",
            flops=flops,
            dram_bytes=2.0 * io_bytes,  # unaligned single-matrix blocks
            threads_per_block=d * d,
            blocks=batches,
            regs_per_thread=32,
            shared_per_block=0,
            compute_efficiency=0.4,
            dram_efficiency=0.3,
        )
    if version == "v2":
        return KernelCost(
            name="kernel_Phi_sigma_hat_z[v2]",
            flops=flops,
            dram_bytes=io_bytes,
            shared_bytes=2.0 * flops * 8.0,
            threads_per_block=64,
            blocks=max(1, batches // 4),
            regs_per_thread=32,
            shared_per_block=4 * 3 * d * d * 8,
            compute_efficiency=0.6,
            dram_efficiency=0.7,
        )
    if version == "v3":
        m = matrices_per_block
        return KernelCost(
            name=f"kernel_Phi_sigma_hat_z[v3,m={m}]",
            flops=flops,
            dram_bytes=io_bytes,
            shared_bytes=0.5 * flops * 8.0,
            threads_per_block=min(1024, max(32, m * d * d)),
            blocks=max(1, batches // m),
            regs_per_thread=28,
            shared_per_block=m * 3 * d * d * 8,
            compute_efficiency=0.75,
            dram_efficiency=0.9,
        )
    raise ValueError(f"unknown version '{version}' (v1|v2|v3)")


# -- Functional implementations ------------------------------------------------


def run_kernel3(engine, state, geo) -> np.ndarray:
    """grad v at all points (the J part is produced by run_kernel1)."""
    return engine.velocity_gradient(state.v, geo)


def run_kernel4(engine, points, geo) -> np.ndarray:
    """A_z assembly from the stress and geometry (kernels 4-6 fused)."""
    return engine.assemble_Az(points, geo)
