"""Finite-element configuration driving kernel workloads.

All kernel cost formulas are functions of the same few integers: the
spatial dimension, the FE order pair, the zone count and the quadrature
rule — `FEConfig` centralizes them. The derived sizes reproduce the
matrix shapes the paper quotes (3D Q2-Q1: gradW 81x64, Fz 81x8; Q4-Q3:
375x512).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FEConfig"]


@dataclass(frozen=True)
class FEConfig:
    """Shape of the corner-force workload.

    Attributes
    ----------
    dim : spatial dimension (2 or 3).
    order : kinematic order k (thermodynamic is k-1, quadrature 2k per
        dimension unless overridden).
    nzones : zones in the (local) domain.
    quad_points_1d : quadrature points per dimension.
    """

    dim: int
    order: int
    nzones: int
    quad_points_1d: int = 0  # 0 = the 2k default

    def __post_init__(self):
        if self.dim not in (2, 3):
            raise ValueError("dim must be 2 or 3")
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if self.nzones < 1:
            raise ValueError("need at least one zone")
        if self.quad_points_1d == 0:
            object.__setattr__(self, "quad_points_1d", 2 * self.order)

    @classmethod
    def from_solver(cls, solver) -> "FEConfig":
        """Extract the configuration of a live LagrangianHydroSolver."""
        return cls(
            dim=solver.kinematic.dim,
            order=solver.kinematic.order,
            nzones=solver.kinematic.mesh.nzones,
            quad_points_1d=solver.quad.npts_1d,
        )

    # -- Derived sizes ---------------------------------------------------------

    @property
    def nqp(self) -> int:
        """Quadrature points per zone (e.g. 64 for 3D Q2-Q1)."""
        return self.quad_points_1d**self.dim

    @property
    def ndof_kin_zone(self) -> int:
        """Scalar kinematic dofs per zone ((k+1)^d: 27 for 3D Q2)."""
        return (self.order + 1) ** self.dim

    @property
    def ndof_thermo_zone(self) -> int:
        """Thermodynamic dofs per zone (k^d: 8 for 3D Q1)."""
        return self.order**self.dim

    @property
    def vector_rows(self) -> int:
        """Rows of the zone force matrix Fz (81 for 3D Q2-Q1)."""
        return self.ndof_kin_zone * self.dim

    @property
    def npoints(self) -> int:
        """Total quadrature points in the domain."""
        return self.nzones * self.nqp

    @property
    def kinematic_ndof_estimate(self) -> int:
        """Global H1 dofs of a cubic zones_per_dim^dim Cartesian domain."""
        n1 = round(self.nzones ** (1.0 / self.dim))
        return (self.order * n1 + 1) ** self.dim

    @property
    def mass_nnz_estimate(self) -> int:
        """Kinematic mass nnz, estimated as nzones * ndz^2.

        Counts every within-zone dof pair once per zone; pairs shared by
        several zones are over-counted, boundary-thinned stencils are
        not discounted — in practice a ~20% overestimate, which is
        plenty for the SpMV cost models that consume it.
        """
        return self.nzones * self.ndof_kin_zone**2

    def describe(self) -> str:
        return (
            f"{self.dim}D Q{self.order}-Q{self.order - 1}: {self.nzones} zones, "
            f"{self.nqp} qp/zone, gradW table {self.vector_rows}x{self.nqp}, "
            f"Fz {self.vector_rows}x{self.ndof_thermo_zone}"
        )
