"""Kernel 7: the per-zone corner-force product Fz = Az B^T.

One thread block per zone multiplies the (N*dim x nqp) matrix Az by the
transposed (P x nqp) thermodynamic table B. The version ladder follows
the paper's Figure 7 narrative:

* v1 — both operands streamed from global memory per use; partial L1
  reuse only.
* v2 — Az staged through shared memory, B in constant memory: "a
  substantial improvement, but still not satisfactory" — the full Az
  tile (e.g. 81 x 64 doubles = 41 KB for 3D Q2-Q1) nearly fills shared
  memory, pinning occupancy at one block per SM.
* v3 — *blocking*: Az is processed in column blocks of `block_cols`
  quadrature points, shrinking the shared tile, raising occupancy, and
  ("accessing columns in blocks by 1D dimension proved to be most
  effective") keeping loads coalesced. `block_cols` is the autotuning
  parameter.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.execution import KernelCost
from repro.kernels.config import FEConfig
from repro.kernels.cublas import cublas_dgemm_batched_cost

__all__ = ["kernel7_cost", "feasible_block_cols", "run_kernel7"]

_SHARED_LIMIT_BYTES = 48 * 1024


def feasible_block_cols(cfg: FEConfig, limit: int = 16) -> int:
    """Largest power-of-two column block whose tile fits shared memory."""
    per_col = (cfg.vector_rows + cfg.ndof_thermo_zone) * 8
    qb = 1
    while qb * 2 <= min(limit, cfg.nqp) and qb * 2 * per_col <= _SHARED_LIMIT_BYTES:
        qb *= 2
    return qb


def kernel7_cost(cfg: FEConfig, version: str = "v3", block_cols: int = 16) -> KernelCost:
    """Cost of the batched Fz = Az B^T over all zones."""
    if block_cols < 1:
        raise ValueError("block_cols must be >= 1")
    rows, Q, P, Z = cfg.vector_rows, cfg.nqp, cfg.ndof_thermo_zone, cfg.nzones
    flops = 2.0 * Z * rows * Q * P
    az_bytes = 8.0 * Z * rows * Q
    b_bytes = 8.0 * P * Q
    out_bytes = 8.0 * Z * rows * P
    if version == "cublas":
        return cublas_dgemm_batched_cost(Z, rows, P, Q)
    if version == "v1":
        # Global loads per MAC with ~4x L1 line reuse.
        return KernelCost(
            name="kernel_loop_zones[v1]",
            flops=flops,
            dram_bytes=0.5 * flops * 8.0 + out_bytes,
            l2_bytes=flops * 8.0,
            threads_per_block=min(256, rows),
            blocks=Z,
            regs_per_thread=32,
            shared_per_block=0,
            compute_efficiency=0.5,
            dram_efficiency=0.35,
        )
    if version == "v2":
        # Az staged through shared memory in fixed 16-column slabs; B
        # lives in constant memory. No register tiling yet: every MAC
        # reads both operands from shared.
        shared_tile = rows * min(16, Q) * 8
        return KernelCost(
            name="kernel_loop_zones[v2]",
            flops=flops,
            dram_bytes=az_bytes + b_bytes + out_bytes,
            shared_bytes=2.0 * flops * 8.0,  # every MAC reads shared
            threads_per_block=128,
            blocks=Z,
            regs_per_thread=32,
            shared_per_block=shared_tile,
            compute_efficiency=0.6,
            dram_efficiency=0.85,
        )
    if version == "v3":
        qb = min(block_cols, Q)
        shared_tile = rows * qb * 8 + P * qb * 8
        return KernelCost(
            name=f"kernel_loop_zones[v3,qb={qb}]",
            flops=flops,
            dram_bytes=az_bytes + b_bytes + out_bytes,
            shared_bytes=0.5 * flops * 8.0,  # register-tiled columns
            threads_per_block=256,
            blocks=Z,
            regs_per_thread=30,
            shared_per_block=shared_tile,
            compute_efficiency=0.72,
            dram_efficiency=0.9,
        )
    raise ValueError(f"unknown version '{version}' (v1|v2|v3|cublas)")


def run_kernel7(engine, Az: np.ndarray) -> np.ndarray:
    """Functional Fz = Az B^T via the engine's tabulated B."""
    return engine.assemble_Fz(Az)
