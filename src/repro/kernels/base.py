"""Kernel metadata and the Table 2 inventory."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelSpec", "KERNEL_TABLE", "FLOPS_PER_POINT", "span_label"]


@dataclass(frozen=True)
class KernelSpec:
    """One row of the paper's Table 2."""

    number: int
    name: str
    purpose: str
    versions: tuple[str, ...] = ("v1",)
    lapack_style: bool = True  # general-purpose LA interface (Table 2 note)

    @property
    def span_label(self) -> str:
        """Canonical telemetry span name for this kernel."""
        return self.name


KERNEL_TABLE: tuple[KernelSpec, ...] = (
    KernelSpec(1, "kernel_CalcAjugate_det", "SVD, Eigval, Adjugate",
               ("local", "register"), lapack_style=False),
    KernelSpec(2, "kernel_loop_grad_v", "EoS, sigma_hat(q_k)",
               ("local", "register"), lapack_style=False),
    KernelSpec(3, "kernel_PzVz_Phi_F", "Batched grad_v(q_k), J_z(q_k)",
               ("v1", "v2", "v3")),
    KernelSpec(4, "kernel_Phi_sigma_hat_z", "sigma_hat(q_k)",
               ("v1", "v2", "v3")),
    KernelSpec(5, "kernel_NN_dgemmBatched", "Auxiliary",
               ("v1", "tuned", "cublas")),
    KernelSpec(6, "kernel_NT_dgemmBatched", "Auxiliary",
               ("v1", "tuned", "cublas")),
    KernelSpec(7, "kernel_loop_zones", "Az B^T",
               ("v1", "v2", "v3", "cublas")),
    KernelSpec(8, "kernel_loop_zones_dv_dt", "-F . 1",
               ("custom", "streamed_cublas")),
    KernelSpec(9, "CUDA_PCG", "Solve linear system (1)",
               ("cusparse_cublas",)),
    KernelSpec(10, "kernel_dgemvt", "F^T . v",
               ("custom", "streamed_cublas")),
    KernelSpec(11, "SpMV", "Solve linear system (2)",
               ("cusparse",)),
)


def span_label(number: int) -> str:
    """Telemetry span name for a Table 2 kernel number.

    Tracer spans emitted around kernel-aligned code use these names so
    the trace, the cost models and the paper's Table 2 all key on the
    same identifiers.
    """
    for spec in KERNEL_TABLE:
        if spec.number == number:
            return spec.span_label
    raise KeyError(f"no kernel #{number} in Table 2")


# Scalar flop counts of the per-quadrature-point math (kernels 1-2).
# Derived by counting the closed-form operations: adjugate+det, SVD via
# J^T J eigen, symmetric eigendecomposition, directional lengths, EOS.
FLOPS_PER_POINT = {
    # dim -> (kernel1: adjugate/det/SVD, kernel2: eig/EoS/viscosity)
    2: (110.0, 170.0),
    3: (330.0, 440.0),
}
