"""Kernel 9: the CUDA-PCG solver (a kernel *set*).

The paper builds its GPU momentum solver from CUSPARSE SpMV plus
cublasDdot/axpy — per iteration one sparse matrix-vector product and a
handful of BLAS-1 passes, all memory-bound. The SpMV is "the biggest
component of CUDA-PCG" (Figure 6) and dominates the optimized overall
breakdown because it is called every iteration of every solve of every
step.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.execution import KernelCost
from repro.kernels.config import FEConfig

__all__ = ["spmv_cost", "blas1_iteration_cost", "pcg_step_costs", "run_kernel9"]


def spmv_cost(nnz: float, nrows: float, name: str = "csrMv_ci_kernel") -> KernelCost:
    """One CSR SpMV: 8B value + 4B column index per nonzero + vectors."""
    if nnz < 0 or nrows < 0:
        raise ValueError("sizes must be non-negative")
    return KernelCost(
        name=name,
        flops=2.0 * nnz,
        dram_bytes=12.0 * nnz + 8.0 * 3.0 * nrows,
        l2_bytes=8.0 * nnz,  # gathered x entries hit L2
        threads_per_block=128,
        blocks=max(1, int(nrows) // 128),
        regs_per_thread=24,
        compute_efficiency=0.3,
        dram_efficiency=0.65,  # irregular gather on x
    )


def blas1_iteration_cost(nrows: float) -> KernelCost:
    """The dots/axpys of one PCG iteration (cublasDdot + updates)."""
    if nrows < 0:
        raise ValueError("nrows must be non-negative")
    return KernelCost(
        name="pcg_blas1",
        flops=10.0 * nrows,
        dram_bytes=10.0 * 8.0 * nrows,
        threads_per_block=256,
        blocks=max(1, int(nrows) // 256),
        regs_per_thread=16,
        compute_efficiency=0.4,
        dram_efficiency=0.9,
    )


def pcg_step_costs(
    cfg: FEConfig,
    iterations: float,
    mass_nnz: float | None = None,
    solves: int = 1,
) -> list[KernelCost]:
    """Kernel mix of `solves` PCG solves at `iterations` each.

    `mass_nnz` defaults to the FEConfig stencil estimate; per-component
    momentum solves pass solves=dim.
    """
    if iterations < 0 or solves < 1:
        raise ValueError("invalid solve description")
    nnz = mass_nnz if mass_nnz is not None else cfg.mass_nnz_estimate
    n = cfg.kinematic_ndof_estimate
    total_iters = iterations * solves
    costs = []
    if total_iters > 0:
        costs.append(spmv_cost(nnz, n).scaled(total_iters))
        costs.append(blas1_iteration_cost(n).scaled(total_iters))
    return costs


def run_kernel9(momentum_solver, rhs: np.ndarray) -> np.ndarray:
    """Functional CUDA-PCG: delegates to the shared PCG implementation.

    The GPU and CPU paths run the *same* solver (our from-scratch PCG),
    which is exactly why the paper's Table 6 shows identical-to-
    roundoff results between platforms.
    """
    return momentum_solver.solve(rhs)
