"""The redesigned CUDA kernel set (paper Table 2), simulated.

Each kernel module pairs

* a **functional implementation** — vectorized NumPy delegating to the
  `ForceEngine` / `linalg.batched` layers, producing the same numbers
  the CPU path produces (the paper's Section 4.1 validation), and
* a **cost descriptor** (`KernelCost`) — flops, bytes per memory level
  and launch configuration, per optimization *version* (v1 naive, v2
  shared-memory, v3 blocked/tuned; plus the base register-spilling
  monolith and the CUBLAS baselines), which the `gpu.execution`
  roofline model turns into time/bandwidth/power.

Kernel numbering follows Table 2:
  1 kernel_CalcAjugate_det   SVD, eigenvalues, adjugate
  2 kernel_loop_grad_v       EoS, stress tensor
  3 kernel_PzVz_Phi_F        batched grad v, Jacobians
  4 kernel_Phi_sigma_hat_z   stress application
  5 kernel_NN_dgemmBatched   auxiliary DIM x DIM GEMM
  6 kernel_NT_dgemmBatched   auxiliary DIM x DIM GEMM
  7 kernel_loop_zones        Fz = Az B^T
  8 kernel_loop_zones_dv_dt  -F . 1
  9 CUDA_PCG                 momentum solve (kernel set)
 10 kernel_dgemvt            F^T . v
 11 SpMV                     energy solve via CSR SpMV
"""

from repro.kernels.config import FEConfig
from repro.kernels.base import KernelSpec, KERNEL_TABLE
from repro.kernels.registry import all_kernels, get_kernel
from repro.kernels import cublas

__all__ = ["FEConfig", "KernelSpec", "KERNEL_TABLE", "all_kernels", "get_kernel", "cublas"]
