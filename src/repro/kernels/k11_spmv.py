"""Kernel 11: the energy-equation solve as a CUSPARSE SpMV.

M_E is block diagonal, its inverse is precomputed once, so applying
M_E^{-1} every step is a sparse (CSR) matrix-vector product over the
block-diagonal inverse — "the reason for calling SpMV routine instead
of using a CUDA-PCG solver ... is that the matrix M_E is block diagonal"
(Section 3.1.1). Called once per time step (per stage), unlike the PCG
SpMV which runs every iteration.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.execution import KernelCost
from repro.kernels.config import FEConfig
from repro.kernels.k9_pcg import spmv_cost

__all__ = ["kernel11_cost", "run_kernel11"]


def kernel11_cost(cfg: FEConfig) -> KernelCost:
    """SpMV over the block-diagonal inverse: nnz = nzones * P^2."""
    P = cfg.ndof_thermo_zone
    nnz = cfg.nzones * P * P
    nrows = cfg.nzones * P
    cost = spmv_cost(nnz, nrows, name="SpMV_ME_inverse")
    return cost


def run_kernel11(mass_e, rhs: np.ndarray) -> np.ndarray:
    """Functional energy solve through the precomputed block inverses."""
    return mass_e.solve(rhs)
