"""`repro._compat`: every deprecation shim's machinery, in one module.

PRs 3-5 each left a backward-compatible spelling behind as they moved
the surface to `repro.api.run` + `RunConfig`: `SolverOptions`, direct
`ResilientDriver` construction, `DistributedLagrangianSolver`, and the
CLI's `--engine`/`--legacy-engine` flags. Each carried its own inline
`warnings.warn` call and its own copy of the suppress-while-internal
dance. This module consolidates them:

* `DEPRECATIONS` is the registry — one entry per shim, naming the
  replacement. The README migration table and the compat tests are
  generated against the same text users see.
* `warn_deprecated(name)` emits the single canonical
  `DeprecationWarning` for a shim — unless the facade itself is
  constructing the legacy object on the user's behalf
  (`internal_construction`), in which case warning would punish
  exactly the users who migrated.

The shims themselves keep living where their class lives (a shim must
be importable from its historical path); only the warning policy and
text are centralized here. Stdlib-only: importable from every layer.
"""

from __future__ import annotations

import contextlib
import warnings

__all__ = [
    "DEPRECATIONS",
    "warn_deprecated",
    "internal_construction",
    "deprecations_suppressed",
]

#: shim name -> the replacement its DeprecationWarning names. Tests
#: assert every entry mentions the `repro.api` surface.
DEPRECATIONS = {
    "SolverOptions":
        "repro.api.RunConfig (engine='fused'|'legacy' replaces fused=, "
        "the rest keeps its name) with repro.api.run()",
    "ResilientDriver":
        "repro.api.run(problem, RunConfig(faults=..., checkpoint_every=..., "
        "offload_device=...)), which builds the driver from the unified "
        "config",
    "DistributedLagrangianSolver":
        "repro.api.run(problem, RunConfig(ranks=N, backend=...)) — the "
        "distributed layer is now the composable "
        "repro.backends.distributed.DistributedBackend",
    "--engine/--legacy-engine":
        "--backend cpu-fused (fused) or --backend cpu-serial (legacy)",
}

# When nonzero, deprecated constructors skip their DeprecationWarning:
# the facade builds them internally on the user's behalf.
_suppress_depth = 0


@contextlib.contextmanager
def internal_construction():
    """Suppress shim warnings while the facade builds legacy objects."""
    global _suppress_depth
    _suppress_depth += 1
    try:
        yield
    finally:
        _suppress_depth -= 1


def deprecations_suppressed() -> bool:
    """True while the facade is constructing legacy objects itself."""
    return _suppress_depth > 0


def warn_deprecated(name: str, stacklevel: int = 3) -> None:
    """Emit the canonical DeprecationWarning for one registered shim.

    No-op inside `internal_construction()` so facade-internal plumbing
    stays silent. `name` must be a `DEPRECATIONS` key — an unregistered
    shim is a programming error, not a user mistake.
    """
    if deprecations_suppressed():
        return
    warnings.warn(
        f"{name} is deprecated; use {DEPRECATIONS[name]}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
