"""`repro.errors`: the unified exception hierarchy.

Six PRs of growth left typed errors scattered one-per-subsystem
(`TuningCacheCorruptionError`, `CheckpointCorruptionError`,
`JournalCorruptionError`, `AdmissionError`, `DeadlineExceeded`, plus
plain `ValueError`s out of config validation), and the CLI grew a
per-command try/except for each. This module rebases them all onto one
root, `ReproError`, with two semantic branches:

* `ConfigError` — the caller asked for something invalid (bad knob
  combination, unknown backend/objective, an empty tuning space).
  Subclasses `ValueError` so every pre-existing `except ValueError`
  and `pytest.raises(ValueError)` keeps working.
* `CorruptionError` — a durable artifact (tuning cache, checkpoint,
  job journal) failed to parse or verify in strict mode. Subclasses
  `RuntimeError` for the same compatibility reason.

Operational errors that are neither (deadline blown, queue refused,
breaker open) subclass `ReproError` + `RuntimeError` directly.

`exit_code_for` is the single CLI mapping — 2 for configuration
mistakes, 3 for corruption, 1 for everything else — applied in exactly
one place (`repro.cli.main`) instead of per-command handlers.

This module is stdlib-only so every layer can import it without cycles.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "CorruptionError",
    "EmptyParamSpaceError",
    "exit_code_for",
]


class ReproError(Exception):
    """Root of every typed error raised by the repro stack."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration or request (CLI exit code 2)."""


class CorruptionError(ReproError, RuntimeError):
    """A durable artifact failed to parse or verify (CLI exit code 3)."""


class EmptyParamSpaceError(ConfigError):
    """Every candidate of a tuning `ParamSpace` was eliminated.

    Raised when the declared restrictions (shared-memory limits,
    cross-parameter rules) leave nothing to search — a declaration
    mistake, not a runtime failure, hence a `ConfigError`.
    """


def exit_code_for(exc: BaseException) -> int:
    """The CLI exit code for a typed error (the one mapping).

    2 = the user asked for something invalid, 3 = a durable artifact is
    corrupt in strict mode, 1 = any other typed failure.
    """
    if isinstance(exc, ConfigError):
        return 2
    if isinstance(exc, CorruptionError):
        return 3
    return 1
