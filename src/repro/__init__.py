"""repro — reproduction of "A Step towards Energy Efficient Computing:
Redesigning a Hydrodynamic Application on CPU-GPU" (IPDPS 2014).

The package implements BLAST's high-order finite element Lagrangian
hydrodynamics (the paper's application), the batched linear-algebra
kernel set of its GPU redesign, and a simulated CPU/GPU hardware
substrate (timing, occupancy, power: RAPL- and NVML-like interfaces)
that reproduces the paper's performance and energy evaluation.

Quickstart::

    from repro.api import RunConfig, run

    report = run("sedov", RunConfig(zones=8, t_final=0.05))
    print(report.summary())

(The constructor-level API — `LagrangianHydroSolver`, `SolverOptions` —
remains available; `SolverOptions` is a deprecated shim over
`RunConfig`, see README.md "Migrating to repro.api".)
"""

from repro.version import __version__

# Core public API re-exports (kept import-light: heavy subsystems are
# imported lazily by their subpackages).
from repro.config import RunConfig
from repro.hydro.solver import LagrangianHydroSolver, SolverOptions, RunResult
from repro.problems.sedov import SedovProblem
from repro.problems.triple_point import TriplePointProblem
from repro.problems.taylor_green import TaylorGreenProblem
from repro.problems.noh import NohProblem
from repro.problems.saltzman import SaltzmanProblem
from repro.problems.sod import SodProblem

__all__ = [
    "__version__",
    "RunConfig",
    "LagrangianHydroSolver",
    "SolverOptions",
    "RunResult",
    "SedovProblem",
    "TriplePointProblem",
    "TaylorGreenProblem",
    "NohProblem",
    "SaltzmanProblem",
    "SodProblem",
]
