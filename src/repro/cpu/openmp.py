"""OpenMP-style fork-join execution model.

The paper's Section 3.3 runs CUDA and OpenMP side by side inside each
MPI task: the host thread launches the GPU kernels asynchronously, then
spawns OpenMP threads over its share of the zones, and a final
synchronization joins the two. This model prices the CPU side: parallel
speedup with per-thread fork/join overhead and a serial fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OpenMPModel"]


@dataclass(frozen=True)
class OpenMPModel:
    """Fork-join timing over `nthreads` cores.

    `fork_join_overhead_s` is charged once per parallel region;
    `serial_fraction` is the Amdahl residue of the zone loop (loop
    setup, reductions).
    """

    nthreads: int
    fork_join_overhead_s: float = 5e-6
    serial_fraction: float = 0.02

    def __post_init__(self):
        if self.nthreads < 1:
            raise ValueError("need at least one thread")
        if not (0.0 <= self.serial_fraction < 1.0):
            raise ValueError("serial_fraction must be in [0, 1)")

    def parallel_time(self, serial_time_s: float) -> float:
        """Wall time of a region that takes `serial_time_s` on one core."""
        if serial_time_s < 0:
            raise ValueError("time must be non-negative")
        s = self.serial_fraction
        t = serial_time_s * (s + (1.0 - s) / self.nthreads)
        return t + self.fork_join_overhead_s

    def speedup(self, serial_time_s: float) -> float:
        t = self.parallel_time(serial_time_s)
        return serial_time_s / t if t > 0 else float("inf")

    def efficiency(self, serial_time_s: float) -> float:
        return self.speedup(serial_time_s) / self.nthreads
