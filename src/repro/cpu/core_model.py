"""CPU execution-time model for the hydro phases.

Two regimes, matching the paper's Table 1 profile structure:

* corner force — FLOP-dense, scalar-heavy code (per-point SVD / eigen /
  EOS branches) that compilers do not vectorize well: modelled as a
  fraction of peak (`CORNER_FORCE_EFFICIENCY`).
* CG solve — SpMV-dominated and therefore memory-bandwidth bound:
  modelled as bytes over achievable bandwidth, with a flop floor.

The efficiency constants were calibrated once so that the modelled 2D /
3D profiles land inside the paper's reported ranges (corner force
55-75% of total, CG 20-34%); they are deliberately *not* per-experiment
knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.specs import CPUSpec

__all__ = ["PhaseTime", "CPUExecutionModel",
           "CORNER_FORCE_EFFICIENCY", "CG_FLOP_EFFICIENCY", "STREAM_EFFICIENCY"]

# Fraction of the package's AVX peak the corner-force loops reach.
# The per-point math (SVD/eigen branches, gathers) does not vectorize:
# ~10% of *scalar* FMA peak, i.e. ~1.2% of the 8-wide AVX peak. This
# single constant sets the CPU corner-force rate everywhere; it was
# fixed once so the modelled Table 1 fractions land in the paper's
# 55-75% range and never re-tuned per experiment.
CORNER_FORCE_EFFICIENCY = 0.012
# Flop-side efficiency of the CG's BLAS-1 parts.
CG_FLOP_EFFICIENCY = 0.10
# Fraction of nominal memory bandwidth SpMV achieves (the mass-matrix
# stencil is banded and fairly regular).
STREAM_EFFICIENCY = 0.70


@dataclass(frozen=True)
class PhaseTime:
    """Modelled time of one phase on one CPU allocation."""

    seconds: float
    bound: str  # "compute" or "memory"
    utilization: float  # busy-core fraction of the package


class CPUExecutionModel:
    """Times hydro workload phases on `nprocs` cores of one package."""

    def __init__(self, spec: CPUSpec, nprocs: int | None = None):
        self.spec = spec
        self.nprocs = nprocs if nprocs is not None else spec.cores
        if not (1 <= self.nprocs <= spec.cores):
            raise ValueError(f"nprocs must be in [1, {spec.cores}]")

    def _core_fraction(self) -> float:
        return self.nprocs / self.spec.cores

    def corner_force_time(self, flops: float) -> PhaseTime:
        """Compute-bound phase at the corner-force efficiency."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        peak = self.spec.peak_dp_gflops * 1e9 * self._core_fraction()
        rate = peak * CORNER_FORCE_EFFICIENCY
        # Scalar (non-SIMD) execution: divide out the SIMD width, keeping
        # only FMA. High-order FEM inner loops do get some vector reuse,
        # captured by the efficiency constant above.
        return PhaseTime(flops / rate, "compute", self._core_fraction())

    def spmv_time(self, nnz: float, nrows: float) -> PhaseTime:
        """One CSR SpMV: 12 bytes per nonzero + row/vector traffic."""
        if nnz < 0 or nrows < 0:
            raise ValueError("sizes must be non-negative")
        bytes_moved = 12.0 * nnz + 8.0 * 3 * nrows
        bw = self.spec.mem_bandwidth_gbs * 1e9 * STREAM_EFFICIENCY
        t_mem = bytes_moved / bw
        t_flop = 2.0 * nnz / (self.spec.peak_dp_gflops * 1e9 * CG_FLOP_EFFICIENCY)
        if t_mem >= t_flop:
            return PhaseTime(t_mem, "memory", self._core_fraction())
        return PhaseTime(t_flop, "compute", self._core_fraction())

    def cg_time(self, iterations: float, nnz: float, nrows: float) -> PhaseTime:
        """A PCG solve: per iteration one SpMV plus ~10 n of BLAS-1."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        spmv = self.spmv_time(nnz, nrows)
        blas1_bytes = 10.0 * 8.0 * nrows
        bw = self.spec.mem_bandwidth_gbs * 1e9 * STREAM_EFFICIENCY
        per_iter = spmv.seconds + blas1_bytes / bw
        return PhaseTime(iterations * per_iter, spmv.bound, self._core_fraction())

    def generic_time(self, flops: float, efficiency: float = 0.08) -> PhaseTime:
        """Other phases (time integration, assembly translation)."""
        peak = self.spec.peak_dp_gflops * 1e9 * self._core_fraction()
        return PhaseTime(flops / (peak * efficiency), "compute", self._core_fraction())

    # -- Power ------------------------------------------------------------------

    def package_power(self, utilization: float | None = None) -> float:
        """Package power at a busy-core fraction (linear RAPL model)."""
        u = self._core_fraction() if utilization is None else utilization
        if not (0.0 <= u <= 1.0):
            raise ValueError("utilization must be in [0, 1]")
        return self.spec.idle_pkg_w + (self.spec.full_pkg_w - self.spec.idle_pkg_w) * u

    def dram_power(self, utilization: float | None = None) -> float:
        u = self._core_fraction() if utilization is None else utilization
        return self.spec.dram_w_idle + (self.spec.dram_w_loaded - self.spec.dram_w_idle) * u
