"""RAPL-like energy counter interface.

Models Intel's Running Average Power Limit as the paper uses it
(Section 5.1): per-package MSR energy counters for the PACKAGE, PP0
(cores) and DRAM domains, updated on the order of milliseconds. The
counters integrate the `core_model` power levels over registered
activity phases; reading them twice and differencing gives average
power, exactly the measurement procedure behind Figures 14 and 16.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.core_model import CPUExecutionModel
from repro.cpu.specs import CPUSpec

__all__ = ["RAPLInterface", "RAPLSample"]


@dataclass(frozen=True)
class RAPLSample:
    """One reading of the three RAPL domains (joules since t=0)."""

    t_s: float
    pkg_j: float
    pp0_j: float
    dram_j: float


class RAPLInterface:
    """Energy counters for one CPU package.

    Activity is registered as (t0, t1, utilization) phases; counter
    reads integrate power over time with the idle level outside phases.
    Counter updates are quantized to the MSR update period (~1 ms).
    """

    UPDATE_PERIOD_S = 1e-3
    ENERGY_UNIT_J = 15.3e-6  # default RAPL energy status unit

    def __init__(self, spec: CPUSpec):
        self.spec = spec
        self.model = CPUExecutionModel(spec)
        self._phases: list[tuple[float, float, float]] = []

    def register_phase(self, t0: float, t1: float, utilization: float) -> None:
        if t1 <= t0:
            raise ValueError("phase must have positive duration")
        if not (0.0 <= utilization <= 1.0):
            raise ValueError("utilization must be in [0, 1]")
        self._phases.append((t0, t1, utilization))

    def _power_at(self, t: float) -> tuple[float, float, float]:
        u = 0.0
        for t0, t1, util in self._phases:
            if t0 <= t < t1:
                u = util
                break
        pkg = self.model.package_power(u)
        pp0 = pkg * self.spec.pp0_fraction
        dram = self.model.dram_power(u)
        return pkg, pp0, dram

    def read(self, t: float) -> RAPLSample:
        """Counter values at time t (quantized like the MSRs)."""
        tq = np.floor(t / self.UPDATE_PERIOD_S) * self.UPDATE_PERIOD_S
        # Integrate piecewise-constant power from 0 to tq.
        edges = sorted({0.0, tq, *[p for ph in self._phases for p in ph[:2] if p < tq]})
        pkg = pp0 = dram = 0.0
        for a, b in zip(edges[:-1], edges[1:]):
            if b <= a:
                continue
            p_pkg, p_pp0, p_dram = self._power_at(0.5 * (a + b))
            pkg += p_pkg * (b - a)
            pp0 += p_pp0 * (b - a)
            dram += p_dram * (b - a)
        # Quantize to the RAPL energy unit.
        q = self.ENERGY_UNIT_J
        return RAPLSample(float(tq), round(pkg / q) * q, round(pp0 / q) * q, round(dram / q) * q)

    def average_power(self, t0: float, t1: float) -> dict[str, float]:
        """The standard RAPL measurement: difference two readings."""
        if t1 <= t0:
            raise ValueError("window must have positive duration")
        s0 = self.read(t0)
        s1 = self.read(t1)
        dt = s1.t_s - s0.t_s
        if dt <= 0:
            return {"pkg": 0.0, "pp0": 0.0, "dram": 0.0}
        return {
            "pkg": (s1.pkg_j - s0.pkg_j) / dt,
            "pp0": (s1.pp0_j - s0.pp0_j) / dt,
            "dram": (s1.dram_j - s0.dram_j) / dt,
        }

    def power_trace(self, t0: float, t1: float, period_s: float = 0.1) -> list[tuple[float, float, float, float]]:
        """(t, pkg_w, pp0_w, dram_w) samples — the Figure 14/16 curves."""
        out = []
        t = t0
        while t + period_s <= t1 + 1e-12:
            p = self.average_power(t, t + period_s)
            out.append((t, p["pkg"], p["pp0"], p["dram"]))
            t += period_s
        return out
