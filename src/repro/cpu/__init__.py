"""Simulated CPU hardware substrate.

Covers the processors of the paper's testbeds (Westmere X5660, Nehalem
X5560, Sandy Bridge E5-2670, Titan's Opteron) with an execution-time
model for the hydro phases, a RAPL-like energy counter interface
(package / PP0 / DRAM domains, as in Section 5.1) and an OpenMP-style
fork-join model used by the CPU side of the CUDA+OpenMP corner force.
"""

from repro.cpu.specs import CPUSpec, CPU_CATALOG, get_cpu
from repro.cpu.core_model import CPUExecutionModel, PhaseTime
from repro.cpu.rapl import RAPLInterface, RAPLSample
from repro.cpu.openmp import OpenMPModel

__all__ = [
    "CPUSpec",
    "CPU_CATALOG",
    "get_cpu",
    "CPUExecutionModel",
    "PhaseTime",
    "RAPLInterface",
    "RAPLSample",
    "OpenMPModel",
]
