"""CPU catalog.

Published specifications for the processors in the paper's testbeds and
its Figure 1 CPU-generation comparison. Power constants follow the
paper's RAPL measurements for the E5-2670 (Figure 14: ~95 W fully
loaded package against a 115 W TDP — "our observation 95W (82%)
confirms the AMD reports of the normal range of Average CPU Power");
other parts scale the same 82% ACP ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CPUSpec", "CPU_CATALOG", "get_cpu"]


@dataclass(frozen=True)
class CPUSpec:
    """Static description of one CPU package."""

    name: str
    vendor: str
    year: int
    cores: int
    clock_ghz: float
    dp_flops_per_cycle_per_core: int  # SIMD width x FMA factor
    mem_bandwidth_gbs: float
    tdp_w: float
    idle_pkg_w: float
    full_pkg_w: float
    dram_w_loaded: float
    dram_w_idle: float
    pp0_fraction: float  # share of package power drawn by the cores

    @property
    def peak_dp_gflops(self) -> float:
        return self.cores * self.clock_ghz * self.dp_flops_per_cycle_per_core

    @property
    def peak_dp_per_watt(self) -> float:
        """DP Gflop/s per TDP watt (Figure 1's metric)."""
        return self.peak_dp_gflops / self.tdp_w


CPU_CATALOG: dict[str, CPUSpec] = {
    # Paper testbed parts ----------------------------------------------------
    "X5560": CPUSpec(
        name="X5560", vendor="Intel", year=2009, cores=4, clock_ghz=2.80,
        dp_flops_per_cycle_per_core=4, mem_bandwidth_gbs=32.0, tdp_w=95.0,
        idle_pkg_w=18.0, full_pkg_w=78.0, dram_w_loaded=12.0, dram_w_idle=1.0,
        pp0_fraction=0.78,
    ),
    "X5660": CPUSpec(
        name="X5660", vendor="Intel", year=2010, cores=6, clock_ghz=2.80,
        dp_flops_per_cycle_per_core=4, mem_bandwidth_gbs=32.0, tdp_w=95.0,
        idle_pkg_w=18.0, full_pkg_w=78.0, dram_w_loaded=12.0, dram_w_idle=1.0,
        pp0_fraction=0.78,
    ),
    "E5-2670": CPUSpec(
        name="E5-2670", vendor="Intel", year=2012, cores=8, clock_ghz=2.60,
        dp_flops_per_cycle_per_core=8, mem_bandwidth_gbs=51.2, tdp_w=115.0,
        idle_pkg_w=19.0, full_pkg_w=95.0, dram_w_loaded=15.0, dram_w_idle=0.5,
        pp0_fraction=0.80,
    ),
    "OPTERON-6274": CPUSpec(
        name="Opteron-6274", vendor="AMD", year=2011, cores=16, clock_ghz=2.20,
        dp_flops_per_cycle_per_core=4, mem_bandwidth_gbs=51.2, tdp_w=115.0,
        idle_pkg_w=20.0, full_pkg_w=94.0, dram_w_loaded=14.0, dram_w_idle=1.0,
        pp0_fraction=0.80,
    ),
    # Figure 1 generation line -----------------------------------------------
    "X5482": CPUSpec(
        name="X5482", vendor="Intel", year=2008, cores=4, clock_ghz=3.20,
        dp_flops_per_cycle_per_core=4, mem_bandwidth_gbs=12.8, tdp_w=150.0,
        idle_pkg_w=25.0, full_pkg_w=123.0, dram_w_loaded=10.0, dram_w_idle=1.0,
        pp0_fraction=0.78,
    ),
    "E5-2697V2": CPUSpec(
        name="E5-2697v2", vendor="Intel", year=2013, cores=12, clock_ghz=2.70,
        dp_flops_per_cycle_per_core=8, mem_bandwidth_gbs=59.7, tdp_w=130.0,
        idle_pkg_w=20.0, full_pkg_w=107.0, dram_w_loaded=16.0, dram_w_idle=0.5,
        pp0_fraction=0.80,
    ),
}


def get_cpu(name: str) -> CPUSpec:
    """Look up a CPU by name (case-insensitive)."""
    key = name.upper().replace(" ", "")
    for cat, spec in CPU_CATALOG.items():
        if cat.upper() == key:
            return spec
    raise KeyError(f"unknown CPU '{name}'; known: {sorted(CPU_CATALOG)}")
