"""Input/output: VTK visualization dumps and solver checkpoints."""

from repro.io.vtk import write_vtk
from repro.io.checkpoint import (
    CheckpointCorruptionError,
    load_checkpoint,
    restore_solver,
    save_checkpoint,
)

__all__ = [
    "write_vtk",
    "save_checkpoint",
    "load_checkpoint",
    "restore_solver",
    "CheckpointCorruptionError",
]
