"""Solver checkpoint/restart.

Long Lagrangian runs checkpoint and restart (the paper even motivates
the hybrid design with fault tolerance: "Applications are more fault
tolerant and runs faster, since the frequency of checking points can be
reduced"). A checkpoint stores the full unknown state (v, e, x, t), the
dt-controller state (so a restarted run reproduces the uninterrupted
trajectory bit-for-bit), and enough configuration metadata to verify a
restart is being applied to the same discretization.

Checkpoints are written atomically (temp file + `os.replace`, so a
crash mid-write never leaves a half-checkpoint under the final name)
and carry a SHA-256 content checksum inside the archive; a truncated or
bit-flipped file surfaces as `CheckpointCorruptionError` instead of a
raw numpy/zipfile exception.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.hydro.state import HydroState
from repro.errors import CorruptionError

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "restore_solver",
    "payload_digest",
    "CheckpointCorruptionError",
]

# Version 2 adds the SHA-256 content checksum and the dt-controller
# state (`last_dt_est`); version-1 archives still load, without the
# integrity check.
_FORMAT_VERSION = 2
_CHECKSUM_KEY = "sha256"


class CheckpointCorruptionError(CorruptionError):
    """The checkpoint file is truncated, unreadable, or fails its checksum."""


def payload_digest(payload: dict[str, np.ndarray]) -> str:
    """SHA-256 over every entry except the checksum itself, in key order.

    Shared by every durable artifact in the repo that embeds its own
    integrity hash (checkpoints here, the service result store): one
    digest convention means one verification path to audit.
    """
    h = hashlib.sha256()
    for key in sorted(payload):
        if key == _CHECKSUM_KEY:
            continue
        arr = np.ascontiguousarray(payload[key])
        h.update(key.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def save_checkpoint(path: str | Path, solver, state: HydroState | None = None) -> Path:
    """Atomically write the solver state to a .npz checkpoint; returns the path."""
    state = state or solver.state
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = {
        "format_version": np.asarray(_FORMAT_VERSION),
        "v": np.asarray(state.v),
        "e": np.asarray(state.e),
        "x": np.asarray(state.x),
        "t": np.asarray(state.t),
        "dim": np.asarray(solver.kinematic.dim),
        "order": np.asarray(solver.kinematic.order),
        "nzones": np.asarray(solver.kinematic.mesh.nzones),
        "quad_points_1d": np.asarray(solver.quad.npts_1d),
        "problem": np.asarray(getattr(solver.problem, "name", "unknown")),
        "controller_dt": np.asarray(solver.controller.dt),
        "last_dt_est": np.asarray(getattr(solver, "_last_dt_est", 0.0)),
    }
    payload[_CHECKSUM_KEY] = np.asarray(payload_digest(payload))
    tmp = path.with_name(f".{path.name}.tmp")
    try:
        with open(tmp, "wb") as f:
            np.savez_compressed(f, **payload)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_checkpoint(path: str | Path, verify: bool = True) -> dict:
    """Read a checkpoint into a plain dict (state + metadata).

    Verifies the stored SHA-256 checksum (version >= 2); truncated
    archives, missing entries, and checksum mismatches all raise
    `CheckpointCorruptionError`.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            payload = {key: data[key].copy() for key in data.files}
    except (zipfile.BadZipFile, EOFError, OSError) as exc:
        raise CheckpointCorruptionError(
            f"checkpoint {path} is unreadable (truncated or corrupted): {exc}"
        ) from exc
    if "format_version" not in payload:
        raise CheckpointCorruptionError(f"checkpoint {path} has no format_version entry")
    version = int(payload["format_version"])
    if not (1 <= version <= _FORMAT_VERSION):
        raise ValueError(f"unsupported checkpoint version {version}")
    if version >= 2:
        if _CHECKSUM_KEY not in payload:
            raise CheckpointCorruptionError(f"checkpoint {path} is missing its checksum")
        stored = str(payload.pop(_CHECKSUM_KEY).item())
        if verify:
            computed = payload_digest(payload)
            if computed != stored:
                raise CheckpointCorruptionError(
                    f"checkpoint {path} failed its SHA-256 check "
                    f"(stored {stored[:12]}..., computed {computed[:12]}...)"
                )
    return {key: arr.copy() if arr.ndim else arr.item() for key, arr in payload.items()}


def restore_solver(path: str | Path, solver) -> None:
    """Install a checkpoint into an already-constructed solver.

    The solver must be built on the *same* problem configuration; the
    metadata is cross-checked and mismatches raise instead of silently
    producing garbage. The dt-controller state is restored too, so a
    continued `run` reproduces the uninterrupted trajectory bit-for-bit.
    """
    chk = load_checkpoint(path)
    expectations = {
        "dim": solver.kinematic.dim,
        "order": solver.kinematic.order,
        "nzones": solver.kinematic.mesh.nzones,
        "quad_points_1d": solver.quad.npts_1d,
    }
    for key, expect in expectations.items():
        if int(chk[key]) != expect:
            raise ValueError(
                f"checkpoint mismatch: {key} is {chk[key]}, solver has {expect}"
            )
    if chk["v"].shape != solver.state.v.shape or chk["e"].shape != solver.state.e.shape:
        raise ValueError("checkpoint field shapes do not match the solver")
    solver.state = HydroState(chk["v"], chk["e"], chk["x"], float(chk["t"]))
    dt = float(chk["controller_dt"])
    if dt > 0:
        solver.controller.dt = dt
        last_est = float(chk.get("last_dt_est", 0.0))
        solver._last_dt_est = last_est if last_est > 0 else dt / solver.controller.cfl
