"""Solver checkpoint/restart.

Long Lagrangian runs checkpoint and restart (the paper even motivates
the hybrid design with fault tolerance: "Applications are more fault
tolerant and runs faster, since the frequency of checking points can be
reduced"). A checkpoint stores the full unknown state (v, e, x, t) plus
enough configuration metadata to verify a restart is being applied to
the same discretization.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.hydro.state import HydroState

__all__ = ["save_checkpoint", "load_checkpoint", "restore_solver"]

_FORMAT_VERSION = 1


def save_checkpoint(path: str | Path, solver, state: HydroState | None = None) -> Path:
    """Write the solver state to a .npz checkpoint; returns the path."""
    state = state or solver.state
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        v=state.v,
        e=state.e,
        x=state.x,
        t=state.t,
        dim=solver.kinematic.dim,
        order=solver.kinematic.order,
        nzones=solver.kinematic.mesh.nzones,
        quad_points_1d=solver.quad.npts_1d,
        problem=getattr(solver.problem, "name", "unknown"),
        controller_dt=solver.controller.dt,
    )
    return path


def load_checkpoint(path: str | Path) -> dict:
    """Read a checkpoint into a plain dict (state + metadata)."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        return {key: data[key].copy() if data[key].ndim else data[key].item()
                for key in data.files}


def restore_solver(path: str | Path, solver) -> None:
    """Install a checkpoint into an already-constructed solver.

    The solver must be built on the *same* problem configuration; the
    metadata is cross-checked and mismatches raise instead of silently
    producing garbage.
    """
    chk = load_checkpoint(path)
    expectations = {
        "dim": solver.kinematic.dim,
        "order": solver.kinematic.order,
        "nzones": solver.kinematic.mesh.nzones,
        "quad_points_1d": solver.quad.npts_1d,
    }
    for key, expect in expectations.items():
        if int(chk[key]) != expect:
            raise ValueError(
                f"checkpoint mismatch: {key} is {chk[key]}, solver has {expect}"
            )
    if chk["v"].shape != solver.state.v.shape or chk["e"].shape != solver.state.e.shape:
        raise ValueError("checkpoint field shapes do not match the solver")
    solver.state = HydroState(chk["v"], chk["e"], chk["x"], float(chk["t"]))
    dt = float(chk["controller_dt"])
    if dt > 0:
        solver.controller.dt = dt
        solver._last_dt_est = dt / solver.controller.cfl
