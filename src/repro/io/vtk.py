"""Legacy-ASCII VTK writer for solver snapshots.

Writes the (moving) mesh with point-wise velocity and zone-wise
density/energy so any VTK-reading tool (ParaView, VisIt — the tools
BLAST users visualize with) can render the Lagrangian flow. High-order
zones are written as their vertex-level linear shells; optionally each
zone is subdivided into its Gauss-Lobatto sub-cells to show the curved
geometry ("resolution" mode).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["write_vtk"]

_CELL_TYPES = {2: 9, 3: 12}  # VTK_QUAD, VTK_HEXAHEDRON
# Map lexicographic corner order to VTK's winding.
_CORNER_ORDER = {2: [0, 1, 3, 2], 3: [0, 1, 3, 2, 4, 5, 7, 6]}


def _subcell_connectivity(order: int, dim: int) -> np.ndarray:
    """Connectivity of the (order^dim) sub-cells of one zone's node grid."""
    n1 = order + 1
    cells = []
    if dim == 2:
        for j in range(order):
            for i in range(order):
                v00 = i + n1 * j
                cells.append([v00, v00 + 1, v00 + n1, v00 + n1 + 1])
    else:
        for k in range(order):
            for j in range(order):
                for i in range(order):
                    v0 = i + n1 * (j + n1 * k)
                    dz = n1 * n1
                    cells.append(
                        [v0, v0 + 1, v0 + n1, v0 + n1 + 1,
                         v0 + dz, v0 + dz + 1, v0 + dz + n1, v0 + dz + n1 + 1]
                    )
    return np.asarray(cells, dtype=np.int64)


def write_vtk(
    path: str | Path,
    solver,
    state=None,
    high_order: bool = True,
    title: str = "repro BLAST snapshot",
) -> Path:
    """Write a solver state as legacy VTK.

    With `high_order=True` every zone is subdivided into its order^dim
    Gauss-Lobatto sub-cells (all kinematic nodes become VTK points), so
    curved zones render curved. Otherwise only the vertex shell of each
    zone is written.

    Returns the written path.
    """
    state = state or solver.state
    mesh = solver.kinematic.mesh
    dim = mesh.dim
    path = Path(path)
    if path.suffix != ".vtk":
        path = path.with_suffix(".vtk")

    if high_order:
        points = state.x
        velocities = state.v
        sub = _subcell_connectivity(solver.kinematic.order, dim)
        cells = []
        zone_of_cell = []
        for z in range(mesh.nzones):
            ldof = solver.kinematic.ldof[z]
            for local_cell in sub:
                cells.append(ldof[local_cell])
                zone_of_cell.append(z)
        cells = np.asarray(cells)
        zone_of_cell = np.asarray(zone_of_cell)
    else:
        # Vertex shell: zone corner dofs are the corners of the dof grid.
        order = solver.kinematic.order
        n1 = order + 1
        if dim == 2:
            corner_local = np.array([0, order, n1 * order, n1 * order + order])
        else:
            c2 = np.array([0, order, n1 * order, n1 * order + order])
            corner_local = np.concatenate([c2, c2 + n1 * n1 * order])
        corner_dofs = solver.kinematic.ldof[:, corner_local]
        used, inverse = np.unique(corner_dofs.ravel(), return_inverse=True)
        points = state.x[used]
        velocities = state.v[used]
        cells = inverse.reshape(mesh.nzones, -1)
        zone_of_cell = np.arange(mesh.nzones)

    order_map = _CORNER_ORDER[dim]
    rho = solver.density_at_points(state).mean(axis=1)  # zone averages
    ez = solver.thermodynamic.gather(state.e).mean(axis=1)

    with open(path, "w") as f:
        f.write("# vtk DataFile Version 3.0\n")
        f.write(f"{title} (t={state.t:.6g})\n")
        f.write("ASCII\nDATASET UNSTRUCTURED_GRID\n")
        f.write(f"POINTS {len(points)} double\n")
        for p in points:
            coords = list(p) + [0.0] * (3 - dim)
            f.write(" ".join(f"{c:.10g}" for c in coords) + "\n")
        ncorn = cells.shape[1]
        f.write(f"\nCELLS {len(cells)} {len(cells) * (ncorn + 1)}\n")
        for cell in cells:
            wound = [cell[i] for i in order_map]
            f.write(f"{ncorn} " + " ".join(str(int(v)) for v in wound) + "\n")
        f.write(f"\nCELL_TYPES {len(cells)}\n")
        f.writelines(f"{_CELL_TYPES[dim]}\n" for _ in range(len(cells)))
        f.write(f"\nCELL_DATA {len(cells)}\n")
        f.write("SCALARS density double 1\nLOOKUP_TABLE default\n")
        f.writelines(f"{rho[z]:.10g}\n" for z in zone_of_cell)
        f.write("SCALARS internal_energy double 1\nLOOKUP_TABLE default\n")
        f.writelines(f"{ez[z]:.10g}\n" for z in zone_of_cell)
        f.write(f"\nPOINT_DATA {len(points)}\n")
        f.write("VECTORS velocity double\n")
        for v in velocities:
            comps = list(v) + [0.0] * (3 - dim)
            f.write(" ".join(f"{c:.10g}" for c in comps) + "\n")
    return path
