"""Simulated GPU hardware substrate.

The paper evaluates on NVIDIA Fermi (C2050) and Kepler (K10/K20/K20m)
GPUs, measuring kernel time with CUDA events and board power with NVML.
None of that hardware is available here, so this package implements the
substitution described in DESIGN.md: an analytic device model with

* a device catalog holding the published specifications the paper's own
  analysis uses (peak DP Gflop/s, memory bandwidth, TDP, shared memory
  and register file sizes, Hyper-Q queue count),
* a CUDA-style occupancy calculator,
* a roofline execution-time model over the three-level memory hierarchy
  the paper profiles (L1/shared, L2, device memory — Figure 8),
* a component-based power model (device-memory traffic is the dominant
  dynamic term, after Hong & Kim), exposed through an NVML-like API,
* Hyper-Q work queues and a PCI-E transfer model.
"""

from repro.gpu.specs import GPUSpec, GPU_CATALOG, get_gpu
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.execution import KernelCost, KernelTiming, execute_kernel
from repro.gpu.power import GPUPowerModel, PowerSample
from repro.gpu.nvml import NVMLInterface
from repro.gpu.pcie import PCIeModel
from repro.gpu.device import SimulatedGPU, KernelLaunchRecord
from repro.gpu.streams import StreamedPhase, overlap_phase
from repro.gpu.multigpu import MultiGPUPhase, run_multi_gpu_phase, balanced_shares

__all__ = [
    "GPUSpec",
    "GPU_CATALOG",
    "get_gpu",
    "OccupancyResult",
    "occupancy",
    "MemoryHierarchy",
    "KernelCost",
    "KernelTiming",
    "execute_kernel",
    "GPUPowerModel",
    "PowerSample",
    "NVMLInterface",
    "PCIeModel",
    "SimulatedGPU",
    "KernelLaunchRecord",
    "StreamedPhase",
    "overlap_phase",
    "MultiGPUPhase",
    "run_multi_gpu_phase",
    "balanced_shares",
]
