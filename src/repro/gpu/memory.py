"""GPU memory hierarchy model.

Three levels, matching the paper's Figure 8 profile: on-chip L1/shared,
on-chip L2, and off-chip device memory. Each level carries a bandwidth
(from the device catalog) and an energy cost per byte. The energy
ratios follow the micro-benchmarks the paper cites ([19], Hong & Kim:
"the device memory power is 52, while shared memory is 1 with FP and
ALU only 0.2 (normalized unit)") scaled to physically plausible
picojoule values; this ratio — device memory traffic costs ~50x on-chip
traffic — is what makes the optimized kernels *lower power*, not just
faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec

__all__ = ["MemoryHierarchy", "ENERGY_PER_DP_FLOP_PJ"]

# Dynamic energy constants (picojoules). Calibrated so a device-memory-
# saturating kernel on K20 draws ~60-70 W of dynamic power and a
# compute-saturating one ~80-100 W — consistent with the paper's
# Figure 15 scenario levels under its 225 W TDP.
ENERGY_PER_DP_FLOP_PJ = 75.0
_ENERGY_DRAM_PJ_PER_BYTE = 420.0
_ENERGY_L2_PJ_PER_BYTE = 45.0
_ENERGY_SHARED_PJ_PER_BYTE = 8.0


@dataclass(frozen=True)
class MemoryHierarchy:
    """Bandwidths (GB/s) and energies (pJ/B) of the three levels."""

    dram_gbs: float
    l2_gbs: float
    shared_gbs: float
    dram_pj_per_byte: float = _ENERGY_DRAM_PJ_PER_BYTE
    l2_pj_per_byte: float = _ENERGY_L2_PJ_PER_BYTE
    shared_pj_per_byte: float = _ENERGY_SHARED_PJ_PER_BYTE

    @classmethod
    def of(cls, spec: GPUSpec) -> "MemoryHierarchy":
        return cls(
            dram_gbs=spec.mem_bandwidth_gbs,
            l2_gbs=spec.l2_bandwidth_gbs,
            shared_gbs=spec.shared_bandwidth_gbs,
        )

    def level_time_s(self, dram_bytes: float, l2_bytes: float, shared_bytes: float,
                     dram_efficiency: float = 1.0) -> dict[str, float]:
        """Per-level transfer time for the given traffic volumes."""
        eff = max(min(dram_efficiency, 1.0), 1e-3)
        times = {
            "dram": dram_bytes / (self.dram_gbs * 1e9 * eff) if dram_bytes else 0.0,
        }
        times["l2"] = l2_bytes / (self.l2_gbs * 1e9) if l2_bytes and self.l2_gbs else 0.0
        times["shared"] = shared_bytes / (self.shared_gbs * 1e9) if shared_bytes else 0.0
        return times

    def traffic_energy_j(self, dram_bytes: float, l2_bytes: float, shared_bytes: float) -> float:
        """Dynamic energy of moving the given traffic (joules)."""
        return 1e-12 * (
            dram_bytes * self.dram_pj_per_byte
            + l2_bytes * self.l2_pj_per_byte
            + shared_bytes * self.shared_pj_per_byte
        )

    @property
    def energy_ratio_dram_to_shared(self) -> float:
        """The ~50x on/off-chip energy ratio the redesign exploits."""
        return self.dram_pj_per_byte / self.shared_pj_per_byte
