"""The simulated GPU device: launch queues, timeline, power accounting.

`SimulatedGPU` is the object the hybrid runtime talks to. It accepts
kernel launches (as `KernelCost` descriptors), executes them through the
roofline model, advances a simulated clock, and keeps an NVML-visible
power timeline. Hyper-Q semantics follow the paper's Section 4.2: Kepler
exposes 32 hardware work queues so multiple MPI clients can share the
device concurrently; on Fermi-class parts (one queue) multiple clients
serialize and pay a synchronization penalty per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.execution import KernelCost, KernelTiming, execute_kernel
from repro.gpu.nvml import NVMLInterface
from repro.gpu.power import GPUPowerModel
from repro.gpu.specs import GPUSpec

__all__ = ["SimulatedGPU", "KernelLaunchRecord", "PhaseReport"]

# Extra per-kernel serialization cost when clients contend for a single
# work queue (context switching on Fermi-class parts).
_QUEUE_CONTENTION_OVERHEAD_S = 20e-6


@dataclass(frozen=True)
class KernelLaunchRecord:
    """One completed (simulated) kernel launch."""

    client: int
    start_s: float
    end_s: float
    timing: KernelTiming

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class PhaseReport:
    """Aggregate of one activity phase (e.g. one corner-force pass)."""

    time_s: float
    power_w: float
    energy_j: float
    timings: list[KernelTiming] = field(default_factory=list)

    def kernel_time(self, name_prefix: str) -> float:
        return sum(t.time_s for t in self.timings if t.cost.name.startswith(name_prefix))


class SimulatedGPU:
    """A single GPU board with a simulated clock."""

    def __init__(self, spec: GPUSpec, seed: int = 0, fault_injector=None):
        self.spec = spec
        self.power_model = GPUPowerModel(spec)
        self.nvml = NVMLInterface(spec, seed=seed)
        self.clock_s = 0.0
        self.launches: list[KernelLaunchRecord] = []
        self.total_energy_j = 0.0
        # Optional repro.resilience.FaultInjector: every kernel routed
        # through this device may then abort with a GPUKernelFault.
        self.fault_injector = fault_injector

    # -- Single launches -------------------------------------------------------

    def launch(self, cost: KernelCost, client: int = 0) -> KernelLaunchRecord:
        """Execute one kernel; advances the device clock."""
        timing = execute_kernel(self.spec, cost, fault_injector=self.fault_injector)
        start = self.clock_s
        end = start + timing.time_s
        rec = KernelLaunchRecord(client, start, end, timing)
        self.launches.append(rec)
        self.clock_s = end
        power = self.power_model.active_power([timing])
        self.nvml.register_phase(start, end, power)
        self.total_energy_j += power * timing.time_s
        return rec

    # -- Whole phases -----------------------------------------------------------

    def run_phase(
        self,
        costs: list[KernelCost],
        concurrent_clients: int = 1,
        duty_cycle: float = 1.0,
    ) -> PhaseReport:
        """Execute a kernel mix submitted by `concurrent_clients` clients.

        With Hyper-Q (enough hardware queues) the clients' work simply
        shares the device back-to-back; without it each kernel beyond the
        first client pays a serialization overhead.
        """
        if concurrent_clients < 1:
            raise ValueError("concurrent_clients must be >= 1")
        # A fault aborts the whole phase before the clock advances: the
        # device state stays consistent, mirroring a driver-level abort.
        timings = [
            execute_kernel(self.spec, c, fault_injector=self.fault_injector) for c in costs
        ]
        busy = sum(t.time_s for t in timings)
        if concurrent_clients > self.spec.hyperq_queues:
            busy += _QUEUE_CONTENTION_OVERHEAD_S * len(costs)
        wall = busy / duty_cycle if duty_cycle > 0 else busy
        power = self.power_model.active_power(timings, concurrent_clients, duty_cycle)
        energy = power * wall
        start = self.clock_s
        self.clock_s += wall
        self.nvml.register_phase(start, self.clock_s, power)
        self.total_energy_j += energy
        for t in timings:
            self.launches.append(KernelLaunchRecord(0, start, start + t.time_s, t))
            start += t.time_s
        return PhaseReport(wall, power, energy, timings)

    def idle(self, duration_s: float) -> None:
        """Advance the clock with the board idle."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        self.total_energy_j += self.spec.idle_w * duration_s
        self.clock_s += duration_s

    # -- Introspection ------------------------------------------------------------

    @property
    def busy_time_s(self) -> float:
        return sum(l.duration_s for l in self.launches)

    def kernel_time_breakdown(self) -> dict[str, float]:
        """Total simulated time per kernel name (the paper's Figure 6)."""
        out: dict[str, float] = {}
        for l in self.launches:
            out[l.timing.cost.name] = out.get(l.timing.cost.name, 0.0) + l.timing.time_s
        return out
