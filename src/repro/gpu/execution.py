"""Roofline execution-time model for simulated kernels.

A kernel is described by its work (`KernelCost`): floating point
operations, bytes moved at each memory level, and its launch
configuration (threads/block, registers/thread, shared memory/block).
Execution time is the slowest of the compute roof and the per-level
bandwidth roofs, de-rated by occupancy — the same first-order model the
paper's own analysis applies ("theoretical peak performance on K20 is
35, 52 Gflop/s for DIM = 2, 3" comes from exactly this arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.gpu.memory import ENERGY_PER_DP_FLOP_PJ, MemoryHierarchy
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.specs import GPUSpec

__all__ = ["KernelCost", "KernelTiming", "execute_kernel", "KERNEL_LAUNCH_OVERHEAD_S"]

# Fixed driver/runtime cost of one kernel launch.
KERNEL_LAUNCH_OVERHEAD_S = 5e-6

# Performance saturates once enough warps hide latency; below this
# occupancy the achievable throughput degrades proportionally.
_OCCUPANCY_SATURATION = 0.7


@dataclass(frozen=True)
class KernelCost:
    """Work and launch configuration of one kernel invocation.

    `compute_efficiency` is the fraction of peak the instruction mix can
    reach even at full occupancy (scalar-heavy SVD/eigenvalue code sits
    well below pure-FMA peak; clean batched GEMM sits near it).
    `dram_efficiency` models coalescing quality of the global-memory
    access pattern.
    """

    name: str
    flops: float
    dram_bytes: float
    l2_bytes: float = 0.0
    shared_bytes: float = 0.0
    threads_per_block: int = 128
    blocks: int = 1
    regs_per_thread: int = 32
    shared_per_block: int = 0
    compute_efficiency: float = 0.8
    dram_efficiency: float = 0.8
    latency_bound_factor: float = 1.0

    def __post_init__(self):
        if self.flops < 0 or self.dram_bytes < 0 or self.l2_bytes < 0 or self.shared_bytes < 0:
            raise ValueError("work quantities must be non-negative")
        if not (0 < self.compute_efficiency <= 1.0):
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not (0 < self.dram_efficiency <= 1.0):
            raise ValueError("dram_efficiency must be in (0, 1]")
        if self.latency_bound_factor < 1.0:
            raise ValueError("latency_bound_factor must be >= 1")

    def scaled(self, factor: float) -> "KernelCost":
        """Same kernel over `factor` times the work (e.g. fewer zones)."""
        return replace(
            self,
            flops=self.flops * factor,
            dram_bytes=self.dram_bytes * factor,
            l2_bytes=self.l2_bytes * factor,
            shared_bytes=self.shared_bytes * factor,
            blocks=max(1, int(round(self.blocks * factor))),
        )


@dataclass(frozen=True)
class KernelTiming:
    """Modelled execution of one kernel on one device.

    `busy` holds per-component busy fractions ("utilization") over the
    kernel's runtime: how long each memory level's pipelines were
    occupied (including replay traffic on inefficient access patterns)
    and how long the SMs were issuing FP work. The power model consumes
    these — a latency-bound spilling kernel keeps the DRAM system hot
    for its whole (long) runtime, which is exactly why the paper's base
    implementation draws *more* power than the optimized one.
    """

    cost: KernelCost
    time_s: float
    occupancy: OccupancyResult
    bound: str
    gflops: float
    bandwidth_gbs: dict[str, float] = field(default_factory=dict)
    dynamic_energy_j: float = 0.0
    busy: dict[str, float] = field(default_factory=dict)

    @property
    def dynamic_power_w(self) -> float:
        """Average dynamic power while this kernel runs."""
        return self.dynamic_energy_j / self.time_s if self.time_s > 0 else 0.0


def execute_kernel(spec: GPUSpec, cost: KernelCost, fault_injector=None) -> KernelTiming:
    """Model one kernel execution: time, achieved rates, dynamic energy.

    `fault_injector` is an optional `repro.resilience.FaultInjector`;
    when armed it may abort this launch with a `GPUKernelFault`
    (simulated uncorrectable ECC / kernel abort) before any clock or
    energy is accounted — the caller decides whether to retry or fall
    back to the CPU path.
    """
    if fault_injector is not None:
        fault_injector.check("gpu", detail=cost.name)
    mem = MemoryHierarchy.of(spec)
    occ = occupancy(spec, cost.threads_per_block, cost.regs_per_thread, cost.shared_per_block)
    if occ.occupancy <= 0.0:
        raise ValueError(
            f"kernel '{cost.name}' launch config cannot run: limited by {occ.limiter}"
        )
    occ_derate = min(1.0, occ.occupancy / _OCCUPANCY_SATURATION)

    t_compute = (
        cost.flops / (spec.peak_dp_gflops * 1e9 * cost.compute_efficiency * occ_derate)
        if cost.flops
        else 0.0
    )
    level_times = mem.level_time_s(
        cost.dram_bytes, cost.l2_bytes, cost.shared_bytes, cost.dram_efficiency
    )
    # Low occupancy also hurts bandwidth (not enough requests in flight).
    for k in level_times:
        level_times[k] /= occ_derate if occ_derate > 0 else 1.0

    candidates = {"compute": t_compute, **level_times}
    bound = max(candidates, key=lambda k: candidates[k])
    t = candidates[bound] * cost.latency_bound_factor + KERNEL_LAUNCH_OVERHEAD_S

    bandwidth = {
        "dram": cost.dram_bytes / t / 1e9,
        "l2": cost.l2_bytes / t / 1e9,
        "shared": cost.shared_bytes / t / 1e9,
    }
    energy = mem.traffic_energy_j(cost.dram_bytes, cost.l2_bytes, cost.shared_bytes)
    energy += cost.flops * ENERGY_PER_DP_FLOP_PJ * 1e-12
    # Component busy fractions. Memory levels are busy for their
    # effective (inefficiency-inflated) transfer time; the SM front end
    # is busy issuing for the compute-roof time, with a floor for the
    # load/store issue work of memory-bound kernels. The FP weight
    # scales with how FMA-dense the instruction mix is.
    busy = {
        lvl: min(1.0, lt * cost.latency_bound_factor / t)
        for lvl, lt in level_times.items()
    }
    fp_density = 0.35 + 0.65 * cost.compute_efficiency
    # Latency-bound kernels keep warp schedulers spinning on replays:
    # the issue floor grows with the latency penalty.
    issue_floor = min(1.0, 0.25 * cost.latency_bound_factor)
    busy["fp"] = min(1.0, max(t_compute / t, issue_floor)) * fp_density
    return KernelTiming(
        cost=cost,
        time_s=t,
        occupancy=occ,
        bound=bound,
        gflops=cost.flops / t / 1e9,
        bandwidth_gbs=bandwidth,
        dynamic_energy_j=energy,
        busy=busy,
    )
