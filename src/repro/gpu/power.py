"""GPU board power model.

Board power decomposes as

    P = idle                                  (nothing running, long term)
    P = active_base + P_dynamic + P_hyperq    (kernels in flight)

where `P_dynamic` is the traffic/compute energy of the running kernels
divided by their runtime (the component model of `gpu.memory` /
`gpu.execution`), and `P_hyperq` is the per-extra-client overhead the
paper observed when 8 MPI ranks share one K20 ("when the GPU is shared
by 8 MPI tasks, its power usage will be higher than 1 MPI ... this
additional power cost should come from the overhead of Hyper-Q",
Section 5.2). Power is clamped to the board TDP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.execution import KernelTiming
from repro.gpu.specs import GPUSpec

__all__ = [
    "GPUPowerModel",
    "PowerSample",
    "HYPERQ_OVERHEAD_W_PER_CLIENT",
    "COMPONENT_MAX_W_FRACTION",
]

# Extra board power per additional concurrent Hyper-Q client.
HYPERQ_OVERHEAD_W_PER_CLIENT = 6.0

# Peak dynamic power of each component as a fraction of the board's
# dynamic headroom (TDP - active base). Ratios follow the component
# studies the paper cites ([18], [19]): device memory is the largest
# non-core consumer ("the memory power consumes around 25% of total GPU
# power"), the SMs' FP datapath the largest overall, on-chip RAMs small.
COMPONENT_MAX_W_FRACTION = {
    "fp": 0.52,
    "dram": 0.36,
    "l2": 0.06,
    "shared": 0.06,
}


@dataclass(frozen=True)
class PowerSample:
    """One NVML-style reading."""

    t_s: float
    power_w: float


class GPUPowerModel:
    """Computes board power for phases of modelled kernel activity."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec

    def idle_power(self) -> float:
        return self.spec.idle_w

    def active_power(
        self,
        timings: list[KernelTiming],
        concurrent_clients: int = 1,
        duty_cycle: float = 1.0,
    ) -> float:
        """Average board power while the given kernel mix executes.

        `duty_cycle` < 1 models gaps between launches (host-side work),
        during which the board sits at the active base level.
        """
        if not timings:
            return self.spec.idle_w
        if not (0 < duty_cycle <= 1.0):
            raise ValueError("duty_cycle must be in (0, 1]")
        if concurrent_clients < 1:
            raise ValueError("concurrent_clients must be >= 1")
        total_time = sum(t.time_s for t in timings)
        if total_time <= 0:
            return self.spec.idle_w
        headroom = self.spec.tdp_w - self.spec.active_base_w
        # Time-weighted component utilization over the kernel mix.
        p_dyn = 0.0
        for comp, frac in COMPONENT_MAX_W_FRACTION.items():
            util = sum(t.busy.get(comp, 0.0) * t.time_s for t in timings) / total_time
            p_dyn += frac * headroom * util
        p_dyn *= duty_cycle
        p_hq = HYPERQ_OVERHEAD_W_PER_CLIENT * (min(concurrent_clients, self.spec.hyperq_queues) - 1)
        p = self.spec.active_base_w + p_dyn + p_hq
        return float(min(p, self.spec.tdp_w))

    def phase_energy_j(
        self,
        timings: list[KernelTiming],
        concurrent_clients: int = 1,
        duty_cycle: float = 1.0,
    ) -> float:
        """Board energy of one activity phase (power x busy time)."""
        total_time = sum(t.time_s for t in timings) / duty_cycle
        return self.active_power(timings, concurrent_clients, duty_cycle) * total_time

    def trace(
        self,
        phases: list[tuple[float, float]],
        sample_period_s: float = 1e-3,
        noise_w: float = 0.0,
        seed: int = 0,
    ) -> list[PowerSample]:
        """Synthesize an NVML-like sampled power trace.

        `phases` is a list of (duration_s, power_w) segments; samples are
        taken every `sample_period_s` with optional uniform noise
        (NVML reports +/- 5 W accuracy).
        """
        rng = np.random.default_rng(seed)
        samples: list[PowerSample] = []
        t = 0.0
        for duration, power in phases:
            n = max(1, int(duration / sample_period_s))
            times = t + sample_period_s * np.arange(n)
            vals = np.full(n, power) + (rng.uniform(-noise_w, noise_w, n) if noise_w else 0.0)
            vals = np.clip(vals, 0.0, self.spec.tdp_w)
            samples.extend(PowerSample(float(ts), float(p)) for ts, p in zip(times, vals))
            t += duration
        return samples
