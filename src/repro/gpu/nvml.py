"""NVML-like management interface over the simulated GPU.

Mirrors the subset of the NVIDIA Management Library the paper uses:
board-level power queries with millisecond update period and +/- 5 W
accuracy ("It only reports the entire board power ... has milliwatt
resolution within +/- 5 W and is updated per millisecond", Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.power import GPUPowerModel, PowerSample
from repro.gpu.specs import GPUSpec

__all__ = ["NVMLInterface", "NVMLDeviceInfo"]


@dataclass(frozen=True)
class NVMLDeviceInfo:
    """nvmlDeviceGetName / GetPowerManagementLimit analog."""

    name: str
    power_limit_w: float
    min_power_w: float


class NVMLInterface:
    """Samples board power of a simulated device timeline.

    The device registers activity phases (start, end, power); queries
    return the phase power at the query time, quantized and noised the
    way nvidia-smi readings are.
    """

    UPDATE_PERIOD_S = 1e-3
    ACCURACY_W = 5.0

    def __init__(self, spec: GPUSpec, seed: int = 0):
        self.spec = spec
        self.model = GPUPowerModel(spec)
        self._phases: list[tuple[float, float, float]] = []  # (t0, t1, watts)
        self._rng = np.random.default_rng(seed)

    def device_info(self) -> NVMLDeviceInfo:
        return NVMLDeviceInfo(self.spec.name, self.spec.tdp_w, self.spec.idle_w)

    def register_phase(self, t0: float, t1: float, power_w: float) -> None:
        """Record that the board drew `power_w` during [t0, t1)."""
        if t1 <= t0:
            raise ValueError("phase must have positive duration")
        self._phases.append((t0, t1, power_w))

    def power_at(self, t: float, exact: bool = False) -> float:
        """nvmlDeviceGetPowerUsage at time t (watts).

        Readings update once per millisecond and carry +/- 5 W noise
        unless `exact` is requested.
        """
        t_sample = np.floor(t / self.UPDATE_PERIOD_S) * self.UPDATE_PERIOD_S
        power = self.spec.idle_w
        for t0, t1, p in self._phases:
            if t0 <= t_sample < t1:
                power = p
                break
        if not exact:
            power += float(self._rng.uniform(-self.ACCURACY_W, self.ACCURACY_W))
        return float(np.clip(power, 0.0, self.spec.tdp_w))

    def sample_trace(self, t0: float, t1: float, period_s: float | None = None,
                     exact: bool = False) -> list[PowerSample]:
        """Sample power over [t0, t1) every `period_s` (default 1 ms)."""
        period = period_s or self.UPDATE_PERIOD_S
        times = np.arange(t0, t1, period)
        return [PowerSample(float(t), self.power_at(float(t), exact=exact)) for t in times]

    def energy_j(self, t0: float, t1: float) -> float:
        """Integrated exact energy over [t0, t1) (trapezoid on phases)."""
        total = 0.0
        covered: list[tuple[float, float]] = []
        for p0, p1, p in self._phases:
            lo, hi = max(t0, p0), min(t1, p1)
            if hi > lo:
                total += p * (hi - lo)
                covered.append((lo, hi))
        # Idle elsewhere in the window.
        busy = sum(hi - lo for lo, hi in covered)
        total += self.spec.idle_w * max((t1 - t0) - busy, 0.0)
        return total
