"""CUDA-style occupancy calculation.

Occupancy — resident warps over the SM's warp capacity — is the central
tuning metric of the paper's Section 3.2 ("The number of matrix
performed per thread block can be tuned to find an optimal occupancy.
We find 32 delivered the best performance with an occupancy 98.3%").
The calculation follows the vendor's occupancy calculator: the limiter
is whichever of warps / registers / shared memory / block slots runs
out first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec

__all__ = ["OccupancyResult", "occupancy"]


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of a kernel configuration on one SM."""

    occupancy: float
    active_blocks: int
    active_warps: int
    limiter: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.occupancy:.1%} ({self.active_blocks} blocks, limited by {self.limiter})"


def occupancy(
    spec: GPUSpec,
    threads_per_block: int,
    regs_per_thread: int,
    shared_per_block_bytes: int,
) -> OccupancyResult:
    """Achievable occupancy of a launch configuration.

    Register allocation granularity and shared-memory bank padding are
    modelled at warp granularity, which is accurate enough for the
    tuning curves reproduced here.
    """
    if threads_per_block < 1 or threads_per_block > spec.max_threads_per_block:
        raise ValueError(
            f"threads_per_block must be in [1, {spec.max_threads_per_block}]"
        )
    if regs_per_thread < 0 or shared_per_block_bytes < 0:
        raise ValueError("resource usage cannot be negative")

    warps_per_block = -(-threads_per_block // spec.warp_size)
    max_warps = spec.max_threads_per_sm // spec.warp_size

    limits: dict[str, int] = {}
    limits["warps"] = max_warps // warps_per_block
    limits["blocks"] = spec.max_blocks_per_sm
    if regs_per_thread > 0:
        regs_per_block = regs_per_thread * warps_per_block * spec.warp_size
        limits["registers"] = spec.registers_per_sm // regs_per_block if regs_per_block else spec.max_blocks_per_sm
    if shared_per_block_bytes > 0:
        limits["shared"] = int(spec.shared_kb_per_sm * 1024) // shared_per_block_bytes

    blocks = min(limits.values())
    limiter = min(limits, key=lambda k: limits[k])
    if blocks <= 0:
        return OccupancyResult(0.0, 0, 0, limiter)
    warps = blocks * warps_per_block
    if warps > max_warps:
        warps = max_warps
    return OccupancyResult(warps / max_warps, blocks, warps, limiter)
