"""PCI-E transfer model.

The paper's Section 3.1.2 keeps the full force matrix F on the device
precisely because host<->device transfers over "the relatively slow
PCI-E bus" would dominate; only the state vectors (v, e, x) go down and
the right-hand-side vectors come back. This model prices both designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec

__all__ = ["PCIeModel", "TransferPlan"]


@dataclass(frozen=True)
class TransferPlan:
    """Bytes exchanged with the device per corner-force evaluation."""

    host_to_device: float
    device_to_host: float

    @property
    def total(self) -> float:
        return self.host_to_device + self.device_to_host


class PCIeModel:
    """Latency + bandwidth model of the host-device link."""

    LATENCY_S = 1e-5  # per transfer call

    def __init__(self, spec: GPUSpec, efficiency: float = 0.75, fault_injector=None):
        if not (0 < efficiency <= 1.0):
            raise ValueError("efficiency must be in (0, 1]")
        self.spec = spec
        self.efficiency = efficiency
        # Optional repro.resilience.FaultInjector: transfers may then
        # abort with a PCIeTransferFault before any time is accounted.
        self.fault_injector = fault_injector

    def transfer_time_s(self, nbytes: float, ncalls: int = 1) -> float:
        if nbytes < 0 or ncalls < 1:
            raise ValueError("invalid transfer description")
        if self.fault_injector is not None:
            self.fault_injector.check("pcie", detail=f"{nbytes:.0f}B x {ncalls}")
        bw = self.spec.pcie_gbs * 1e9 * self.efficiency
        return nbytes / bw + self.LATENCY_S * ncalls

    @staticmethod
    def state_vectors_plan(
        ndof_kinematic: int, ndof_thermo: int, dim: int
    ) -> TransferPlan:
        """The paper's design: ship (v, e, x) down, (dv/dt, de/dt) back."""
        down = 8.0 * (2 * ndof_kinematic * dim + ndof_thermo)
        up = 8.0 * (ndof_kinematic * dim + ndof_thermo)
        return TransferPlan(down, up)

    @staticmethod
    def full_matrix_plan(
        nzones: int, ndof_kinematic_zone: int, ndof_thermo_zone: int, dim: int,
        ndof_kinematic: int, ndof_thermo: int,
    ) -> TransferPlan:
        """The rejected design: ship the assembled F back every step.

        F has nzones * (N*d) * P nonzeros "due to its high-order nature"
        — orders of magnitude more than the state vectors.
        """
        down = 8.0 * (2 * ndof_kinematic * dim + ndof_thermo)
        up = 8.0 * nzones * ndof_kinematic_zone * dim * ndof_thermo_zone
        return TransferPlan(down, up)
