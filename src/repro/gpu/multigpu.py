"""Multi-GPU node model.

Shannon's nodes carry two K20m boards; the corner force splits across
them the same way it splits across CPU/GPU in the auto-balance — zones
are independent. This model distributes a kernel mix over `ngpus`
devices with a per-device share, plus the host-side fan-out overhead,
and reports the node-level time/power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import PhaseReport, SimulatedGPU
from repro.gpu.execution import KernelCost
from repro.gpu.specs import GPUSpec

__all__ = ["MultiGPUPhase", "run_multi_gpu_phase", "balanced_shares"]

# Host-side per-device launch/orchestration cost per phase.
_FANOUT_OVERHEAD_S = 50e-6


@dataclass(frozen=True)
class MultiGPUPhase:
    """Node-level outcome of a phase split across devices."""

    per_device: tuple[PhaseReport, ...]
    time_s: float
    power_w: float

    @property
    def energy_j(self) -> float:
        return sum(r.energy_j for r in self.per_device)

    @property
    def imbalance(self) -> float:
        times = [r.time_s for r in self.per_device]
        return max(times) / (sum(times) / len(times)) if times else 1.0


def balanced_shares(ngpus: int) -> list[float]:
    """Even split (identical boards)."""
    if ngpus < 1:
        raise ValueError("ngpus must be >= 1")
    return [1.0 / ngpus] * ngpus


def run_multi_gpu_phase(
    spec: GPUSpec,
    costs: list[KernelCost],
    shares: list[float],
    concurrent_clients: int = 1,
) -> MultiGPUPhase:
    """Execute a kernel mix split by `shares` over identical devices.

    Each device runs every kernel scaled to its share of the zones; the
    node phase ends when the slowest device finishes (a barrier, like
    the CPU-GPU sync of Section 3.3). Node power while busy is the sum
    of the active devices' draws.
    """
    shares = list(shares)
    if not shares:
        raise ValueError("need at least one share")
    if any(s <= 0 for s in shares):
        raise ValueError("shares must be positive")
    if not np.isclose(sum(shares), 1.0):
        raise ValueError("shares must sum to 1")
    reports = []
    for share in shares:
        device = SimulatedGPU(spec)
        scaled = [c.scaled(share) for c in costs]
        reports.append(device.run_phase(scaled, concurrent_clients=concurrent_clients))
    time_s = max(r.time_s for r in reports) + _FANOUT_OVERHEAD_S * len(shares)
    power = sum(r.power_w for r in reports)
    return MultiGPUPhase(tuple(reports), time_s, power)
