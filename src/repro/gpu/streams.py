"""CUDA-stream style transfer/compute overlap model.

The paper's Section 3.3 relies on asynchronous kernel launches
("control can return to a host thread prior to the GPU completing
work"); the same machinery lets PCI-E transfers overlap kernel
execution when the state vectors are double-buffered. This model
computes the overlapped timeline of a corner-force pass:

    serial      : H2D + kernels + D2H
    overlapped  : max(H2D, pipeline fill) + kernels + drained D2H

and reports the achieved overlap efficiency, the quantity an async
redesign would be judged by.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.execution import KernelCost, execute_kernel
from repro.gpu.pcie import PCIeModel
from repro.gpu.specs import GPUSpec

__all__ = ["StreamedPhase", "overlap_phase"]


@dataclass(frozen=True)
class StreamedPhase:
    """Timeline of one transfer-compute-transfer phase."""

    serial_s: float
    overlapped_s: float
    h2d_s: float
    kernels_s: float
    d2h_s: float

    @property
    def speedup(self) -> float:
        return self.serial_s / self.overlapped_s if self.overlapped_s > 0 else 1.0

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the transfer time hidden behind compute."""
        transfers = self.h2d_s + self.d2h_s
        if transfers <= 0:
            return 1.0
        hidden = self.serial_s - self.overlapped_s
        return max(0.0, min(1.0, hidden / transfers))


def overlap_phase(
    spec: GPUSpec,
    costs: list[KernelCost],
    h2d_bytes: float,
    d2h_bytes: float,
    chunks: int = 4,
) -> StreamedPhase:
    """Model a chunked, double-buffered transfer/compute pipeline.

    The inputs are split into `chunks` independent slices (zones are
    embarrassingly parallel, so this is legitimate for the corner
    force): slice i+1 uploads while slice i computes, and each slice's
    results download as soon as it finishes. Classic pipeline algebra:
    total = fill + max-stage * (chunks - 1) + drain.
    """
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    if h2d_bytes < 0 or d2h_bytes < 0:
        raise ValueError("transfer sizes must be non-negative")
    pcie = PCIeModel(spec)
    t_h2d = pcie.transfer_time_s(h2d_bytes, ncalls=chunks)
    t_d2h = pcie.transfer_time_s(d2h_bytes, ncalls=chunks)
    t_kernels = sum(execute_kernel(spec, c).time_s for c in costs)
    serial = t_h2d + t_kernels + t_d2h

    per_h2d = t_h2d / chunks
    per_k = t_kernels / chunks
    per_d2h = t_d2h / chunks
    stage = max(per_h2d, per_k, per_d2h)
    overlapped = per_h2d + stage * (chunks - 1) + per_k + per_d2h
    overlapped = min(overlapped, serial)
    return StreamedPhase(serial, overlapped, t_h2d, t_kernels, t_d2h)
