"""GPU device catalog.

Published specifications of the NVIDIA parts the paper uses or cites.
These numbers are the *inputs* to the simulation — the paper itself
derives its roofline analysis from the same values (e.g. "the bandwidth
of K20 is 208GB/s, which means it is able to get 26G data in double
precision per second", Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "GPU_CATALOG", "get_gpu"]


@dataclass(frozen=True)
class GPUSpec:
    """Static hardware description of one GPU board.

    Power figures: `tdp_w` is the board TDP; `idle_w` the long-idle
    power and `active_base_w` the floor observed as soon as any kernel
    runs (the paper reports 20 W and ~50 W for K20, Section 5.2).
    """

    name: str
    architecture: str
    year: int
    compute_capability: float
    sm_count: int
    clock_ghz: float
    peak_dp_gflops: float
    mem_bandwidth_gbs: float
    l2_bandwidth_gbs: float
    shared_bandwidth_gbs: float
    shared_kb_per_sm: int
    registers_per_sm: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    warp_size: int
    tdp_w: float
    idle_w: float
    active_base_w: float
    hyperq_queues: int
    pcie_gbs: float

    @property
    def peak_dp_per_watt(self) -> float:
        """DP Gflop/s per TDP watt (the paper's Figure 1 metric)."""
        return self.peak_dp_gflops / self.tdp_w

    @property
    def doubles_per_second(self) -> float:
        """Doubles streamable from device memory per second (Gdbl/s)."""
        return self.mem_bandwidth_gbs / 8.0


# On-chip bandwidths follow the usual per-SM aggregate estimates for the
# generation (shared memory delivers tens of bytes per clock per SM; L2
# roughly 2-3x device bandwidth).
GPU_CATALOG: dict[str, GPUSpec] = {
    "C1060": GPUSpec(
        name="C1060", architecture="Tesla", year=2008, compute_capability=1.3,
        sm_count=30, clock_ghz=1.30, peak_dp_gflops=78.0, mem_bandwidth_gbs=102.0,
        l2_bandwidth_gbs=0.0, shared_bandwidth_gbs=1248.0, shared_kb_per_sm=16,
        registers_per_sm=16384, max_threads_per_sm=1024, max_blocks_per_sm=8,
        max_threads_per_block=512, warp_size=32, tdp_w=188.0, idle_w=30.0,
        active_base_w=60.0, hyperq_queues=1, pcie_gbs=8.0,
    ),
    "C2050": GPUSpec(
        name="C2050", architecture="Fermi", year=2010, compute_capability=2.0,
        sm_count=14, clock_ghz=1.15, peak_dp_gflops=515.0, mem_bandwidth_gbs=144.0,
        l2_bandwidth_gbs=230.0, shared_bandwidth_gbs=1030.0, shared_kb_per_sm=48,
        registers_per_sm=32768, max_threads_per_sm=1536, max_blocks_per_sm=8,
        max_threads_per_block=1024, warp_size=32, tdp_w=238.0, idle_w=25.0,
        active_base_w=55.0, hyperq_queues=1, pcie_gbs=8.0,
    ),
    "M2090": GPUSpec(
        name="M2090", architecture="Fermi", year=2011, compute_capability=2.0,
        sm_count=16, clock_ghz=1.30, peak_dp_gflops=665.0, mem_bandwidth_gbs=178.0,
        l2_bandwidth_gbs=280.0, shared_bandwidth_gbs=1330.0, shared_kb_per_sm=48,
        registers_per_sm=32768, max_threads_per_sm=1536, max_blocks_per_sm=8,
        max_threads_per_block=1024, warp_size=32, tdp_w=250.0, idle_w=25.0,
        active_base_w=55.0, hyperq_queues=1, pcie_gbs=8.0,
    ),
    "K10": GPUSpec(
        name="K10", architecture="Kepler", year=2012, compute_capability=3.0,
        sm_count=8, clock_ghz=0.745, peak_dp_gflops=190.0, mem_bandwidth_gbs=160.0,
        l2_bandwidth_gbs=320.0, shared_bandwidth_gbs=1900.0, shared_kb_per_sm=48,
        registers_per_sm=65536, max_threads_per_sm=2048, max_blocks_per_sm=16,
        max_threads_per_block=1024, warp_size=32, tdp_w=225.0, idle_w=20.0,
        active_base_w=50.0, hyperq_queues=1, pcie_gbs=16.0,
    ),
    "K20": GPUSpec(
        name="K20", architecture="Kepler", year=2012, compute_capability=3.5,
        sm_count=13, clock_ghz=0.706, peak_dp_gflops=1170.0, mem_bandwidth_gbs=208.0,
        l2_bandwidth_gbs=450.0, shared_bandwidth_gbs=2200.0, shared_kb_per_sm=48,
        registers_per_sm=65536, max_threads_per_sm=2048, max_blocks_per_sm=16,
        max_threads_per_block=1024, warp_size=32, tdp_w=225.0, idle_w=20.0,
        active_base_w=50.0, hyperq_queues=32, pcie_gbs=16.0,
    ),
    "K20m": GPUSpec(
        name="K20m", architecture="Kepler", year=2012, compute_capability=3.5,
        sm_count=13, clock_ghz=0.706, peak_dp_gflops=1170.0, mem_bandwidth_gbs=208.0,
        l2_bandwidth_gbs=450.0, shared_bandwidth_gbs=2200.0, shared_kb_per_sm=48,
        registers_per_sm=65536, max_threads_per_sm=2048, max_blocks_per_sm=16,
        max_threads_per_block=1024, warp_size=32, tdp_w=225.0, idle_w=20.0,
        active_base_w=50.0, hyperq_queues=32, pcie_gbs=16.0,
    ),
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a device by name (case-insensitive)."""
    key = name.upper().replace(" ", "")
    for cat_name, spec in GPU_CATALOG.items():
        if cat_name.upper() == key:
            return spec
    raise KeyError(f"unknown GPU '{name}'; known: {sorted(GPU_CATALOG)}")
