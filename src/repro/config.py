"""`RunConfig`: the one frozen configuration for a whole run.

Three PRs of growth left four overlapping entry points
(`LagrangianHydroSolver`, `DistributedLagrangianSolver`,
`ResilientDriver`, the CLI), each with its own spelling of the same
knobs. `RunConfig` consolidates them: solver choice (serial /
distributed), engine (fused / legacy), zone-parallel workers,
resilience, and telemetry all come from this single immutable dataclass,
consumed by `repro.api.run`. The legacy constructors (`SolverOptions`,
direct `ResilientDriver` use) keep working as deprecation shims that
route through this type — see the migration table in README.md.

This module stays import-light (stdlib only) so every layer can depend
on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

# Historical import site: the suppress machinery moved to
# `repro._compat` when the shims were consolidated; these names keep
# working for anything that imported them from here.
from repro._compat import (  # noqa: F401  (re-exported)
    deprecations_suppressed as _deprecations_suppressed,
    internal_construction as _internal_construction,
)
from repro.errors import ConfigError

__all__ = ["RunConfig", "validate_order", "MAX_ORDER"]

_ENGINES = ("fused", "legacy")
_INTEGRATORS = ("rk2avg", "euler", "rk4")
_BACKENDS = ("cpu-serial", "cpu-fused", "cpu-sumfact", "cpu-parallel", "hybrid")
# Supported kinematic orders: the Qk-Qk-1 pairing needs k >= 1, and the
# problem registry / bench grid is validated through Q8 (ROADMAP item 3).
MAX_ORDER = 8


def validate_order(order) -> int:
    """Reject unsupported kinematic orders with a typed `ConfigError`.

    Shared by `RunConfig` and the CLI paths that build an `FEConfig`
    directly, so a bad --order exits with code 2 and a one-line hint
    instead of a deep stack trace from the FEM layer.
    """
    if not isinstance(order, int) or isinstance(order, bool):
        raise ConfigError(
            f"order must be an integer, got {order!r} "
            f"(hint: pass --order K with 1 <= K <= {MAX_ORDER})"
        )
    if not 1 <= order <= MAX_ORDER:
        raise ConfigError(
            f"unsupported order {order} "
            f"(hint: the Qk-Qk-1 pairing supports 1 <= order <= {MAX_ORDER})"
        )
    return order
# Tuning-engine knobs (must mirror repro.tuning.search registries; a
# test cross-checks). Kept as literals so this module stays import-light.
_TUNING_OBJECTIVES = ("time", "energy", "edp")
_TUNING_STRATEGIES = ("exhaustive", "random", "local")


@dataclass(frozen=True)
class RunConfig:
    """Everything `repro.api.run` needs, in one frozen value.

    Problem construction (used when the problem is given by name):
    `dim`, `order`, `zones` (zones per dimension).

    Run control: `t_final` / `max_steps` / `cfl` / `integrator` /
    `quad_points_1d` / `pcg_tol` / `pcg_maxiter` / `energy_every` /
    `record_dt_history` mirror the solver knobs.

    Execution: `backend` is the unified policy selector — "cpu-serial"
    (legacy reference engine), "cpu-fused" (zero-allocation hot path,
    the default), "cpu-sumfact" (matrix-free sum-factorization engine,
    O(order^{d+1}) per zone), "cpu-parallel" (shared-memory
    zone-parallel executor) or "hybrid" (fused execution priced as a
    CPU/GPU zone split, with in-band tuning via `repro.sched`). `engine` / `workers` are the
    deprecated spellings and resolve into a backend when `backend` is
    None (see `resolved_backend`); `ranks` > 0 wraps the resolved
    backend in the simulated-MPI distributed backend (composable with
    every node backend), and `overlap` toggles whether the
    interface-dof exchange is priced as hidden under interior-zone
    computation. `hybrid_device` names the
    simulated GPU pricing the hybrid split, `tuning_cache` a JSON path
    for winner persistence / warm starts, and `tune_period_steps` the
    scheduler's sampling-period length.

    Resilience: a non-empty `faults` schedule, `checkpoint_every` > 0 or
    an `offload_device` wraps the run in the `ResilientDriver`.

    Telemetry: `telemetry=True` (implied by `trace_path` /
    `metrics_path`) attaches a `Tracer` + `CounterSampler`;
    `telemetry_cpu` / `telemetry_gpu` pick the metered specs and
    `sample_period_s` the counter cadence.
    """

    # problem construction (when the problem is passed by name)
    dim: int = 2
    order: int = 2
    zones: int = 8
    # run control
    t_final: float | None = None
    max_steps: int | None = None
    cfl: float | None = None
    integrator: str = "rk2avg"
    quad_points_1d: int | None = None
    pcg_tol: float = 1e-14
    pcg_maxiter: int | None = None
    energy_every: int = 1
    record_dt_history: bool = True
    # execution
    engine: str = "fused"
    workers: int = 0
    ranks: int = 0
    overlap: bool = True
    # Simulated-rank stepping mode: "auto" (vectorized for cpu-* nodes,
    # per-rank loop for hybrid), "loop", or "vectorized". Vectorized
    # batches all ranks' phases into stacked array ops so the functional
    # layer steps O(100-1000) ranks in seconds, with identical comm
    # pricing.
    rank_step: str = "auto"
    # Elastic-rank schedule "step:ranks,step:ranks,..." — e.g. "10:8,20:3"
    # grows to 8 ranks after step 10 and shrinks to 3 after step 20
    # (deterministic repartition; only meaningful with ranks > 0).
    rank_schedule: str | None = None
    backend: str | None = None
    hybrid_device: str = "K20"
    tuning_cache: str | None = None
    tune_period_steps: int = 40
    # Strict tuning-cache mode: a corrupt cache raises the typed
    # TuningCacheCorruptionError instead of warning + starting fresh.
    tuning_strict: bool = False
    # Multi-objective search tuning (repro.tuning.search): what the
    # in-band campaign minimizes ("time", "energy", "edp") and how it
    # walks the candidate space ("exhaustive", "random", "local").
    # Winners persist per objective, so one cache file can hold the
    # time-optimal and energy-optimal configurations side by side.
    tuning_objective: str = "time"
    tuning_strategy: str = "local"
    # resilience
    faults: str | None = None
    fault_seed: int = 0
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    # Disk-checkpoint retention: keep at most this many ckpt_step*.npz
    # files (0 = keep everything). The most recent verified checkpoint
    # is never pruned.
    checkpoint_keep: int = 0
    offload_device: str | None = None
    # io
    restore: str | None = None
    vtk: str | None = None
    checkpoint: str | None = None
    # telemetry
    telemetry: bool = False
    sample_period_s: float = 1e-3
    telemetry_cpu: str = "E5-2670"
    telemetry_gpu: str | None = None
    trace_path: str | None = None
    metrics_path: str | None = None

    def __post_init__(self):
        validate_order(self.order)
        if self.engine not in _ENGINES:
            raise ConfigError(
                f"unknown engine '{self.engine}' (choose from {_ENGINES})"
            )
        if self.integrator not in _INTEGRATORS:
            raise ConfigError(
                f"unknown integrator '{self.integrator}' "
                f"(choose from {_INTEGRATORS})"
            )
        if self.workers < 0 or self.ranks < 0:
            raise ConfigError("workers and ranks must be non-negative")
        if self.rank_step not in ("auto", "loop", "vectorized"):
            raise ConfigError(
                f"unknown rank_step '{self.rank_step}' "
                "(choose 'auto', 'loop' or 'vectorized')"
            )
        if self.rank_schedule and self.ranks < 1:
            raise ConfigError("rank_schedule requires ranks >= 1")
        if self.backend is not None:
            if self.backend not in _BACKENDS:
                raise ConfigError(
                    f"unknown backend '{self.backend}' "
                    f"(choose from {_BACKENDS})"
                )
            if self.workers > 0 and self.backend != "cpu-parallel":
                raise ConfigError(
                    f"workers={self.workers} conflicts with "
                    f"backend='{self.backend}' (workers imply cpu-parallel)"
                )
            if self.engine == "legacy" and self.backend != "cpu-serial":
                raise ConfigError(
                    f"engine='legacy' conflicts with backend="
                    f"'{self.backend}' (the legacy engine is cpu-serial)"
                )
        if self.tune_period_steps < 1:
            raise ConfigError("tune_period_steps must be >= 1")
        if self.tuning_objective not in _TUNING_OBJECTIVES:
            raise ConfigError(
                f"unknown tuning_objective '{self.tuning_objective}' "
                f"(choose from {_TUNING_OBJECTIVES})"
            )
        if self.tuning_strategy not in _TUNING_STRATEGIES:
            raise ConfigError(
                f"unknown tuning_strategy '{self.tuning_strategy}' "
                f"(choose from {_TUNING_STRATEGIES})"
            )
        if self.checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be non-negative")
        if self.checkpoint_keep < 0:
            raise ConfigError("checkpoint_keep must be non-negative")
        if self.sample_period_s <= 0:
            raise ConfigError("sample_period_s must be positive")

    @property
    def resolved_backend(self) -> str:
        """The effective execution policy.

        An explicit `backend` wins; otherwise the deprecated knobs
        resolve exactly as they always behaved: `workers` > 0 means the
        zone-parallel executor, `engine="legacy"` the reference engine,
        and everything else the fused default.
        """
        if self.backend is not None:
            return self.backend
        if self.workers > 0:
            return "cpu-parallel"
        if self.engine == "legacy":
            return "cpu-serial"
        return "cpu-fused"

    @property
    def resolved_execution(self) -> dict:
        """The resolved `(ranks, backend, workers)` execution triple.

        `backend` is the per-rank *node* policy when `ranks` > 0 (the
        distributed layer wraps it), the whole policy otherwise.
        """
        return {
            "ranks": self.ranks,
            "backend": self.resolved_backend,
            "workers": self.workers,
        }

    @property
    def telemetry_enabled(self) -> bool:
        """Telemetry is on explicitly or implied by an export path."""
        return bool(self.telemetry or self.trace_path or self.metrics_path)

    @property
    def resilient(self) -> bool:
        """Whether the run goes through the `ResilientDriver`."""
        return bool(self.faults or self.checkpoint_every or self.offload_device)

    def to_solver_options(self):
        """The `SolverOptions` equivalent (no deprecation warning)."""
        from repro.hydro.solver import SolverOptions

        with _internal_construction():
            return SolverOptions(
                quad_points_1d=self.quad_points_1d,
                cfl=self.cfl,
                integrator=self.integrator,
                pcg_tol=self.pcg_tol,
                pcg_maxiter=self.pcg_maxiter,
                max_steps=self.max_steps if self.max_steps is not None else 100_000,
                energy_every=self.energy_every,
                record_dt_history=self.record_dt_history,
                fused=self.engine == "fused",
                workers=self.workers,
                ranks=self.ranks,
                overlap=self.overlap,
                rank_step=self.rank_step,
                rank_schedule=self.rank_schedule,
                backend=self.resolved_backend,
                hybrid_device=self.hybrid_device,
                tuning_cache=self.tuning_cache,
                tune_period_steps=self.tune_period_steps,
                tuning_strict=self.tuning_strict,
                tuning_objective=self.tuning_objective,
                tuning_strategy=self.tuning_strategy,
            )

    @classmethod
    def from_solver_options(cls, options, **overrides) -> "RunConfig":
        """Lift legacy `SolverOptions` into a `RunConfig` (shim path)."""
        mapped = dict(
            quad_points_1d=options.quad_points_1d,
            cfl=options.cfl,
            integrator=options.integrator,
            pcg_tol=options.pcg_tol,
            pcg_maxiter=options.pcg_maxiter,
            max_steps=options.max_steps,
            energy_every=options.energy_every,
            record_dt_history=options.record_dt_history,
            engine="fused" if options.fused else "legacy",
            workers=options.workers,
            ranks=getattr(options, "ranks", 0),
            overlap=getattr(options, "overlap", True),
            rank_step=getattr(options, "rank_step", "auto"),
            rank_schedule=getattr(options, "rank_schedule", None),
            backend=options.backend,
            hybrid_device=options.hybrid_device,
            tuning_cache=options.tuning_cache,
            tune_period_steps=options.tune_period_steps,
            tuning_strict=getattr(options, "tuning_strict", False),
            tuning_objective=getattr(options, "tuning_objective", "time"),
            tuning_strategy=getattr(options, "tuning_strategy", "local"),
        )
        mapped.update(overrides)
        return cls(**mapped)

    def replace(self, **changes) -> "RunConfig":
        """A copy with the given fields changed (frozen-friendly)."""
        import dataclasses

        return dataclasses.replace(self, **changes)

    def describe(self) -> dict:
        """Compact non-default view (for logs and manifests)."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out
