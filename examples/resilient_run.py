"""Fault-tolerant execution of a Lagrangian run.

    python examples/resilient_run.py

Demonstrates the resilient execution layer end to end on a small 2D
Sedov blast:

1. a fault-free resilient run — identical physics to a plain `run()`,
   plus checkpoint snapshots and a recovery report;
2. a sticky GPU kernel fault mid-run — the offload pricer retries, gives
   the device up, and re-prices every remaining step on the OpenMP CPU
   path (physics untouched: only the modeled time/energy ledger moves);
3. silent state corruption — the watchdog catches the NaN through the
   energy/finiteness invariants and the driver rolls back to the last
   checkpoint and replays, finishing with the exact fault-free state.
"""

import numpy as np

from repro import LagrangianHydroSolver, SedovProblem
from repro.cpu import get_cpu
from repro.gpu import get_gpu
from repro.kernels import FEConfig
from repro.resilience import (
    FaultInjector,
    GpuOffloadPricer,
    ResilientDriver,
    parse_fault_specs,
)
from repro.runtime.hybrid import HybridExecutor

STEPS = 12


def solver():
    return LagrangianHydroSolver(SedovProblem(dim=2, order=2, zones_per_dim=4))


def offload_pricer(injector):
    s = solver()
    ex = HybridExecutor(
        FEConfig.from_solver(s), get_cpu("E5-2670"), get_gpu("K20"), nmpi=1
    )
    return GpuOffloadPricer(ex, injector=injector)


def main():
    print("== baseline: fault-free resilient run ==")
    plain = solver().run(t_final=100.0, max_steps=STEPS)
    driver = ResilientDriver(solver(), checkpoint_every=4)
    clean = driver.run(t_final=100.0, max_steps=STEPS)
    assert np.array_equal(clean.state.v, plain.state.v)
    print(clean.report.summary())
    print("final state identical to plain run: True")

    print("\n== sticky GPU kernel fault -> CPU fallback ==")
    injector = FaultInjector(parse_fault_specs("gpu:5!"))
    driver = ResilientDriver(
        solver(), injector=injector, checkpoint_every=4,
        offload=offload_pricer(injector),
    )
    degraded = driver.run(t_final=100.0, max_steps=STEPS)
    print(degraded.report.summary())
    assert np.array_equal(degraded.state.v, plain.state.v)
    print("physics identical to fault-free run: True")

    print("\n== silent state corruption -> watchdog rollback & replay ==")
    injector = FaultInjector(parse_fault_specs("state:7"))
    driver = ResilientDriver(solver(), injector=injector, checkpoint_every=4)
    recovered = driver.run(t_final=100.0, max_steps=STEPS)
    print(recovered.report.summary())
    assert np.array_equal(recovered.state.v, plain.state.v)
    assert recovered.state.t == plain.state.t
    print("replayed state identical to fault-free run: True")


if __name__ == "__main__":
    main()
