"""Classic Lagrangian verification suite: Noh, Saltzman, and restart.

    python examples/lagrangian_benchmarks.py [--quick]

Runs the two classic stress tests beyond the paper's own benchmarks —
the Noh implosion (exact post-shock density 16 in 2D) and the Saltzman
skewed-mesh piston (exact compression 4, energy input = piston work) —
then demonstrates checkpoint/restart and a VTK dump of the final state.
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import LagrangianHydroSolver, NohProblem, SaltzmanProblem
from repro.io import restore_solver, save_checkpoint, write_vtk


def run_noh(zones: int, t_final: float) -> None:
    problem = NohProblem(dim=2, order=2, zones_per_dim=zones)
    solver = LagrangianHydroSolver(problem)
    result = solver.run(t_final=t_final)
    rho = solver.density_at_points().ravel()
    pts = solver.engine.geom_eval.physical_points(solver.state.x).reshape(-1, 2)
    r = np.linalg.norm(pts, axis=1)
    rs = problem.shock_radius(t_final)
    post = rho[(r < 0.9 * rs) & (r > 0.25 * rs)]
    print(f"Noh implosion ({zones}x{zones} zones, Q2-Q1):")
    print(f"  {result.steps} steps to t={t_final}; energy drift "
          f"{result.energy_change:+.2e}")
    print(f"  shock radius (exact): {rs:.3f}")
    print(f"  post-shock density: mean {post.mean():6.2f}, peak {rho.max():6.2f} "
          f"(exact {problem.post_shock_density():.0f}; converges with resolution)")


def run_saltzman(nx: int, t_final: float) -> None:
    problem = SaltzmanProblem(order=2, nx=nx, ny=2, skew=0.25)
    solver = LagrangianHydroSolver(problem)
    e0 = solver.energies().total
    result = solver.run(t_final=t_final)
    gained = result.energy_history[-1].total - e0
    rho = solver.density_at_points()
    print(f"\nSaltzman piston ({nx}x2 zones, skewed, Q2-Q1):")
    print(f"  {result.steps} steps to t={t_final}")
    print(f"  peak compression {rho.max():.3f}  (exact {problem.post_shock_density():.0f})")
    print(f"  energy gained {gained:.5f} vs piston work {problem.piston_work(t_final):.5f} "
          f"({gained / problem.piston_work(t_final):.1%} of the strong-shock prediction)")


def run_restart_demo(outdir: Path) -> None:
    print("\nCheckpoint / restart / VTK demo:")
    problem = NohProblem(dim=2, order=2, zones_per_dim=4)
    solver = LagrangianHydroSolver(problem)
    solver.run(t_final=0.1)
    chk = save_checkpoint(outdir / "noh_mid", solver)
    print(f"  checkpointed at t={solver.state.t:g} -> {chk}")

    fresh = LagrangianHydroSolver(NohProblem(dim=2, order=2, zones_per_dim=4))
    restore_solver(chk, fresh)
    result = fresh.run(t_final=0.2)
    print(f"  restored and continued to t={fresh.state.t:g} "
          f"({result.steps} more steps), drift {result.energy_change:+.1e}")
    vtk = write_vtk(outdir / "noh_final", fresh)
    nbytes = vtk.stat().st_size
    print(f"  wrote {vtk} ({nbytes} bytes) — open in ParaView/VisIt")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="smaller meshes/times")
    ap.add_argument("--outdir", default=None)
    args = ap.parse_args()
    outdir = Path(args.outdir) if args.outdir else Path(tempfile.mkdtemp())
    if args.quick:
        run_noh(zones=6, t_final=0.3)
        run_saltzman(nx=8, t_final=0.25)
    else:
        run_noh(zones=10, t_final=0.6)
        run_saltzman(nx=16, t_final=0.35)
    run_restart_demo(outdir)


if __name__ == "__main__":
    main()
