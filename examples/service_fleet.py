"""Chaos-testing the fault-tolerant simulation fleet (`repro.service`).

    python examples/service_fleet.py

Runs a mixed-priority burst of hydro jobs through `SimulationFleet`
while injecting the failures a long-running service actually sees:

1. sticky GPU faults on hybrid jobs trip the per-backend circuit
   breaker, so later hybrid work degrades to cpu-fused instead of
   burning retries, then a half-open probe re-closes the circuit;
2. a per-job deadline expires, retries with exponential backoff and
   deterministic jitter, and succeeds on the relaxed second attempt;
3. the queue sheds low-priority work when a high-priority job arrives
   at full depth;
4. the process is "killed" mid-burst — a second fleet replays the
   write-ahead journal, recovers every pending job exactly once, and
   serves already-completed specs bit-identically from the result
   store.

Everything is deterministic: same journal, same breaker transitions,
same digests on every run.
"""

import shutil
import tempfile
from pathlib import Path

from repro.api import RunConfig
from repro.service import (
    AdmissionError,
    BreakerConfig,
    FleetConfig,
    JobJournal,
    QueueConfig,
    RetryPolicy,
    SimulationFleet,
    recover,
)

WORKDIR = Path(tempfile.mkdtemp(prefix="service_fleet_"))
JOURNAL = WORKDIR / "journal.jsonl"

BASE = RunConfig(zones=3, t_final=0.02)
HYBRID = BASE.replace(backend="hybrid")


def banner(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def build_fleet():
    cfg = FleetConfig(
        workers=0,  # inline mode: deterministic ordering for the demo
        queue=QueueConfig(max_depth=16),
        breaker=BreakerConfig(failure_threshold=2, cooldown_jobs=2),
        # deadline_growth=1000 relaxes the per-attempt budget enough
        # that the deadline demo succeeds on its second attempt.
        retry=RetryPolicy(base_delay_s=0.001, deadline_growth=1000.0),
    )
    return SimulationFleet(
        cfg,
        journal_path=JOURNAL,
        results_dir=WORKDIR / "results",
        start=False,
    )


def print_rollup(fleet):
    rollup = fleet.rollup()
    jobs = rollup["jobs"]
    print(f"jobs: {jobs['completed']} completed, {jobs['failed']} failed, "
          f"{jobs['shed']} shed, {jobs['retries']} retries, "
          f"{jobs['timeouts']} timeouts, {jobs['degraded']} degraded, "
          f"{jobs['cached']} cached, {jobs['recovered']} recovered")
    lat = rollup["latency_s"]
    print(f"latency: p50 {lat['p50']:.3f}s  p99 {lat['p99']:.3f}s  "
          f"throughput {rollup['throughput_jobs_per_s']:.2f} jobs/s")
    if rollup["energy"]["metered_jobs"]:
        print(f"energy: {rollup['energy']['joules_per_job']:.1f} J/job "
              f"over {rollup['energy']['metered_jobs']} metered jobs")
    for name, br in rollup["breakers"].items():
        arcs = " -> ".join(
            f"{t['from']}:{t['to']}" for t in br["transitions"])
        print(f"breaker[{name}]: {br['state']}  "
              f"({arcs or 'no transitions'})")


banner("burst: mixed priorities, sticky GPU faults, a tight deadline")
fleet = build_fleet()
handles = []

# A deadline far below the observed service time: attempt 1 times out,
# the relaxed attempt 2 succeeds. Priority 3 so it runs early.
handles.append(fleet.submit(
    "sedov", BASE, priority=3, deadline_s=1e-5, max_attempts=3,
    job_id="deadline-victim"))

for i in range(4):
    handles.append(fleet.submit(
        "sedov", BASE, priority=1, job_id=f"cpu-{i}"))
for i in range(4):
    # Sticky GPU fault (distinct seeds, so distinct content keys): the
    # resilient hybrid run survives by degrading, and each degradation
    # feeds the hybrid breaker one failure.
    handles.append(fleet.submit(
        "sedov", HYBRID.replace(faults="gpu:1!", fault_seed=7 + i),
        priority=2, job_id=f"gpu-sticky-{i}"))
for i in range(3):
    # Distinct t_final per job so none is served from the result cache:
    # the first degrades under the open circuit, the second is the
    # half-open probe that re-closes it.
    handles.append(fleet.submit(
        "noh", HYBRID.replace(t_final=0.02 + 0.002 * i),
        priority=2, job_id=f"hybrid-{i}"))

# Overfill the queue, then watch a VIP arrival displace a low-priority
# victim that load shedding picked.
try:
    while True:
        handles.append(fleet.submit("sod", BASE, priority=0))
except AdmissionError as exc:
    print(f"admission control: {exc}")
    print(f"  (typed: reason={exc.reason!r}, "
          f"retry_after_s={exc.retry_after_s:.2f})")
vip = fleet.submit("triple-pt", BASE, priority=9, job_id="vip")
shed = [h for h in handles if h.poll() == "shed"]
print(f"load shedding: {len(shed)} low-priority jobs shed to admit the VIP")

fleet.process(limit=8)
print("\n-- simulated crash after 8 jobs (no drain, no shutdown) --")
fleet.kill()
print_rollup(fleet)

banner("recovery: second fleet replays the journal")
state = recover(JobJournal(JOURNAL))
print(f"journal says: {len(state.completed)} completed, "
      f"{len(state.pending)} pending, "
      f"{len(state.interrupted)} interrupted")

fleet2 = build_fleet()
print(f"recovered {len(fleet2.recovered)} jobs "
      f"({sum(1 for h in fleet2.recovered if h.done)} instantly from "
      "the result store)")
fleet2.process()

banner("exactly-once + bit-identical cache reuse")
# Same (problem, config) as the VIP job fleet 1 completed: the content
# hash hits the result store, no solver run happens.
replayed = fleet2.submit("triple-pt", BASE, job_id="replay-vip")
fleet2.process()
r_vip = vip.result
r_new = replayed.result
print(f"vip digest     {r_vip.state_sha256}")
print(f"replay digest  {r_new.state_sha256}  cached={r_new.cached}")
assert r_vip.state_sha256 == r_new.state_sha256

banner("fleet telemetry rollup (after recovery)")
print_rollup(fleet2)

fleet2.shutdown(wait=False)
shutil.rmtree(WORKDIR, ignore_errors=True)
