"""3D Sedov blast with verification against the self-similar solution.

    python examples/sedov_blast.py [--order K] [--zones N] [--t-final T]

Runs the paper's primary benchmark (Section 4) at configurable order
and resolution, tracking the shock front against the analytic
R(t) = (E t^2 / (alpha rho0))^(1/5) and reporting conservation,
time-step history and the workload profile the hardware models consume.
The first segment goes through `repro.api.run`; the returned
`RunReport.solver` then marches the remaining checkpoints.
"""

import argparse

import numpy as np

from repro.api import RunConfig, run


def shock_front_radius(solver) -> float:
    """Radius of the density maximum (the numerical shock position)."""
    rho = solver.density_at_points().ravel()
    pts = solver.engine.geom_eval.physical_points(solver.state.x)
    r = np.linalg.norm(pts.reshape(-1, solver.kinematic.dim), axis=1)
    return float(r[np.argmax(rho)])


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--order", type=int, default=2, help="kinematic FE order k")
    ap.add_argument("--zones", type=int, default=4, help="zones per dimension")
    ap.add_argument("--t-final", type=float, default=0.08)
    ap.add_argument("--checkpoints", type=int, default=4)
    args = ap.parse_args()

    times = np.linspace(0, args.t_final, args.checkpoints + 1)[1:]

    # First segment through the facade; the report keeps the live solver
    # so the remaining checkpoints continue from where it stopped.
    report = run("sedov", RunConfig(dim=3, order=args.order, zones=args.zones,
                                    t_final=float(times[0]), cfl=0.5))
    problem, solver = report.problem, report.solver
    print(f"3D Sedov, Q{args.order}-Q{args.order - 1}, "
          f"{problem.mesh.nzones} zones, {solver.quad.nqp} qp/zone")

    e_init_total = report.result.energy_history[0].total
    print(f"\n{'t':>8} {'steps':>6} {'R_shock':>8} {'R_analytic':>10} "
          f"{'rho_max':>8} {'E_total':>14}")
    total_steps = report.steps
    for i, t_stop in enumerate(times):
        if i > 0:
            total_steps += solver.run(t_final=float(t_stop)).steps
        e = solver.energies()
        print(f"{solver.state.t:8.4f} {total_steps:6d} "
              f"{shock_front_radius(solver):8.4f} "
              f"{problem.shock_radius(solver.state.t):10.4f} "
              f"{solver.density_at_points().max():8.4f} {e.total:14.10f}")

    w = solver.workload
    print(f"\nworkload: {w.force_evals} corner-force evaluations, "
          f"{w.pcg_iterations} PCG iterations over {w.pcg_solves} solves "
          f"({w.pcg_iters_per_solve:.1f}/solve)")
    drift = solver.energies().total - e_init_total
    print(f"final |E - E0| / E0 = {abs(drift) / e_init_total:.2e}")


if __name__ == "__main__":
    main()
