"""The 2D multi-material triple-point interaction (paper Figure 2/Table 6).

    python examples/triple_point.py [--order K] [--t-final T]

Three gamma-law materials, a shock driven into the low-pressure half,
and the shear-rolled interface that makes this the paper's showcase for
high-order resolution. Prints per-material diagnostics and the Table-6
style conservation record.
"""

import argparse

import numpy as np

from repro import LagrangianHydroSolver, TriplePointProblem


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--order", type=int, default=3, help="kinematic order (paper uses Q3-Q2)")
    ap.add_argument("--nx", type=int, default=14)
    ap.add_argument("--ny", type=int, default=6)
    ap.add_argument("--t-final", type=float, default=0.4)
    args = ap.parse_args()

    problem = TriplePointProblem(order=args.order, nx=args.nx, ny=args.ny)
    solver = LagrangianHydroSolver(problem)
    region = problem.region_of_zones()
    names = {0: "left driver", 1: "bottom right", 2: "top right"}

    e0 = solver.energies()
    print(f"triple point, Q{args.order}-Q{args.order - 1}, "
          f"{problem.mesh.nzones} zones ({args.nx}x{args.ny})")
    print(f"initial total energy: {e0.total:.13e}  (paper: 1.005e+01)")

    result = solver.run(t_final=args.t_final)
    e1 = result.energy_history[-1]
    print(f"\nafter {result.steps} steps to t={solver.state.t:g}:")
    print(f"  kinetic  {e1.kinetic:.13e}")
    print(f"  internal {e1.internal:.13e}")
    print(f"  total    {e1.total:.13e}")
    print(f"  change   {result.energy_change:+.3e}   "
          f"(paper CPU: -9.2e-13, GPU: -4.9e-13)")

    rho = solver.density_at_points()
    vols = solver.engine.geom_eval.zone_volumes(solver.state.x)
    print("\nper-material state:")
    for rid, name in names.items():
        sel = region == rid
        print(f"  {name:13s} zones={sel.sum():4d}  "
              f"volume={vols[sel].sum():7.3f}  "
              f"rho in [{rho[sel].min():6.3f}, {rho[sel].max():6.3f}]")

    # The driver compresses and pushes material to the right.
    from repro.hydro.diagnostics import total_momentum

    mom = total_momentum(solver.state, solver.mass_v)
    print(f"\nnet momentum: ({mom[0]:+.4f}, {mom[1]:+.4f})  "
          "(the shock advances in +x)")


if __name__ == "__main__":
    main()
