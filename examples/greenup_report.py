"""End-to-end energy-efficiency report (Sections 4-5 in one script).

    python examples/greenup_report.py

Measures a real solver run's workload (zones, PCG iterations) through
`repro.api.run` with telemetry on, prices it on the simulated Sandy
Bridge node and K20, and prints the full energy story: CPU profile,
hybrid speedup, RAPL/NVML power levels, and the Table 7 greenup rows.
"""

from repro.api import RunConfig, run
from repro.cpu import get_cpu
from repro.gpu import get_gpu
from repro.kernels import FEConfig
from repro.runtime.hybrid import HybridExecutor


def main() -> None:
    # 1. Measure a real (small) run to calibrate the workload. Telemetry
    #    is on, so the manifest also carries the measured joule split.
    print("== measuring workload on a real 3D Sedov run ==")
    report = run("sedov", RunConfig(dim=3, order=2, zones=3, t_final=1.0,
                                    max_steps=8, telemetry=True))
    w = report.result.workload
    iters = w.pcg_iters_per_solve
    print(f"steps: {w.steps}, corner-force evals: {w.force_evals}, "
          f"PCG iterations/solve: {iters:.1f}")
    measured = report.manifest.energy["phases_j"]
    print("measured joules (simulated RAPL): "
          + "  ".join(f"{k} {v:.2f}J" for k, v in measured.items()))

    # 2. Price the paper-scale configurations on the simulated node.
    cpu, gpu = get_cpu("E5-2670"), get_gpu("K20")
    print(f"\n== modelled single node: 2x {cpu.name} + {gpu.name}, 8 MPI ==")
    for label, cfg in (
        ("Q2-Q1", FEConfig(3, 2, 16**3)),
        ("Q4-Q3", FEConfig(3, 4, 8**3)),
    ):
        ex = HybridExecutor(cfg, cpu, gpu, nmpi=8, pcg_iterations=iters)
        cpu_run = ex.cpu_only()
        hyb_run = ex.hybrid()
        rep = ex.greenup_report(method=label)
        f = cpu_run.step.fractions()
        print(f"\n{label} ({cfg.describe()})")
        print(f"  CPU-only : {cpu_run.step.total_s * 1e3:8.1f} ms/step at "
              f"{cpu_run.total_power_w:5.0f} W "
              f"(corner force {f['corner_force']:.0%}, CG {f['cg']:.0%})")
        print(f"  hybrid   : {hyb_run.step.total_s * 1e3:8.1f} ms/step at "
              f"{hyb_run.total_power_w:5.0f} W "
              f"(CPU {hyb_run.cpu_power_w:.0f} W + GPU {hyb_run.gpu_power_w:.0f} W)")
        print(f"  speedup {rep.speedup:5.2f}x   powerup {rep.powerup:4.2f}   "
              f"greenup {rep.greenup:5.2f}   energy saved {rep.energy_saved_fraction:4.0%}")
        paper = {"Q2-Q1": (1.9, 0.67, 1.27), "Q4-Q3": (2.5, 0.57, 1.42)}[label]
        print(f"  (paper:  {paper[0]:4.1f}x           {paper[1]:4.2f}"
              f"            {paper[2]:4.2f})")

    print("\nThe hybrid node draws more instantaneous power than the CPU"
          "\nalone (powerup < 1) but finishes enough sooner that the energy"
          "\nto solution drops — the paper's greenup > 1 conclusion.")


if __name__ == "__main__":
    main()
