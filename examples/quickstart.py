"""Quickstart: run a small Sedov blast and inspect the results.

    python examples/quickstart.py

One call to `repro.api.run` builds a 2D Q2-Q1 Sedov problem, marches it
with the energy-conserving Lagrangian solver, and hands back a
`RunReport`; we print the conservation record plus a radial density
profile — the 30-second tour of the public API.
"""

import numpy as np

from repro.api import RunConfig, run


def main() -> None:
    # A quarter-plane Sedov blast: unit-density gas, energy deposited in
    # the origin zone, symmetry walls on the box. Everything else —
    # solver, engine, integrator — is composed from the config.
    report = run("sedov", RunConfig(dim=2, order=2, zones=8,
                                    t_final=0.2, cfl=0.5))
    problem, solver, result = report.problem, report.solver, report.result

    print(f"mesh: {problem.mesh.nzones} zones; "
          f"kinematic dofs: {solver.kinematic.ndof}, "
          f"thermodynamic dofs: {solver.thermodynamic.ndof}, "
          f"quadrature points/zone: {solver.quad.nqp}")

    e0, e1 = result.energy_history[0], result.energy_history[-1]
    print(f"\nsteps taken: {result.steps} "
          f"(rejected: {result.workload.rejected_steps})")
    print("energy record:")
    print(" ", e0.row())
    print(" ", e1.row())
    print(f"total-energy drift: {result.energy_change:+.3e} "
          f"({abs(result.energy_change) / e0.total:.2e} relative)")

    # Density from strong mass conservation, binned by radius.
    rho = solver.density_at_points().ravel()
    pts = solver.engine.geom_eval.physical_points(solver.state.x).reshape(-1, 2)
    r = np.linalg.norm(pts, axis=1)
    print(f"\nexpected shock radius at t=0.2: {problem.shock_radius(0.2):.3f}")
    print("radial density profile:")
    edges = np.linspace(0, r.max(), 9)
    for lo, hi in zip(edges[:-1], edges[1:]):
        sel = (r >= lo) & (r < hi)
        if sel.any():
            print(f"  r in [{lo:4.2f}, {hi:4.2f}):  "
                  f"mean rho = {rho[sel].mean():6.3f}  max = {rho[sel].max():6.3f}")


if __name__ == "__main__":
    main()
