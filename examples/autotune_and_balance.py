"""Autotuning CUDA kernels and balancing CPU/GPU work (Sections 3.2-3.3).

    python examples/autotune_and_balance.py

Demonstrates the two schedulers on the simulated hardware:

1. the kernel autotuner sweeping kernel 3's matrices-per-block (and
   kernel 7's column blocking) with constraint elimination and noisy
   40-step sampling periods — per FE order, because feasible tilings
   shrink as operands grow;
2. the CPU/GPU auto-balancer converging on the zone split between a
   six-core host and a C2050 (the paper's Table 5 scenario).
"""

from repro.cpu import CPUExecutionModel, OpenMPModel, get_cpu
from repro.gpu import execute_kernel, get_gpu
from repro.kernels import FEConfig
from repro.kernels.k34_custom_gemm import kernel3_cost
from repro.kernels.k7_force import kernel7_cost
from repro.kernels.registry import corner_force_costs
from repro.tuning import AutoBalancer, Autotuner, ParamSpace


def tune_kernel(name, builder, param, candidates, cfg, device):
    def feasible(cand):
        try:
            execute_kernel(device, builder(cfg, "v3", cand[param]))
            return True
        except ValueError:
            return False

    space = ParamSpace(**{param: candidates}).constrain(feasible)

    def evaluate(cand):
        return execute_kernel(device, builder(cfg, "v3", cand[param])).time_s

    tuner = Autotuner(evaluate, space, steps_per_period=40, noise_rel=0.03, seed=1)
    result = tuner.tune()
    print(f"  {name}: best {param} = {result.best[param]} "
          f"({result.eliminated} candidates eliminated, "
          f"{result.steps_used} sampled steps)")
    for cand, t in result.ranking()[:3]:
        print(f"      {param}={cand[param]:<4d} -> {t * 1e3:7.3f} ms/step")
    return result


def main() -> None:
    k20 = get_gpu("K20")
    print("== Autotuning on K20 ==")
    for order, zones in ((2, 16**3), (4, 8**3)):
        cfg = FEConfig(dim=3, order=order, nzones=zones)
        print(f"\nQ{order}-Q{order - 1} ({cfg.describe()}):")
        tune_kernel("kernel 3", kernel3_cost, "matrices_per_block",
                    [1, 2, 4, 8, 16, 32, 64, 128], cfg, k20)
        tune_kernel("kernel 7", lambda c, v, block_cols: kernel7_cost(c, v, block_cols),
                    "block_cols", [1, 2, 4, 8, 16, 32, 64], cfg, k20)

    print("\n== CPU/GPU auto-balance (X5560 + C2050, 2D Sedov) ==")
    cfg = FEConfig(dim=2, order=2, nzones=64**2)
    c2050 = get_gpu("C2050")
    x5560 = get_cpu("X5560")
    costs = corner_force_costs(cfg, "optimized")
    t_gpu_full = sum(execute_kernel(c2050, c).time_s for c in costs)
    flops = sum(c.flops for c in costs)
    omp = OpenMPModel(nthreads=6)
    t_cpu_serial = CPUExecutionModel(x5560).corner_force_time(flops).seconds * x5560.cores

    balancer = AutoBalancer(
        gpu_time=lambda share: share * t_gpu_full + 2e-4,
        cpu_time=lambda share: omp.parallel_time(t_cpu_serial * share),
        noise_rel=0.02,
        seed=2,
    )
    res = balancer.balance(initial_ratio=0.5)
    print(f"converged: {res.converged} after {res.periods} sampling periods")
    print(f"optimal GPU share of zones: {res.ratio:.0%}  (paper Table 5: 75%)")
    print("convergence history (ratio, t_gpu ms, t_cpu ms):")
    for ratio, tg, tc in res.history:
        print(f"  {ratio:6.1%}  {tg * 1e3:7.3f}  {tc * 1e3:7.3f}")


if __name__ == "__main__":
    main()
