"""Tests for the Noh and Saltzman problems (BC extensions included)."""

import numpy as np
import pytest

from repro import LagrangianHydroSolver, NohProblem, SaltzmanProblem
from repro.hydro.boundary import BoundaryConditions


class TestNohSetup:
    def test_exact_constants(self):
        noh = NohProblem(dim=2)
        assert noh.post_shock_density() == pytest.approx(16.0)
        assert noh.shock_speed() == pytest.approx(1.0 / 3.0)
        noh3 = NohProblem(dim=3, zones_per_dim=2)
        assert noh3.post_shock_density() == pytest.approx(64.0)

    def test_initial_velocity_radial_unit(self):
        noh = NohProblem(dim=2, zones_per_dim=4)
        pts = np.array([[0.3, 0.4], [1.0, 0.0], [0.0, 0.0]])
        v = noh.v0(pts)
        assert np.allclose(v[0], [-0.6, -0.8])
        assert np.allclose(v[1], [-1.0, 0.0])
        assert np.allclose(v[2], 0.0)  # stagnant origin

    def test_boundary_only_origin_planes(self):
        noh = NohProblem(dim=2, zones_per_dim=4)
        s = LagrangianHydroSolver(noh)
        # Outer-face dofs (x=1) must be unconstrained in x.
        outer = s.kinematic.boundary_dofs_on_plane(0, 1.0)
        assert not s.bc.mask[outer, 0].any()
        origin_plane = s.kinematic.boundary_dofs_on_plane(0, 0.0)
        assert s.bc.mask[origin_plane, 0].all()

    def test_validation(self):
        with pytest.raises(ValueError):
            NohProblem(dim=1)


@pytest.mark.slow
class TestNohRun:
    def test_implosion_physics(self):
        noh = NohProblem(dim=2, order=2, zones_per_dim=8)
        s = LagrangianHydroSolver(noh)
        res = s.run(t_final=0.4)
        assert res.reached_t_final
        # Machine-precision conservation (no boundary work: origin
        # walls are stationary, outer boundary is free).
        assert abs(res.energy_change) / max(res.energy_history[0].total, 1e-12) < 1e-9 \
            or abs(res.energy_change) < 1e-12
        rho = s.density_at_points().ravel()
        pts = s.engine.geom_eval.physical_points(s.state.x).reshape(-1, 2)
        r = np.linalg.norm(pts, axis=1)
        rs = noh.shock_radius(0.4)
        post = rho[(r < 0.9 * rs) & (r > 0.25 * rs)]
        # Post-shock plateau heads toward 16 (resolution-limited).
        assert post.mean() > 8.0
        assert rho.max() < 1.3 * noh.post_shock_density()
        # Upstream of the shock the gas still streams inward at ~1:
        # interpolate the velocity to the quadrature points.
        vals = s.kinematic.element.tabulate(s.quad.points)  # (nqp, ndz)
        vz = s.kinematic.gather(s.state.v)
        v_qp = np.einsum("ki,zid->zkd", vals, vz).reshape(-1, 2)
        upstream = (r > 2.5 * rs) & (r < 0.8)
        speeds = np.linalg.norm(v_qp[upstream], axis=1)
        assert speeds.mean() == pytest.approx(1.0, rel=0.05)

    def test_outer_boundary_moves_inward(self):
        noh = NohProblem(dim=2, order=1, zones_per_dim=6)
        s = LagrangianHydroSolver(noh)
        s.run(t_final=0.2)
        assert s.state.x[:, 0].max() < 1.0 - 0.1


class TestSaltzmanSetup:
    def test_exact_constants(self):
        p = SaltzmanProblem()
        assert p.shock_speed() == pytest.approx(4.0 / 3.0)
        assert p.post_shock_density() == pytest.approx(4.0)

    def test_piston_bc_prescribed(self):
        p = SaltzmanProblem(order=2, nx=6, ny=2, skew=0.0)
        s = LagrangianHydroSolver(p)
        piston = s.kinematic.boundary_dofs_on_plane(0, 0.0)
        assert s.bc.mask[piston, 0].all()
        assert np.allclose(s.bc.values[piston, 0], 1.0)
        # Initial velocity field already carries the piston speed.
        assert np.allclose(s.state.v[piston, 0], 1.0)

    def test_skewed_mesh_valid(self):
        p = SaltzmanProblem(nx=10, ny=2, skew=0.4)
        from repro.fem.curvilinear import validate_positive_jacobians

        assert validate_positive_jacobians(p.mesh, order=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            SaltzmanProblem(skew=1.5)


@pytest.mark.slow
class TestSaltzmanRun:
    def test_piston_shock_physics(self):
        p = SaltzmanProblem(order=2, nx=10, ny=2, skew=0.25)
        s = LagrangianHydroSolver(p)
        e0 = s.energies().total
        res = s.run(t_final=0.3)
        assert res.reached_t_final
        # The piston does work: energy grows by approximately the
        # strong-shock prediction.
        gained = res.energy_history[-1].total - e0
        assert gained == pytest.approx(p.piston_work(0.3), rel=0.10)
        # Compression plateau near the exact factor 4.
        rho = s.density_at_points()
        assert rho.max() == pytest.approx(4.0, rel=0.25)
        # The piston face actually advanced at speed 1.
        piston = s.kinematic.boundary_dofs_on_plane(0, 0.0)
        assert s.state.x[piston, 0].mean() == pytest.approx(0.3, rel=1e-6)

    def test_unskewed_reference(self):
        """skew=0 is the plain planar piston; the shock stays planar
        (densities constant across y)."""
        p = SaltzmanProblem(order=1, nx=12, ny=3, skew=0.0)
        s = LagrangianHydroSolver(p)
        s.run(t_final=0.2)
        rho = s.density_at_points()  # (nz, nqp)
        nz_x, nz_y = 12, 3
        rho_cols = rho.reshape(nz_y, nz_x, -1).mean(axis=2)
        # Each x-column of zones has matching density across y rows.
        for col in range(nz_x):
            vals = rho_cols[:, col]
            assert vals.std() < 0.02 * max(vals.mean(), 1e-12)
