"""Tests for the GPU roofline execution and power models."""

import numpy as np
import pytest

from repro.gpu.execution import KERNEL_LAUNCH_OVERHEAD_S, KernelCost, execute_kernel
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.nvml import NVMLInterface
from repro.gpu.pcie import PCIeModel
from repro.gpu.power import GPUPowerModel
from repro.gpu.specs import get_gpu


def cost(**kw):
    defaults = dict(name="k", flops=1e9, dram_bytes=1e8, threads_per_block=256,
                    blocks=100, regs_per_thread=32)
    defaults.update(kw)
    return KernelCost(**defaults)


class TestExecution:
    def test_bandwidth_bound_kernel(self):
        k20 = get_gpu("K20")
        c = cost(flops=1e6, dram_bytes=2.08e9, dram_efficiency=1.0)
        t = execute_kernel(k20, c)
        assert t.bound == "dram"
        assert t.time_s == pytest.approx(0.01, rel=0.01)
        assert t.bandwidth_gbs["dram"] == pytest.approx(208.0, rel=0.02)

    def test_compute_bound_kernel(self):
        k20 = get_gpu("K20")
        c = cost(flops=1.17e10, dram_bytes=1e6, compute_efficiency=1.0)
        t = execute_kernel(k20, c)
        assert t.bound == "compute"
        assert t.gflops == pytest.approx(1170.0, rel=0.01)

    def test_dram_efficiency_slows(self):
        k20 = get_gpu("K20")
        fast = execute_kernel(k20, cost(dram_bytes=1e9, dram_efficiency=1.0))
        slow = execute_kernel(k20, cost(dram_bytes=1e9, dram_efficiency=0.25))
        assert slow.time_s > 2 * fast.time_s

    def test_low_occupancy_derates(self):
        k20 = get_gpu("K20")
        good = execute_kernel(k20, cost(flops=1e10, compute_efficiency=1.0))
        bad = execute_kernel(
            k20, cost(flops=1e10, compute_efficiency=1.0, shared_per_block=40 * 1024)
        )
        assert bad.time_s > good.time_s

    def test_launch_overhead_floor(self):
        k20 = get_gpu("K20")
        t = execute_kernel(k20, cost(flops=1.0, dram_bytes=8.0))
        assert t.time_s >= KERNEL_LAUNCH_OVERHEAD_S

    def test_infeasible_config_raises(self):
        k20 = get_gpu("K20")
        with pytest.raises(ValueError):
            execute_kernel(k20, cost(shared_per_block=100 * 1024))

    def test_scaled_cost(self):
        c = cost()
        half = c.scaled(0.5)
        assert half.flops == c.flops / 2
        assert half.dram_bytes == c.dram_bytes / 2

    def test_busy_fractions_bounded(self):
        k20 = get_gpu("K20")
        t = execute_kernel(k20, cost(l2_bytes=5e8, shared_bytes=5e8))
        for v in t.busy.values():
            assert 0.0 <= v <= 1.0
        assert t.busy["dram"] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            cost(flops=-1)
        with pytest.raises(ValueError):
            cost(compute_efficiency=0.0)
        with pytest.raises(ValueError):
            cost(latency_bound_factor=0.5)


class TestMemoryHierarchy:
    def test_energy_ratio(self):
        """Device-memory bytes must cost ~50x shared bytes (Hong&Kim)."""
        mem = MemoryHierarchy.of(get_gpu("K20"))
        assert 30 <= mem.energy_ratio_dram_to_shared <= 80

    def test_traffic_energy_monotone(self):
        mem = MemoryHierarchy.of(get_gpu("K20"))
        assert mem.traffic_energy_j(1e9, 0, 0) > mem.traffic_energy_j(0, 1e9, 0)
        assert mem.traffic_energy_j(0, 1e9, 0) > mem.traffic_energy_j(0, 0, 1e9)


class TestPowerModel:
    def test_idle(self):
        pm = GPUPowerModel(get_gpu("K20"))
        assert pm.active_power([]) == 20.0

    def test_active_floor_and_tdp_cap(self):
        k20 = get_gpu("K20")
        pm = GPUPowerModel(k20)
        tiny = execute_kernel(k20, cost(flops=1.0, dram_bytes=8.0))
        p = pm.active_power([tiny])
        assert k20.active_base_w <= p <= k20.tdp_w

    def test_dram_heavy_draws_more_than_light(self):
        k20 = get_gpu("K20")
        pm = GPUPowerModel(k20)
        heavy = execute_kernel(k20, cost(dram_bytes=5e9, dram_efficiency=1.0))
        light = execute_kernel(k20, cost(flops=1e8, dram_bytes=1e6))
        assert pm.active_power([heavy]) > pm.active_power([light])

    def test_hyperq_overhead(self):
        k20 = get_gpu("K20")
        pm = GPUPowerModel(k20)
        t = [execute_kernel(k20, cost())]
        p1 = pm.active_power(t, concurrent_clients=1)
        p8 = pm.active_power(t, concurrent_clients=8)
        assert p8 > p1
        # Overhead saturates at the queue count.
        p64 = pm.active_power(t, concurrent_clients=64)
        p32 = pm.active_power(t, concurrent_clients=32)
        assert p64 == p32

    def test_trace_sampling(self):
        pm = GPUPowerModel(get_gpu("K20"))
        samples = pm.trace([(0.01, 100.0), (0.01, 150.0)], sample_period_s=1e-3)
        assert len(samples) == 20
        assert samples[0].power_w == pytest.approx(100.0)
        assert samples[-1].power_w == pytest.approx(150.0)

    def test_validation(self):
        pm = GPUPowerModel(get_gpu("K20"))
        t = [execute_kernel(get_gpu("K20"), cost())]
        with pytest.raises(ValueError):
            pm.active_power(t, duty_cycle=0.0)
        with pytest.raises(ValueError):
            pm.active_power(t, concurrent_clients=0)


class TestNVML:
    def test_power_reading_with_noise_band(self):
        nvml = NVMLInterface(get_gpu("K20"), seed=1)
        nvml.register_phase(0.0, 1.0, 120.0)
        reads = [nvml.power_at(0.5) for _ in range(50)]
        assert all(115.0 - 1e-9 <= r <= 125.0 + 1e-9 for r in reads)
        assert nvml.power_at(0.5, exact=True) == 120.0

    def test_idle_outside_phases(self):
        nvml = NVMLInterface(get_gpu("K20"))
        nvml.register_phase(1.0, 2.0, 150.0)
        assert nvml.power_at(0.5, exact=True) == 20.0

    def test_energy_integration(self):
        nvml = NVMLInterface(get_gpu("K20"))
        nvml.register_phase(0.0, 2.0, 100.0)
        # 2 s at 100 W + 1 s idle at 20 W
        assert nvml.energy_j(0.0, 3.0) == pytest.approx(220.0)

    def test_trace_length(self):
        nvml = NVMLInterface(get_gpu("K20"))
        nvml.register_phase(0.0, 0.1, 90.0)
        trace = nvml.sample_trace(0.0, 0.1)
        assert len(trace) == 100

    def test_device_info(self):
        info = NVMLInterface(get_gpu("K20")).device_info()
        assert info.name == "K20"
        assert info.power_limit_w == 225.0

    def test_phase_validation(self):
        nvml = NVMLInterface(get_gpu("K20"))
        with pytest.raises(ValueError):
            nvml.register_phase(1.0, 1.0, 50.0)


class TestPCIe:
    def test_transfer_time(self):
        pcie = PCIeModel(get_gpu("K20"), efficiency=1.0)
        t = pcie.transfer_time_s(16e9, ncalls=1)
        assert t == pytest.approx(1.0 + PCIeModel.LATENCY_S, rel=1e-6)

    def test_state_plan_much_smaller_than_full_matrix(self):
        """The Section 3.1.2 design point: shipping F would dwarf the
        state vectors."""
        state = PCIeModel.state_vectors_plan(35937, 32768, 3)
        full = PCIeModel.full_matrix_plan(4096, 27, 8, 3, 35937, 32768)
        assert full.total > 5 * state.total

    def test_validation(self):
        with pytest.raises(ValueError):
            PCIeModel(get_gpu("K20"), efficiency=0.0)
        pcie = PCIeModel(get_gpu("K20"))
        with pytest.raises(ValueError):
            pcie.transfer_time_s(-1.0)
