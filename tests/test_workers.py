"""Persistent worker pool: lifecycle, dispatch fabric, failure reporting.

The pool is the process substrate under the zone-parallel executor, so
its contracts are tested bare — fork-once lifecycle, the fixed-packet
dispatch/ack round trip, error propagation out of a child evaluation,
amortization stats — plus the steady-state guarantee the executor
builds on it: warm dispatches allocate nothing and recycle the two
shared force buffers forever.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.fem.geometry import GeometryEvaluator
from repro.fem.mesh import cartesian_mesh_2d
from repro.fem.quadrature import tensor_quadrature
from repro.fem.spaces import H1Space, L2Space
from repro.hydro.corner_force import ForceEngine
from repro.hydro.eos import GammaLawEOS
from repro.hydro.state import HydroState
from repro.runtime.parallel import ZoneParallelExecutor
from repro.runtime.workers import PersistentWorkerPool, WorkerError


def make_fused_engine(order: int, nz1d: int) -> ForceEngine:
    mesh = cartesian_mesh_2d(nz1d, nz1d)
    h1 = H1Space(mesh, order)
    l2 = L2Space(mesh, order - 1)
    quad = tensor_quadrature(2, 2 * order)
    geo0 = GeometryEvaluator(h1, quad).evaluate(h1.node_coords)
    rho0 = np.ones((mesh.nzones, quad.nqp))
    return ForceEngine(h1, l2, quad, GammaLawEOS(), rho0, geo0, fused=True)


def random_state(h1: H1Space, l2, rng) -> HydroState:
    return HydroState(
        0.1 * rng.standard_normal((h1.ndof, 2)),
        rng.random(l2.ndof) + 0.5,
        h1.node_coords + 5e-4 * rng.standard_normal((h1.ndof, 2)),
        0.0,
    )


def _noop(wid: int, slot: int, t: float) -> None:
    pass


class TestSmokeLifecycle:
    def test_smoke_start_is_idempotent_and_shutdown_reaps(self):
        pool = PersistentWorkerPool(2, _noop, name="t-life")
        assert not pool.running
        pool.start()
        assert pool.running
        pids = list(pool.pids)
        pool.start()  # second start must not fork again
        assert list(pool.pids) == pids
        pool.shutdown()
        assert not pool.running
        pool.shutdown()  # idempotent
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # reaped and gone

    def test_smoke_context_manager_shuts_down(self):
        with PersistentWorkerPool(1, _noop, name="t-ctx") as pool:
            pool.start()
            assert pool.running
        assert not pool.running

    def test_smoke_stats_account_dispatches(self):
        with PersistentWorkerPool(1, _noop, name="t-stats") as pool:
            pool.start()
            for _ in range(5):
                pool.dispatch(0, 0.0)
                pool.wait()
            s = pool.stats()
        assert s["workers"] == 1
        assert s["dispatches"] == 5
        assert s["dispatch_s"] > 0.0
        assert np.isfinite(s["dispatch_us_mean"])
        assert s["uptime_s"] > 0.0


class TestSmokeDispatch:
    def test_smoke_roundtrip_delivers_command_fields(self):
        seg = shared_memory.SharedMemory(create=True, size=3 * 8 * 2)
        try:
            out = np.ndarray((2, 3), dtype=np.float64, buffer=seg.buf)
            out[:] = -1.0
            name = seg.name

            def record(wid: int, slot: int, t: float) -> None:
                view = shared_memory.SharedMemory(name=name)
                arr = np.ndarray((2, 3), dtype=np.float64, buffer=view.buf)
                arr[wid] = (wid, slot, t)
                view.close()

            with PersistentWorkerPool(2, record, name="t-rt") as pool:
                pool.start()
                pool.dispatch(1, 0.75)
                pool.wait()
                np.testing.assert_array_equal(out[0], [0.0, 1.0, 0.75])
                np.testing.assert_array_equal(out[1], [1.0, 1.0, 0.75])
        finally:
            seg.close()
            seg.unlink()

    def test_smoke_worker_exception_raises_and_pool_survives(self):
        seg = shared_memory.SharedMemory(create=True, size=8)
        try:
            flag = np.ndarray((1,), dtype=np.float64, buffer=seg.buf)
            flag[0] = 0.0
            name = seg.name

            def flaky(wid: int, slot: int, t: float) -> None:
                if t < 0:
                    raise ValueError("synthetic corner-force blowup")
                view = shared_memory.SharedMemory(name=name)
                np.ndarray((1,), dtype=np.float64, buffer=view.buf)[0] = t
                view.close()

            with PersistentWorkerPool(1, flaky, name="t-err") as pool:
                pool.start()
                pool.dispatch(0, -1.0)
                with pytest.raises(WorkerError) as err:
                    pool.wait()
                assert "synthetic corner-force blowup" in str(err.value)
                assert "worker 0" in str(err.value)
                # The child caught the exception and kept its loop: the
                # next dispatch must succeed on the same process.
                pool.dispatch(0, 2.5)
                pool.wait()
                assert flag[0] == 2.5
        finally:
            seg.close()
            seg.unlink()

    def test_smoke_roundtrip_latency_sane(self):
        # Not a perf gate (bench_dispatch_overhead owns that); this
        # catches the fabric regressing to e.g. a polling sleep.
        with PersistentWorkerPool(1, _noop, name="t-lat") as pool:
            pool.start()
            for _ in range(10):
                pool.dispatch(0, 0.0)
                pool.wait()
            t0 = time.perf_counter()
            for _ in range(100):
                pool.dispatch(0, 0.0)
                pool.wait()
            per = (time.perf_counter() - t0) / 100
        assert per < 0.005  # 5 ms/round trip even on a loaded 1-core host


class TestExecutorSteadyState:
    def test_smoke_executor_zero_steady_state_allocation(self, rng):
        fused = make_fused_engine(2, 6)
        states = [
            random_state(fused.kinematic, fused.thermodynamic, rng)
            for _ in range(2)
        ]
        with ZoneParallelExecutor(fused, workers=1) as ex:
            for i in range(4):  # fork + warm both Fz slots
                ex.compute(states[i % 2])
            # Double-buffered output: every result aliases one of two
            # pre-mapped shared slots, never a fresh array.
            slot_ids = {id(ex.compute(states[i % 2]).Fz.base) for i in range(4)}
            assert len(slot_ids) == 2
            tracemalloc.start()
            before, _ = tracemalloc.get_traced_memory()
            for i in range(6):
                ex.compute(states[i % 2])
            after, _ = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            # Six evaluations on a 36-zone Q2 mesh move ~1 MB of forces
            # through the executor; steady state must keep all of it in
            # the shared slots (the budget covers result handles and
            # tracemalloc's own bookkeeping).
            assert after - before < 32 * 1024
            stats = ex.stats()
        assert stats["dispatches"] == 14
        assert stats["workers"] == 1

    def test_smoke_executor_dispatch_stats_flow_through(self, rng):
        fused = make_fused_engine(2, 6)  # 36 zones -> 2+ granule chunks
        state = random_state(fused.kinematic, fused.thermodynamic, rng)
        with ZoneParallelExecutor(fused, workers=2) as ex:
            ex.compute(state)
            stats = ex.stats()
        assert stats["workers"] == 2
        assert stats["dispatches"] == 1
        assert stats["chunks"] >= 1
        assert stats["nzones"] == fused.kinematic.mesh.nzones
