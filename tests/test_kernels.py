"""Tests for the kernel cost models and their paper-matching behaviour.

These tests pin the *shape* claims of the paper's Figures 4, 5, 7 and
Tables 2-4: which version wins, by roughly what factor, and where the
tuning optimum sits. Tolerances are deliberately loose — the models are
calibrated once, and these tests guard against regressions that would
silently break the reproduced narrative.
"""

import numpy as np
import pytest

from repro.gpu import execute_kernel, get_gpu
from repro.kernels import FEConfig
from repro.kernels.base import KERNEL_TABLE
from repro.kernels.base_quadloop import base_quadloop_cost
from repro.kernels.cublas import (
    cublas_dgemm_batched_cost,
    streamed_cublas_dgemv_gflops,
)
from repro.kernels.k11_spmv import kernel11_cost
from repro.kernels.k12_pointwise import kernel1_cost, kernel2_cost
from repro.kernels.k34_custom_gemm import (
    feasible_matrices_per_block,
    kernel3_cost,
    kernel4_cost,
)
from repro.kernels.k56_dgemm_batched import (
    batched_dgemm_cost,
    batched_dgemm_roofline_gflops,
    kernel5_cost,
)
from repro.kernels.k7_force import feasible_block_cols, kernel7_cost
from repro.kernels.k810_gemv import (
    batched_dgemv_cost,
    batched_dgemv_roofline_gflops,
    kernel8_cost,
)
from repro.kernels.k9_pcg import pcg_step_costs, spmv_cost
from repro.kernels.registry import all_kernels, corner_force_costs, full_step_costs, get_kernel

K20 = get_gpu("K20")
C2050 = get_gpu("C2050")
CFG = FEConfig(dim=3, order=2, nzones=16**3)


class TestFEConfig:
    def test_paper_shapes_q2(self):
        assert CFG.nqp == 64
        assert CFG.ndof_kin_zone == 27
        assert CFG.vector_rows == 81
        assert CFG.ndof_thermo_zone == 8

    def test_paper_shapes_q4(self):
        cfg = FEConfig(dim=3, order=4, nzones=8)
        assert cfg.nqp == 512
        assert cfg.vector_rows == 375

    def test_from_solver(self):
        from repro import SedovProblem, LagrangianHydroSolver

        s = LagrangianHydroSolver(SedovProblem(dim=2, order=2, zones_per_dim=2))
        cfg = FEConfig.from_solver(s)
        assert cfg.dim == 2 and cfg.order == 2 and cfg.nzones == 4
        assert cfg.nqp == s.quad.nqp

    def test_validation(self):
        with pytest.raises(ValueError):
            FEConfig(dim=1, order=2, nzones=4)
        with pytest.raises(ValueError):
            FEConfig(dim=2, order=0, nzones=4)

    def test_mass_nnz_estimate_close_to_actual(self):
        from repro import SedovProblem, LagrangianHydroSolver

        s = LagrangianHydroSolver(SedovProblem(dim=2, order=2, zones_per_dim=8))
        cfg = FEConfig.from_solver(s)
        # The estimate double-counts zone-shared pairs, so it
        # overshoots by a bounded factor.
        assert s.mass_v.nnz <= cfg.mass_nnz_estimate < 1.5 * s.mass_v.nnz


class TestTable2Inventory:
    def test_eleven_kernels(self):
        assert len(KERNEL_TABLE) == 11
        assert {k.number for k in KERNEL_TABLE} == set(range(1, 12))

    def test_names_match_paper(self):
        assert get_kernel(1).name == "kernel_CalcAjugate_det"
        assert get_kernel(7).purpose == "Az B^T"
        assert get_kernel(9).name == "CUDA_PCG"

    def test_lookup_error(self):
        with pytest.raises(KeyError):
            get_kernel(12)

    def test_all_kernels_is_table(self):
        assert all_kernels() == KERNEL_TABLE


class TestFig4RegisterVsLocal:
    @pytest.mark.parametrize("kc", [kernel1_cost, kernel2_cost])
    def test_register_version_faster(self, kc):
        local = execute_kernel(K20, kc(CFG, "local"))
        reg = execute_kernel(K20, kc(CFG, "register"))
        assert reg.time_s < local.time_s

    def test_kernel2_speedup_near_4x(self):
        """'kernel 2 achieved a 4x speedup' on Kepler."""
        local = execute_kernel(K20, kernel2_cost(CFG, "local"))
        reg = execute_kernel(K20, kernel2_cost(CFG, "register"))
        assert 2.5 <= local.time_s / reg.time_s <= 6.0

    def test_local_version_is_memory_bound(self):
        t = execute_kernel(K20, kernel1_cost(CFG, "local"))
        assert t.bound in ("dram", "l2")

    def test_register_version_is_compute_bound(self):
        t = execute_kernel(K20, kernel1_cost(CFG, "register"))
        assert t.bound == "compute"

    def test_unknown_version(self):
        with pytest.raises(ValueError):
            kernel1_cost(CFG, "v9")


class TestFig5Kernel3Tuning:
    def test_curve_peaks_at_32_for_q2(self):
        times = {}
        for m in (1, 2, 4, 8, 16, 32):
            times[m] = execute_kernel(K20, kernel3_cost(CFG, "v3", m)).time_s
        best = min(times, key=lambda m: times[m])
        assert best == 32
        assert times[1] > 2 * times[32]

    def test_overfull_shared_eliminated(self):
        """m=128 at Q2 overfills shared memory — infeasible, as the
        paper's constraint elimination requires."""
        with pytest.raises(ValueError):
            execute_kernel(K20, kernel3_cost(CFG, "v3", 128))

    def test_feasible_m_shrinks_with_order(self):
        q2 = feasible_matrices_per_block(FEConfig(3, 2, 64))
        q4 = feasible_matrices_per_block(FEConfig(3, 4, 64))
        assert q2 == 32
        assert q4 < q2

    def test_high_occupancy_at_optimum(self):
        t = execute_kernel(K20, kernel3_cost(CFG, "v3", 32))
        assert t.occupancy.occupancy > 0.9

    def test_version_ladder(self):
        v1 = execute_kernel(K20, kernel3_cost(CFG, "v1"))
        v2 = execute_kernel(K20, kernel3_cost(CFG, "v2"))
        v3 = execute_kernel(K20, kernel3_cost(CFG, "v3"))
        assert v3.time_s < v2.time_s
        assert v3.time_s < v1.time_s


class TestKernels56:
    def test_tuned_near_60pct_of_roofline(self):
        """'we are able to achieve 60% of the theoretical peak
        performance of batched DGEMM on K20'."""
        roof = batched_dgemm_roofline_gflops(K20, 3)
        t = execute_kernel(K20, kernel5_cost(CFG, "tuned", 32))
        assert 0.45 <= t.gflops / roof <= 0.75

    def test_roofline_paper_values(self):
        """35 / 52 Gflop/s for DIM 2 / 3 on K20."""
        assert batched_dgemm_roofline_gflops(K20, 2) == pytest.approx(34.7, rel=0.02)
        assert batched_dgemm_roofline_gflops(K20, 3) == pytest.approx(52.0, rel=0.02)

    def test_cublas_at_measured_1_3(self):
        t = execute_kernel(K20, batched_dgemm_cost(CFG.npoints, 3, "cublas"))
        assert t.gflops == pytest.approx(1.3, rel=0.35)

    def test_v1_unaligned_much_slower(self):
        v1 = execute_kernel(K20, kernel5_cost(CFG, "v1"))
        tuned = execute_kernel(K20, kernel5_cost(CFG, "tuned", 32))
        assert tuned.gflops > 5 * v1.gflops

    def test_occupancy_98pct_at_32(self):
        t = execute_kernel(K20, kernel5_cost(CFG, "tuned", 32))
        assert t.occupancy.occupancy == pytest.approx(0.983, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            batched_dgemm_cost(0, 3)
        with pytest.raises(ValueError):
            batched_dgemm_cost(10, 4)
        with pytest.raises(ValueError):
            batched_dgemm_cost(10, 3, "v7")


class TestFig7Kernel7:
    def test_version_ladder(self):
        """v1 < v2 < v3; the library baseline loses to v3."""
        v1 = execute_kernel(K20, kernel7_cost(CFG, "v1"))
        v2 = execute_kernel(K20, kernel7_cost(CFG, "v2"))
        v3 = execute_kernel(K20, kernel7_cost(CFG, "v3"))
        cub = execute_kernel(K20, kernel7_cost(CFG, "cublas"))
        assert v2.time_s < v1.time_s
        assert v3.time_s < v2.time_s
        assert v3.time_s < cub.time_s

    def test_blocking_raises_occupancy(self):
        """v3's raison d'etre: smaller shared tiles, more blocks."""
        v2 = execute_kernel(K20, kernel7_cost(CFG, "v2"))
        v3 = execute_kernel(K20, kernel7_cost(CFG, "v3"))
        assert v3.occupancy.occupancy > v2.occupancy.occupancy

    def test_feasible_block_cols(self):
        assert feasible_block_cols(CFG) == 16
        q4 = FEConfig(3, 4, 64)
        assert feasible_block_cols(q4) < 16

    def test_validation(self):
        with pytest.raises(ValueError):
            kernel7_cost(CFG, "v5")
        with pytest.raises(ValueError):
            kernel7_cost(CFG, "v3", block_cols=0)


class TestTable4BatchedDGEMV:
    def test_custom_kernel_near_18_gflops(self):
        t = execute_kernel(C2050, batched_dgemv_cost(4096, 81, 8))
        assert t.gflops == pytest.approx(18.0, rel=0.2)

    def test_roofline_near_35(self):
        assert batched_dgemv_roofline_gflops(C2050, 81, 8) == pytest.approx(35.5, rel=0.15)

    def test_streamed_cublas_near_0_2(self):
        g = streamed_cublas_dgemv_gflops(C2050, 4096, 81, 8)
        assert g == pytest.approx(0.2, rel=0.35)

    def test_90x_gap(self):
        """'Our custom kernel is 90x faster than that of cublasDgemv'."""
        custom = execute_kernel(C2050, batched_dgemv_cost(4096, 81, 8)).gflops
        cub = streamed_cublas_dgemv_gflops(C2050, 4096, 81, 8)
        assert 40 <= custom / cub <= 180

    def test_kernel8_uses_config_shape(self):
        c = kernel8_cost(CFG)
        assert c.flops == 2.0 * CFG.nzones * 81 * 8

    def test_validation(self):
        with pytest.raises(ValueError):
            batched_dgemv_cost(0, 81, 8)
        with pytest.raises(ValueError):
            batched_dgemv_roofline_gflops(C2050, 0, 8)


class TestPCGAndSpMV:
    def test_pcg_costs_scale_with_iterations(self):
        c10 = pcg_step_costs(CFG, 10.0)
        c20 = pcg_step_costs(CFG, 20.0)
        assert sum(c.flops for c in c20) == pytest.approx(
            2 * sum(c.flops for c in c10)
        )

    def test_zero_iterations_empty(self):
        assert pcg_step_costs(CFG, 0.0) == []

    def test_spmv_memory_bound(self):
        t = execute_kernel(K20, spmv_cost(4.5e6, 3.6e4))
        assert t.bound == "dram"

    def test_kernel11_block_diag_nnz(self):
        c = kernel11_cost(CFG)
        assert c.flops == 2.0 * CFG.nzones * 64  # nnz = Z * P^2


class TestPipelines:
    def test_base_pipeline_content(self):
        costs = corner_force_costs(CFG, "base")
        assert costs[0].name.startswith("kernel_loop_quadrature_point")
        assert len(costs) == 4

    def test_optimized_pipeline_has_kernel5_twice(self):
        """'Other kernels will only be called once, except kernel 5
        twice' (Figure 6 note)."""
        costs = corner_force_costs(CFG, "optimized")
        k5 = [c for c in costs if c.name.startswith("kernel_NN_dgemm")]
        assert len(k5) == 2

    def test_optimized_faster_than_base(self):
        tb = sum(execute_kernel(K20, c).time_s for c in corner_force_costs(CFG, "base"))
        to = sum(execute_kernel(K20, c).time_s for c in corner_force_costs(CFG, "optimized"))
        assert to < 0.35 * tb  # the redesign's headline win

    def test_same_useful_flops_up_to_bookkeeping(self):
        """'both perform the same FLOPs' — the base monolith charges the
        same useful work as kernels 1-6."""
        base = base_quadloop_cost(CFG).flops
        opt = sum(
            c.flops
            for c in corner_force_costs(CFG, "optimized")
            if not c.name.startswith(("kernel_loop_zones", "kernel_dgemvt"))
        )
        assert base == pytest.approx(opt, rel=0.35)

    def test_full_step_includes_pcg_when_single_task(self):
        costs = full_step_costs(CFG, pcg_iterations=20, use_cuda_pcg=True)
        names = {c.name for c in costs}
        assert any(n.startswith("csrMv") for n in names)
        assert any(n.startswith("SpMV_ME") for n in names)

    def test_unknown_implementation(self):
        with pytest.raises(ValueError):
            corner_force_costs(CFG, "fastest")
