"""Tests for batched small-matrix determinant/adjugate/inverse."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.smallmat import (
    batched_adjugate,
    batched_det,
    batched_inverse,
    batched_trace,
)


class TestDet:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_matches_numpy(self, rng, d):
        a = rng.standard_normal((20, d, d))
        assert np.allclose(batched_det(a), np.linalg.det(a), atol=1e-12)

    def test_identity(self):
        a = np.broadcast_to(np.eye(3), (5, 3, 3)).copy()
        assert np.allclose(batched_det(a), 1.0)

    def test_multi_batch_axes(self, rng):
        a = rng.standard_normal((4, 6, 2, 2))
        assert np.allclose(batched_det(a), np.linalg.det(a))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            batched_det(np.ones((3, 2, 3)))
        with pytest.raises(ValueError):
            batched_det(np.ones((3, 4, 4)))


class TestAdjugate:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_adjugate_identity_property(self, rng, d):
        """adj(A) @ A = det(A) I, even for singular A."""
        a = rng.standard_normal((25, d, d))
        adj = batched_adjugate(a)
        det = batched_det(a)
        prod = adj @ a
        expect = det[:, None, None] * np.eye(d)
        assert np.allclose(prod, expect, atol=1e-12)

    def test_singular_matrix(self):
        a = np.array([[[1.0, 2.0], [2.0, 4.0]]])  # rank 1
        adj = batched_adjugate(a)
        assert np.allclose(adj @ a, 0.0, atol=1e-14)

    def test_adjugate_of_identity(self):
        assert np.allclose(batched_adjugate(np.eye(3)[None]), np.eye(3))


class TestInverse:
    @pytest.mark.parametrize("d", [2, 3])
    def test_matches_numpy(self, rng, d):
        a = rng.standard_normal((15, d, d)) + 3 * np.eye(d)
        assert np.allclose(batched_inverse(a), np.linalg.inv(a), atol=1e-10)

    def test_raises_on_singular(self):
        a = np.zeros((1, 2, 2))
        with pytest.raises(np.linalg.LinAlgError):
            batched_inverse(a)


class TestTrace:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((9, 3, 3))
        assert np.allclose(batched_trace(a), np.trace(a, axis1=-2, axis2=-1))


class TestProperties:
    @given(seed=st.integers(0, 2**31), d=st.sampled_from([2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_det_multiplicative(self, seed, d):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((5, d, d))
        b = rng.standard_normal((5, d, d))
        assert np.allclose(
            batched_det(a @ b), batched_det(a) * batched_det(b), atol=1e-9
        )

    @given(seed=st.integers(0, 2**31), d=st.sampled_from([2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_adjugate_transpose_commutes(self, seed, d):
        """adj(A^T) = adj(A)^T."""
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((4, d, d))
        lhs = batched_adjugate(np.swapaxes(a, -1, -2))
        rhs = np.swapaxes(batched_adjugate(a), -1, -2)
        assert np.allclose(lhs, rhs, atol=1e-12)
