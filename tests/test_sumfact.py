"""Tests for the matrix-free sum-factorization route (`cpu-sumfact`).

The `-k smoke` subset (CI's sumfact lane) is the fast end-to-end slice:
engine parity vs the fused dense tables, full-problem-registry parity
through `repro.api.run`, the modeled-work crossover, the tuner's fusion
axis, and the typed --order validation. The remaining tests pin down
the 1D contraction layer operator-by-operator against the dense
reference tables across dimensions and orders.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fem.geometry import GeometryEvaluator
from repro.fem.mesh import cartesian_mesh_2d
from repro.fem.quadrature import tensor_quadrature
from repro.fem.reference_element import ReferenceElement
from repro.fem.spaces import H1Space, L2Space
from repro.fem.sumfact import (
    SumFactorizedOperators,
    modeled_work_dense,
    modeled_work_sumfact,
    sumfact_host_factor,
)
from repro.hydro.corner_force import ForceEngine, SumfactForceEngine, SumfactStress
from repro.hydro.eos import GammaLawEOS
from repro.hydro.state import HydroState

#: Documented parity budget between the sumfact and dense contractions:
#: pure reordering roundoff (DESIGN.md section 16). Observed agreement
#: is machine precision; the budget leaves headroom for large meshes.
PARITY = dict(rtol=1e-10, atol=1e-12)


def _ops(dim: int, order: int):
    element = ReferenceElement(dim, order)
    quad = tensor_quadrature(dim, 2 * max(order, 1))
    return element, quad, SumFactorizedOperators(element, quad)


class _ModelCfg:
    """Duck-typed FE config for the work model."""

    def __init__(self, dim, order, nzones, quad_points_1d=None):
        self.dim = dim
        self.order = order
        self.nzones = nzones
        if quad_points_1d is not None:
            self.quad_points_1d = quad_points_1d


class TestContractionLayer:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_apply_B_matches_dense_table(self, dim, order, rng):
        element, quad, ops = _ops(dim, order)
        B = element.tabulate_B(quad)  # (ndof, nqp), B[j, k] = phi_j(q_k)
        U = rng.standard_normal((5, element.ndof))
        np.testing.assert_allclose(ops.apply_B(U), U @ B, rtol=1e-13, atol=1e-14)

    @pytest.mark.parametrize("dim", [1, 2, 3])
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_apply_G_matches_dense_table(self, dim, order, rng):
        element, quad, ops = _ops(dim, order)
        gradW = element.tabulate_gradW(quad)  # (nqp, ndof, dim)
        U = rng.standard_normal((4, element.ndof))
        expect = np.einsum("zi,kir->zkr", U, gradW)
        np.testing.assert_allclose(ops.apply_G(U), expect, rtol=1e-13, atol=1e-14)

    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_transposes_are_adjoints(self, dim, rng):
        _, _, ops = _ops(dim, 2)
        U = rng.standard_normal((3, ops.ndof))
        W = rng.standard_normal((3, ops.nqp))
        S = rng.standard_normal((3, ops.nqp, dim))
        # <B u, w> == <u, B^T w> and <G u, s> == <u, G^T s>, zone-wise.
        np.testing.assert_allclose(
            np.einsum("zk,zk->z", ops.apply_B(U), W),
            np.einsum("zi,zi->z", U, ops.apply_B_T(W)),
            rtol=1e-12, atol=1e-13,
        )
        np.testing.assert_allclose(
            np.einsum("zkr,zkr->z", ops.apply_G(U), S),
            np.einsum("zi,zi->z", U, ops.apply_G_T(S)),
            rtol=1e-12, atol=1e-13,
        )

    def test_out_buffers_are_used_and_match(self, rng):
        _, _, ops = _ops(2, 3)
        U = rng.standard_normal((4, ops.ndof))
        W = rng.standard_normal((4, ops.nqp))
        S = rng.standard_normal((4, ops.nqp, 2))
        for fn, arg, shape in (
            (ops.apply_B, U, (4, ops.nqp)),
            (ops.apply_B_T, W, (4, ops.ndof)),
            (ops.apply_G, U, (4, ops.nqp, 2)),
            (ops.apply_G_T, S, (4, ops.ndof)),
        ):
            buf = np.full(shape, np.nan)
            got = fn(arg, out=buf)
            assert got is buf
            np.testing.assert_array_equal(got, fn(arg))

    def test_l2_spaces_factorize_too(self, rng):
        mesh = cartesian_mesh_2d(3, 3)
        l2 = L2Space(mesh, 2)
        quad = tensor_quadrature(2, 6)
        ops = l2.sumfact_operators(quad)
        B = l2.element.tabulate_B(quad)  # (ndof, nqp)
        U = rng.standard_normal((mesh.nzones, l2.element.ndof))
        np.testing.assert_allclose(ops.apply_B(U), U @ B, rtol=1e-13, atol=1e-14)

    def test_dimension_mismatch_rejected(self):
        element = ReferenceElement(2, 2)
        quad = tensor_quadrature(3, 4)
        with pytest.raises(ValueError):
            SumFactorizedOperators(element, quad)


class TestMassBlocks:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_sumfact_mass_blocks_match_dense(self, order, rng):
        from repro.fem.assembly import zone_mass_blocks, zone_mass_blocks_sumfact

        mesh = cartesian_mesh_2d(3, 3)
        h1 = H1Space(mesh, order)
        quad = tensor_quadrature(2, 2 * order)
        rho = rng.random((mesh.nzones, quad.nqp)) + 0.5
        detJ = rng.random((mesh.nzones, quad.nqp)) + 0.5
        dense = zone_mass_blocks(h1.element.tabulate_B(quad).T, quad, rho, detJ)
        fact = zone_mass_blocks_sumfact(h1.element, quad, rho, detJ)
        np.testing.assert_allclose(fact, dense, rtol=1e-13, atol=1e-14)


def make_engine_pair(order: int, nz1d: int):
    """Fused dense engine + sumfact engine over one discretization."""
    mesh = cartesian_mesh_2d(nz1d, nz1d)
    h1 = H1Space(mesh, order)
    l2 = L2Space(mesh, order - 1)
    quad = tensor_quadrature(2, 2 * order)
    geo0 = GeometryEvaluator(h1, quad).evaluate(h1.node_coords)
    rho0 = np.ones((mesh.nzones, quad.nqp))
    args = (h1, l2, quad, GammaLawEOS(), rho0, geo0)
    return ForceEngine(*args, fused=True), SumfactForceEngine(*args)


def random_state(h1, l2, rng) -> HydroState:
    return HydroState(
        0.1 * rng.standard_normal((h1.ndof, 2)),
        rng.random(l2.ndof) + 0.5,
        h1.node_coords + 5e-4 * rng.standard_normal((h1.ndof, 2)),
        0.0,
    )


class TestEngineParity:
    @pytest.mark.parametrize("order", [2, 4])
    def test_smoke_sumfact_matches_fused_engine(self, order, rng):
        fused, sumfact = make_engine_pair(order, 5)
        for _ in range(2):
            state = random_state(fused.kinematic, fused.thermodynamic, rng)
            rf = fused.compute(state)
            rs = sumfact.compute(state)
            assert rf.valid and rs.valid
            assert isinstance(rs.Fz, SumfactStress)
            np.testing.assert_allclose(sumfact.dense_force(rs.Fz), rf.Fz, **PARITY)
            assert rs.dt_est == pytest.approx(rf.dt_est, rel=1e-12)
            np.testing.assert_allclose(
                sumfact.force_times_one(rs.Fz),
                fused.force_times_one(rf.Fz), **PARITY,
            )
            np.testing.assert_allclose(
                sumfact.force_transpose_times_v(rs.Fz, state.v),
                fused.force_transpose_times_v(rf.Fz, state.v), **PARITY,
            )

    def test_dense_fallback_accepts_plain_arrays(self, rng):
        # The integrator's distributed paths hand the engine dense
        # subset arrays; those must fall through to the dense kernels.
        fused, sumfact = make_engine_pair(2, 4)
        state = random_state(fused.kinematic, fused.thermodynamic, rng)
        Fz = fused.compute(state).Fz
        np.testing.assert_allclose(
            sumfact.force_times_one(np.array(Fz)),
            fused.force_times_one(Fz), rtol=0, atol=0,
        )

    def test_keep_az_falls_back_to_legacy_route(self, rng):
        fused, sumfact = make_engine_pair(2, 4)
        state = random_state(fused.kinematic, fused.thermodynamic, rng)
        res = sumfact.compute(state, keep_az=True)
        assert res.Az is not None  # debug route still materializes Az
        np.testing.assert_allclose(res.Fz, fused.compute(state).Fz, **PARITY)


class TestProblemRegistryParity:
    @pytest.mark.parametrize(
        "problem", ["sedov", "sod", "noh", "saltzman", "taylor-green", "triple-pt"]
    )
    def test_smoke_registry_parity_vs_fused(self, problem):
        from repro.api import run
        from repro.config import RunConfig

        base = dict(dim=2, order=2, zones=4, max_steps=3)
        ref = run(problem, RunConfig(backend="cpu-fused", **base))
        got = run(problem, RunConfig(backend="cpu-sumfact", **base))
        assert got.result.steps == ref.result.steps
        for name in ("v", "e", "x"):
            a = getattr(ref.result.state, name)
            b = getattr(got.result.state, name)
            scale = max(float(np.abs(a).max()), 1.0)
            np.testing.assert_allclose(b, a, rtol=0, atol=1e-10 * scale)

    def test_smoke_manifest_reports_arena_high_water(self):
        from repro.api import run
        from repro.config import RunConfig

        rep = run("sedov", RunConfig(zones=4, max_steps=2, backend="cpu-sumfact"))
        arena = rep.manifest.solver["arena"]
        assert arena["high_water_bytes"] > 0
        assert arena["live_leases"] > 0
        assert arena["block_allocations"] >= arena["live_leases"]


class TestWorkModel:
    def test_smoke_crossover_is_q3_in_2d(self):
        ratios = {
            o: modeled_work_sumfact(_ModelCfg(2, o, 256))
            / modeled_work_dense(_ModelCfg(2, o, 256))
            for o in (1, 2, 3, 4, 6, 8)
        }
        assert ratios[1] > 1.0 and ratios[2] > 1.0  # dense wins at low order
        assert ratios[3] < 1.0                      # crossover at Q3
        assert ratios[4] < 0.51                     # ~2x modeled win at Q4
        assert ratios[8] < ratios[6] < ratios[4]    # monotone improvement

    def test_3d_crossover_is_earlier(self):
        r2 = sumfact_host_factor(_ModelCfg(3, 2, 64))
        assert r2 < 1.0  # 3D already wins at Q2

    def test_host_factor_is_clamped(self):
        assert 0.1 <= sumfact_host_factor(_ModelCfg(2, 1, 4)) <= 4.0
        assert sumfact_host_factor(_ModelCfg(3, 8, 512)) >= 0.1


class TestTunerAxis:
    def test_smoke_fusion_axis_includes_sumfact(self):
        from repro.gpu import get_gpu
        from repro.kernels import FEConfig
        from repro.sched.online import hybrid_param_space

        space = hybrid_param_space(FEConfig(dim=2, order=4, nzones=64), get_gpu("K20"))
        fusions = {c["fusion"] for c in space.candidates()}
        assert fusions == {"fused", "sumfact", "legacy"}
        # Sumfact chunks zones like the fused path; legacy never does.
        assert any(c["fusion"] == "sumfact" and c["chunk"] > 1
                   for c in space.candidates())
        assert not any(c["fusion"] == "legacy" and c["chunk"] > 1
                       for c in space.candidates())

    def test_smoke_runtime_factor_prices_the_crossover(self):
        from repro.backends.hybrid import HybridBackend
        from repro.kernels import FEConfig

        low = HybridBackend.for_pricing(FEConfig(dim=2, order=1, nzones=64))
        high = HybridBackend.for_pricing(FEConfig(dim=2, order=4, nzones=64))
        # Below the crossover sumfact is priced slower than fused...
        assert low._runtime_factor("sumfact", 1) > low._runtime_factor("fused", 1)
        # ...above it, faster — so the tuner can pick it per order.
        assert high._runtime_factor("sumfact", 1) < high._runtime_factor("fused", 1)
        high.apply_runtime("sumfact", 2)
        assert high.fusion == "sumfact" and high.chunk == 2
        with pytest.raises(ValueError):
            high.apply_runtime("vectorized", 1)

    def test_tuner_picks_sumfact_at_high_order(self):
        from repro.backends.hybrid import HybridBackend
        from repro.gpu import get_gpu
        from repro.kernels import FEConfig
        from repro.sched.online import hybrid_param_space
        from repro.tuning import run_search

        cfg = FEConfig(dim=2, order=4, nzones=64)
        harness = HybridBackend.for_pricing(cfg)
        result = run_search(hybrid_param_space(cfg, get_gpu("K20")),
                            harness.measure_candidate,
                            objective="time", strategy="exhaustive")
        assert result.best["fusion"] == "sumfact"


class TestOrderValidation:
    @pytest.mark.parametrize("order", [0, -1, 99, 2.5, True])
    def test_smoke_bad_order_raises_typed_config_error(self, order):
        from repro.config import RunConfig, validate_order

        with pytest.raises(ConfigError, match="hint"):
            validate_order(order)
        if isinstance(order, int) and not isinstance(order, bool):
            with pytest.raises(ConfigError):
                RunConfig(order=order)

    def test_smoke_cli_exits_2_with_hint(self, capsys):
        from repro.cli import main

        rc = main(["run", "sedov", "--order", "42", "--max-steps", "1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "hint" in err and "order" in err
        assert "Traceback" not in err

    def test_cli_model_and_tune_validate_order(self, capsys):
        from repro.cli import main

        assert main(["model", "greenup", "--order", "0"]) == 2
        assert main(["tune", "kernel3", "--order", "77"]) == 2
        assert main(["tune", "campaign", "--orders", "2,99"]) == 2


class TestBackendRegistration:
    def test_smoke_backend_registry_and_describe(self):
        from repro.backends import BACKEND_NAMES, make_backend

        assert "cpu-sumfact" in BACKEND_NAMES
        backend = make_backend("cpu-sumfact")
        assert backend.describe() == {"backend": "cpu-sumfact", "sumfact": True}

    def test_solver_uses_sumfact_mass_assembly(self):
        from repro.config import RunConfig
        from repro.hydro.solver import LagrangianHydroSolver
        from repro.problems import SedovProblem

        dense = LagrangianHydroSolver(
            SedovProblem(dim=2, order=2, zones_per_dim=4),
            RunConfig(backend="cpu-fused"),
        )
        fact = LagrangianHydroSolver(
            SedovProblem(dim=2, order=2, zones_per_dim=4),
            RunConfig(backend="cpu-sumfact"),
        )
        assert type(fact.engine).__name__ == "SumfactForceEngine"
        np.testing.assert_allclose(
            fact.mass_v.diagonal(), dense.mass_v.diagonal(),
            rtol=1e-13, atol=1e-15,
        )
        np.testing.assert_allclose(
            fact.mass_e.diagonal(), dense.mass_e.diagonal(),
            rtol=1e-13, atol=1e-15,
        )
