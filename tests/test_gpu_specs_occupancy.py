"""Tests for GPU catalog and occupancy calculator."""

import pytest

from repro.gpu.occupancy import occupancy
from repro.gpu.specs import GPU_CATALOG, get_gpu


class TestCatalog:
    def test_k20_paper_numbers(self):
        """The constants the paper quotes: 208 GB/s, 225 W TDP, Hyper-Q
        32 queues, 20 W idle, ~50 W on first kernel launch."""
        k20 = get_gpu("K20")
        assert k20.mem_bandwidth_gbs == 208.0
        assert k20.tdp_w == 225.0
        assert k20.hyperq_queues == 32
        assert k20.idle_w == 20.0
        assert k20.active_base_w == 50.0

    def test_k20_doubles_per_second(self):
        """'it is able to get 26G data in double precision per second'."""
        assert get_gpu("K20").doubles_per_second == pytest.approx(26.0)

    def test_kepler_doubles_fermi_registers(self):
        """'Kepler ... doubles the number of physical registers per SMX'."""
        assert get_gpu("K20").registers_per_sm == 2 * get_gpu("C2050").registers_per_sm

    def test_fermi_has_single_queue(self):
        assert get_gpu("C2050").hyperq_queues == 1

    def test_lookup_case_insensitive(self):
        assert get_gpu("k20m").name == "K20m"

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_gpu("H100")

    def test_perf_per_watt_improves_by_generation(self):
        """The Figure 1 trend: each DP-capable generation improves."""
        seq = ["C1060", "C2050", "K20"]
        ppw = [GPU_CATALOG[n].peak_dp_per_watt for n in seq]
        assert ppw[0] < ppw[1] < ppw[2]


class TestOccupancy:
    def test_full_occupancy(self):
        k20 = get_gpu("K20")
        r = occupancy(k20, threads_per_block=256, regs_per_thread=32, shared_per_block_bytes=0)
        assert r.occupancy == pytest.approx(1.0)

    def test_paper_98_percent_case(self):
        """Kernel 5/6 tuned at 32 matrices/block: ~98% occupancy."""
        k20 = get_gpu("K20")
        # 32 3x3 matrices -> 288 threads, 3 tiles of 9 doubles each
        r = occupancy(k20, threads_per_block=288, regs_per_thread=24,
                      shared_per_block_bytes=32 * 3 * 9 * 8)
        assert r.occupancy > 0.95

    def test_shared_memory_limits(self):
        k20 = get_gpu("K20")
        r = occupancy(k20, 256, 32, 40 * 1024)  # one block fits
        assert r.active_blocks == 1
        assert r.limiter == "shared"
        assert r.occupancy == pytest.approx(8 / 64)

    def test_register_limits(self):
        c2050 = get_gpu("C2050")
        r = occupancy(c2050, 256, 63, 0)
        assert r.limiter == "registers"
        assert r.occupancy < 1.0

    def test_impossible_config_zero(self):
        k20 = get_gpu("K20")
        r = occupancy(k20, 32, 0, 100 * 1024)
        assert r.occupancy == 0.0

    def test_block_slot_limit(self):
        k20 = get_gpu("K20")
        # Tiny blocks: block-slot limited (16 blocks of 1 warp = 16 warps).
        r = occupancy(k20, 32, 8, 0)
        assert r.limiter in ("blocks",)
        assert r.occupancy == pytest.approx(16 / 64)

    def test_validation(self):
        k20 = get_gpu("K20")
        with pytest.raises(ValueError):
            occupancy(k20, 0, 32, 0)
        with pytest.raises(ValueError):
            occupancy(k20, 2048, 32, 0)
        with pytest.raises(ValueError):
            occupancy(k20, 128, -1, 0)

    def test_more_registers_never_increase_occupancy(self):
        k20 = get_gpu("K20")
        prev = 2.0
        for regs in (16, 32, 64, 128):
            r = occupancy(k20, 256, regs, 0)
            assert r.occupancy <= prev + 1e-12
            prev = r.occupancy
